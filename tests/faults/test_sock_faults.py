"""The sock-reg-tamper fault kind: netserver-targeted injection.

Pins the networking extension of the fault battery: plan generation
routes the kind onto the netserver workload, the injector's register
flip at an authenticated send/recv trap dies in the call-MAC family
on every engine config, and a focused sweep reaches zero MISSED.
"""

import pytest

from repro.crypto import Key
from repro.faults import run_sweep
from repro.faults.harness import classify, run_workload
from repro.faults.plan import (
    ALLOWED_FAMILIES,
    CONFIGS,
    EXPECTATIONS,
    KINDS,
    NET_KINDS,
    FaultPlan,
    generate_plans,
)
from repro.faults.targets import build_workloads
from repro.kernel.auth import violation_family

KEY = Key.from_passphrase("sock-fault-tests", provider="fast-hmac")
INTERP = CONFIGS[0]
CHAINED = CONFIGS[1]


@pytest.fixture(scope="module")
def workloads():
    return build_workloads(KEY)


@pytest.fixture(scope="module")
def references(workloads):
    return {
        config.name: run_workload(KEY, config, workloads, "netserver")
        for config in (INTERP, CHAINED)
    }


class TestPlanGeneration:
    def test_kind_registered_with_expectations(self):
        assert "sock-reg-tamper" in KINDS
        assert NET_KINDS == ("sock-reg-tamper",)
        assert EXPECTATIONS["sock-reg-tamper"] == "detected"
        assert ALLOWED_FAMILIES["sock-reg-tamper"] == {"call-mac"}

    def test_plans_target_the_netserver(self, workloads, references):
        from repro.faults.targets import section_sizes

        traps = {"netserver": references[INTERP.name].traps}
        plans = generate_plans(
            7, 10, traps, section_sizes(workloads),
            kinds=("sock-reg-tamper",),
        )
        assert len(plans) == 10
        for plan in plans:
            assert plan.workload == "netserver"
            assert plan.expected == "detected"
            assert 0 <= plan.trap_index < references[INTERP.name].traps


class TestInjection:
    def test_clean_netserver_references_agree(self, references):
        assert (
            references[INTERP.name].signature[:2]
            == references[CHAINED.name].signature[:2]
        )
        assert references[INTERP.name].traps == references[CHAINED.name].traps

    @pytest.mark.parametrize("config", (INTERP, CHAINED),
                             ids=lambda c: c.name)
    def test_register_flip_dies_as_call_mac(
        self, workloads, references, config
    ):
        plan = FaultPlan(
            fault_id=0, kind="sock-reg-tamper", workload="netserver",
            trap_index=5, bit=6, expected="detected",
        )
        outcome = run_workload(
            KEY, config, workloads, "netserver", plan=plan
        )
        assert outcome.killed
        assert violation_family(outcome.kill_reason) == "call-mac"
        assert classify(plan, references[config.name], outcome) == "detected"

    def test_late_trap_index_also_detected(self, workloads, references):
        # An index beyond the warmup sends lands on a different site
        # (likely a client, or a recv): still must die fail-stop.
        plan = FaultPlan(
            fault_id=1, kind="sock-reg-tamper", workload="netserver",
            trap_index=references[CHAINED.name].traps - 2, bit=3,
            expected="detected",
        )
        outcome = run_workload(
            KEY, config=CHAINED, workloads=workloads,
            workload="netserver", plan=plan,
        )
        assert outcome.killed
        assert violation_family(outcome.kill_reason) == "call-mac"


class TestFocusedSweep:
    def test_zero_missed(self):
        report = run_sweep(
            key=KEY, seed=404, count=4, kinds=("sock-reg-tamper",),
            config_names=("interp", "chained"),
        )
        assert report.ok, report.summary()
        counts = report.by_kind["sock-reg-tamper"]
        assert counts["missed"] == 0
        assert counts["detected"] == 4 * 2
        assert report.traps_by_workload["netserver"] > 0
