"""Per-kind injector behaviour: hand-crafted plans with known outcomes.

These pin the classification semantics the sweep relies on: each
must-detect kind produces a kill in its own violation family, a flip
aimed at provably dead state leaves the run bit-identical, and the
scheduler perturbations never change a per-process result.
"""

import pytest

from repro.crypto import Key
from repro.faults.harness import classify, run_workload
from repro.faults.plan import CONFIGS, FaultPlan
from repro.faults.targets import build_workloads
from repro.kernel.auth import violation_family

KEY = Key.from_passphrase("fault-injector-tests", provider="fast-hmac")
INTERP = CONFIGS[0]
CHAINED = CONFIGS[1]


@pytest.fixture(scope="module")
def workloads():
    return build_workloads(KEY)


@pytest.fixture(scope="module")
def references(workloads):
    return {
        (config.name, name): run_workload(KEY, config, workloads, name)
        for config in (INTERP, CHAINED)
        for name in ("loop", "victim", "loop-sched")
    }


def _fault(plan, workloads, references, config=CHAINED):
    outcome = run_workload(
        KEY, config, workloads, plan.workload, plan=plan
    )
    verdict = classify(
        plan, references[(config.name, plan.workload)], outcome
    )
    return outcome, verdict


def test_mac_flip_dies_as_call_mac(workloads, references):
    plan = FaultPlan(
        fault_id=0, kind="mac-flip", workload="loop",
        trap_index=4, offset=3, bit=5, expected="detected",
    )
    outcome, verdict = _fault(plan, workloads, references)
    assert outcome.killed
    assert violation_family(outcome.kill_reason) == "call-mac"
    assert verdict == "detected"


def test_as_flip_detected(workloads, references):
    plan = FaultPlan(
        fault_id=1, kind="as-flip", workload="victim",
        trap_index=1, offset=37, bit=2, expected="detected",
    )
    outcome, verdict = _fault(plan, workloads, references)
    assert outcome.killed
    assert verdict == "detected"


def test_mac_transplant_dies_as_call_mac(workloads, references):
    plan = FaultPlan(
        fault_id=2, kind="mac-transplant", workload="loop",
        trap_index=7, offset=1, expected="detected",
    )
    outcome, verdict = _fault(plan, workloads, references)
    assert outcome.killed
    assert violation_family(outcome.kill_reason) == "call-mac"
    assert verdict == "detected"


def test_reg_tamper_high_bit_syscall_number(workloads, references):
    # offset ≡ 0 (mod targets) selects r0; bit 30 is outside the
    # 16-bit encoded domain — exactly the truncation hole the checker's
    # domain guard exists for.
    plan = FaultPlan(
        fault_id=3, kind="reg-tamper", workload="loop",
        trap_index=18, offset=0, bit=30, expected="detected",
    )
    outcome, verdict = _fault(plan, workloads, references)
    assert outcome.killed
    assert "unauthenticatable syscall number" in outcome.kill_reason
    assert verdict == "detected"


def test_counter_desync_dies_as_policy_state(workloads, references):
    plan = FaultPlan(
        fault_id=4, kind="counter-desync", workload="loop",
        trap_index=9, delta=3, expected="detected",
    )
    outcome, verdict = _fault(plan, workloads, references)
    assert outcome.killed
    assert violation_family(outcome.kill_reason) == "policy-state"
    assert verdict == "detected"


def test_lastblock_flip_dies_as_policy_state(workloads, references):
    plan = FaultPlan(
        fault_id=5, kind="lastblock-flip", workload="loop",
        trap_index=2, offset=6, bit=1, expected="detected",
    )
    outcome, verdict = _fault(plan, workloads, references)
    assert outcome.killed
    assert violation_family(outcome.kill_reason) == "policy-state"
    assert verdict == "detected"


def test_dead_state_flip_is_benign(workloads, references):
    # The victim's final authenticated trap is execve; a .authdata flip
    # injected at that trap can only be observed if some *later* trap
    # reads the flipped record — and for byte 0 (the read site's
    # polDes, already past) there is none.  The run must be
    # bit-identical, classified benign, NOT silently divergent.
    plan = FaultPlan(
        fault_id=6, kind="record-flip", workload="victim",
        trap_index=2, offset=0, bit=0, section=".authdata", expected="any",
    )
    outcome, verdict = _fault(plan, workloads, references)
    assert not outcome.killed
    assert verdict == "benign"


def test_sched_jitter_is_benign(workloads, references):
    plan = FaultPlan(
        fault_id=7, kind="sched-jitter", workload="loop-sched",
        timeslice=37, expected="benign",
    )
    outcome, verdict = _fault(plan, workloads, references)
    assert not outcome.killed
    assert verdict == "benign"


def test_sched_preempt_rotation_is_benign(workloads, references):
    plan = FaultPlan(
        fault_id=8, kind="sched-preempt", workload="loop-sched",
        timeslice=3, rotate_every=2, expected="benign",
    )
    outcome, verdict = _fault(plan, workloads, references)
    assert not outcome.killed
    assert verdict == "benign"


def test_detection_is_engine_independent(workloads, references):
    # The same plan must produce the same verdict on the reference
    # interpreter and the chained threaded engine.
    plan = FaultPlan(
        fault_id=9, kind="mac-flip", workload="loop",
        trap_index=10, offset=8, bit=7, expected="detected",
    )
    for config in (INTERP, CHAINED):
        outcome, verdict = _fault(plan, workloads, references, config=config)
        assert verdict == "detected", config.name


def test_misattributed_kill_is_missed(workloads, references):
    # classify() must not accept any kill: a counter desync that
    # somehow died as (say) a pattern violation would be a coverage
    # bug.  Exercise the rule directly with a doctored outcome.
    from repro.faults.harness import RunOutcome

    plan = FaultPlan(
        fault_id=10, kind="counter-desync", workload="loop",
        trap_index=1, delta=1, expected="detected",
    )
    reference = references[(CHAINED.name, "loop")]
    doctored = RunOutcome(
        signature=("x",), killed=True,
        kill_reason="argument 0 does not match pattern",
    )
    assert classify(plan, reference, doctored) == "missed"


def test_swallowed_must_detect_fault_is_missed(workloads, references):
    from repro.faults.harness import RunOutcome

    plan = FaultPlan(
        fault_id=11, kind="mac-flip", workload="loop",
        trap_index=0, expected="detected",
    )
    reference = references[(CHAINED.name, "loop")]
    swallowed = RunOutcome(
        signature=reference.signature, killed=False, kill_reason=""
    )
    assert classify(plan, reference, swallowed) == "missed"
