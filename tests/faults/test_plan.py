"""Plan generation: determinism, bounds, kind selection."""

import dataclasses

import pytest

from repro.faults.plan import (
    ALLOWED_FAMILIES,
    CONFIG_NAMES,
    CONFIGS,
    EXPECTATIONS,
    KINDS,
    SCHED_KINDS,
    WARMUP_TRAPS,
    configs_named,
    generate_plans,
)
from repro.kernel.auth import VIOLATION_FAMILIES

TRAPS = {"loop": 19, "victim": 3, "netserver": 28}
SIZES = {
    ("loop", ".authdata"): 160,
    ("loop", ".authstr"): 90,
    ("victim", ".authdata"): 200,
    ("victim", ".authstr"): 120,
}


def test_same_seed_same_plans():
    a = generate_plans(42, 60, TRAPS, SIZES)
    b = generate_plans(42, 60, TRAPS, SIZES)
    assert a == b


def test_different_seed_different_plans():
    a = generate_plans(1, 60, TRAPS, SIZES)
    b = generate_plans(2, 60, TRAPS, SIZES)
    assert a != b


def test_every_kind_represented_and_bounded():
    plans = generate_plans(7, 100, TRAPS, SIZES)
    seen = {plan.kind for plan in plans}
    assert seen == set(KINDS)
    for plan in plans:
        assert plan.expected == EXPECTATIONS[plan.kind]
        if plan.kind in SCHED_KINDS:
            assert plan.workload == "loop-sched"
            assert plan.timeslice >= 1
            continue
        assert plan.trap_index < TRAPS[plan.workload]
        if plan.section:
            assert plan.offset < SIZES[(plan.workload, plan.section)]
        if plan.kind == "prewarm-flip":
            # Post-warm-up by construction: the caches are hot.
            assert plan.trap_index >= WARMUP_TRAPS
            assert plan.workload == "loop"


def test_kind_filter():
    plans = generate_plans(7, 10, TRAPS, SIZES, kinds=("mac-flip",))
    assert all(plan.kind == "mac-flip" for plan in plans)
    with pytest.raises(ValueError):
        generate_plans(7, 10, TRAPS, SIZES, kinds=("not-a-kind",))


def test_plans_are_frozen_and_serializable():
    (plan,) = generate_plans(7, 1, TRAPS, SIZES)
    with pytest.raises(dataclasses.FrozenInstanceError):
        plan.bit = 0
    assert dataclasses.asdict(plan)["kind"] == plan.kind


def test_config_roster():
    # The five engine configurations the coverage contract names.
    assert CONFIG_NAMES == (
        "interp", "chained", "no-chain", "no-verifier-jit", "no-fastpath"
    )
    assert configs_named() == CONFIGS
    assert [c.name for c in configs_named(["interp", "no-chain"])] == [
        "interp", "no-chain"
    ]
    with pytest.raises(ValueError):
        configs_named(["warp-drive"])


def test_allowed_families_are_real_checker_families():
    for kind, families in ALLOWED_FAMILIES.items():
        assert kind in KINDS
        for family in families:
            assert family in VIOLATION_FAMILIES
