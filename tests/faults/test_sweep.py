"""The sweep harness end to end: coverage contract, determinism,
report structure, and the obs plumbing."""

import json

import pytest

from repro.crypto import Key
from repro.faults import run_sweep
from repro.faults.sweep import OUTCOMES
from repro.obs import MetricsRegistry, TraceRecorder

KEY = Key.from_passphrase("fault-sweep-tests", provider="fast-hmac")
SEED = 1127692800
COUNT = 20  # every kind twice; the CI battery runs the real volume


@pytest.fixture(scope="module")
def report():
    return run_sweep(key=KEY, seed=SEED, count=COUNT)


def test_zero_missed_across_all_configs(report):
    assert report.ok, report.summary()
    assert report.totals["missed"] == 0
    # COUNT plans x five configs, none dropped.
    assert report.totals["injected"] == COUNT * 5
    for name, counts in report.by_config.items():
        assert counts["missed"] == 0, name


def test_detection_counts_identical_across_configs(report):
    # Coverage is a security property: every config must classify the
    # same plans the same way, not merely all reach zero missed.
    rows = list(report.by_config.values())
    assert all(row == rows[0] for row in rows)


def test_must_detect_kinds_all_detected(report):
    for kind in ("mac-flip", "mac-transplant", "reg-tamper",
                 "counter-desync", "lastblock-flip", "as-flip"):
        counts = report.by_kind[kind]
        assert counts["detected"] > 0
        assert counts["benign"] == 0, kind
        assert counts["missed"] == 0, kind


def test_sched_kinds_all_benign(report):
    for kind in ("sched-jitter", "sched-preempt"):
        counts = report.by_kind[kind]
        assert counts["benign"] > 0
        assert counts["detected"] == 0, kind
        assert counts["missed"] == 0, kind


def test_report_json_is_deterministic(report):
    again = run_sweep(key=KEY, seed=SEED, count=COUNT)
    assert report.to_json() == again.to_json()


def test_report_json_shape(report):
    payload = json.loads(report.to_json())
    assert payload["seed"] == SEED
    assert payload["count"] == COUNT
    assert payload["configs"] == [
        "interp", "chained", "no-chain", "no-verifier-jit", "no-fastpath"
    ]
    assert len(payload["runs"]) == COUNT * 5
    for run in payload["runs"]:
        assert run["outcome"] in OUTCOMES
        assert run["config"] in payload["configs"]
        assert run["plan"]["kind"] in payload["kinds"]
    totals = payload["totals"]
    assert totals["injected"] == sum(totals[o] for o in OUTCOMES)


def test_metrics_and_spans_feed_the_obs_layer():
    metrics = MetricsRegistry()
    recorder = TraceRecorder(clock=iter(range(10**9)).__next__)
    small = run_sweep(
        key=KEY, seed=3, count=4,
        config_names=["interp", "chained"],
        metrics=metrics, recorder=recorder,
    )
    injected = small.totals["injected"]
    assert metrics.get("faults.injected") == injected == 4 * 2
    assert (
        metrics.get("faults.detected")
        + metrics.get("faults.benign")
        + metrics.get("faults.missed")
    ) == injected
    # One "faults"-category span per injected run, plus the recorder's
    # counter mirror of the registry.
    fault_spans = [s for s in recorder.spans if s.cat == "faults"]
    assert len(fault_spans) == injected
    assert recorder.counters["faults.injected"] == injected
    prom = metrics.render_prometheus()
    assert "repro_faults_injected" in prom


def test_config_and_kind_filters():
    small = run_sweep(
        key=KEY, seed=5, count=6,
        config_names=["no-fastpath"], kinds=("mac-flip", "counter-desync"),
    )
    assert small.configs == ("no-fastpath",)
    assert set(small.kinds) == {"mac-flip", "counter-desync"}
    assert small.totals["injected"] == 6
    assert small.ok
