"""Fuzzing the trust boundaries.

The kernel-side checker processes attacker-controlled memory; the
paper's design requires that *nothing* a guest does can break the
kernel — at worst the process is fail-stopped.  These tests throw
garbage at each boundary and assert that only the documented,
well-typed outcomes occur (never an unhandled Python exception).
"""

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.asm import AsmError, AsmSyntaxError, assemble
from repro.binfmt import BinaryFormatError, SefBinary
from repro.cpu import ExecutionFault, Memory, PROT_EXEC, PROT_READ, PROT_WRITE, VM
from repro.crypto import Key
from repro.kernel import Kernel

KEY = Key.from_passphrase("fuzz", provider="fast-hmac")


class TestVmFuzz:
    @settings(max_examples=80, deadline=None)
    @given(code=st.binary(min_size=8, max_size=256))
    def test_random_code_faults_cleanly(self, code):
        """Arbitrary bytes as .text: the VM either runs to a HALT/exit
        or raises ExecutionFault — never anything else."""
        memory = Memory()
        memory.map_region(
            0x1000, max(len(code), 16) + 16,
            PROT_READ | PROT_WRITE | PROT_EXEC, data=code, name="fuzz",
        )
        kernel = Kernel(key=KEY)
        vm = VM(memory=memory, entry=0x1000, trap_handler=kernel)
        kernel._vm_process[id(vm)] = kernel.load(
            _trivial_binary()
        )[0]  # give traps a process to charge
        try:
            vm.run(max_instructions=2000)
        except ExecutionFault:
            pass

    @settings(max_examples=40, deadline=None)
    @given(
        regs=st.lists(
            st.integers(min_value=0, max_value=0xFFFFFFFF),
            min_size=16, max_size=16,
        )
    )
    def test_hostile_asys_registers_fail_stop(self, regs):
        """ASYS with arbitrary register contents (random record pointer,
        random syscall number) must fail-stop, not crash the kernel."""
        source = ".section .text\n_start:\n    asys\n    halt\n"
        kernel = Kernel(key=KEY)
        process, vm = kernel.load(assemble(source, metadata={"program": "hostile"}))
        process.authenticated = True
        entry = vm.pc
        vm.regs[:] = [r & 0xFFFFFFFF for r in regs]
        vm.pc = entry  # entry unchanged by the register clobber
        try:
            vm.run(max_instructions=100)
        except ExecutionFault:
            return
        assert vm.killed

    @settings(max_examples=25, deadline=None)
    @given(record=st.binary(min_size=0, max_size=64))
    def test_hostile_record_contents_fail_stop(self, record):
        """A forged record placed in guest memory and pointed at by r7
        is rejected by the MAC (or faults cleanly on truncation)."""
        source = ".section .text\n_start:\n    li r0, 20\n    li r7, rec\n    asys\n    halt\n"
        source += ".section .data\nrec:\n    .space 96\n"
        kernel = Kernel(key=KEY)
        binary = assemble(source, metadata={"program": "forged"})
        process, vm = kernel.load(binary)
        process.authenticated = True
        from repro.binfmt import link

        rec = link(binary).address_of("rec")
        vm.memory.write(rec, record, force=True)
        try:
            vm.run(max_instructions=100)
        except ExecutionFault:
            return
        assert vm.killed


def _trivial_binary():
    return assemble(".section .text\n_start:\n    halt\n")


class TestEngineDifferentialFuzz:
    """The threaded translation cache vs the reference interpreter.

    Random programs — both raw bytes and structured instruction soup
    with loops, stores into code, and stack traffic — must leave the
    two engines in bit-identical architectural state: registers,
    flags, PC, cycle/instruction/syscall counters, memory contents,
    exit status, and fault message.
    """

    @staticmethod
    def _final_state(engine, code, reg_seed, budget):
        import hashlib

        memory = Memory()
        memory.map_region(
            0x1000, max(len(code), 16) + 64,
            PROT_READ | PROT_WRITE | PROT_EXEC, data=code, name="fuzz",
        )
        memory.map_region(
            0x8000, 256, PROT_READ | PROT_WRITE,
            data=bytes(range(256)), name="data",
        )
        vm = VM(memory=memory, entry=0x1000, engine=engine)
        for i, value in enumerate(reg_seed):
            vm.regs[i] = value
        fault = None
        try:
            vm.run(max_instructions=budget)
        except ExecutionFault as err:
            fault = str(err)
        digest = hashlib.sha256()
        for region in vm.memory.regions():
            digest.update(region.name.encode())
            digest.update(bytes(region.data))
        return {
            "regs": tuple(vm.regs),
            "pc": vm.pc,
            "flags": (vm.flag_zero, vm.flag_neg),
            "cycles": vm.cycles,
            "instructions": vm.instructions_executed,
            "syscalls": vm.syscall_count,
            "exit_status": vm.exit_status,
            "memory": digest.hexdigest(),
            "fault": fault,
        }

    @settings(max_examples=60, deadline=None)
    @given(
        code=st.binary(min_size=8, max_size=256),
        reg_seed=st.lists(
            st.integers(min_value=0, max_value=0xFFFFFFFF),
            min_size=4, max_size=4,
        ),
        budget=st.integers(min_value=1, max_value=400),
    )
    def test_random_bytes_identical_state(self, code, reg_seed, budget):
        interp = self._final_state("interp", code, reg_seed, budget)
        threaded = self._final_state("threaded", code, reg_seed, budget)
        assert interp == threaded

    @settings(max_examples=60, deadline=None)
    @given(
        instrs=st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=14),  # template index
                st.integers(min_value=0, max_value=11),  # register a
                st.integers(min_value=0, max_value=11),  # register b
                st.integers(min_value=0, max_value=40),  # immediate knob
            ),
            min_size=1, max_size=48,
        ),
        budget=st.integers(min_value=1, max_value=2000),
    )
    def test_structured_programs_identical_state(self, instrs, budget):
        """Instruction soup biased toward interesting interactions:
        back-branches (loops), stores aimed at the code region itself
        (self-modification), RDTSC mid-run, stack churn."""
        from repro.isa import Instruction, encode_instruction
        from repro.isa.opcodes import Op

        program = []
        for which, ra, rb, knob in instrs:
            target = 0x1000 + 8 * (knob % (len(instrs) + 1))
            program.append([
                Instruction(Op.LI, regs=(ra,), imm=knob * 97),
                Instruction(Op.ADDI, regs=(ra, rb), imm=knob),
                Instruction(Op.SUB, regs=(ra, ra, rb)),
                Instruction(Op.MUL, regs=(ra, ra, rb)),
                Instruction(Op.DIV, regs=(ra, ra, rb)),
                Instruction(Op.CMP, regs=(ra, rb)),
                Instruction(Op.CMPI, regs=(ra,), imm=knob),
                Instruction(Op.BNE, imm=target),
                Instruction(Op.BLE, imm=target),
                Instruction(Op.JMP, imm=target),
                Instruction(Op.LD, regs=(ra, rb), imm=0x8000 + knob),
                # Stores whose address depends on fuzzed registers can
                # land inside the code region -> self-modification.
                Instruction(Op.ST, regs=(ra, rb), imm=0x1000 + knob * 4),
                Instruction(Op.PUSH, regs=(ra,)),
                Instruction(Op.POP, regs=(ra,)),
                Instruction(Op.RDTSC, regs=(ra,)),
            ][which])
        program.append(Instruction(Op.HALT))
        code = b"".join(encode_instruction(i) for i in program)
        reg_seed = [0, 0, 0, 0]
        interp = self._final_state("interp", code, reg_seed, budget)
        threaded = self._final_state("threaded", code, reg_seed, budget)
        assert interp == threaded


class TestParserFuzz:
    @settings(max_examples=150, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(text=st.text(max_size=200))
    def test_assembler_never_crashes(self, text):
        try:
            assemble(text)
        except (AsmSyntaxError, AsmError, BinaryFormatError):
            pass

    @settings(max_examples=100, deadline=None)
    @given(
        lines=st.lists(
            st.sampled_from([
                ".section .text", ".section .data", "_start:", "x:",
                "li r1, 5", "add r1, r2, r3", "jmp x", "sys", "halt",
                ".word x", ".byte 1", ".asciz \"s\"", "ld r1, [sp+4]",
                ".equ K, 3", "li r2, K", "call x", "ret",
            ]),
            max_size=20,
        )
    )
    def test_structured_fragments(self, lines):
        try:
            assemble("\n".join(lines))
        except (AsmSyntaxError, AsmError, BinaryFormatError):
            pass


class TestBinaryFormatFuzz:
    @settings(max_examples=150, deadline=None)
    @given(data=st.binary(max_size=200))
    def test_random_bytes_rejected_cleanly(self, data):
        try:
            SefBinary.from_bytes(data)
        except (BinaryFormatError, IndexError):
            # struct.unpack_from on truncated input surfaces as an
            # error; the loader path (kernel.execve) maps any parse
            # failure to EACCES.
            pass
        except Exception as err:
            import struct

            assert isinstance(err, struct.error), err

    @settings(max_examples=60, deadline=None)
    @given(
        flip=st.integers(min_value=0, max_value=100_000),
        value=st.integers(min_value=0, max_value=255),
    )
    def test_mutated_valid_binary(self, flip, value):
        """Bit-flipped serialized binaries parse or fail cleanly; if
        they parse, the kernel refuses or fail-stops rather than
        crashing."""
        import struct as struct_module

        base = bytearray(
            assemble(
                ".section .text\n_start:\n    li r0, 1\n    li r1, 0\n    sys\n"
            ).to_bytes()
        )
        base[flip % len(base)] ^= value or 0x01
        try:
            binary = SefBinary.from_bytes(bytes(base))
        except (BinaryFormatError, IndexError, UnicodeDecodeError,
                struct_module.error, ValueError):
            return
        kernel = Kernel(key=KEY)
        try:
            kernel.run(binary, max_instructions=1000)
        except (ExecutionFault, BinaryFormatError, ValueError):
            pass
