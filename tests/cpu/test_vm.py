"""VM execution semantics: ALU, control flow, stack, traps, cycles."""

import pytest

from repro.asm import assemble
from repro.binfmt import link
from repro.cpu import ExecutionFault, Memory, PROT_EXEC, PROT_READ, PROT_WRITE, VM
from repro.cpu.vm import ProcessExit
from repro.isa.registers import SP


def _vm_for(source: str, trap_handler=None, nx=False) -> VM:
    image = link(assemble(source))
    memory = Memory()
    for segment in image.segments:
        prot = PROT_READ
        if segment.flags & 0x2:
            prot |= PROT_WRITE
        if segment.flags & 0x4:
            prot |= PROT_EXEC
        memory.map_region(
            segment.vaddr, max(segment.size, 16), prot,
            name=segment.name, data=segment.data,
        )
    return VM(memory=memory, entry=image.entry, trap_handler=trap_handler, nx=nx)


def _run(source: str, **kwargs) -> VM:
    vm = _vm_for(source, **kwargs)
    vm.run()
    return vm


class TestAlu:
    def test_arithmetic(self):
        vm = _run("""
.section .text
_start:
    li r1, 10
    li r2, 3
    add r3, r1, r2
    sub r4, r1, r2
    mul r5, r1, r2
    div r6, r1, r2
    mod r9, r1, r2
    halt
""")
        assert vm.regs[3] == 13
        assert vm.regs[4] == 7
        assert vm.regs[5] == 30
        assert vm.regs[6] == 3
        assert vm.regs[9] == 1

    def test_wraparound(self):
        vm = _run("""
.section .text
_start:
    li r1, 0xFFFFFFFF
    addi r1, r1, 2
    halt
""")
        assert vm.regs[1] == 1

    def test_divide_by_zero_faults(self):
        with pytest.raises(ExecutionFault, match="division by zero"):
            _run("""
.section .text
_start:
    li r1, 1
    li r2, 0
    div r3, r1, r2
    halt
""")

    def test_shifts_and_logic(self):
        vm = _run("""
.section .text
_start:
    li r1, 0b1100
    shli r2, r1, 2
    shri r3, r1, 2
    andi r4, r1, 0b1010
    ori r5, r1, 0b0011
    xori r6, r1, 0b1111
    halt
""")
        assert vm.regs[2] == 0b110000
        assert vm.regs[3] == 0b11
        assert vm.regs[4] == 0b1000
        assert vm.regs[5] == 0b1111
        assert vm.regs[6] == 0b0011


class TestControlFlow:
    def test_signed_comparison(self):
        vm = _run("""
.section .text
_start:
    li r1, -5
    cmpi r1, 3
    blt was_less
    li r2, 0
    halt
was_less:
    li r2, 1
    halt
""")
        assert vm.regs[2] == 1

    def test_loop_counts(self):
        vm = _run("""
.section .text
_start:
    li r1, 0
loop:
    addi r1, r1, 1
    cmpi r1, 10
    blt loop
    halt
""")
        assert vm.regs[1] == 10

    def test_call_ret(self):
        vm = _run("""
.section .text
_start:
    li r1, 5
    call double
    halt
double:
    add r1, r1, r1
    ret
""")
        assert vm.regs[1] == 10

    def test_indirect_jump(self):
        vm = _run("""
.section .text
_start:
    li r9, target
    jr r9
    li r1, 111
    halt
target:
    li r1, 222
    halt
""")
        assert vm.regs[1] == 222

    def test_halt_status_from_r1(self):
        vm = _run("""
.section .text
_start:
    li r1, 7
    halt
""")
        assert vm.exit_status == 7


class TestStack:
    def test_push_pop(self):
        vm = _run("""
.section .text
_start:
    li r1, 42
    push r1
    li r1, 0
    pop r2
    halt
""")
        assert vm.regs[2] == 42

    def test_stack_grows_down(self):
        vm = _vm_for(".section .text\n_start: halt")
        top = vm.regs[SP]
        vm.push(1)
        assert vm.regs[SP] == top - 4

    def test_stack_overflow_faults(self):
        with pytest.raises(ExecutionFault, match="stack"):
            _run("""
.section .text
_start:
loop:
    push r1
    jmp loop
""")


class TestMemoryAccess:
    def test_load_store(self):
        vm = _run("""
.section .text
_start:
    li r9, slot
    li r1, 0xABCD
    st r1, [r9+0]
    ld r2, [r9+0]
    ldb r3, [r9+0]
    halt
.section .data
slot:
    .word 0
""")
        assert vm.regs[2] == 0xABCD
        assert vm.regs[3] == 0xCD

    def test_unmapped_access_faults(self):
        with pytest.raises(ExecutionFault):
            _run("""
.section .text
_start:
    li r9, 0x99999000
    ld r1, [r9+0]
    halt
""")

    def test_store_to_rodata_faults(self):
        with pytest.raises(ExecutionFault):
            _run("""
.section .text
_start:
    li r9, konst
    li r1, 1
    st r1, [r9+0]
    halt
.section .rodata
konst:
    .word 5
""")


class TestTraps:
    def test_trap_without_kernel_faults(self):
        with pytest.raises(ExecutionFault, match="no kernel"):
            _run(".section .text\n_start: sys\nhalt")

    def test_trap_handler_invoked(self):
        calls = []

        class Recorder:
            def handle_trap(self, vm, authenticated):
                calls.append((vm.regs[0], authenticated))
                vm.regs[0] = 99
                return 1234

        vm = _run(
            ".section .text\n_start: li r0, 5\nsys\nmov r5, r0\nhalt",
            trap_handler=Recorder(),
        )
        assert calls == [(5, False)]
        assert vm.regs[5] == 99

    def test_asys_flag(self):
        flags = []

        class Recorder:
            def handle_trap(self, vm, authenticated):
                flags.append(authenticated)
                return 0

        _run(
            ".section .text\n_start: sys\nasys\nhalt",
            trap_handler=Recorder(),
        )
        assert flags == [False, True]

    def test_process_exit_from_trap(self):
        class Exiter:
            def handle_trap(self, vm, authenticated):
                raise ProcessExit(3)

        vm = _run(".section .text\n_start: sys\nhalt", trap_handler=Exiter())
        assert vm.exit_status == 3
        assert not vm.killed


class TestCycles:
    def test_rdtsc_matches_documented_costs(self):
        # rdtsc(84) + li(1) + li(1) + add(1), read by the second rdtsc
        vm = _run("""
.section .text
_start:
    rdtsc r1
    li r2, 1
    li r3, 2
    add r4, r2, r3
    rdtsc r5
    halt
""")
        assert vm.regs[5] - vm.regs[1] == 84 + 1 + 1 + 1

    def test_cpuwork_advances_cycles(self):
        vm = _run("""
.section .text
_start:
    rdtsc r1
    cpuwork 100000
    rdtsc r2
    halt
""")
        assert vm.regs[2] - vm.regs[1] == 100000 + 84

    def test_loop_body_cost_is_4(self):
        # The Table 4 microbenchmark loop: addi + cmpi + bne = 4 cycles.
        vm = _run("""
.section .text
_start:
    li r1, 0
    rdtsc r2
loop:
    addi r1, r1, 1
    cmpi r1, 100
    bne loop
    rdtsc r3
    halt
""")
        assert (vm.regs[3] - vm.regs[2] - 84) == 4 * 100


class TestNx:
    SMC = """
.section .text
_start:
    li r9, landing
    li r1, 0x00000001   ; encoded HALT instruction low word
    st r1, [r9+0]
    li r1, 0
    st r1, [r9+4]
    jr r9
.section .data
landing:
    .space 16
"""

    def test_writable_memory_executes_by_default(self):
        vm = _run(self.SMC)
        assert vm.exit_status is not None

    def test_nx_blocks_data_execution(self):
        with pytest.raises(ExecutionFault, match="NX"):
            _run(self.SMC, nx=True)

    def test_budget_exhaustion(self):
        vm = _vm_for(".section .text\n_start: jmp _start")
        with pytest.raises(ExecutionFault, match="budget"):
            vm.run(max_instructions=100)
