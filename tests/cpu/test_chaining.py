"""Direct block chaining and superblock fusion: invalidation and
determinism.

Chained dispatch skips the per-block guard re-check, so its soundness
rests entirely on *eager pre-image invalidation*: every write that
overlaps cached code must drop the stale translations — severing every
inbound chain link — **before** the bytes change.  These tests pin
that contract down from the white-box side (counters, cache
structure, invalidation ordering) and from the black-box side
(bit-identity against the interpreter through SMC, preemption, and
shared-region writes).
"""

import hashlib

from repro.asm import assemble
from repro.binfmt import link
from repro.cpu import ExecutionFault, Memory, PROT_EXEC, PROT_READ, PROT_WRITE, VM
from repro.isa import Instruction, encode_instruction
from repro.isa.opcodes import Op


def _encode(instructions) -> bytes:
    return b"".join(encode_instruction(i) for i in instructions)


def _memory_digest(vm: VM) -> str:
    digest = hashlib.sha256()
    for region in vm.memory.regions():
        digest.update(region.name.encode())
        digest.update(bytes(region.data))
    return digest.hexdigest()


def _state(vm: VM, fault=None) -> dict:
    return {
        "regs": tuple(vm.regs),
        "pc": vm.pc,
        "flags": (vm.flag_zero, vm.flag_neg),
        "cycles": vm.cycles,
        "instructions": vm.instructions_executed,
        "memory": _memory_digest(vm),
        "fault": str(fault) if fault is not None else None,
    }


def _source_vm(source: str, engine: str = "threaded", chain: bool = True) -> VM:
    image = link(assemble(source))
    memory = Memory()
    for segment in image.segments:
        prot = PROT_READ
        if segment.flags & 0x2:
            prot |= PROT_WRITE
        if segment.flags & 0x4:
            prot |= PROT_EXEC
        memory.map_region(
            segment.vaddr, max(segment.size, 16), prot,
            name=segment.name, data=segment.data,
        )
    return VM(memory=memory, entry=image.entry, engine=engine, chain=chain)


def _raw_vm(code: bytes, engine: str = "threaded", chain: bool = True,
            scratch: tuple = (0x8000, 4096)) -> VM:
    memory = Memory()
    memory.map_region(
        0x1000, max(len(code) + 64, 4096),
        PROT_READ | PROT_WRITE | PROT_EXEC, data=code, name="rwx",
    )
    if scratch is not None:
        memory.map_region(scratch[0], scratch[1],
                          PROT_READ | PROT_WRITE, name="scratch")
    return VM(memory=memory, entry=0x1000, engine=engine, chain=chain)


HOT_LOOP = """
.section .text
_start:
    li r1, 0
    li r2, 0
loop:
    add r2, r2, r1
    addi r1, r1, 1
    cmpi r1, 2000
    blt loop
    halt
"""


class TestPreImageInvalidation:
    """Satellite: note_write must fire while the OLD bytes are still
    in place — the pre-image ordering is what lets chained dispatch
    skip guard checks soundly."""

    def test_note_write_sees_pre_image_on_canonical_write(self):
        vm = _source_vm(HOT_LOOP)
        vm.run()
        cache = vm._block_cache
        assert cache.compiles > 0
        text = vm.memory.find_region(".text")
        original = bytes(text.data[:8])

        seen = []
        inner = cache.note_write

        def spy(address, size):
            # Capture what the memory holds at the moment the cache is
            # told about the write: must still be the pre-image.
            seen.append(bytes(vm.memory.read(address, size, force=True)))
            inner(address, size)

        cache.note_write = spy
        # Region.watchers hold bound references; re-register the spy
        # over the compiled region so the canonical write routes to it.
        text.watchers = [spy]
        before = cache.invalidations
        vm.memory.write(text.start, b"\xff" * 8, force=True)
        assert seen == [original]
        assert cache.invalidations > before

    def test_fast_path_store_invalidates_before_mutation(self):
        # The guest patches its own next instruction through the
        # engine's fast-path ST.  If invalidation ran post-write the
        # stale block would replay the old immediate; the architectural
        # result (r1 == 77) proves the pre-image drop happened in time.
        patched = encode_instruction(Instruction(Op.LI, regs=(1,), imm=77))
        low = int.from_bytes(patched[:4], "little")
        high = int.from_bytes(patched[4:], "little")
        code = _encode([
            Instruction(Op.LI, regs=(1,), imm=13),
            Instruction(Op.CMPI, regs=(9,), imm=0),
            Instruction(Op.BNE, imm=0x1050),
            Instruction(Op.LI, regs=(9,), imm=1),
            Instruction(Op.LI, regs=(2,), imm=low),
            Instruction(Op.LI, regs=(3,), imm=0x1000),
            Instruction(Op.ST, regs=(2, 3), imm=0),
            Instruction(Op.LI, regs=(2,), imm=high),
            Instruction(Op.ST, regs=(2, 3), imm=4),
            Instruction(Op.JMP, imm=0x1000),
            Instruction(Op.HALT),
        ])
        for chain in (False, True):
            vm = _raw_vm(code, chain=chain)
            vm.run()
            assert vm.regs[1] == 77, f"chain={chain}"
            assert vm._block_cache.invalidations >= 1

    def test_multi_page_write_invalidates_interior_pages(self):
        # Blocks on three consecutive pages, then one write spanning
        # all of them: the regression was invalidating only the first
        # and last page of the written range, leaving the middle
        # page's (now stale) block chained and reachable.
        jmp_to = lambda target: Instruction(Op.JMP, imm=target)  # noqa: E731
        memory = Memory()
        memory.map_region(0x10000, 0x4000,
                          PROT_READ | PROT_WRITE | PROT_EXEC, name="rwx")
        for page_start, target in ((0x10000, 0x11000), (0x11000, 0x12000)):
            memory.write(page_start, _encode([jmp_to(target)]), force=True)
        memory.write(0x12000, _encode([Instruction(Op.HALT)]), force=True)
        vm = VM(memory=memory, entry=0x10000, engine="threaded")
        vm.run()
        cache = vm._block_cache
        assert len(cache._blocks) == 3
        cache.note_write(0x10000, 0x2008)  # spans pages 0x10,0x11,0x12
        assert not cache._blocks, "interior-page block survived the write"


class TestChainInvalidation:
    def test_smc_patches_chained_successor(self):
        # A and B chain (A ends in JMP B); after 300 round trips A
        # patches B's LI immediate.  The chained A->B hop skips B's
        # guards, so only the severed link can keep the result right.
        patched = encode_instruction(Instruction(Op.LI, regs=(5,), imm=90))
        low = int.from_bytes(patched[:4], "little")
        high = int.from_bytes(patched[4:], "little")
        source = f"""
.section .text
_start:
    li r1, 0
    li r6, 0
a:
    addi r1, r1, 1
    cmpi r1, 300
    bne skip_patch
    li r2, {low}
    li r3, blockb
    st r2, [r3+0]
    li r2, {high}
    st r2, [r3+4]
skip_patch:
    jmp blockb
blockb:
    li r5, 7
    add r6, r6, r5
    cmpi r1, 600
    blt a
    halt
"""
        states = {}
        for label, engine, chain in (("interp", "interp", True),
                                     ("nochain", "threaded", False),
                                     ("chained", "threaded", True)):
            image = link(assemble(source))
            memory = Memory()
            for segment in image.segments:
                prot = PROT_READ | PROT_WRITE
                if segment.flags & 0x4:
                    prot |= PROT_EXEC
                memory.map_region(
                    segment.vaddr, max(segment.size, 16), prot,
                    name=segment.name, data=segment.data,
                )
            vm = VM(memory=memory, entry=image.entry, engine=engine,
                    chain=chain)
            vm.run()
            states[label] = _state(vm)
        assert states["chained"] == states["interp"]
        assert states["nochain"] == states["interp"]
        # 299 iterations at 7, 301 at 90 after the patch.
        assert states["interp"]["regs"][6] == 299 * 7 + 301 * 90

    def test_shared_region_write_invalidates_both_caches(self):
        # Fork's copy-on-reference sharing: two VMs adopt the same
        # text Region and both compile/chain from it.  A canonical
        # write through either address space must drop *both* caches'
        # translations (the Region carries both watchers) — this is
        # what keeps post-fork invalidation per-pid coherent.
        code = _encode([
            Instruction(Op.LI, regs=(1, ), imm=5),
            Instruction(Op.HALT),
        ])
        memory_a = Memory()
        shared = memory_a.map_region(
            0x1000, 4096, PROT_READ | PROT_WRITE | PROT_EXEC,
            data=code, name="text",
        )
        memory_b = Memory()
        memory_b.adopt_region(shared)
        vm_a = VM(memory=memory_a, entry=0x1000, engine="threaded")
        vm_b = VM(memory=memory_b, entry=0x1000, engine="threaded")
        vm_a.run()
        vm_b.run()
        cache_a, cache_b = vm_a._block_cache, vm_b._block_cache
        assert cache_a._blocks and cache_b._blocks
        assert len(shared.watchers) == 2
        memory_b.write(0x1000, b"\x00" * 8, force=True)
        assert not cache_a._blocks, "writer's sibling kept a stale block"
        assert not cache_b._blocks
        assert cache_a.invalidations >= 1 and cache_b.invalidations >= 1

    def test_counters_exposed(self):
        vm = _source_vm(HOT_LOOP, chain=True)
        vm.run()
        cache = vm._block_cache
        assert cache.chains_linked > 0
        assert cache.superblocks_fused >= 1
        off = _source_vm(HOT_LOOP, chain=False)
        off.run()
        cache_off = off._block_cache
        assert cache_off.chains_linked == 0
        assert cache_off.superblocks_fused == 0
        assert off.regs[2] == vm.regs[2]


class TestSuperblocks:
    def test_hot_cycle_fuses_and_matches_interp(self):
        vms = {}
        for label, engine, chain in (("interp", "interp", True),
                                     ("chained", "threaded", True)):
            vm = _source_vm(HOT_LOOP, engine=engine, chain=chain)
            vm.run()
            vms[label] = vm
        assert _state(vms["chained"]) == _state(vms["interp"])
        assert vms["chained"]._block_cache.superblocks_fused >= 1

    def test_smc_abort_inside_superblock_unwinds_exactly(self):
        # The loop body copies each word back onto itself, sweeping an
        # address cursor upward from the scratch region into the loop's
        # own code.  The rewrite is byte-identical — semantics never
        # change — but the engine cannot know that: once the cursor
        # enters the fused cycle's span (well after the 256-execution
        # fusion threshold), the store must abort the superblock pass,
        # roll the batched accounting back, and re-translate.  Exact
        # cycle/instruction equality with the interpreter proves the
        # unwind is lossless.
        code = _encode([
            Instruction(Op.LI, regs=(1,), imm=0),        # 0x1000  i
            Instruction(Op.LI, regs=(3,), imm=0x800),    # 0x1008  cursor
            Instruction(Op.LD, regs=(2, 3), imm=0),      # 0x1010  loop:
            Instruction(Op.ST, regs=(2, 3), imm=0),      # 0x1018
            Instruction(Op.ADDI, regs=(3, 3), imm=8),    # 0x1020
            Instruction(Op.ADDI, regs=(1, 1), imm=1),    # 0x1028
            Instruction(Op.CMPI, regs=(1,), imm=400),    # 0x1030
            Instruction(Op.BLT, imm=0x1010),             # 0x1038
            Instruction(Op.HALT),                        # 0x1040
        ])
        states = {}
        for label, engine, chain in (("interp", "interp", True),
                                     ("chained", "threaded", True)):
            vm = _raw_vm(code, engine=engine, chain=chain,
                         scratch=(0x800, 0x800))
            fault = None
            try:
                vm.run()
            except ExecutionFault as err:  # pragma: no cover - must not
                fault = err
            states[label] = _state(vm, fault)
            if engine == "threaded":
                cache = vm._block_cache
                assert cache.superblocks_fused >= 1
                assert cache.invalidations >= 1
        assert states["chained"] == states["interp"]

    def test_dead_superblock_not_reentered_after_kill(self):
        vm = _source_vm(HOT_LOOP, chain=True)
        vm.run()
        cache = vm._block_cache
        assert cache.superblocks_fused >= 1
        # Invalidate everything: every superblock must be killed and
        # detached from its head so a fresh lookup recompiles cleanly.
        text = vm.memory.find_region(".text")
        cache.note_write(text.start, len(text.data))
        assert not cache._blocks
        assert cache.superblocks_killed == cache.superblocks_fused


class TestPreemptionOnChainBoundaries:
    def _sliced_states(self, engine: str, chain: bool, slice_len: int):
        vm = _source_vm(HOT_LOOP, engine=engine, chain=chain)
        snapshots = []
        for _ in range(100_000):
            vm.run_slice(slice_len)
            snapshots.append((vm.pc, vm.cycles, vm.instructions_executed,
                              tuple(vm.regs)))
            if vm.exit_status is not None:
                break
        assert vm.exit_status is not None
        return snapshots

    def test_slice_boundaries_identical_across_engines(self):
        # Every preemption point — including ones that land exactly on
        # a chain hop or inside what would be a fused superblock pass —
        # must leave the same architectural state as the interpreter
        # preempted at the same instruction count.
        for slice_len in (1, 3, 7, 64, 257, 1000):
            interp = self._sliced_states("interp", True, slice_len)
            nochain = self._sliced_states("threaded", False, slice_len)
            chained = self._sliced_states("threaded", True, slice_len)
            assert chained == interp, f"slice={slice_len}"
            assert nochain == interp, f"slice={slice_len}"
