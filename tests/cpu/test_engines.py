"""Engine equivalence: the threaded translation cache vs the interpreter.

The threaded engine's contract is bit-identical architectural state —
registers, flags, memory, cycle counts, instruction counts, syscall
counts, fault PCs/messages, and fail-stop reasons — on *every* program,
including self-modifying ones.  These tests run the same program under
three configurations — the interpreter, the threaded engine with
chaining disabled, and the threaded engine with direct block chaining
and superblock fusion (the default) — and diff the complete observable
state.
"""

import hashlib

import pytest

from repro.asm import assemble
from repro.binfmt import link
from repro.cpu import ExecutionFault, Memory, PROT_EXEC, PROT_READ, PROT_WRITE, VM
from repro.crypto import Key
from repro.installer import install
from repro.isa import Instruction, encode_instruction
from repro.isa.opcodes import Op
from repro.kernel import Kernel
from repro.workloads.spec import build_spec_program

KEY = Key.from_passphrase("engines", provider="fast-hmac")

#: label -> (engine, chain).  ``threaded`` runs with chaining disabled
#: so the plain per-block dispatcher keeps its own equivalence
#: coverage; ``chained`` is the default configuration.
CONFIGS = {
    "interp": ("interp", True),
    "threaded": ("threaded", False),
    "chained": ("threaded", True),
}


def _memory_digest(vm: VM) -> str:
    digest = hashlib.sha256()
    for region in vm.memory.regions():
        digest.update(region.name.encode())
        digest.update(bytes(region.data))
    return digest.hexdigest()


def _state(vm: VM, fault) -> dict:
    return {
        "regs": tuple(vm.regs),
        "pc": vm.pc,
        "flags": (vm.flag_zero, vm.flag_neg),
        "cycles": vm.cycles,
        "instructions": vm.instructions_executed,
        "syscalls": vm.syscall_count,
        "exit_status": vm.exit_status,
        "killed": vm.killed,
        "kill_reason": vm.kill_reason,
        "memory": _memory_digest(vm),
        "fault": str(fault) if fault is not None else None,
    }


def _vm_for_source(source: str, engine: str, nx: bool = False,
                   chain: bool = True) -> VM:
    image = link(assemble(source))
    memory = Memory()
    for segment in image.segments:
        prot = PROT_READ
        if segment.flags & 0x2:
            prot |= PROT_WRITE
        if segment.flags & 0x4:
            prot |= PROT_EXEC
        memory.map_region(
            segment.vaddr, max(segment.size, 16), prot,
            name=segment.name, data=segment.data,
        )
    return VM(memory=memory, entry=image.entry, nx=nx, engine=engine,
              chain=chain)


def _run_source(source: str, engine: str, nx: bool = False,
                chain: bool = True,
                max_instructions: int = 100_000) -> dict:
    vm = _vm_for_source(source, engine, nx=nx, chain=chain)
    fault = None
    try:
        vm.run(max_instructions=max_instructions)
    except ExecutionFault as err:
        fault = err
    return _state(vm, fault)


def _run_raw(code: bytes, engine: str, nx: bool = False,
             chain: bool = True,
             max_instructions: int = 100_000) -> dict:
    """Run raw encoded instructions from an RWX region (the shape the
    self-modifying-code cases need)."""
    memory = Memory()
    memory.map_region(
        0x1000, max(len(code) + 64, 4096),
        PROT_READ | PROT_WRITE | PROT_EXEC, data=code, name="rwx",
    )
    memory.map_region(0x8000, 4096, PROT_READ | PROT_WRITE, name="scratch")
    vm = VM(memory=memory, entry=0x1000, nx=nx, engine=engine, chain=chain)
    fault = None
    try:
        vm.run(max_instructions=max_instructions)
    except ExecutionFault as err:
        fault = err
    return _state(vm, fault)


def _encode(instructions) -> bytes:
    return b"".join(encode_instruction(i) for i in instructions)


def _assert_engines_agree(run) -> dict:
    states = {label: run(engine, chain)
              for label, (engine, chain) in CONFIGS.items()}
    for label, state in states.items():
        assert state == states["interp"], (label, state, states["interp"])
    return states["interp"]


class TestBitIdentity:
    def test_arithmetic_and_control_flow(self):
        source = """
.section .text
_start:
    li r1, 0
    li r2, 0
loop:
    addi r2, r2, 7
    muli r3, r2, 3
    div r4, r3, r2
    mod r5, r3, r2
    shli r6, r2, 3
    shri r9, r6, 1
    xor r10, r6, r9
    addi r1, r1, 1
    cmpi r1, 50
    blt loop
    rdtsc r11
    rdtsch r12
    halt
"""
        state = _assert_engines_agree(lambda e, c: _run_source(source, e, chain=c))
        assert state["exit_status"] is not None

    def test_calls_stack_and_memory(self):
        source = """
.section .text
_start:
    li r1, 0
    li r2, 10
outer:
    push r2
    call fn
    pop r2
    subi r2, r2, 1
    cmpi r2, 0
    bgt outer
    halt
fn:
    push r1
    li r3, buf
    st r1, [r3+0]
    ld r4, [r3+0]
    stb r4, [r3+8]
    ldb r5, [r3+8]
    add r1, r1, r5
    pop r1
    addi r1, r1, 1
    ret
.section .data
buf:
    .space 16
"""
        _assert_engines_agree(lambda e, c: _run_source(source, e, chain=c))

    def test_mid_block_division_fault(self):
        # The fault happens in the middle of a straight-line run: the
        # threaded engine must roll its batched accounting back so the
        # fault PC, cycles, and instruction count match exactly.
        source = """
.section .text
_start:
    li r1, 5
    li r2, 0
    addi r3, r1, 1
    div r4, r1, r2
    addi r5, r1, 2
    halt
"""
        state = _assert_engines_agree(lambda e, c: _run_source(source, e, chain=c))
        assert "division by zero" in state["fault"]

    def test_mid_block_memory_fault(self):
        source = """
.section .text
_start:
    li r1, 0x40000000
    li r2, 1
    addi r2, r2, 1
    ld r3, [r1+0]
    halt
"""
        state = _assert_engines_agree(lambda e, c: _run_source(source, e, chain=c))
        assert "memory fault" in state["fault"]

    def test_stack_overflow_fault(self):
        source = """
.section .text
_start:
    li r1, 8
    mov sp, r1
    push r1
    halt
"""
        state = _assert_engines_agree(lambda e, c: _run_source(source, e, chain=c))
        assert "stack overflow" in state["fault"]

    def test_trap_with_no_kernel(self):
        source = """
.section .text
_start:
    li r1, 1
    sys
"""
        state = _assert_engines_agree(lambda e, c: _run_source(source, e, chain=c))
        assert "trap with no kernel attached" in state["fault"]

    def test_budget_exhaustion_mid_block(self):
        # A budget that expires inside what the threaded engine compiles
        # as one block: the engine falls back to single-stepping so the
        # exhaustion fault lands at the identical PC and counters.
        source = """
.section .text
_start:
    li r1, 1
    addi r1, r1, 1
    addi r1, r1, 2
    addi r1, r1, 3
    addi r1, r1, 4
    halt
"""
        for budget in range(1, 7):
            state = _assert_engines_agree(
                lambda e, c: _run_source(source, e, chain=c,
                                         max_instructions=budget)
            )
            if budget < 6:
                assert "instruction budget exhausted" in state["fault"]
            else:
                assert state["fault"] is None

    def test_pc_falls_off_text(self):
        state = _assert_engines_agree(
            lambda e, c: _run_raw(_encode([Instruction(Op.NOP)] * 3), e,
                                  chain=c, max_instructions=5000)
        )
        assert "instruction fetch" in state["fault"]


class TestSelfModifyingCode:
    def test_patch_already_executed_block(self):
        # A code stub in the RWX region runs once, then the loop patches
        # its LI immediate and runs it again.  Both engines must
        # re-decode (stale block/decode caches would return 13).
        #
        #  0x1000: li r1, 13        <- patched to li r1, 77 on 2nd pass
        #  0x1008: cmpi r9, 0
        #  0x1010: bne done
        #  0x1018: li r9, 1
        #  0x1020: li r2, <encoded 'li r1, 77' low word>
        #  0x1028: li r3, 0x1000
        #  0x1030: st r2, [r3+0]
        #  0x1038: li r2, <encoded 'li r1, 77' high word>
        #  0x1040: st r2, [r3+4]
        #  0x1048: jmp 0x1000
        #  0x1050: halt             (done)
        patched = encode_instruction(Instruction(Op.LI, regs=(1,), imm=77))
        low = int.from_bytes(patched[:4], "little")
        high = int.from_bytes(patched[4:], "little")
        code = _encode([
            Instruction(Op.LI, regs=(1,), imm=13),
            Instruction(Op.CMPI, regs=(9,), imm=0),
            Instruction(Op.BNE, imm=0x1050),
            Instruction(Op.LI, regs=(9,), imm=1),
            Instruction(Op.LI, regs=(2,), imm=low),
            Instruction(Op.LI, regs=(3,), imm=0x1000),
            Instruction(Op.ST, regs=(2, 3), imm=0),
            Instruction(Op.LI, regs=(2,), imm=high),
            Instruction(Op.ST, regs=(2, 3), imm=4),
            Instruction(Op.JMP, imm=0x1000),
            Instruction(Op.HALT),
        ])
        state = _assert_engines_agree(lambda e, c: _run_raw(code, e, chain=c))
        assert state["regs"][1] == 77

    def test_patch_within_running_block(self):
        # The store clobbers an instruction *later in the same
        # straight-line run*: the threaded engine must abort the block
        # mid-flight, roll back its batched accounting, and re-decode.
        #
        #  0x1000: li r3, 0x1000
        #  0x1008: li r2, <low>
        #  0x1010: st r2, [r3+40]      ; patch 0x1028 (originally li r1, 13)
        #  0x1018: li r2, <high>
        #  0x1020: st r2, [r3+44]
        #  0x1028: li r1, 13          -> becomes li r1, 77
        #  0x1030: halt
        patched = encode_instruction(Instruction(Op.LI, regs=(1,), imm=77))
        low = int.from_bytes(patched[:4], "little")
        high = int.from_bytes(patched[4:], "little")
        code = _encode([
            Instruction(Op.LI, regs=(3,), imm=0x1000),
            Instruction(Op.LI, regs=(2,), imm=low),
            Instruction(Op.ST, regs=(2, 3), imm=40),
            Instruction(Op.LI, regs=(2,), imm=high),
            Instruction(Op.ST, regs=(2, 3), imm=44),
            Instruction(Op.LI, regs=(1,), imm=13),
            Instruction(Op.HALT),
        ])
        state = _assert_engines_agree(lambda e, c: _run_raw(code, e, chain=c))
        assert state["regs"][1] == 77

    def test_smc_blocked_by_nx(self):
        # The §4.1-style ablation: with nx=True, jumping to freshly
        # written bytes in a writable (non-executable) region must fault
        # at the same PC with the same message under both engines.
        code = _encode([
            Instruction(Op.LI, regs=(2,), imm=0x00000001),  # encoded HALT
            Instruction(Op.LI, regs=(3,), imm=0x8000),
            Instruction(Op.ST, regs=(2, 3), imm=0),
            Instruction(Op.JR, regs=(3,)),
        ])
        nx_state = _assert_engines_agree(lambda e, c: _run_raw(code, e, nx=True, chain=c))
        assert "NX violation" in nx_state["fault"]
        assert nx_state["pc"] == 0x8000
        # Without NX (the 2005 default) the same program executes its
        # injected HALT — still identically on both engines.
        plain = _assert_engines_agree(lambda e, c: _run_raw(code, e, nx=False, chain=c))
        assert plain["fault"] is None
        assert plain["pc"] == 0x8000


class TestKernelWorkloads:
    def _run_macro(self, engine: str, chain: bool) -> dict:
        binary = install(
            build_spec_program("gzip-spec", iterations=5), KEY
        ).binary
        kernel = Kernel(key=KEY, engine=engine, chain=chain)
        result = kernel.run(
            binary, argv=["gzip-spec"], max_instructions=100_000_000
        )
        vm = result.vm
        return {
            "ok": result.ok,
            "exit_status": result.exit_status,
            "cycles": result.cycles,
            "instructions": result.instructions,
            "syscalls": result.syscalls,
            "stdout": bytes(result.process.stdout),
            "memory": _memory_digest(vm),
            "regs": tuple(vm.regs),
            "pc": vm.pc,
        }

    def test_macro_workload_identical_through_kernel(self):
        states = {label: self._run_macro(engine, chain)
                  for label, (engine, chain) in CONFIGS.items()}
        for label, state in states.items():
            assert state == states["interp"], label
        assert states["interp"]["ok"]

    def test_attack_battery_verdicts_identical(self):
        from repro.attacks import run_all_attacks

        verdicts = {}
        for label, (engine, chain) in CONFIGS.items():
            results = run_all_attacks(KEY, engine=engine, chain=chain)
            verdicts[label] = [
                (r.name, r.blocked, r.kill_reason) for r in results
            ]
        for label, verdict in verdicts.items():
            assert verdict == verdicts["interp"], label

    def test_unknown_engine_rejected(self):
        memory = Memory()
        memory.map_region(0x1000, 4096, PROT_READ | PROT_EXEC, name="t")
        with pytest.raises(ValueError, match="unknown execution engine"):
            VM(memory=memory, entry=0x1000, engine="jit")


class TestTranslationCacheInternals:
    """White-box checks that the threaded engine actually caches."""

    def _loop_vm(self) -> VM:
        source = """
.section .text
_start:
    li r1, 0
loop:
    addi r1, r1, 1
    cmpi r1, 100
    blt loop
    halt
"""
        return _vm_for_source(source, "threaded")

    def test_blocks_are_reused(self):
        vm = self._loop_vm()
        vm.run()
        cache = vm._block_cache
        assert cache is not None
        # ~100 loop iterations but only a handful of distinct blocks.
        assert cache.compiles <= 6
        assert vm.regs[1] == 100

    def test_store_to_code_invalidates_block(self):
        patched = encode_instruction(Instruction(Op.LI, regs=(1,), imm=77))
        low = int.from_bytes(patched[:4], "little")
        high = int.from_bytes(patched[4:], "little")
        code = _encode([
            Instruction(Op.LI, regs=(1,), imm=13),
            Instruction(Op.CMPI, regs=(9,), imm=0),
            Instruction(Op.BNE, imm=0x1050),
            Instruction(Op.LI, regs=(9,), imm=1),
            Instruction(Op.LI, regs=(2,), imm=low),
            Instruction(Op.LI, regs=(3,), imm=0x1000),
            Instruction(Op.ST, regs=(2, 3), imm=0),
            Instruction(Op.LI, regs=(2,), imm=high),
            Instruction(Op.ST, regs=(2, 3), imm=4),
            Instruction(Op.JMP, imm=0x1000),
            Instruction(Op.HALT),
        ])
        memory = Memory()
        memory.map_region(
            0x1000, 4096, PROT_READ | PROT_WRITE | PROT_EXEC,
            data=code, name="rwx",
        )
        vm = VM(memory=memory, entry=0x1000, engine="threaded")
        vm.run()
        assert vm.regs[1] == 77
        assert vm._block_cache.invalidations >= 1
