"""Additional VM semantics: indirect calls, flag edges, wide counters."""

import pytest

from repro.cpu import ExecutionFault
from tests.cpu.test_vm import _run, _vm_for


class TestIndirectCalls:
    def test_callr_pushes_return_address(self):
        vm = _run("""
.section .text
_start:
    li r9, double
    li r1, 4
    callr r9
    addi r1, r1, 100
    halt
double:
    add r1, r1, r1
    ret
""")
        assert vm.regs[1] == 108

    def test_function_pointer_table(self):
        vm = _run("""
.section .text
_start:
    li r9, table
    ld r10, [r9+4]       ; table[1] = inc2
    li r1, 0
    callr r10
    halt
inc1:
    addi r1, r1, 1
    ret
inc2:
    addi r1, r1, 2
    ret
.section .data
table:
    .word inc1, inc2
""")
        assert vm.regs[1] == 2


class TestFlagEdges:
    @pytest.mark.parametrize("a,b,taken", [
        (5, 5, True),   # BLE on equal
        (4, 5, True),   # BLE on less
        (6, 5, False),  # BLE on greater
    ])
    def test_ble(self, a, b, taken):
        vm = _run(f"""
.section .text
_start:
    li r1, {a}
    cmpi r1, {b}
    ble yes
    li r2, 0
    halt
yes:
    li r2, 1
    halt
""")
        assert vm.regs[2] == (1 if taken else 0)

    def test_bgt_unsigned_vs_signed(self):
        # 0xFFFFFFFF is -1 signed: NOT greater than 0.
        vm = _run("""
.section .text
_start:
    li r1, 0xFFFFFFFF
    cmpi r1, 0
    bgt yes
    li r2, 0
    halt
yes:
    li r2, 1
    halt
""")
        assert vm.regs[2] == 0

    def test_bge_on_equal(self):
        vm = _run("""
.section .text
_start:
    li r1, 9
    cmpi r1, 9
    bge yes
    li r2, 0
    halt
yes:
    li r2, 1
    halt
""")
        assert vm.regs[2] == 1


class TestCounters:
    def test_rdtsch_high_word(self):
        # CPUWORK immediates are 32-bit, so several are needed to push
        # the 64-bit cycle counter past 2^32.
        vm = _run("""
.section .text
_start:
    cpuwork 0xC0000000
    cpuwork 0xC0000000
    cpuwork 0xC0000000
    cpuwork 0xC0000000
    rdtsch r1
    rdtsc r2
    halt
""")
        assert vm.regs[1] == 3  # 4 * 0xC0000000 = 0x3_0000_0000 + ε

    def test_mod_negative_free_semantics(self):
        # Values are unsigned; MOD of 10 % 3 = 1, 0xFFFFFFFF % 16 = 15.
        vm = _run("""
.section .text
_start:
    li r1, 0xFFFFFFFF
    li r2, 16
    mod r3, r1, r2
    halt
""")
        assert vm.regs[3] == 15

    def test_mod_by_zero_faults(self):
        with pytest.raises(ExecutionFault):
            _run("""
.section .text
_start:
    li r1, 5
    li r2, 0
    mod r3, r1, r2
    halt
""")

    def test_instruction_count_tracked(self):
        vm = _run(".section .text\n_start:\n    nop\n    nop\n    halt")
        assert vm.instructions_executed == 3

    def test_syscall_count_tracked(self):
        class Nop:
            def handle_trap(self, vm, authenticated):
                return 0

        vm = _run(
            ".section .text\n_start:\n    sys\n    sys\n    halt",
            trap_handler=Nop(),
        )
        assert vm.syscall_count == 2


class TestDecodeCache:
    def test_store_invalidates_decoded_instruction(self):
        # Self-modifying code in a *writable* region (.text itself is
        # R-X): stage a code stub in .data, run it once, patch its
        # immediate, run it again — the decode cache must not serve the
        # stale instruction.
        vm = _run("""
.section .text
_start:
    li r9, stub
    call land             ; decode+run the stub once (r1 = 1)
    li r9, stub
    li r10, 77
    st r10, [r9+4]        ; patch the LI's immediate in place
    call land             ; must observe the patched instruction
    halt
land:
    jr r9
.section .data
stub:
    .word 0x00000102, 1   ; encoded: li r1, 1
    .word 0x0000005A, 0   ; encoded: ret
""")
        assert vm.regs[1] == 77

    def test_pc_wraparound_protection(self):
        vm = _vm_for(".section .text\n_start:\n    nop")
        with pytest.raises(ExecutionFault):
            vm.run(max_instructions=10)  # falls off the end of .text
