"""Memory: mapping, protection, faults, growth."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.cpu.memory import (
    Memory,
    MemoryFault,
    PROT_EXEC,
    PROT_READ,
    PROT_WRITE,
)


def _memory_with_region(prot=PROT_READ | PROT_WRITE, size=0x1000):
    memory = Memory()
    memory.map_region(0x1000, size, prot, name="test")
    return memory


class TestMapping:
    def test_overlap_rejected(self):
        memory = _memory_with_region()
        with pytest.raises(ValueError):
            memory.map_region(0x1800, 0x1000, PROT_READ)

    def test_adjacent_regions_allowed(self):
        memory = _memory_with_region()
        memory.map_region(0x2000, 0x1000, PROT_READ)
        assert len(memory.regions()) == 2

    def test_empty_region_rejected(self):
        with pytest.raises(ValueError):
            Memory().map_region(0x1000, 0, PROT_READ)

    def test_outside_address_space_rejected(self):
        with pytest.raises(ValueError):
            Memory().map_region(0xFFFFF000, 0x2000, PROT_READ)

    def test_initial_data(self):
        memory = Memory()
        memory.map_region(0x1000, 16, PROT_READ, data=b"hello")
        assert memory.read(0x1000, 5) == b"hello"
        assert memory.read(0x1005, 3) == bytes(3)

    def test_find_region_by_name(self):
        memory = _memory_with_region()
        assert memory.find_region("test").start == 0x1000
        with pytest.raises(KeyError):
            memory.find_region("ghost")


class TestAccess:
    def test_read_write_round_trip(self):
        memory = _memory_with_region()
        memory.write(0x1010, b"abc")
        assert memory.read(0x1010, 3) == b"abc"

    def test_u32_round_trip(self):
        memory = _memory_with_region()
        memory.write_u32(0x1000, 0xDEADBEEF)
        assert memory.read_u32(0x1000) == 0xDEADBEEF

    def test_unmapped_read_faults(self):
        with pytest.raises(MemoryFault):
            _memory_with_region().read(0x9000, 4)

    def test_read_past_end_faults(self):
        memory = _memory_with_region(size=16)
        with pytest.raises(MemoryFault):
            memory.read(0x100C, 8)

    def test_write_to_readonly_faults(self):
        memory = _memory_with_region(prot=PROT_READ)
        with pytest.raises(MemoryFault):
            memory.write(0x1000, b"x")

    def test_force_bypasses_protection(self):
        memory = _memory_with_region(prot=PROT_READ)
        memory.write(0x1000, b"x", force=True)
        assert memory.read(0x1000, 1) == b"x"

    def test_read_from_writeonly_faults(self):
        memory = _memory_with_region(prot=PROT_WRITE)
        with pytest.raises(MemoryFault):
            memory.read(0x1000, 1)

    def test_executable_flag(self):
        memory = _memory_with_region(prot=PROT_READ | PROT_EXEC)
        assert memory.executable(0x1000)
        assert not memory.executable(0x9999)


class TestCString:
    def test_reads_until_nul(self):
        memory = _memory_with_region()
        memory.write(0x1000, b"hello\x00world")
        assert memory.read_cstring(0x1000) == b"hello"

    def test_unterminated_faults(self):
        memory = _memory_with_region(size=16)
        memory.write(0x1000, b"x" * 16)
        with pytest.raises(MemoryFault):
            memory.read_cstring(0x1000)

    def test_length_cap(self):
        memory = _memory_with_region()
        memory.write(0x1000, b"a" * 64 + b"\x00")
        with pytest.raises(MemoryFault):
            memory.read_cstring(0x1000, max_len=32)


class TestGrow:
    def test_grow_heap(self):
        memory = _memory_with_region()
        memory.grow_region("test", 0x2000)
        memory.write(0x1000 + 0x1800, b"z")

    def test_grow_collision(self):
        memory = _memory_with_region()
        memory.map_region(0x2000, 0x1000, PROT_READ, name="next")
        with pytest.raises(MemoryFault):
            memory.grow_region("test", 0x1001)

    def test_shrink(self):
        memory = _memory_with_region()
        memory.grow_region("test", 0x800)
        with pytest.raises(MemoryFault):
            memory.read(0x1000 + 0x900, 1)


class TestProperties:
    @given(
        offset=st.integers(min_value=0, max_value=0xFF0),
        data=st.binary(min_size=1, max_size=16),
    )
    def test_write_then_read(self, offset, data):
        memory = _memory_with_region()
        memory.write(0x1000 + offset, data)
        assert memory.read(0x1000 + offset, len(data)) == data

    @given(value=st.integers(min_value=0, max_value=0xFFFFFFFF))
    def test_u32_identity(self, value):
        memory = _memory_with_region()
        memory.write_u32(0x1000, value)
        assert memory.read_u32(0x1000) == value
