"""Instruction model and binary encoding tests."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.isa import (
    INSTRUCTION_SIZE,
    Instruction,
    Op,
    OPCODE_INFO,
    SymbolRef,
    decode_instruction,
    encode_instruction,
)
from repro.isa.encoding import EncodingError
from repro.isa.opcodes import OperandKind
from repro.isa.registers import SP, register_name, register_number


class TestRegisters:
    def test_aliases(self):
        assert register_name(15) == "sp"
        assert register_number("sp") == 15
        assert register_number("SP") == 15

    def test_plain_names_round_trip(self):
        for n in range(13):
            assert register_number(register_name(n)) == n

    def test_bad_names(self):
        for bad in ("r16", "x1", "r-1", "", "r"):
            with pytest.raises(ValueError):
                register_number(bad)

    def test_bad_number(self):
        with pytest.raises(ValueError):
            register_name(16)


class TestInstructionModel:
    def test_operand_arity_enforced(self):
        with pytest.raises(ValueError):
            Instruction(Op.ADD, regs=(1, 2))  # needs 3 registers

    def test_imm_required(self):
        with pytest.raises(ValueError):
            Instruction(Op.LI, regs=(1,))

    def test_imm_rejected_when_absent(self):
        with pytest.raises(ValueError):
            Instruction(Op.RET, imm=5)

    def test_symbolic_flag(self):
        instr = Instruction(Op.LI, regs=(1,), imm=SymbolRef("msg", 4))
        assert instr.is_symbolic
        assert not Instruction(Op.LI, regs=(1,), imm=7).is_symbolic

    def test_resolved_replaces_symbol(self):
        instr = Instruction(Op.CALL, imm=SymbolRef("f"))
        assert instr.resolved(0x8048010).imm == 0x8048010

    def test_str_rendering(self):
        assert str(Instruction(Op.LD, regs=(1, SP), imm=4)) == "ld r1, [sp+4]"
        assert str(Instruction(Op.SYS)) == "sys"
        assert str(Instruction(Op.LI, regs=(2,), imm=SymbolRef("msg"))) == "li r2, msg"


class TestEncoding:
    def test_round_trip_simple(self):
        instr = Instruction(Op.ADDI, regs=(1, 2), imm=300)
        assert decode_instruction(encode_instruction(instr)) == instr

    def test_size(self):
        assert len(encode_instruction(Instruction(Op.NOP))) == INSTRUCTION_SIZE

    def test_negative_imm_wraps(self):
        instr = Instruction(Op.ADDI, regs=(15, 15), imm=-8)
        decoded = decode_instruction(encode_instruction(instr))
        assert decoded.imm == 0xFFFFFFF8

    def test_symbolic_imm_rejected(self):
        with pytest.raises(EncodingError):
            encode_instruction(Instruction(Op.LI, regs=(0,), imm=SymbolRef("x")))

    def test_unknown_opcode_rejected(self):
        with pytest.raises(EncodingError):
            decode_instruction(b"\xff" + bytes(7))

    def test_truncated_rejected(self):
        with pytest.raises(EncodingError):
            decode_instruction(bytes(4))

    def test_decode_at_offset(self):
        blob = encode_instruction(Instruction(Op.NOP)) + encode_instruction(
            Instruction(Op.HALT)
        )
        assert decode_instruction(blob, 8).op == Op.HALT


def _instruction_strategy():
    def build(op, regs, imm):
        info = OPCODE_INFO[op]
        n_regs = sum(
            1 for k in info.operands if k in (OperandKind.REG, OperandKind.MEM)
        )
        has_imm = any(
            k in (OperandKind.IMM, OperandKind.MEM) for k in info.operands
        )
        return Instruction(op, tuple(regs[:n_regs]), imm if has_imm else None)

    return st.builds(
        build,
        op=st.sampled_from(list(Op)),
        regs=st.lists(
            st.integers(min_value=0, max_value=15), min_size=3, max_size=3
        ),
        imm=st.integers(min_value=0, max_value=0xFFFFFFFF),
    )


class TestEncodingProperties:
    @given(instr=_instruction_strategy())
    def test_encode_decode_round_trip(self, instr):
        assert decode_instruction(encode_instruction(instr)) == instr

    @given(instr=_instruction_strategy())
    def test_fixed_width(self, instr):
        assert len(encode_instruction(instr)) == INSTRUCTION_SIZE
