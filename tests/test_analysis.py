"""Table-rendering helpers."""

from repro.analysis import format_table, paper_vs_measured, percent_delta


class TestFormatTable:
    def test_alignment(self):
        text = format_table(["name", "value"], [["getpid", 1141], ["brk", 1155]])
        lines = text.splitlines()
        assert lines[0].startswith("name")
        assert "getpid" in lines[2]
        assert len({line.index("1") for line in lines[2:]}) == 1  # aligned column

    def test_title(self):
        text = format_table(["a"], [[1]], title="Table 4")
        assert text.splitlines()[0] == "Table 4"

    def test_none_renders_dash(self):
        assert "-" in format_table(["a"], [[None]])

    def test_float_formatting(self):
        assert "1.41" in format_table(["pct"], [[1.4100001]])

    def test_empty_rows(self):
        text = format_table(["a", "b"], [])
        assert "a" in text


class TestDeltas:
    def test_percent_delta(self):
        assert percent_delta(110, 100) == 10.0
        assert percent_delta(90, 100) == -10.0
        assert percent_delta(5, 0) is None

    def test_paper_vs_measured(self):
        text = paper_vs_measured(
            "Check", ["metric"], [("overhead", 0.96, 1.10), ("syscalls", "n/a", 12)]
        )
        assert "+14.6%" in text
        assert "overhead" in text


class TestStats:
    def test_trimmed_mean_drops_tails(self):
        from repro.analysis import trimmed_mean

        samples = [100, 1, 2, 3, 4, 0]
        assert trimmed_mean(samples) == (1 + 2 + 3 + 4) / 4

    def test_trimmed_mean_validation(self):
        import pytest
        from repro.analysis import trimmed_mean

        with pytest.raises(ValueError):
            trimmed_mean([1, 2], trim=1)
        with pytest.raises(ValueError):
            trimmed_mean([1, 2, 3], trim=-1)

    def test_paper_table4_aggregate(self):
        import pytest
        from repro.analysis import paper_table4_aggregate

        samples = [5.0] * 10 + [99.0, 0.0]
        assert paper_table4_aggregate(samples) == 5.0
        with pytest.raises(ValueError):
            paper_table4_aggregate([1.0] * 10)

    def test_sample_stddev(self):
        import pytest
        from repro.analysis import sample_stddev

        assert sample_stddev([5.0]) == 0.0
        assert sample_stddev([2.0, 4.0]) == pytest.approx(1.4142, abs=1e-3)
        assert sample_stddev([3.0, 3.0, 3.0]) == 0.0

    def test_overhead_percent(self):
        import pytest
        from repro.analysis import overhead_percent

        assert overhead_percent(259.66, 262.14) == pytest.approx(0.955, abs=1e-3)
        with pytest.raises(ValueError):
            overhead_percent(0, 1)

    def test_geometric_mean(self):
        import pytest
        from repro.analysis import geometric_mean

        assert geometric_mean([1, 4]) == pytest.approx(2.0)
        with pytest.raises(ValueError):
            geometric_mean([])
        with pytest.raises(ValueError):
            geometric_mean([1.0, -1.0])
