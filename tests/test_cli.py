"""The administrator CLI (`python -m repro.tools`)."""

import pytest

from repro.tools.cli import main
from repro.workloads.runtime import runtime_source

SOURCE = """
.section .text
.global _start
_start:
    li r1, msg
    li r3, 4
    li r2, msg
    li r1, 1
    call sys_write
    li r1, 0
    call sys_exit
.section .rodata
msg:
    .asciz "cli!"
""" + runtime_source("linux", ("write", "exit"))


@pytest.fixture
def workspace(tmp_path):
    source = tmp_path / "demo.s"
    source.write_text(SOURCE)
    return tmp_path, source


def _assemble(workspace):
    tmp_path, source = workspace
    assert main(["assemble", str(source)]) == 0
    return tmp_path / "demo.sef"


def _install(workspace, *extra):
    binary = _assemble(workspace)
    out = binary.with_suffix(".asc.sef")
    args = ["--fast-mac", "install", str(binary), "-o", str(out)]
    args.extend(extra)
    assert main(args) == 0
    return out


class TestAssemble:
    def test_produces_binary(self, workspace, capsys):
        binary = _assemble(workspace)
        assert binary.exists()
        assert "assembled demo" in capsys.readouterr().out

    def test_custom_output_and_name(self, workspace):
        tmp_path, source = workspace
        out = tmp_path / "custom.bin"
        assert main(["assemble", str(source), "-o", str(out), "--program", "x"]) == 0
        from repro.binfmt import SefBinary

        assert SefBinary.from_bytes(out.read_bytes()).metadata["program"] == "x"


class TestInstall:
    def test_install_reports_sites(self, workspace, capsys):
        _install(workspace)
        out = capsys.readouterr().out
        assert "call sites rewritten" in out

    def test_installed_binary_marked(self, workspace):
        installed = _install(workspace)
        from repro.binfmt import SefBinary

        binary = SefBinary.from_bytes(installed.read_bytes())
        assert binary.metadata["authenticated"] == "yes"

    def test_program_id_option(self, workspace):
        installed = _install(workspace, "--program-id", "5")
        from repro.binfmt import SefBinary

        binary = SefBinary.from_bytes(installed.read_bytes())
        assert binary.metadata["program_id"] == "5"


class TestRun:
    def test_run_prints_guest_stdout(self, workspace, capsys):
        installed = _install(workspace)
        capsys.readouterr()
        status = main(["--fast-mac", "run", str(installed), "--stats"])
        captured = capsys.readouterr()
        assert status == 0
        assert "cli!" in captured.out
        assert "cycles=" in captured.err

    def test_wrong_key_fail_stops(self, workspace, capsys):
        installed = _install(workspace)
        capsys.readouterr()
        status = main(
            ["--fast-mac", "--key", "other-key", "run", str(installed)]
        )
        captured = capsys.readouterr()
        assert status == 128 + 9
        assert "MAC mismatch" in captured.err

    def test_enforce_refuses_legacy(self, workspace, capsys):
        binary = _assemble(workspace)
        capsys.readouterr()
        status = main(["--fast-mac", "run", "--enforce", str(binary)])
        assert status == 128 + 9

    def test_vfs_prepopulation(self, workspace, capsys, tmp_path):
        source = tmp_path / "reader.s"
        source.write_text("""
.section .text
.global _start
_start:
    li r1, p
    li r2, 0
    call sys_open
    mov r1, r0
    li r2, b
    li r3, 8
    call sys_read
    mov r3, r0
    li r1, 1
    li r2, b
    call sys_write
    li r1, 0
    call sys_exit
.section .rodata
p:
    .asciz "/etc/x"
.section .bss
b:
    .space 8
""" + runtime_source("linux", ("open", "read", "write", "exit")))
        assert main(["assemble", str(source)]) == 0
        capsys.readouterr()
        status = main([
            "--fast-mac", "run", str(tmp_path / "reader.sef"),
            "--file", "/etc/x=payload",
        ])
        captured = capsys.readouterr()
        assert status == 0
        assert "payload" in captured.out


class TestInspection:
    def test_objdump_listing(self, workspace, capsys):
        binary = _assemble(workspace)
        capsys.readouterr()
        assert main(["objdump", str(binary)]) == 0
        assert "<_start>:" in capsys.readouterr().out

    def test_objdump_source_form_reassembles(self, workspace, capsys):
        binary = _assemble(workspace)
        capsys.readouterr()
        assert main(["objdump", "--source-form", str(binary)]) == 0
        text = capsys.readouterr().out
        from repro.asm import assemble as asm
        from repro.kernel import Kernel

        assert Kernel().run(asm(text)).stdout == b"cli!"

    def test_policy_dump(self, workspace, capsys):
        binary = _assemble(workspace)
        capsys.readouterr()
        assert main(["policy", str(binary)]) == 0
        assert "Permit write from location" in capsys.readouterr().out


class TestAttacks:
    def test_battery_via_cli(self, capsys):
        assert main(["--fast-mac", "attacks"]) == 0
        out = capsys.readouterr().out
        assert "shellcode" in out
        assert "UNEXPECTED" not in out


class TestPolicyFiles:
    def test_policy_json_and_diff(self, workspace, capsys, tmp_path):
        binary = _assemble(workspace)
        capsys.readouterr()
        assert main(["policy", "--json", str(binary)]) == 0
        text = capsys.readouterr().out
        old = tmp_path / "old.json"
        new = tmp_path / "new.json"
        old.write_text(text)
        new.write_text(text)
        assert main(["policy-diff", str(old), str(new)]) == 0
        assert "equivalent" in capsys.readouterr().out

    def test_policy_diff_flags_changes(self, workspace, capsys, tmp_path):
        binary = _assemble(workspace)
        capsys.readouterr()
        main(["policy", "--json", str(binary)])
        text = capsys.readouterr().out
        old = tmp_path / "old.json"
        old.write_text(text)
        mutated = text.replace('"write"', '"execve"')
        new = tmp_path / "new.json"
        new.write_text(mutated)
        assert main(["policy-diff", str(old), str(new)]) == 1
        out = capsys.readouterr().out
        assert "execve" in out


class TestReport:
    def test_report_prints_archived_tables(self, capsys, tmp_path):
        results = tmp_path / "results"
        results.mkdir()
        names = [
            "table1_policy_sizes", "table2_bison_diff", "table3_arg_coverage",
            "table4_microbench", "table5_table6_macro", "andrew_multiprogram",
            "attack_battery", "false_alarms", "installer_cost", "extensions_ablations",
        ]
        for name in names:
            (results / f"{name}.txt").write_text(f"[{name} body]\n")
        assert main(["report", "--results-dir", str(results)]) == 0
        out = capsys.readouterr().out
        for name in names:
            assert f"[{name} body]" in out

    def test_report_flags_missing(self, capsys, tmp_path):
        assert main(["report", "--results-dir", str(tmp_path)]) == 1
        assert "missing reports" in capsys.readouterr().err


class TestRunNet:
    def test_run_net_completes_and_reports_stats(self, capsys):
        assert main([
            "--fast-mac", "run", "--net", "--clients", "2", "--requests", "3",
        ]) == 0
        out = capsys.readouterr().out
        assert "(server): exit 0" in out
        assert out.count("(client): exit 3") == 2
        assert "connections=2" in out
        assert "accepts=2" in out
        # 2 clients x 3 requests x 8 bytes, echoed: 96 each way.
        assert "bytes_sent=96" in out
        assert "bytes_received=96" in out

    def test_run_requires_binary_or_net(self, capsys):
        assert main(["run"]) == 2
        assert "unless --net" in capsys.readouterr().err


class TestConform:
    def test_conform_sweep_writes_report_and_metrics(self, capsys, tmp_path):
        report = tmp_path / "conform.json"
        prom = tmp_path / "conform.prom"
        assert main([
            "--fast-mac", "conform", "--seed", "0", "--count", "4",
            "--json", str(report), "--metrics", str(prom),
        ]) == 0
        out = capsys.readouterr().out
        assert "OK: 0 divergences" in out
        payload = report.read_text()
        assert '"seed": 0' in payload
        assert "repro_conform_programs 4" in prom.read_text()

    def test_conform_config_subset(self, capsys):
        assert main([
            "--fast-mac", "conform", "--count", "2",
            "--config", "interp", "--config", "no-fastpath",
        ]) == 0
        assert "configs=2" in capsys.readouterr().out
