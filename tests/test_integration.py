"""End-to-end integration: the whole paper pipeline in one place."""

import pytest

from repro import (
    AsmBuilder,
    EnforcementMode,
    Kernel,
    Key,
    assemble,
    install,
)
from repro.workloads.runtime import runtime_source

KEY = Key.from_passphrase("integration", provider="fast-hmac")


class TestFullPipeline:
    def test_assemble_install_run(self):
        source = """
.section .text
.global _start
_start:
    li r1, msg
    li r3, 6
    li r2, msg
    li r1, 1
    call sys_write
    li r1, 0
    call sys_exit
.section .rodata
msg:
    .asciz "works\\n"
""" + runtime_source("linux", ("write", "exit"))
        installed = install(assemble(source, metadata={"program": "e2e"}), KEY)
        kernel = Kernel(key=KEY, mode=EnforcementMode.ENFORCE)
        result = kernel.run(installed.binary)
        assert result.ok
        assert result.stdout == b"works\n"

    def test_builder_dsl_pipeline(self):
        builder = AsmBuilder("dsl-demo")
        builder.section(".text")
        builder.global_("_start")
        builder.label("_start")
        builder.li("r1", 1)
        builder.li("r2", "greeting")
        builder.li("r3", 5)
        builder.call("sys_write")
        builder.li("r1", 0)
        builder.call("sys_exit")
        builder.section(".rodata")
        builder.label("greeting")
        builder.asciz("hello")
        builder.raw(runtime_source("linux", ("write", "exit")))
        installed = install(builder.assemble(), KEY)
        result = Kernel(key=KEY).run(installed.binary)
        assert result.stdout == b"hello"

    def test_serialized_binary_round_trip(self):
        from repro import SefBinary

        source = """
.section .text
.global _start
_start:
    li r1, 33
    call sys_exit
""" + runtime_source("linux", ("exit",))
        installed = install(assemble(source, metadata={"program": "ser"}), KEY)
        restored = SefBinary.from_bytes(installed.binary.to_bytes())
        assert Kernel(key=KEY).run(restored).exit_status == 33

    def test_execve_chain_of_authenticated_binaries(self):
        inner_src = """
.section .text
.global _start
_start:
    li r1, msg
    li r3, 5
    li r2, msg
    li r1, 1
    call sys_write
    li r1, 0
    call sys_exit
.section .rodata
msg:
    .asciz "child"
""" + runtime_source("linux", ("write", "exit"))
        outer_src = """
.section .text
.global _start
_start:
    li r1, target
    li r2, 0
    li r3, 0
    call sys_execve
    li r1, 9
    call sys_exit
.section .rodata
target:
    .asciz "/bin/child"
""" + runtime_source("linux", ("execve", "exit"))
        kernel = Kernel(key=KEY, mode=EnforcementMode.ENFORCE)
        inner = install(assemble(inner_src, metadata={"program": "child"}), KEY)
        kernel.register_binary("/bin/child", inner.binary)
        outer = install(assemble(outer_src, metadata={"program": "parent"}), KEY)
        result = kernel.run(outer.binary)
        assert result.stdout == b"child"
        assert result.exit_status == 0

    def test_enforcing_kernel_refuses_unauthenticated_execve_target(self):
        inner_src = """
.section .text
.global _start
_start:
    li r1, 0
    call sys_exit
""" + runtime_source("linux", ("exit",))
        outer_src = """
.section .text
.global _start
_start:
    li r1, target
    li r2, 0
    li r3, 0
    call sys_execve
    mov r1, r0
    call sys_exit
.section .rodata
target:
    .asciz "/bin/legacy"
""" + runtime_source("linux", ("execve", "exit"))
        kernel = Kernel(key=KEY, mode=EnforcementMode.ENFORCE)
        kernel.register_binary(
            "/bin/legacy", assemble(inner_src, metadata={"program": "legacy"})
        )
        outer = install(assemble(outer_src, metadata={"program": "parent"}), KEY)
        result = kernel.run(outer.binary)
        assert result.exit_status != 0  # execve returned -EPERM
        assert any(e.kind == "blocked" for e in kernel.audit.events)


class TestCryptoProviderEquivalence:
    """The real AES-CMAC and the fast provider enforce identically."""

    @pytest.mark.parametrize("provider", ["aes-cmac", "fast-hmac"])
    def test_end_to_end_with_each_provider(self, provider):
        key = Key.from_passphrase("prov", provider=provider)
        source = """
.section .text
.global _start
_start:
    call sys_getpid
    li r1, 0
    call sys_exit
""" + runtime_source("linux", ("getpid", "exit"))
        installed = install(assemble(source, metadata={"program": "p"}), key)
        result = Kernel(key=key).run(installed.binary)
        assert result.ok

    @pytest.mark.parametrize("provider", ["aes-cmac", "fast-hmac"])
    def test_tamper_detected_with_each_provider(self, provider):
        key = Key.from_passphrase("prov", provider=provider)
        source = """
.section .text
.global _start
_start:
    li r1, path
    li r2, 0
    call sys_open
    li r1, 0
    call sys_exit
.section .rodata
path:
    .asciz "/etc/motd"
""" + runtime_source("linux", ("open", "exit"))
        installed = install(assemble(source, metadata={"program": "p"}), key)
        installed.binary.section(".authstr").data[25] ^= 0x01
        result = Kernel(key=key).run(installed.binary)
        assert result.killed

    def test_identical_cycle_accounting_across_providers(self):
        source = """
.section .text
.global _start
_start:
    call sys_getpid
    li r1, 0
    call sys_exit
""" + runtime_source("linux", ("getpid", "exit"))
        cycles = []
        for provider in ("aes-cmac", "fast-hmac"):
            key = Key.from_passphrase("prov", provider=provider)
            installed = install(assemble(source, metadata={"program": "p"}), key)
            cycles.append(Kernel(key=key).run(installed.binary).cycles)
        assert cycles[0] == cycles[1]


class TestMultiProcessIsolation:
    def test_auth_counters_are_per_process(self):
        source = """
.section .text
.global _start
_start:
    call sys_getpid
    call sys_getpid
    li r1, 0
    call sys_exit
""" + runtime_source("linux", ("getpid", "exit"))
        installed = install(assemble(source, metadata={"program": "p"}), KEY)
        kernel = Kernel(key=KEY)
        a_process, a_vm = kernel.load(installed.binary)
        b_process, b_vm = kernel.load(installed.binary)
        # Interleave: each process's memory checker must stay coherent.
        steps = 0
        while (a_vm.exit_status is None or b_vm.exit_status is None) and steps < 10000:
            steps += 1
            for vm in (a_vm, b_vm):
                if vm.exit_status is None:
                    try:
                        if not vm.step():
                            vm.exit_status = vm.exit_status or 0
                    except Exception as err:  # ProcessExit via run() only
                        from repro.cpu.vm import ProcessExit

                        if isinstance(err, ProcessExit):
                            vm.exit_status = err.status
                            vm.killed = err.killed
                        else:
                            raise
        assert not a_vm.killed and not b_vm.killed
        assert a_process.auth_counter == b_process.auth_counter == 3
