"""Macro-benchmark programs and the Andrew driver (scaled down)."""

import pytest

from repro.crypto import Key
from repro.installer import install
from repro.kernel import Kernel
from repro.workloads.andrew import AndrewBenchmark
from repro.workloads.spec import (
    CYCLES_PER_SCALED_SECOND,
    SPEC_PROGRAMS,
    build_spec_program,
)

KEY = Key.from_passphrase("spec-tests", provider="fast-hmac")


class TestSpecPrograms:
    def test_table5_suite_complete(self):
        assert set(SPEC_PROGRAMS) == {
            "gzip-spec", "crafty", "mcf", "vpr", "twolf",
            "gcc", "vortex", "pyramid", "gzip",
        }

    def test_plan_matches_base_seconds(self):
        for program in SPEC_PROGRAMS.values():
            iterations, cpuwork = program.plan()
            assert iterations >= 1
            assert cpuwork >= 0

    def test_cpu_programs_have_more_work_per_call(self):
        cpu_iters, cpu_work = SPEC_PROGRAMS["mcf"].plan()
        sys_iters, sys_work = SPEC_PROGRAMS["pyramid"].plan()
        assert cpu_work > sys_work

    def test_program_runs_and_does_real_io(self):
        kernel = Kernel(key=KEY)
        result = kernel.run(
            build_spec_program("pyramid"), argv=["pyramid"]
        )
        assert result.ok
        assert kernel.vfs.read_file("/tmp/pyramid.dat")  # the record file

    def test_iteration_override_scales_syscalls(self):
        kernel = Kernel(key=KEY)
        small = kernel.run(build_spec_program("gcc", iterations=2), argv=["gcc"])
        large = kernel.run(build_spec_program("gcc", iterations=4), argv=["gcc"])
        assert large.syscalls - small.syscalls == 2 * 4

    def test_baseline_cycles_track_paper_seconds(self):
        kernel = Kernel(key=KEY)
        program = SPEC_PROGRAMS["pyramid"]
        result = kernel.run(build_spec_program("pyramid"), argv=["pyramid"])
        measured_seconds = result.cycles / CYCLES_PER_SCALED_SECOND
        assert measured_seconds == pytest.approx(program.base_seconds, rel=0.15)

    def test_authenticated_overhead_shape(self):
        # pyramid is the syscall-dense program: its overhead must be
        # several times larger than a CPU-bound program's.
        def overhead(name):
            kernel = Kernel(key=KEY)
            base = kernel.run(build_spec_program(name, iterations=6), argv=[name]).cycles
            kernel2 = Kernel(key=KEY)
            inst = install(build_spec_program(name, iterations=6), KEY)
            auth = kernel2.run(inst.binary, argv=[name]).cycles
            return (auth - base) / base

        assert overhead("pyramid") > 2.5 * overhead("mcf")


class TestAndrew:
    @pytest.mark.slow
    def test_tiny_run_both_flavours(self):
        config = dict(
            key=KEY, files_per_iteration=3, file_size=1024, startup_work=200_000
        )
        original = AndrewBenchmark(authenticated=False, **config).run()
        authenticated = AndrewBenchmark(authenticated=True, **config).run()
        assert not original.failures
        assert not authenticated.failures
        assert original.syscalls == authenticated.syscalls
        assert authenticated.cycles > original.cycles

    def test_seconds_scaling(self):
        from repro.workloads.andrew import AndrewResult

        result = AndrewResult(cycles=2_400_000, syscalls=1, processes=1)
        assert result.seconds_scaled == 1.0
