"""The netserver workload: correctness and cross-engine bit-identity.

The acceptance contract for the loopback stack: the installed echo
server and its forked clients complete on every engine configuration
with *identical* per-task results and an identical scheduler
interleaving — sockets introduce no nondeterminism anywhere.
"""

import pytest

from repro.crypto import Key
from repro.installer import install
from repro.kernel import Kernel
from repro.workloads.netserver import build_netserver

KEY = Key.from_passphrase("netserver-tests", provider="fast-hmac")
CLIENTS = 3
REQUESTS = 3
TIMESLICE = 350

#: The five engine configurations the security batteries sweep.
ENGINE_CONFIGS = (
    ("interp", dict(engine="interp")),
    ("chained", dict(engine="threaded", chain=True)),
    ("no-chain", dict(engine="threaded", chain=False)),
    ("no-verifier-jit", dict(engine="threaded", verifier_jit=False)),
    ("no-fastpath", dict(engine="threaded", fastpath=False)),
)


@pytest.fixture(scope="module")
def installed():
    return install(
        build_netserver(clients=CLIENTS, requests=REQUESTS, spin=60), KEY
    ).binary


def _run(binary, **kwargs):
    kernel = Kernel(key=KEY, **kwargs)
    multi = kernel.run_many([binary], timeslice=TIMESLICE)
    tasks = [multi.scheduler.tasks[pid] for pid in sorted(multi.scheduler.tasks)]
    return {
        "statuses": tuple(task.exit_status for task in tasks),
        "killed": tuple(task.killed for task in tasks),
        "instructions": tuple(t.vm.instructions_executed for t in tasks),
        "interleaving": tuple(multi.scheduler.interleaving),
        "metrics": {
            name: kernel.metrics.get(name)
            for name in ("net.connections", "net.accepts",
                         "net.bytes_sent", "net.bytes_received")
        },
    }


class TestNetserverCompletes:
    def test_all_counts_reconcile(self, installed):
        run = _run(installed)
        # Server exits 0 iff every record was echoed and every client's
        # count reaped; clients exit their completed request count.
        assert run["statuses"] == (0,) + (REQUESTS,) * CLIENTS
        assert not any(run["killed"])

    def test_net_metrics_account_for_every_byte(self, installed):
        run = _run(installed)
        assert run["metrics"]["net.connections"] == CLIENTS
        assert run["metrics"]["net.accepts"] == CLIENTS
        # Each request is 8 bytes out and 8 echoed back, per client.
        payload = CLIENTS * REQUESTS * 8 * 2
        assert run["metrics"]["net.bytes_sent"] == payload
        assert run["metrics"]["net.bytes_received"] == payload

    def test_sync_mode_canary(self, installed):
        # Without a scheduler, fork fails and the program exits 1: the
        # guard that `run --net` really engaged multiprogramming.
        result = Kernel(key=KEY).run(installed)
        assert result.exit_status == 1


class TestEngineBitIdentity:
    def test_identical_across_all_five_configs(self, installed):
        runs = {
            name: _run(installed, **kwargs)
            for name, kwargs in ENGINE_CONFIGS
        }
        reference = runs["interp"]
        assert reference["statuses"] == (0,) + (REQUESTS,) * CLIENTS
        for name, run in runs.items():
            assert run == reference, name

    def test_repeat_runs_are_bit_identical(self, installed):
        assert _run(installed) == _run(installed)

    def test_uninstalled_baseline_matches_protected_interleaving(self):
        # Auth off vs auth on: same guest instruction stream shape —
        # the *unprotected* baseline completes with the same statuses
        # (interleavings differ: verification charges cycles).
        raw = build_netserver(clients=CLIENTS, requests=REQUESTS, spin=60)
        run = _run(raw)
        assert run["statuses"] == (0,) + (REQUESTS,) * CLIENTS
        assert not any(run["killed"])


class TestWorkloadShapeValidation:
    def test_requests_must_fit_exit_status(self):
        with pytest.raises(ValueError):
            build_netserver(clients=2, requests=256)

    def test_backlog_ceiling(self):
        with pytest.raises(ValueError):
            build_netserver(clients=65, requests=1)

    def test_at_least_one_client(self):
        with pytest.raises(ValueError):
            build_netserver(clients=0, requests=1)
