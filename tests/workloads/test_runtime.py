"""Runtime (mini-libc) generation and OS personalities."""

import pytest

from repro.asm import assemble
from repro.kernel import Kernel
from repro.kernel.syscalls import SYSCALL_NUMBERS
from repro.workloads.runtime import PERSONALITIES, runtime_source, stub_label


class TestStubGeneration:
    def test_all_syscalls_have_stubs(self):
        source = runtime_source("linux")
        for name in SYSCALL_NUMBERS:
            assert f"{stub_label(name)}:" in source

    def test_subset_selection(self):
        source = runtime_source("linux", ("read", "write"))
        assert "sys_read:" in source
        assert "sys_write:" in source
        assert "sys_getpid:" not in source

    def test_stub_label_for_dunder(self):
        assert stub_label("__syscall") == "sys_syscall"

    def test_unknown_personality_rejected(self):
        with pytest.raises(ValueError):
            runtime_source("plan9")

    def test_personalities_exported(self):
        assert PERSONALITIES == ("linux", "openbsd")


class TestHelperRoutines:
    def _run(self, body, data=""):
        source = (
            ".section .text\n.global _start\n_start:\n"
            + body
            + "\n    halt\n"
            + data
            + runtime_source("linux", ("exit",))
        )
        vm = Kernel().run(assemble(source))
        return vm

    def test_strlen(self):
        result = self._run(
            "    li r1, s\n    call rt_strlen\n    mov r1, r0",
            '.section .rodata\ns:\n    .asciz "four"\n',
        )
        assert result.exit_status == 4

    def test_strcmp_equal_and_ordering(self):
        result = self._run(
            """
    li r1, a
    li r2, b
    call rt_strcmp
    cmpi r0, 0
    blt less
    li r1, 99
    jmp out
less:
    li r1, 1
out:
""",
            '.section .rodata\na:\n    .asciz "apple"\nb:\n    .asciz "beta"\n',
        )
        assert result.exit_status == 1

    def test_memcpy_and_memset(self):
        result = self._run(
            """
    li r1, dst
    li r2, 0x55
    li r3, 4
    call rt_memset
    li r1, dst
    li r2, src
    li r3, 2
    call rt_memcpy
    li r9, dst
    ldb r1, [r9+0]
    ldb r2, [r9+2]
    add r1, r1, r2
""",
            '.section .rodata\nsrc:\n    .asciz "AB"\n'
            ".section .data\ndst:\n    .space 8\n",
        )
        # dst = 'A', 'B', 0x55, 0x55 -> r1 = ord('A') + 0x55
        assert result.exit_status == (ord("A") + 0x55) & 0xFF

    def test_strcpy_returns_length(self):
        result = self._run(
            "    li r1, dst\n    li r2, src\n    call rt_strcpy\n    mov r1, r0",
            '.section .rodata\nsrc:\n    .asciz "hello"\n'
            ".section .data\ndst:\n    .space 16\n",
        )
        assert result.exit_status == 5


class TestOpenbsdPersonality:
    def test_mmap_shifts_through_indirection(self):
        source = """
.section .text
.global _start
_start:
    li r1, 0
    li r2, 8192
    li r3, 3
    li r4, 0x22
    li r5, 0xFFFFFFFF
    call sys_mmap
    ; the returned mapping must be writable
    mov r14, r0
    li r9, 7
    st r9, [r14+0]
    ld r1, [r14+0]
    call sys_exit
""" + runtime_source("openbsd", ("mmap", "exit"))
        result = Kernel().run(assemble(source))
        assert result.exit_status == 7

    def test_openbsd_close_still_works_at_runtime(self):
        # The disassembler cannot identify it, but the call itself is
        # perfectly functional (which is why Systrace observes it).
        source = """
.section .text
.global _start
_start:
    li r1, path
    li r2, 0x42
    li r3, 0x1a4
    call sys_open
    mov r14, r0
    mov r1, r14
    call sys_close
    mov r1, r14
    call sys_close
    ; second close fails with EBADF: proves the first one worked
    xori r1, r0, 0xFFFFFFFF
    addi r1, r1, 1
    call sys_exit
.section .rodata
path:
    .asciz "/tmp/x"
""" + runtime_source("openbsd", ("open", "close", "exit"))
        result = Kernel().run(assemble(source))
        from repro.kernel.errors import Errno

        assert result.exit_status == int(Errno.EBADF)
