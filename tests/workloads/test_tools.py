"""The mini-tool corpus really works against the VFS."""

import pytest

from repro.crypto import Key
from repro.installer import install
from repro.kernel import Kernel
from repro.workloads.tools import TOOLS, build_tool

KEY = Key.from_passphrase("tools-tests", provider="fast-hmac")


@pytest.fixture
def kernel():
    kernel = Kernel(key=KEY)
    kernel.vfs.write_file("/tmp/a.txt", b"delta\nalpha\ncharlie\nbravo\n")
    kernel.vfs.write_file("/tmp/b.txt", b"aaaabbbcccccccd")
    return kernel


def run(kernel, name, argv, **kwargs):
    return kernel.run(build_tool(name), argv=[name] + argv, **kwargs)


class TestTools:
    def test_cat(self, kernel):
        result = run(kernel, "cat", ["/tmp/a.txt"])
        assert result.ok and result.stdout == b"delta\nalpha\ncharlie\nbravo\n"

    def test_cat_multiple(self, kernel):
        result = run(kernel, "cat", ["/tmp/b.txt", "/tmp/b.txt"])
        assert result.stdout == b"aaaabbbcccccccd" * 2

    def test_cat_missing_fails(self, kernel):
        assert run(kernel, "cat", ["/tmp/ghost"]).exit_status == 1

    def test_cp(self, kernel):
        assert run(kernel, "cp", ["/tmp/a.txt", "/tmp/copy"]).ok
        assert kernel.vfs.read_file("/tmp/copy") == kernel.vfs.read_file("/tmp/a.txt")

    def test_mv(self, kernel):
        assert run(kernel, "mv", ["/tmp/a.txt", "/tmp/moved"]).ok
        assert kernel.vfs.exists("/tmp/moved")
        assert not kernel.vfs.exists("/tmp/a.txt")

    def test_rm(self, kernel):
        assert run(kernel, "rm", ["/tmp/a.txt", "/tmp/b.txt"]).ok
        assert not kernel.vfs.exists("/tmp/a.txt")

    def test_mkdir(self, kernel):
        assert run(kernel, "mkdir", ["/tmp/x", "/tmp/x/y"]).ok
        assert kernel.vfs.lookup("/tmp/x/y").is_dir

    def test_chmod_parses_octal(self, kernel):
        assert run(kernel, "chmod", ["750", "/tmp/a.txt"]).ok
        assert kernel.vfs.lookup("/tmp/a.txt").mode == 0o750

    def test_chmod_bad_mode_fails(self, kernel):
        assert run(kernel, "chmod", ["89x", "/tmp/a.txt"]).exit_status == 1

    def test_ls(self, kernel):
        result = run(kernel, "ls", ["/tmp"])
        assert result.stdout == b"a.txt\nb.txt\n"

    def test_sort(self, kernel):
        result = run(kernel, "sort", ["/tmp/a.txt"])
        assert result.stdout == b"alpha\nbravo\ncharlie\ndelta\n"

    def test_wc(self, kernel):
        result = run(kernel, "wc", ["/tmp/a.txt"])
        assert result.stdout == b"4 26\n"

    def test_tar_untar_round_trip(self, kernel):
        assert run(kernel, "tar", ["/tmp/x.star", "/tmp/a.txt", "/tmp/b.txt"]).ok
        original = kernel.vfs.read_file("/tmp/a.txt")
        kernel.vfs.write_file("/tmp/a.txt", b"clobbered")
        assert run(kernel, "untar", ["/tmp/x.star"]).ok
        assert kernel.vfs.read_file("/tmp/a.txt") == original

    def test_gzip_round_trip(self, kernel):
        original = kernel.vfs.read_file("/tmp/b.txt")
        assert run(kernel, "gzip", ["/tmp/b.txt"]).ok
        assert not kernel.vfs.exists("/tmp/b.txt")
        compressed = kernel.vfs.read_file("/tmp/b.txt.gz")
        assert len(compressed) < len(original)
        assert run(kernel, "gunzip", ["/tmp/b.txt.gz"]).ok
        assert kernel.vfs.read_file("/tmp/b.txt.gz.out") == original

    def test_chdir_prints_cwd(self, kernel):
        assert run(kernel, "chdir", ["/etc"]).stdout == b"/etc"

    def test_unknown_tool_rejected(self):
        with pytest.raises(KeyError):
            build_tool("emacs")

    def test_startup_work_charged(self, kernel):
        slow = build_tool("cat", startup_work=1_000_000)
        fast = build_tool("cat")
        slow_run = kernel.run(slow, argv=["cat", "/tmp/b.txt"])
        fast_run = kernel.run(fast, argv=["cat", "/tmp/b.txt"])
        assert slow_run.cycles - fast_run.cycles == 1_000_000


class TestToolsAuthenticated:
    """Every tool must also run correctly after installation."""

    @pytest.mark.parametrize("name", TOOLS)
    def test_installed_tool_runs(self, kernel, name):
        installed = install(build_tool(name), KEY)
        argv = {
            "cat": ["/tmp/a.txt"],
            "cp": ["/tmp/a.txt", "/tmp/c"],
            "mv": ["/tmp/b.txt", "/tmp/m"],
            "rm": ["/tmp/a.txt"],
            "mkdir": ["/tmp/d"],
            "chmod": ["644", "/tmp/a.txt"],
            "chdir": ["/etc"],
            "ls": ["/tmp"],
            "tar": ["/tmp/t.star", "/tmp/a.txt"],
            "untar": ["/tmp/t.star"],
            "gzip": ["/tmp/a.txt"],
            "gunzip": ["/tmp/a.txt.gz"],
            "sort": ["/tmp/a.txt"],
            "wc": ["/tmp/a.txt"],
            "sh": [],  # empty stdin: the shell reads nothing and exits
            "grep": ["alpha", "/tmp/a.txt"],
            "head": ["/tmp/a.txt"],
        }[name]
        if name == "untar":
            kernel.run(
                install(build_tool("tar"), KEY).binary,
                argv=["tar", "/tmp/t.star", "/tmp/a.txt"],
            )
        if name == "gunzip":
            kernel.run(
                install(build_tool("gzip"), KEY).binary,
                argv=["gzip", "/tmp/a.txt"],
            )
        result = kernel.run(installed.binary, argv=[name] + argv)
        assert not result.killed, result.kill_reason
        assert result.exit_status == 0


class TestGrepHead:
    def test_grep_matches(self, kernel):
        kernel.vfs.write_file("/tmp/g.txt", b"alpha one\nbeta\ngamma one\n")
        result = run(kernel, "grep", ["one", "/tmp/g.txt"])
        assert result.ok
        assert result.stdout == b"alpha one\ngamma one\n"

    def test_grep_no_match(self, kernel):
        kernel.vfs.write_file("/tmp/g.txt", b"alpha\nbeta\n")
        result = run(kernel, "grep", ["zzz", "/tmp/g.txt"])
        assert result.ok
        assert result.stdout == b""

    def test_grep_needle_spanning_lines_not_matched(self, kernel):
        kernel.vfs.write_file("/tmp/g.txt", b"ab\ncd\n")
        result = run(kernel, "grep", ["b\nc", "/tmp/g.txt"])
        # argv strings cannot carry newlines through the shell-less
        # harness anyway, but a needle longer than any line must not
        # match across boundaries.
        assert result.stdout == b""

    def test_grep_last_line_without_newline(self, kernel):
        kernel.vfs.write_file("/tmp/g.txt", b"xx match")
        result = run(kernel, "grep", ["match", "/tmp/g.txt"])
        assert result.stdout == b"xx match"

    def test_head_truncates_to_five_lines(self, kernel):
        body = b"".join(b"line %d\n" % i for i in range(10))
        kernel.vfs.write_file("/tmp/h.txt", body)
        result = run(kernel, "head", ["/tmp/h.txt"])
        assert result.stdout == b"".join(b"line %d\n" % i for i in range(5))

    def test_head_short_file(self, kernel):
        kernel.vfs.write_file("/tmp/h.txt", b"only\n")
        result = run(kernel, "head", ["/tmp/h.txt"])
        assert result.stdout == b"only\n"

    def test_grep_installed(self, kernel):
        from repro.installer import install

        kernel.vfs.write_file("/tmp/g.txt", b"alpha one\nbeta\n")
        installed = install(build_tool("grep"), KEY)
        result = kernel.run(installed.binary, argv=["grep", "one", "/tmp/g.txt"])
        assert not result.killed
        assert result.stdout == b"alpha one\n"
