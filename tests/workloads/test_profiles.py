"""Profile programs reproduce the published static structure."""

import pytest

from repro.crypto import Key
from repro.installer import generate_policy_only, install
from repro.kernel import Kernel
from repro.workloads.profiles import (
    PROFILE_PROGRAMS,
    build_profile_program,
    plan_sites,
    profile_syscalls,
)

KEY = Key.from_passphrase("profile-tests", provider="fast-hmac")


class TestInventories:
    @pytest.mark.parametrize("name", sorted(PROFILE_PROGRAMS))
    def test_linux_distinct_call_count_matches_target(self, name):
        assert len(profile_syscalls(name, "linux")) == PROFILE_PROGRAMS[name].target.calls

    def test_table1_openbsd_counts(self):
        # Table 1: ASC OpenBSD counts are 31 / 51 / 63 (inventory minus
        # the undisassemblable close).
        for name, expected in (("bison", 31), ("calc", 51), ("screen", 63)):
            inventory = len(profile_syscalls(name, "openbsd"))
            assert inventory - 1 == expected

    def test_no_duplicate_calls(self):
        for name in PROFILE_PROGRAMS:
            calls = profile_syscalls(name, "linux")
            assert len(calls) == len(set(calls))


class TestPlanning:
    def test_site_totals(self):
        for name, profile in PROFILE_PROGRAMS.items():
            plans = plan_sites(profile, "linux")
            assert len(plans) == profile.target.sites

    def test_one_live_exit(self):
        plans = plan_sites(PROFILE_PROGRAMS["bison"], "linux")
        live = [p for p in plans if p.producer == "exit"]
        assert len(live) == 1
        assert live[0].args == ["const"]


@pytest.mark.parametrize("name", sorted(PROFILE_PROGRAMS))
class TestTable3Exact:
    """The linux build must land the published Table 3 row exactly."""

    def test_coverage_row(self, name):
        target = PROFILE_PROGRAMS[name].target
        policy = generate_policy_only(build_profile_program(name, "linux"))
        assert policy.coverage_row() == {
            "sites": target.sites,
            "calls": target.calls,
            "args": target.args,
            "o/p": target.outputs,
            "auth": target.auth,
            "mv": target.mv,
            "fds": target.fds,
        }


class TestPersonalityEffects:
    def test_openbsd_close_unidentified(self):
        policy = generate_policy_only(build_profile_program("bison", "openbsd"))
        assert policy.unidentified_sites
        assert "close" not in policy.distinct_syscalls()

    def test_openbsd_mmap_via_indirection(self):
        policy = generate_policy_only(build_profile_program("bison", "openbsd"))
        assert "__syscall" in policy.distinct_syscalls()
        assert "mmap" not in policy.distinct_syscalls()

    def test_linux_has_direct_calls(self):
        policy = generate_policy_only(build_profile_program("bison", "linux"))
        assert "close" in policy.distinct_syscalls()
        assert "mmap" in policy.distinct_syscalls()
        assert "__syscall" not in policy.distinct_syscalls()


class TestRuntimeBehaviour:
    def test_common_mode_runs_clean(self):
        kernel = Kernel(key=KEY)
        result = kernel.run(build_profile_program("bison", "linux"), argv=["bison"])
        assert result.exit_status == 0
        assert not result.killed

    def test_full_mode_exercises_rare_calls(self):
        kernel = Kernel(key=KEY)
        common = kernel.run(build_profile_program("bison", "linux"), argv=["bison"])
        full = kernel.run(
            build_profile_program("bison", "linux"), argv=["bison", "full"]
        )
        assert full.syscalls > common.syscalls

    def test_authenticated_profile_runs_clean(self):
        # The profile program passes its own generated policies — the
        # no-false-alarm property of conservative static analysis.
        installed = install(build_profile_program("bison", "linux"), KEY)
        kernel = Kernel(key=KEY)
        for argv in (["bison"], ["bison", "full"]):
            result = kernel.run(installed.binary, argv=argv)
            assert not result.killed, result.kill_reason
            assert result.exit_status == 0
