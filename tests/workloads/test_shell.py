"""The guest shell and the spawn syscall."""

import pytest

from repro.crypto import Key
from repro.installer import InstallerOptions, install
from repro.kernel import EnforcementMode, Kernel
from repro.workloads.tools import build_tool

KEY = Key.from_passphrase("shell-tests", provider="fast-hmac")


@pytest.fixture
def kernel():
    kernel = Kernel(key=KEY)
    kernel.vfs.write_file("/tmp/data.txt", b"b\na\n")
    kernel.register_binary("/bin/cat", build_tool("cat"))
    kernel.register_binary("/bin/sort", build_tool("sort"))
    kernel.register_binary("/bin/mkdir", build_tool("mkdir"))
    return kernel


def run_script(kernel, script: bytes):
    return kernel.run(build_tool("sh"), argv=["sh"], stdin=script)


class TestShell:
    def test_single_command(self, kernel):
        result = run_script(kernel, b"/bin/cat /tmp/data.txt\n")
        assert result.stdout == b"b\na\nok\n"

    def test_multiple_commands(self, kernel):
        result = run_script(kernel, b"/bin/sort /tmp/data.txt\n/bin/cat /tmp/data.txt\n")
        assert result.stdout == b"a\nb\nok\nb\na\nok\n"

    def test_command_with_arguments(self, kernel):
        result = run_script(kernel, b"/bin/mkdir /tmp/d1 /tmp/d2\n")
        assert result.stdout.endswith(b"ok\n")
        assert kernel.vfs.exists("/tmp/d1")
        assert kernel.vfs.exists("/tmp/d2")

    def test_failed_command_reports_err(self, kernel):
        result = run_script(kernel, b"/bin/cat /tmp/missing\n")
        assert result.stdout == b"ERR\n"
        assert result.exit_status == 0  # the shell itself continues

    def test_missing_program_reports_err(self, kernel):
        result = run_script(kernel, b"/bin/nosuch\n")
        assert result.stdout == b"ERR\n"

    def test_blank_lines_skipped(self, kernel):
        result = run_script(kernel, b"\n\n/bin/cat /tmp/data.txt\n\n")
        assert result.stdout == b"b\na\nok\n"

    def test_empty_script(self, kernel):
        assert run_script(kernel, b"").stdout == b""

    def test_script_without_trailing_newline(self, kernel):
        result = run_script(kernel, b"/bin/cat /tmp/data.txt")
        assert result.stdout == b"b\na\nok\n"


class TestProtectedSystem:
    def test_fully_authenticated_pipeline(self):
        kernel = Kernel(key=KEY, mode=EnforcementMode.ENFORCE)
        kernel.vfs.write_file("/tmp/data.txt", b"2\n1\n")
        for pid, name in enumerate(("sh", "cat", "sort"), start=1):
            installed = install(
                build_tool(name), KEY, InstallerOptions(program_id=pid)
            )
            kernel.register_binary(f"/bin/{name}", installed.binary)
        shell = kernel.vfs.read_file("/bin/sh")
        from repro.binfmt import SefBinary

        result = kernel.run(
            SefBinary.from_bytes(shell),
            argv=["sh"],
            stdin=b"/bin/sort /tmp/data.txt\n/bin/cat /tmp/data.txt\n",
        )
        assert not result.killed, result.kill_reason
        assert result.stdout == b"1\n2\nok\n2\n1\nok\n"

    def test_enforcing_kernel_blocks_legacy_spawn(self):
        kernel = Kernel(key=KEY, mode=EnforcementMode.ENFORCE)
        installed_shell = install(build_tool("sh"), KEY)
        kernel.register_binary("/bin/legacy", build_tool("cat"))
        result = kernel.run(
            installed_shell.binary, argv=["sh"], stdin=b"/bin/legacy\n"
        )
        assert result.stdout == b"ERR\n"
        assert any(e.kind == "blocked" for e in kernel.audit.events)
