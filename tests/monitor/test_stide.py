"""stide sequence monitor."""

from hypothesis import given
from hypothesis import strategies as st

from repro.monitor import StideModel

NORMAL = ["open", "read", "read", "write", "close", "exit"]


class TestTraining:
    def test_accepts_training_trace(self):
        model = StideModel(window=3)
        model.train(NORMAL)
        assert model.accepts(NORMAL)

    def test_rejects_unseen_sequence(self):
        model = StideModel(window=3)
        model.train(NORMAL)
        attack = ["open", "write", "exit"]  # never-seen ordering
        assert not model.accepts(attack)
        assert model.anomaly_rate(attack) > 0

    def test_short_trace_handled(self):
        model = StideModel(window=6)
        model.train(["open"])
        assert model.accepts(["open"])
        assert not model.accepts(["close"])

    def test_train_many(self):
        model = StideModel(window=2)
        model.train_many([["a", "b"], ["b", "c"]])
        assert model.accepts(["a", "b"])
        assert model.accepts(["b", "c"])
        assert not model.accepts(["c", "a"])

    def test_anomaly_indices(self):
        model = StideModel(window=2)
        model.train(["a", "b", "c"])
        anomalies = model.anomalies(["a", "b", "x", "c"])
        assert anomalies == [1, 2]

    def test_mimicry_evades_stide(self):
        # The §2.2 observation: an attack composed entirely of learned
        # windows is invisible to sequence monitoring.
        model = StideModel(window=2)
        model.train(["open", "read", "write", "open", "unlink", "exit"])
        mimicry = ["open", "read", "write", "open", "unlink", "exit"]
        assert model.accepts(mimicry)

    def test_empty_trace(self):
        model = StideModel()
        assert model.accepts([])
        assert model.anomaly_rate([]) == 0.0


class TestProperties:
    @given(trace=st.lists(st.sampled_from("abcdef"), max_size=30))
    def test_training_trace_always_accepted(self, trace):
        model = StideModel(window=4)
        model.train(trace)
        assert model.accepts(trace)

    @given(
        trace=st.lists(st.sampled_from("abc"), min_size=6, max_size=20),
        novel=st.sampled_from("xyz"),
        where=st.integers(min_value=0, max_value=19),
    )
    def test_novel_symbol_always_detected(self, trace, novel, where):
        model = StideModel(window=3)
        model.train(trace)
        mutated = list(trace)
        mutated[where % len(mutated)] = novel
        assert not model.accepts(mutated)


class TestStideEnforcement:
    """Runtime enforcement via the kernel tracer hook."""

    PROGRAM = """
.section .text
.global _start
_start:
    mov r12, r1
    call sys_getpid
    call sys_getuid
    cmpi r12, 2
    blt finish
    call sys_getgid          ; rare path
finish:
    li r1, 0
    call sys_exit
"""

    def _binary(self):
        from repro.asm import assemble
        from repro.workloads.runtime import runtime_source

        return assemble(
            self.PROGRAM + runtime_source(
                "linux", ("getpid", "getuid", "getgid", "exit")
            ),
            metadata={"program": "stide-demo"},
        )

    def _trained_model(self, argvs):
        from repro.kernel import Kernel
        from repro.monitor import StideModel, SyscallTracer

        model = StideModel(window=2)
        for argv in argvs:
            kernel = Kernel()
            tracer = SyscallTracer()
            kernel.tracer = tracer
            kernel.run(self._binary(), argv=argv)
            model.train(tracer.calls)
        return model

    def test_conforming_run_allowed(self):
        from repro.kernel import Kernel
        from repro.monitor.stide import StideMonitor

        model = self._trained_model([["d"]])
        kernel = Kernel()
        StideMonitor(model, kernel)
        result = kernel.run(self._binary(), argv=["d"])
        assert result.ok

    def test_rare_path_false_alarm(self):
        from repro.kernel import Kernel
        from repro.monitor.stide import StideMonitor

        model = self._trained_model([["d"]])
        kernel = Kernel()
        StideMonitor(model, kernel)
        result = kernel.run(self._binary(), argv=["d", "full"])
        assert result.killed
        assert "stide" in result.kill_reason

    def test_trained_rare_path_allowed(self):
        from repro.kernel import Kernel
        from repro.monitor.stide import StideMonitor

        model = self._trained_model([["d"], ["d", "full"]])
        kernel = Kernel()
        StideMonitor(model, kernel)
        assert kernel.run(self._binary(), argv=["d", "full"]).ok
