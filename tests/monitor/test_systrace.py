"""The Systrace-like training baseline (§2, §4.2)."""

import pytest

from repro.asm import assemble
from repro.monitor import FSREAD, FSWRITE, SystraceMonitor, train_policy
from repro.workloads.runtime import runtime_source

#: A program with a rare path: mode argument switches on extra calls.
PROGRAM = """
.section .text
.global _start
_start:
    mov r12, r1
    ; common path: getpid
    call sys_getpid
    cmpi r12, 2
    blt finish
    ; rare path (only with an extra argv): gettimeofday + kill probe
    li r1, tv
    li r2, 0
    call sys_gettimeofday
    call sys_getpid
    mov r1, r0
    li r2, 0
    call sys_kill
finish:
    li r1, f
    li r2, 0x241
    li r3, 0x1a4
    call sys_open
    li r1, 0
    call sys_exit
.section .rodata
f:
    .asciz "/tmp/out"
.section .bss
tv:
    .space 8
""" + runtime_source(
    "linux", ("getpid", "gettimeofday", "kill", "open", "exit")
)


@pytest.fixture(scope="module")
def binary():
    return assemble(PROGRAM, metadata={"program": "trainee"})


class TestTraining:
    def test_common_path_learned(self, binary):
        policy = train_policy(binary, [["trainee"]], hand_edit=False)
        assert {"getpid", "open", "exit"} <= policy.allowed

    def test_rare_path_missed(self, binary):
        policy = train_policy(binary, [["trainee"]], hand_edit=False)
        assert "gettimeofday" not in policy.allowed
        assert "kill" not in policy.allowed

    def test_rare_path_learned_when_exercised(self, binary):
        policy = train_policy(binary, [["trainee"], ["trainee", "full"]], hand_edit=False)
        assert "gettimeofday" in policy.allowed
        assert "kill" in policy.allowed

    def test_hand_edit_adds_alias_sets(self, binary):
        policy = train_policy(binary, [["trainee"]])
        assert FSREAD <= policy.allowed
        assert FSWRITE <= policy.allowed
        assert "mkdir" in policy.via_alias  # unneeded, admitted by alias

    def test_via_alias_disjoint_from_observed(self, binary):
        policy = train_policy(binary, [["trainee"]])
        assert "open" not in policy.via_alias


class TestEnforcement:
    def test_conforming_run_allowed(self, binary):
        policy = train_policy(binary, [["trainee"]])
        monitor = SystraceMonitor(policy)
        result = monitor.run(binary, argv=["trainee"])
        assert result.ok
        assert monitor.checked_calls == result.syscalls

    def test_rare_path_false_alarm(self, binary):
        # The paper's core criticism of training: the legitimate rare
        # path trips the monitor.
        policy = train_policy(binary, [["trainee"]])
        monitor = SystraceMonitor(policy)
        result = monitor.run(binary, argv=["trainee", "full"])
        assert result.killed
        assert "false alarm" in monitor.audit.kills()[0].reason

    def test_daemon_cost_charged(self, binary):
        policy = train_policy(binary, [["trainee"]])
        monitor = SystraceMonitor(policy)
        result = monitor.run(binary, argv=["trainee"])
        assert monitor.daemon_cycles > 0
        # Every call pays the user-space round trip.
        from repro.monitor.systrace import CONTEXT_SWITCH_COST, POLICY_LOOKUP_COST

        assert monitor.daemon_cycles == result.syscalls * (
            2 * CONTEXT_SWITCH_COST + POLICY_LOOKUP_COST
        )


class TestIndirectionHiding:
    def test_syscall_wrapper_recorded_as_inner_call(self):
        source = """
.section .text
.global _start
_start:
    li r1, 0
    li r2, 4096
    li r3, 3
    li r4, 0x22
    li r5, 0xFFFFFFFF
    call sys_mmap
    li r1, 0
    call sys_exit
""" + runtime_source("openbsd", ("mmap", "exit"))
        binary = assemble(source, metadata={"program": "m", "personality": "openbsd"})
        policy = train_policy(binary, [["m"]], hand_edit=False)
        assert "mmap" in policy.allowed
        assert "__syscall" not in policy.allowed


class TestPathPolicies:
    """§2.1: Systrace constrains argument values (paths) too."""

    OPENER = """
.section .text
.global _start
_start:
    li r11, 1
    shli r9, r11, 2
    add r9, r2, r9
    ld r1, [r9+0]        ; argv[1]
    li r2, 0
    call sys_open
    li r1, 0
    call sys_exit
""" + runtime_source("linux", ("open", "exit"))

    def _binary(self):
        return assemble(self.OPENER, metadata={"program": "opener"})

    def _factory(self):
        from repro.kernel import Kernel

        def make():
            kernel = Kernel()
            kernel.vfs.write_file("/etc/motd", b"m")
            kernel.vfs.write_file("/etc/passwd", b"p")
            return kernel

        return make

    def test_paths_learned(self):
        policy = train_policy(
            self._binary(), [["opener", "/etc/motd"]],
            record_paths=True, kernel_factory=self._factory(),
        )
        assert policy.path_rules["open"] == frozenset({"/etc/motd"})

    def test_learned_path_allowed(self):
        policy = train_policy(
            self._binary(), [["opener", "/etc/motd"]],
            record_paths=True, kernel_factory=self._factory(),
        )
        monitor = SystraceMonitor(policy)
        monitor.vfs.write_file("/etc/motd", b"m")
        result = monitor.run(self._binary(), argv=["opener", "/etc/motd"])
        assert result.ok

    def test_unlearned_path_denied(self):
        policy = train_policy(
            self._binary(), [["opener", "/etc/motd"]],
            record_paths=True, kernel_factory=self._factory(),
        )
        monitor = SystraceMonitor(policy)
        monitor.vfs.write_file("/etc/passwd", b"p")
        result = monitor.run(self._binary(), argv=["opener", "/etc/passwd"])
        assert result.killed
        assert "path" in monitor.audit.kills()[0].reason

    def test_symlink_race_caught_by_normalization(self):
        policy = train_policy(
            self._binary(), [["opener", "/tmp/foo"]],
            record_paths=True, kernel_factory=self._factory(),
        )
        # Training saw /tmp/foo as a missing plain file; the attacker
        # now plants a symlink to /etc/passwd at the same name.
        monitor = SystraceMonitor(policy)
        monitor.vfs.write_file("/etc/passwd", b"p")
        monitor.vfs.symlink("/etc/passwd", "/tmp/foo")
        result = monitor.run(self._binary(), argv=["opener", "/tmp/foo"])
        assert result.killed

    def test_admin_pattern_allows_family(self):
        policy = train_policy(
            self._binary(), [["opener", "/etc/motd"]],
            record_paths=True, kernel_factory=self._factory(),
        )
        policy.path_patterns["open"] = ("/tmp/*",)
        monitor = SystraceMonitor(policy)
        monitor.vfs.write_file("/tmp/scratch-42", b"x")
        result = monitor.run(self._binary(), argv=["opener", "/tmp/scratch-42"])
        assert result.ok
