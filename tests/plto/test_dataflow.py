"""Constant propagation and argument classification (§4.1)."""

from repro.asm import assemble
from repro.isa import SymbolRef
from repro.plto import build_cfg, build_call_graph, classify_syscall_args, disassemble
from repro.plto.dataflow import ArgValue


def _sites(source: str):
    graph = build_call_graph(build_cfg(disassemble(assemble(source))))
    return list(classify_syscall_args(graph).values())


class TestLattice:
    def test_join_identities(self):
        const = ArgValue.const(5)
        assert ArgValue.bottom().join(const) == const
        assert const.join(ArgValue.bottom()) == const
        assert const.join(ArgValue.top()) == ArgValue.top()

    def test_join_small_sets(self):
        a, b = ArgValue.const(1), ArgValue.const(2)
        joined = a.join(b)
        assert joined.is_multi
        assert joined.values == frozenset({1, 2})

    def test_join_overflows_to_top(self):
        acc = ArgValue.const(0)
        for value in range(1, 6):
            acc = acc.join(ArgValue.const(value))
        assert acc == ArgValue.top()

    def test_fd_joins_union_sites(self):
        joined = ArgValue.fd_from(1).join(ArgValue.fd_from(2))
        assert joined.is_fd
        assert joined.fd_sites == frozenset({1, 2})

    def test_fd_meets_const_is_top(self):
        assert ArgValue.fd_from(1).join(ArgValue.const(1)) == ArgValue.top()


class TestClassification:
    def test_immediate_argument(self):
        (site,) = _sites("""
.section .text
_start:
    li r0, 20
    li r1, 42
    sys
    halt
""")
        assert site.number == 20
        assert site.args[0].single == 42

    def test_string_address_argument(self):
        (site,) = _sites("""
.section .text
_start:
    li r0, 5
    li r1, path
    sys
    halt
.section .rodata
path:
    .asciz "/etc/motd"
""")
        assert site.args[0].single == SymbolRef("path")

    def test_unknown_from_load(self):
        (site,) = _sites("""
.section .text
_start:
    li r0, 4
    li r9, cell
    ld r1, [r9+0]
    sys
    halt
.section .data
cell:
    .word 7
""")
        assert site.args[0] == ArgValue.top()

    def test_constant_folding_through_alu(self):
        (site,) = _sites("""
.section .text
_start:
    li r0, 4
    li r1, 6
    muli r1, r1, 7
    sys
    halt
""")
        assert site.args[0].single == 42

    def test_symbol_plus_offset_folds(self):
        (site,) = _sites("""
.section .text
_start:
    li r0, 4
    li r1, table
    addi r1, r1, 8
    sys
    halt
.section .data
table:
    .space 16
""")
        assert site.args[0].single == SymbolRef("table", 8)

    def test_multi_value_from_branch(self):
        (site,) = [
            s for s in _sites("""
.section .text
_start:
    li r0, 4
    cmpi r9, 0
    beq other
    li r1, 3
    jmp call_it
other:
    li r1, 5
call_it:
    sys
    halt
""")
        ]
        assert site.args[0].is_multi
        assert site.args[0].values == frozenset({3, 5})

    def test_fd_provenance_through_mov(self):
        sites = _sites("""
.section .text
_start:
    li r0, 5
    li r1, path
    sys              ; open -> fd in r0
    mov r4, r0
    li r0, 3
    mov r1, r4
    sys              ; read(fd, ...)
    halt
.section .rodata
path:
    .asciz "/x"
""")
        read_site = [s for s in sites if s.number == 3][0]
        open_site = [s for s in sites if s.number == 5][0]
        assert read_site.args[0].is_fd
        assert read_site.args[0].fd_sites == frozenset({open_site.block_index + 1})

    def test_call_clobbers_everything(self):
        sites = _sites("""
.section .text
.global _start
_start:
    li r1, 7
    call helper
    li r0, 4
    sys              ; r1 no longer known
    halt
helper:
    ret
""")
        (site,) = [s for s in sites if s.number == 4]
        assert site.args[0] == ArgValue.top()

    def test_trap_clobbers_only_r0(self):
        sites = _sites("""
.section .text
_start:
    li r0, 20
    li r1, 9
    sys
    li r0, 4
    sys              ; r1 survives the previous trap
    halt
""")
        write_site = [s for s in sites if s.number == 4][0]
        assert write_site.args[0].single == 9

    def test_unknown_syscall_number(self):
        (site,) = _sites("""
.section .text
_start:
    li r9, cell
    ld r0, [r9+0]
    sys
    halt
.section .data
cell:
    .word 20
""")
        assert site.number is None

    def test_non_fd_result_is_top(self):
        sites = _sites("""
.section .text
_start:
    li r0, 20
    sys              ; getpid result is not an fd
    li r1, 0
    mov r2, r0
    li r0, 4
    sys
    halt
""")
        write_site = [s for s in sites if s.number == 4][0]
        assert write_site.args[1] == ArgValue.top()
