"""CFG construction and the syscall ordering graph."""

import pytest

from repro.asm import assemble
from repro.plto import build_cfg, build_call_graph, disassemble, syscall_ordering
from repro.plto.callgraph import ENTRY_BLOCK_ID
from repro.plto.cfg import CfgError


def _cfg(source: str):
    return build_cfg(disassemble(assemble(source)))


class TestBasicBlocks:
    def test_straight_line_is_one_block(self):
        cfg = _cfg(".section .text\n_start:\n  li r1, 1\n  li r2, 2\n  halt")
        assert len(cfg.blocks) == 1

    def test_branch_splits_blocks(self):
        cfg = _cfg("""
.section .text
_start:
    cmpi r1, 0
    beq target
    li r2, 1
target:
    halt
""")
        assert len(cfg.blocks) == 3

    def test_trap_terminates_block(self):
        cfg = _cfg(".section .text\n_start:\n  sys\n  sys\n  halt")
        assert len(cfg.blocks) == 3
        assert cfg.syscall_blocks() == [0, 1]

    def test_conditional_has_two_successors(self):
        cfg = _cfg("""
.section .text
_start:
    cmpi r1, 0
    beq done
    li r2, 1
done:
    halt
""")
        assert sorted(cfg.blocks[0].successors) == [1, 2]

    def test_jmp_has_one_successor(self):
        cfg = _cfg("""
.section .text
_start:
    jmp over
    li r1, 1
over:
    halt
""")
        assert cfg.blocks[0].successors == [2]

    def test_predecessors_mirror_successors(self):
        cfg = _cfg("""
.section .text
_start:
    cmpi r1, 0
    beq done
    li r2, 1
done:
    halt
""")
        assert sorted(cfg.blocks[2].predecessors) == [0, 1]

    def test_entry_block_found(self):
        cfg = _cfg(".section .text\nhelper:\n  ret\n.global _start\n_start:\n  halt")
        assert cfg.entry_block == cfg.block_of_label("_start")

    def test_computed_branch_rejected(self):
        # Branch targets must be symbolic for rewriting to be safe.
        binary = assemble(".section .text\n_start:\n  jmp over\nover:\n  halt")
        unit = disassemble(binary)
        unit.insns[0].instruction.imm = 0x8048008  # concretize the target
        with pytest.raises(CfgError):
            build_cfg(unit)


class TestCallGraph:
    SOURCE = """
.section .text
.global _start
_start:
    call first
    call second
    halt
first:
    sys
    ret
second:
    sys
    ret
"""

    def test_functions_discovered(self):
        graph = build_call_graph(_cfg(self.SOURCE))
        assert set(graph.functions) == {"_start", "first", "second"}

    def test_calls_recorded(self):
        graph = build_call_graph(_cfg(self.SOURCE))
        callees = {callee for _, callee in graph.calls}
        assert callees == {"first", "second"}

    def test_return_blocks(self):
        graph = build_call_graph(_cfg(self.SOURCE))
        assert len(graph.functions["first"].return_blocks) == 1


class TestSyscallOrdering:
    def test_linear_chain(self):
        cfg = _cfg(".section .text\n_start:\n  sys\n  sys\n  halt")
        order = syscall_ordering(build_call_graph(cfg))
        assert order[1] == frozenset({ENTRY_BLOCK_ID})
        assert order[2] == frozenset({1})

    def test_branch_joins_predecessors(self):
        cfg = _cfg("""
.section .text
_start:
    cmpi r1, 0
    beq right
    sys             ; block id 2
    jmp after
right:
    sys             ; block id 4
after:
    sys             ; joined: preds = {2, 4}
    halt
""")
        order = syscall_ordering(build_call_graph(cfg))
        values = list(order.values())
        joined = [v for v in values if len(v) == 2]
        assert len(joined) == 1

    def test_loop_allows_self_predecessor(self):
        cfg = _cfg("""
.section .text
_start:
loop:
    sys
    cmpi r1, 0
    bne loop
    halt
""")
        order = syscall_ordering(build_call_graph(cfg))
        (syscall_block, preds), = [
            (k, v) for k, v in order.items()
        ]
        assert syscall_block in preds  # the loop back edge
        assert ENTRY_BLOCK_ID in preds

    def test_interprocedural_through_call(self):
        cfg = _cfg("""
.section .text
.global _start
_start:
    sys              ; A
    call helper
    sys              ; C: preceded by helper's B, not by A
    halt
helper:
    sys              ; B: preceded by A
    ret
""")
        order = syscall_ordering(build_call_graph(cfg))
        ids = sorted(order)
        a, c, b = ids[0], ids[1], ids[2]
        assert order[b] == frozenset({a})
        assert order[c] == frozenset({b})

    def test_call_may_or_may_not_run_callee_syscall(self):
        cfg = _cfg("""
.section .text
.global _start
_start:
    sys              ; A
    call helper
    sys              ; C
    halt
helper:
    cmpi r1, 0
    beq skip
    sys              ; B
skip:
    ret
""")
        order = syscall_ordering(build_call_graph(cfg))
        # C's predecessors: B (callee ran its call) or A (it did not).
        chains = [v for v in order.values() if len(v) == 2]
        assert len(chains) == 1


class TestIndirectCalls:
    def test_indirect_call_targets_all_functions(self):
        cfg = _cfg("""
.section .text
.global _start
_start:
    sys              ; A
    li r9, helper
    callr r9
    sys              ; C
    halt
helper:
    sys              ; B
    ret
other:
    sys              ; D
    ret
""")
        graph = build_call_graph(cfg)
        assert graph.indirect_call_blocks
        order = syscall_ordering(graph)
        # Conservatively, the indirect call may reach helper OR other,
        # so C's predecessors include both B and D.
        c_preds = max(order.values(), key=len)
        assert len(c_preds) >= 2
