"""Disassembly and reassembly: the lift/lower round trip."""

import pytest

from repro.asm import assemble
from repro.binfmt import link
from repro.isa import Instruction, SymbolRef
from repro.isa.opcodes import Op
from repro.plto import DisassemblyError, disassemble, reassemble
from repro.plto.ir import IrInsn

SOURCE = """
.section .text
.global _start
_start:
    li r1, msg
    li r2, 10
    call helper
    halt
helper:
    add r1, r1, r2
    ret
.section .rodata
msg:
    .asciz "0123456789"
.section .data
ptr:
    .word helper
"""


class TestDisassemble:
    def test_instruction_count(self):
        unit = disassemble(assemble(SOURCE))
        assert len(unit) == 6

    def test_symbols_restored(self):
        unit = disassemble(assemble(SOURCE))
        first = unit.insns[0].instruction
        assert first.imm == SymbolRef("msg")
        call = unit.insns[2].instruction
        assert call.imm == SymbolRef("helper")

    def test_labels_attached(self):
        unit = disassemble(assemble(SOURCE))
        assert unit.insns[0].labels == ["_start"]
        assert unit.insns[4].labels == ["helper"]

    def test_non_symbolic_imm_kept(self):
        unit = disassemble(assemble(SOURCE))
        assert unit.insns[1].instruction.imm == 10

    def test_ragged_text_rejected(self):
        binary = assemble(SOURCE)
        binary.sections[".text"].data.extend(b"\x00\x00")
        with pytest.raises(DisassemblyError):
            disassemble(binary)

    def test_undisassemblable_marker_respected(self):
        binary = assemble(SOURCE, metadata={"undisassemblable": "weird close"})
        with pytest.raises(DisassemblyError):
            disassemble(binary)


class TestReassemble:
    def test_identity_round_trip(self):
        binary = assemble(SOURCE)
        rebuilt = reassemble(disassemble(binary))
        assert rebuilt.sections[".text"].data == binary.sections[".text"].data
        assert rebuilt.symbols.keys() == binary.symbols.keys()
        assert link(rebuilt).entry == link(binary).entry

    def test_data_sections_copied_not_aliased(self):
        binary = assemble(SOURCE)
        rebuilt = reassemble(disassemble(binary))
        rebuilt.sections[".rodata"].data[0] = 0xFF
        assert binary.sections[".rodata"].data[0] != 0xFF

    def test_data_relocations_survive(self):
        binary = assemble(SOURCE)
        rebuilt = reassemble(disassemble(binary))
        image = link(rebuilt)
        helper = image.address_of("helper")
        data = image.segment(".data").data
        assert int.from_bytes(data[:4], "little") == helper

    def test_insertion_relocates_code(self):
        binary = assemble(SOURCE)
        unit = disassemble(binary)
        # Insert two NOPs before the CALL; the call target and the data
        # pointer must still resolve to `helper`'s *new* address.
        unit.insert(2, [IrInsn(Instruction(Op.NOP)), IrInsn(Instruction(Op.NOP))])
        image = link(reassemble(unit))
        helper = image.address_of("helper")
        assert helper == image.entry + 6 * 8  # shifted by 2 instructions
        call_imm = int.from_bytes(
            image.segment(".text").data[2 * 8 + 4 + 16 : 2 * 8 + 8 + 16], "little"
        )
        assert call_imm == helper

    def test_replace_keeps_labels(self):
        unit = disassemble(assemble(SOURCE))
        helper_index = unit.find_label("helper")
        unit.replace(helper_index, [IrInsn(Instruction(Op.NOP)),
                                    IrInsn(Instruction(Op.RET))])
        assert "helper" in unit.insns[helper_index].labels
        reassemble(unit).validate()

    def test_duplicate_label_rejected(self):
        unit = disassemble(assemble(SOURCE))
        unit.insns[3].labels.append("_start")
        with pytest.raises(DisassemblyError):
            reassemble(unit)

    def test_execution_equivalence_after_round_trip(self):
        from repro.kernel import Kernel

        source = """
.section .text
.global _start
_start:
    li r0, 1
    li r1, 42
    sys
"""
        binary = assemble(source)
        rebuilt = reassemble(disassemble(binary))
        assert Kernel().run(rebuilt).exit_status == 42


class TestFreshLabels:
    def test_fresh_labels_unique(self):
        unit = disassemble(assemble(SOURCE))
        names = {unit.fresh_label() for _ in range(10)}
        assert len(names) == 10
        assert all(name not in unit.binary.symbols for name in names)
