"""Stub inlining and baseline passes."""

from repro.asm import assemble
from repro.isa.opcodes import Op
from repro.kernel import Kernel
from repro.plto import (
    disassemble,
    inline_syscall_stubs,
    reassemble,
    remove_nops,
    run_baseline_passes,
)
from repro.plto.passes import remove_dead_li

STUBS = """
.section .text
.global _start
_start:
    li r1, 11
    call sys_exit
sys_exit:
    li r0, 1
    sys
    ret
"""


class TestInlining:
    def test_call_replaced_with_body(self):
        unit = disassemble(assemble(STUBS))
        report = inline_syscall_stubs(unit)
        assert report.sites_inlined == 1
        assert report.stubs == ["sys_exit"]
        ops = [insn.instruction.op for insn in unit.insns]
        assert Op.CALL not in ops
        assert Op.SYS in ops

    def test_dead_stub_removed(self):
        unit = disassemble(assemble(STUBS))
        report = inline_syscall_stubs(unit)
        assert report.stubs_removed == ["sys_exit"]
        assert "sys_exit" not in unit.binary.symbols

    def test_two_calls_two_sites(self):
        source = """
.section .text
.global _start
_start:
    call sys_getpid
    call sys_getpid
    halt
sys_getpid:
    li r0, 20
    sys
    ret
"""
        unit = disassemble(assemble(source))
        report = inline_syscall_stubs(unit)
        assert report.sites_inlined == 2
        ops = [i.instruction.op for i in unit.insns]
        assert ops.count(Op.SYS) == 2

    def test_non_stub_function_untouched(self):
        source = """
.section .text
.global _start
_start:
    call not_a_stub
    halt
not_a_stub:
    cmpi r1, 0
    beq skip
    sys
skip:
    ret
"""
        unit = disassemble(assemble(source))
        report = inline_syscall_stubs(unit)
        assert report.sites_inlined == 0
        ops = [i.instruction.op for i in unit.insns]
        assert Op.CALL in ops

    def test_semantics_preserved(self):
        unit = disassemble(assemble(STUBS))
        inline_syscall_stubs(unit)
        result = Kernel().run(reassemble(unit))
        assert result.exit_status == 11

    def test_indirect_calls_protect_stubs(self):
        source = """
.section .text
.global _start
_start:
    li r9, sys_exit
    call sys_exit
    callr r9
sys_exit:
    li r0, 1
    sys
    ret
"""
        unit = disassemble(assemble(source))
        report = inline_syscall_stubs(unit)
        assert report.stubs_removed == []
        assert "sys_exit" in unit.binary.symbols


class TestPasses:
    def test_nop_removal(self):
        unit = disassemble(
            assemble(".section .text\n_start:\n nop\n nop\n li r1, 3\n halt")
        )
        assert remove_nops(unit) == 2
        assert unit.insns[0].labels == ["_start"]
        assert Kernel().run(reassemble(unit)).exit_status == 3

    def test_dead_li_removed(self):
        unit = disassemble(
            assemble(".section .text\n_start:\n li r1, 9\n li r1, 5\n halt")
        )
        assert remove_dead_li(unit) == 1
        assert Kernel().run(reassemble(unit)).exit_status == 5

    def test_live_li_kept(self):
        unit = disassemble(
            assemble(
                ".section .text\n_start:\n li r1, 9\n mov r2, r1\n li r1, 5\n halt"
            )
        )
        assert remove_dead_li(unit) == 0

    def test_li_live_across_branch_kept(self):
        unit = disassemble(
            assemble("""
.section .text
_start:
    li r1, 9
    cmpi r9, 0
    beq skip
    li r1, 5
skip:
    halt
""")
        )
        assert remove_dead_li(unit) == 0
        # r9 starts 0, so the branch is taken and r1 stays 9.
        assert Kernel().run(reassemble(unit)).exit_status == 9

    def test_li_read_by_trap_kept(self):
        unit = disassemble(
            assemble(".section .text\n_start:\n li r0, 1\n li r1, 7\n sys\n li r1, 9\n halt")
        )
        assert remove_dead_li(unit) == 0

    def test_baseline_pass_bundle(self):
        unit = disassemble(
            assemble(".section .text\n_start:\n nop\n li r1, 1\n li r1, 2\n halt")
        )
        stats = run_baseline_passes(unit)
        assert stats == {"nops_removed": 1, "dead_li_removed": 1}
