"""Disassembly printer: round trips and listings."""

from repro.asm import assemble
from repro.crypto import Key
from repro.installer import install
from repro.kernel import Kernel
from repro.plto import disassemble
from repro.plto.printer import render_disassembly, render_policy, render_unit
from repro.workloads.runtime import runtime_source

SOURCE = """
.section .text
.global _start
_start:
    li r1, msg
    li r3, 3
    li r2, msg
    li r1, 1
    call sys_write
    li r1, 0
    call sys_exit
.section .rodata
msg:
    .asciz "hi\\n"
.section .data
ptr:
    .word _start
.section .bss
buf:
    .space 32
""" + runtime_source("linux", ("write", "exit"))


class TestRenderUnit:
    def test_round_trip_through_assembler(self):
        binary = assemble(SOURCE, metadata={"program": "p"})
        text = render_unit(disassemble(binary))
        rebuilt = assemble(text, metadata={"program": "p"})
        result = Kernel().run(rebuilt)
        assert result.stdout == b"hi\n"
        assert result.exit_status == 0

    def test_round_trip_preserves_data_relocations(self):
        binary = assemble(SOURCE)
        text = render_unit(disassemble(binary))
        rebuilt = assemble(text)
        relocs = rebuilt.relocations_for(".data")
        assert relocs[0].symbol == "_start"

    def test_bss_reservation_preserved(self):
        binary = assemble(SOURCE)
        rebuilt = assemble(render_unit(disassemble(binary)))
        assert rebuilt.sections[".bss"].reserve == 32
        assert rebuilt.symbols["buf"].section == ".bss"

    def test_globals_emitted(self):
        binary = assemble(SOURCE)
        assert ".global _start" in render_unit(disassemble(binary))


class TestRenderDisassembly:
    def test_listing_contains_addresses_and_labels(self):
        binary = assemble(SOURCE, metadata={"program": "demo"})
        listing = render_disassembly(binary)
        assert "<_start>:" in listing
        assert "0x08048000" in listing
        assert "li r1, msg" in listing
        assert "section .rodata" in listing

    def test_installed_binary_renders(self):
        key = Key.from_passphrase("printer", provider="fast-hmac")
        installed = install(assemble(SOURCE, metadata={"program": "demo"}), key)
        listing = render_disassembly(installed.binary)
        assert "asys" in listing
        assert "section .authdata" in listing


class TestRenderPolicy:
    def test_policy_dump(self):
        key = Key.from_passphrase("printer", provider="fast-hmac")
        installed = install(assemble(SOURCE, metadata={"program": "demo"}), key)
        dump = render_policy(installed.policy)
        assert "program: demo" in dump
        assert "Permit write from location" in dump
        assert "Possible predecessors" in dump
