"""The cross-process attack battery must be fully blocked."""

import pytest

from repro.attacks import run_cross_process_attacks
from repro.attacks.crossproc import (
    cross_process_replay_attack,
    fork_counter_confusion_attack,
    pipe_fed_tamper_attack,
)
from repro.crypto import Key


@pytest.fixture(scope="module")
def key():
    return Key.generate()


class TestCrossProcessAttacks:
    def test_cross_process_replay_blocked(self, key):
        result = cross_process_replay_attack(key)
        assert result.blocked
        assert "policy state MAC" in result.kill_reason

    def test_fork_counter_confusion_blocked(self, key):
        result = fork_counter_confusion_attack(key)
        assert result.blocked
        assert "policy state MAC" in result.kill_reason

    def test_pipe_fed_tamper_blocked(self, key):
        result = pipe_fed_tamper_attack(key)
        assert result.blocked
        assert "unauthenticated" in result.kill_reason

    def test_battery_engine_and_fastpath_independent(self, key):
        """Verdicts are a security property: identical under the
        interpreter, with the verification cache disabled, and with
        block chaining on or off."""
        for engine, fastpath, chain in (
            ("interp", True, True),
            ("threaded", False, True),
            ("threaded", True, False),
        ):
            results = run_cross_process_attacks(
                key, fastpath=fastpath, engine=engine, chain=chain
            )
            assert [r.blocked for r in results] == [True, True, True], (
                engine, fastpath, chain)

    def test_single_process_battery_shape_unchanged(self, key):
        """run_all_attacks keeps its published 7-scenario shape; the
        cross-process battery is additive."""
        from repro.attacks import run_all_attacks

        assert len(run_all_attacks(key)) == 7
        assert len(run_cross_process_attacks(key)) == 3
