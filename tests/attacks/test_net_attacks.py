"""The networking attack battery must be fully blocked.

Three scenarios against the authenticated netserver (see
repro/attacks/netattacks.py): replaying the polstate that was valid
at an earlier accept, transplanting a *client's* live polstate into
the server, and flipping a bit of the send site's buffer-pointer
register between fetch and verification.  Each must die fail-stop in
its own violation family, on every engine configuration.
"""

import pytest

from repro.attacks import (
    accept_replay_attack,
    run_net_attacks,
    socket_state_reuse_attack,
    tampered_send_attack,
)
from repro.crypto import Key
from repro.kernel.auth import violation_family


@pytest.fixture(scope="module")
def key():
    return Key.from_passphrase("net-attack-tests", provider="fast-hmac")


class TestNetworkAttacks:
    def test_accept_replay_blocked_as_policy_state(self, key):
        result = accept_replay_attack(key)
        assert result.blocked, result.detail
        assert violation_family(result.kill_reason) == "policy-state"

    def test_socket_state_reuse_blocked_as_policy_state(self, key):
        result = socket_state_reuse_attack(key)
        assert result.blocked, result.detail
        assert violation_family(result.kill_reason) == "policy-state"

    def test_tampered_send_blocked_as_call_mac(self, key):
        result = tampered_send_attack(key)
        assert result.blocked, result.detail
        assert violation_family(result.kill_reason) == "call-mac"

    def test_battery_engine_and_fastpath_independent(self, key):
        """Verdicts and kill reasons are a security property: identical
        under the interpreter, with chaining off, and with the verifier
        JIT off (CI's attacks job sweeps all five configs; this is the
        tier-1 subset)."""
        reasons = {}
        for engine, fastpath, chain, vjit in (
            ("interp", True, True, True),
            ("threaded", True, True, True),
            ("threaded", True, False, True),
            ("threaded", True, True, False),
        ):
            results = run_net_attacks(
                key, fastpath=fastpath, engine=engine, chain=chain,
                verifier_jit=vjit,
            )
            assert [r.blocked for r in results] == [True] * 3, (
                engine, fastpath, chain, vjit)
            for result in results:
                reasons.setdefault(result.name, set()).add(result.kill_reason)
        # Same kill reason per scenario in every configuration.
        for name, seen in reasons.items():
            assert len(seen) == 1, (name, seen)

    def test_battery_shape(self, key):
        results = run_net_attacks(key)
        assert [r.name for r in results] == [
            "accept-replay", "socket-state-reuse", "tampered-send",
        ]
