"""The verification cache must not weaken any check after warm-up.

The fast path skips re-running the call-MAC CMAC once a site's exact
(encoded call, MAC) pair has been verified.  An attacker's best shot is
therefore to let the cache warm up on honest traps and *then* corrupt
something.  Every scenario here mutates guest memory only after the
audit counters prove the cache is hot, and expects the very next trap
to fail-stop exactly as it would on a cold kernel — because string
contents, the counter-MAC'd lastBlock state, and predecessor sets are
re-checked on every trap regardless of cache state, and any corruption
that reaches the encoded call simply misses the cache into the full
CMAC.
"""

import pytest

from repro.asm import assemble
from repro.binfmt import link
from repro.crypto import Key
from repro.installer import install
from repro.kernel import Kernel
from repro.workloads.runtime import runtime_source

KEY = Key.from_passphrase("fastpath-boundary", provider="fast-hmac")

ITERATIONS = 40
WARMUP_SYSCALLS = 10

PROGRAM = f"""
.section .text
.global _start
_start:
    li r13, {ITERATIONS}
loop:
    li r1, path
    li r2, 0
    call sys_open
    mov r1, r0
    call sys_close
    subi r13, r13, 1
    cmpi r13, 0
    bgt loop
    li r1, 0
    call sys_exit
.section .rodata
path:
    .asciz "/etc/motd"
""" + runtime_source("linux", ("open", "close", "exit"))


@pytest.fixture(scope="module")
def installed():
    binary = assemble(PROGRAM, metadata={"program": "fpboundary"})
    return install(binary, KEY)


def _warm_then_mutate(installed, mutate, fastpath=True):
    """Run until the cache is provably hot, apply ``mutate``, resume."""
    kernel = Kernel(key=KEY, fastpath=fastpath)
    kernel.vfs.write_file("/etc/motd", b"greetings")
    process, vm = kernel.load(installed.binary)
    image = link(installed.binary)
    while vm.syscall_count < WARMUP_SYSCALLS:
        assert vm.step(), "program ended before warm-up completed"
    if fastpath:
        assert kernel.audit.fastpath.hits > 0, "cache never became hot"
    mutate(vm, image, installed)
    vm.run()
    return kernel, vm


def _mutate_string_content(vm, image, installed):
    path = image.address_of("path")
    vm.memory.write(path, b"/etc/passwd"[:9], force=True)


def _mutate_lastblock(vm, image, installed):
    polstate = image.address_of("__asc_polstate")
    vm.memory.write_u32(polstate, 42, force=True)


def _mutate_predset(vm, image, installed):
    site = installed.site_for_syscall("open")
    record = image.address_of(installed.site_records[site])
    predset = vm.memory.read_u32(record + 8, force=True)
    vm.memory.write_u32(predset, 0xDEAD, force=True)


def _mutate_call_mac(vm, image, installed):
    site = installed.site_for_syscall("open")
    record = image.address_of(installed.site_records[site])
    byte = vm.memory.read(record + 16, 1, force=True)[0]
    vm.memory.write(record + 16, bytes([byte ^ 1]), force=True)


class TestPostWarmupTampering:
    def test_string_argument_mutation_still_caught(self, installed):
        _, vm = _warm_then_mutate(installed, _mutate_string_content)
        assert vm.killed and "integrity" in vm.kill_reason

    def test_lastblock_mutation_still_caught(self, installed):
        _, vm = _warm_then_mutate(installed, _mutate_lastblock)
        assert vm.killed and "policy state" in vm.kill_reason

    def test_predset_mutation_still_caught(self, installed):
        _, vm = _warm_then_mutate(installed, _mutate_predset)
        assert vm.killed

    def test_call_mac_flip_misses_cache_and_dies(self, installed):
        # Flipping the presented MAC diverges from the cached pair, so
        # the probe misses and the full CMAC catches the forgery.
        kernel, vm = _warm_then_mutate(installed, _mutate_call_mac)
        assert vm.killed and "call MAC mismatch" in vm.kill_reason

    @pytest.mark.parametrize(
        "mutate, fragment",
        [
            (_mutate_string_content, "integrity"),
            (_mutate_lastblock, "policy state"),
            (_mutate_predset, ""),
            (_mutate_call_mac, "call MAC mismatch"),
        ],
        ids=["string", "lastblock", "predset", "callmac"],
    )
    def test_outcomes_match_no_fastpath_kernel(self, installed, mutate, fragment):
        _, hot = _warm_then_mutate(installed, mutate, fastpath=True)
        _, cold = _warm_then_mutate(installed, mutate, fastpath=False)
        assert hot.killed and cold.killed
        assert fragment in hot.kill_reason
        assert hot.kill_reason == cold.kill_reason


class TestBatteryParity:
    def test_attack_battery_identical_without_fastpath(self):
        from repro.attacks import run_all_attacks

        hot = run_all_attacks(KEY, fastpath=True)
        cold = run_all_attacks(KEY, fastpath=False)
        assert [(r.name, r.blocked) for r in hot] == [
            (r.name, r.blocked) for r in cold
        ]
        assert [r.kill_reason for r in hot] == [r.kill_reason for r in cold]
