"""The §4.1 attack experiments and the §5.5 Frankenstein defense.

These are the paper's headline security claims; every scenario must
land on its documented outcome.
"""

import pytest

from repro.attacks import (
    frankenstein_attack,
    mimicry_attack,
    non_control_data_attack,
    replay_attack,
    run_all_attacks,
    shellcode_attack,
)
from repro.crypto import Key

KEY = Key.from_passphrase("attack-tests", provider="fast-hmac")


class TestShellcode:
    def test_blocked(self):
        result = shellcode_attack(KEY)
        assert result.blocked
        assert "unauthenticated" in result.kill_reason

    def test_no_shell_output(self):
        assert b"SHELL" not in shellcode_attack(KEY).stdout


class TestMimicry:
    def test_call_graph_variant_blocked(self):
        result = mimicry_attack(KEY, "call-graph")
        assert result.blocked
        assert "control flow violation" in result.kill_reason

    def test_call_site_variant_blocked(self):
        result = mimicry_attack(KEY, "call-site")
        assert result.blocked
        assert "call MAC mismatch" in result.kill_reason


class TestNonControlData:
    def test_blocked_by_string_integrity(self):
        result = non_control_data_attack(KEY)
        assert result.blocked
        assert "integrity" in result.kill_reason


class TestFrankenstein:
    def test_defense_blocks_at_control_flow(self):
        result = frankenstein_attack(KEY, defense=True)
        assert result.blocked
        assert "control flow violation" in result.kill_reason

    def test_without_defense_the_splice_succeeds(self):
        # This is the vulnerability §5.5 describes; its success here is
        # the motivation for unique per-program block ids.
        result = frankenstein_attack(KEY, defense=False)
        assert not result.blocked
        assert b"SHELL-SPAWNED" in result.stdout


class TestReplay:
    def test_nonce_detects_replay(self):
        result = replay_attack(KEY)
        assert result.blocked
        assert "policy state MAC mismatch" in result.kill_reason


class TestBattery:
    @pytest.fixture(scope="class")
    def results(self):
        return run_all_attacks(KEY)

    def test_seven_scenarios(self, results):
        assert len(results) == 7

    def test_all_defended_scenarios_blocked(self, results):
        defended = [r for r in results if r.name != "frankenstein/undefended"]
        assert all(r.blocked for r in defended)

    def test_verdicts_independent_of_chaining(self, results):
        # Block chaining is a pure engine optimisation; disabling it
        # must not change a single verdict or kill reason.
        nochain = run_all_attacks(KEY, chain=False)
        assert [(r.name, r.blocked, r.kill_reason) for r in nochain] == \
            [(r.name, r.blocked, r.kill_reason) for r in results]

    def test_benign_run_unharmed(self):
        # The victim with a well-behaved input runs to completion and
        # actually lists the file (execve of /bin/ls succeeds).
        from repro.attacks.scenarios import _install_victim, _prepare_kernel

        installed = _install_victim(KEY)
        kernel = _prepare_kernel(KEY)
        result = kernel.run(installed.binary, stdin=b"/etc/motd\x00")
        assert not result.killed
        assert b"ls-output" in result.stdout


class TestMonitorComparison:
    """§2.1/§2.2: what each monitor class can and cannot stop.

    The non-control-data attack leaves the system call *sequence*
    byte-for-byte normal — only an argument changes.  A sequence
    monitor (stide) is structurally blind to it; the authenticated-
    string check stops it."""

    def test_sequence_monitor_blind_to_argument_attack(self):
        from repro.attacks.scenarios import _install_victim, _prepare_kernel
        from repro.monitor import StideModel, SyscallTracer

        installed = _install_victim(KEY)

        # Train stide on a benign run.
        kernel = _prepare_kernel(KEY)
        tracer = SyscallTracer()
        kernel.tracer = tracer
        kernel.run(installed.binary, stdin=b"/etc/motd\x00")
        model = StideModel(window=2)
        model.train(tracer.calls)
        benign_trace = list(tracer.calls)

        # The non-control-data attack's *intended* call sequence is the
        # same trace — stide accepts it outright.
        assert model.accepts(benign_trace)

        # ASC, however, fail-stops on the corrupted argument.
        result = non_control_data_attack(KEY)
        assert result.blocked

    def test_asc_and_stide_agree_on_shellcode(self):
        # Injected raw execve changes the sequence; both classes catch
        # it (ASC by authentication, stide by the unseen window).
        from repro.monitor import StideModel

        model = StideModel(window=2)
        model.train(["read", "open", "execve", "exit"])
        attack_sequence = ["read", "execve"]  # skips the open
        assert not model.accepts(attack_sequence)
        assert shellcode_attack(KEY).blocked
