"""AES-128 known-answer and property tests (FIPS-197 vectors)."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.crypto.aes import AES, BLOCK_SIZE, _INV_SBOX, _SBOX


class TestSboxConstruction:
    def test_sbox_fixed_points(self):
        assert _SBOX[0x00] == 0x63
        assert _SBOX[0x01] == 0x7C
        assert _SBOX[0x53] == 0xED

    def test_inverse_sbox_round_trips(self):
        for value in range(256):
            assert _INV_SBOX[_SBOX[value]] == value

    def test_sbox_is_permutation(self):
        assert sorted(_SBOX) == list(range(256))


class TestKnownAnswers:
    def test_fips197_appendix_c(self):
        key = bytes.fromhex("000102030405060708090a0b0c0d0e0f")
        plaintext = bytes.fromhex("00112233445566778899aabbccddeeff")
        expected = bytes.fromhex("69c4e0d86a7b0430d8cdb78070b4c55a")
        assert AES(key).encrypt_block(plaintext) == expected

    def test_fips197_appendix_b(self):
        key = bytes.fromhex("2b7e151628aed2a6abf7158809cf4f3c")
        plaintext = bytes.fromhex("3243f6a8885a308d313198a2e0370734")
        expected = bytes.fromhex("3925841d02dc09fbdc118597196a0b32")
        assert AES(key).encrypt_block(plaintext) == expected

    def test_decrypt_known_answer(self):
        key = bytes.fromhex("000102030405060708090a0b0c0d0e0f")
        ciphertext = bytes.fromhex("69c4e0d86a7b0430d8cdb78070b4c55a")
        expected = bytes.fromhex("00112233445566778899aabbccddeeff")
        assert AES(key).decrypt_block(ciphertext) == expected


class TestValidation:
    def test_rejects_short_key(self):
        with pytest.raises(ValueError):
            AES(b"short")

    def test_rejects_long_key(self):
        with pytest.raises(ValueError):
            AES(bytes(32))

    def test_rejects_short_block(self):
        with pytest.raises(ValueError):
            AES(bytes(16)).encrypt_block(b"tiny")

    def test_rejects_long_block_on_decrypt(self):
        with pytest.raises(ValueError):
            AES(bytes(16)).decrypt_block(bytes(17))


class TestProperties:
    @given(
        key=st.binary(min_size=16, max_size=16),
        block=st.binary(min_size=BLOCK_SIZE, max_size=BLOCK_SIZE),
    )
    def test_round_trip(self, key, block):
        cipher = AES(key)
        assert cipher.decrypt_block(cipher.encrypt_block(block)) == block

    @given(
        key=st.binary(min_size=16, max_size=16),
        block=st.binary(min_size=BLOCK_SIZE, max_size=BLOCK_SIZE),
    )
    def test_encryption_is_not_identity(self, key, block):
        # With overwhelming probability AES(block) != block; a collision
        # here would indicate a broken round function.
        assert AES(key).encrypt_block(block) != block

    @given(key=st.binary(min_size=16, max_size=16))
    def test_distinct_blocks_encrypt_distinctly(self, key):
        cipher = AES(key)
        a = cipher.encrypt_block(bytes(16))
        b = cipher.encrypt_block(bytes(15) + b"\x01")
        assert a != b
