"""Fast-path crypto: table-driven AES and the incremental CMAC API.

The table-driven cipher and the prefix-state CMAC exist purely for
speed; these tests pin them bit-for-bit to the reference implementations
so the optimization can never drift from the spec.
"""

from hypothesis import given
from hypothesis import strategies as st

from repro.crypto.aes import AES, BLOCK_SIZE, TableAES
from repro.crypto.cmac import AesCmac, CmacState

RFC_KEY = bytes.fromhex("2b7e151628aed2a6abf7158809cf4f3c")
RFC_MSG = bytes.fromhex(
    "6bc1bee22e409f96e93d7e117393172a"
    "ae2d8a571e03ac9c9eb76fac45af8e51"
    "30c81c46a35ce411e5fbc1191a0a52ef"
    "f69f2445df4f9b17ad2b417be66c3710"
)
RFC_TAGS = {
    0: "bb1d6929e95937287fa37d129b756746",
    16: "070a16b46b4d4144f79bdd9dd04a287c",
    40: "dfa66747de9ae63030ca32611497c827",
    64: "51f0bebf7e3b9d92fc49741779363cfe",
}


class TestTableAes:
    def test_fips197_appendix_c(self):
        key = bytes.fromhex("000102030405060708090a0b0c0d0e0f")
        plaintext = bytes.fromhex("00112233445566778899aabbccddeeff")
        expected = bytes.fromhex("69c4e0d86a7b0430d8cdb78070b4c55a")
        assert TableAES(key).encrypt_block(plaintext) == expected

    def test_fips197_appendix_b(self):
        key = bytes.fromhex("2b7e151628aed2a6abf7158809cf4f3c")
        plaintext = bytes.fromhex("3243f6a8885a308d313198a2e0370734")
        expected = bytes.fromhex("3925841d02dc09fbdc118597196a0b32")
        assert TableAES(key).encrypt_block(plaintext) == expected

    @given(
        key=st.binary(min_size=16, max_size=16),
        block=st.binary(min_size=BLOCK_SIZE, max_size=BLOCK_SIZE),
    )
    def test_matches_reference_aes(self, key, block):
        assert TableAES(key).encrypt_block(block) == AES(key).encrypt_block(block)

    @given(
        key=st.binary(min_size=16, max_size=16),
        block=st.binary(min_size=BLOCK_SIZE, max_size=BLOCK_SIZE),
    )
    def test_round_trip_through_reference_decrypt(self, key, block):
        cipher = TableAES(key)
        assert cipher.decrypt_block(cipher.encrypt_block(block)) == block


class TestCmacDefaultCipher:
    def test_rfc4493_vectors_with_table_cipher(self):
        # AesCmac defaults to TableAES; the RFC vectors must still hold.
        for length, expected in RFC_TAGS.items():
            assert AesCmac(RFC_KEY).tag(RFC_MSG[:length]) == bytes.fromhex(expected)

    def test_explicit_reference_cipher_agrees(self):
        table = AesCmac(RFC_KEY)
        reference = AesCmac(RFC_KEY, cipher=AES(RFC_KEY))
        assert table.tag(RFC_MSG) == reference.tag(RFC_MSG)


class TestCmacPrefix:
    def test_rfc4493_vectors_through_prefix_api(self):
        for length, expected in RFC_TAGS.items():
            state = AesCmac(RFC_KEY).prefix(RFC_MSG[:length])
            assert state.tag() == bytes.fromhex(expected)

    def test_every_split_point_matches_one_shot(self):
        mac = AesCmac(RFC_KEY)
        for total in (0, 1, 15, 16, 17, 32, 40, 64, 70):
            message = RFC_MSG * 2
            message = message[:total]
            expected = mac.tag(message)
            for split in range(total + 1):
                state = mac.prefix(message[:split])
                assert state.tag(message[split:]) == expected, (total, split)

    @given(
        key=st.binary(min_size=16, max_size=16),
        prefix=st.binary(max_size=80),
        suffixes=st.lists(st.binary(max_size=40), max_size=4),
    )
    def test_shared_prefix_many_suffixes(self, key, prefix, suffixes):
        mac = AesCmac(key)
        state = mac.prefix(prefix)
        for suffix in suffixes:
            assert state.tag(suffix) == mac.tag(prefix + suffix)

    @given(
        key=st.binary(min_size=16, max_size=16),
        chunks=st.lists(st.binary(max_size=23), max_size=6),
    )
    def test_chained_updates_match_one_shot(self, key, chunks):
        mac = AesCmac(key)
        state = mac.prefix()
        for chunk in chunks:
            state.update(chunk)
        assert state.tag() == mac.tag(b"".join(chunks))

    def test_tag_does_not_consume_state(self):
        mac = AesCmac(RFC_KEY)
        state = mac.prefix(RFC_MSG[:40])
        first = state.tag(RFC_MSG[40:])
        assert state.tag(RFC_MSG[40:]) == first
        assert state.tag() == mac.tag(RFC_MSG[:40])

    def test_copy_is_independent(self):
        mac = AesCmac(RFC_KEY)
        state = mac.prefix(RFC_MSG[:20])
        fork = state.copy()
        fork.update(b"divergent")
        assert state.tag() == mac.tag(RFC_MSG[:20])
        assert fork.tag() == mac.tag(RFC_MSG[:20] + b"divergent")

    def test_verify(self):
        mac = AesCmac(RFC_KEY)
        state = mac.prefix(RFC_MSG[:16])
        good = mac.tag(RFC_MSG[:40])
        assert state.verify(good, RFC_MSG[16:40])
        assert not state.verify(good[:-1] + b"\x00", RFC_MSG[16:40])
        assert not state.verify(good, RFC_MSG[16:39])


def test_cmac_state_exported():
    import repro.crypto as crypto

    assert crypto.CmacState is CmacState
    assert crypto.TableAES is TableAES
