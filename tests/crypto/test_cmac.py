"""OMAC1/CMAC known-answer (RFC 4493) and property tests."""

from hypothesis import given
from hypothesis import strategies as st

from repro.crypto.cmac import MAC_SIZE, AesCmac, _dbl

RFC_KEY = bytes.fromhex("2b7e151628aed2a6abf7158809cf4f3c")
RFC_MSG = bytes.fromhex(
    "6bc1bee22e409f96e93d7e117393172a"
    "ae2d8a571e03ac9c9eb76fac45af8e51"
    "30c81c46a35ce411e5fbc1191a0a52ef"
    "f69f2445df4f9b17ad2b417be66c3710"
)


class TestRfc4493Vectors:
    def test_empty_message(self):
        expected = bytes.fromhex("bb1d6929e95937287fa37d129b756746")
        assert AesCmac(RFC_KEY).tag(b"") == expected

    def test_one_block(self):
        expected = bytes.fromhex("070a16b46b4d4144f79bdd9dd04a287c")
        assert AesCmac(RFC_KEY).tag(RFC_MSG[:16]) == expected

    def test_forty_bytes(self):
        expected = bytes.fromhex("dfa66747de9ae63030ca32611497c827")
        assert AesCmac(RFC_KEY).tag(RFC_MSG[:40]) == expected

    def test_four_blocks(self):
        expected = bytes.fromhex("51f0bebf7e3b9d92fc49741779363cfe")
        assert AesCmac(RFC_KEY).tag(RFC_MSG) == expected

    def test_subkey_generation(self):
        # RFC 4493 section 4: K1/K2 for the all-zero AES output.
        mac = AesCmac(RFC_KEY)
        assert mac._k1 == bytes.fromhex("fbeed618357133667c85e08f7236a8de")
        assert mac._k2 == bytes.fromhex("f7ddac306ae266ccf90bc11ee46d513b")


class TestDoubling:
    def test_no_carry(self):
        assert _dbl(bytes(15) + b"\x01") == bytes(15) + b"\x02"

    def test_carry_applies_r128(self):
        assert _dbl(b"\x80" + bytes(15)) == bytes(15) + b"\x87"


class TestVerify:
    def test_accepts_valid_tag(self):
        mac = AesCmac(bytes(16))
        assert mac.verify(b"payload", mac.tag(b"payload"))

    def test_rejects_modified_message(self):
        mac = AesCmac(bytes(16))
        assert not mac.verify(b"payloaD", mac.tag(b"payload"))

    def test_rejects_truncated_tag(self):
        mac = AesCmac(bytes(16))
        assert not mac.verify(b"payload", mac.tag(b"payload")[:8])

    def test_rejects_wrong_key(self):
        good = AesCmac(bytes(16))
        evil = AesCmac(bytes(15) + b"\x01")
        assert not evil.verify(b"payload", good.tag(b"payload"))


class TestProperties:
    @given(key=st.binary(min_size=16, max_size=16), msg=st.binary(max_size=200))
    def test_tag_size_and_determinism(self, key, msg):
        mac = AesCmac(key)
        tag = mac.tag(msg)
        assert len(tag) == MAC_SIZE
        assert mac.tag(msg) == tag

    @given(
        key=st.binary(min_size=16, max_size=16),
        msg=st.binary(max_size=100),
        flip=st.integers(min_value=0, max_value=99),
    )
    def test_single_bit_flip_changes_tag(self, key, msg, flip):
        if not msg:
            return
        mac = AesCmac(key)
        index = flip % len(msg)
        mutated = bytes(
            b ^ (0x01 if i == index else 0x00) for i, b in enumerate(msg)
        )
        assert mac.tag(mutated) != mac.tag(msg)

    @given(key=st.binary(min_size=16, max_size=16), msg=st.binary(max_size=64))
    def test_verify_round_trip(self, key, msg):
        mac = AesCmac(key)
        assert mac.verify(msg, mac.tag(msg))
