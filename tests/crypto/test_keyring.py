"""KeyRing / key model tests — the installer/kernel trust boundary."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.crypto import AesCmac, FastMac, Key, KeyRing, mac_provider_for_key


class TestKey:
    def test_generate_produces_distinct_keys(self):
        assert Key.generate().material != Key.generate().material

    def test_from_passphrase_is_deterministic(self):
        assert Key.from_passphrase("asc").material == Key.from_passphrase("asc").material

    def test_from_passphrase_differs_by_passphrase(self):
        assert Key.from_passphrase("a").material != Key.from_passphrase("b").material

    def test_repr_hides_material(self):
        key = Key.from_passphrase("secret")
        assert key.material.hex() not in repr(key)

    def test_rejects_bad_length(self):
        with pytest.raises(ValueError):
            Key(material=b"short")

    def test_rejects_unknown_provider(self):
        with pytest.raises(ValueError):
            Key(material=bytes(16), provider="rot13")


class TestProviderSelection:
    def test_default_is_cmac(self):
        assert isinstance(mac_provider_for_key(Key(bytes(16))), AesCmac)

    def test_fast_provider(self):
        provider = mac_provider_for_key(Key(bytes(16), provider="fast-hmac"))
        assert isinstance(provider, FastMac)

    @given(msg=st.binary(max_size=120))
    def test_fastmac_round_trip(self, msg):
        provider = FastMac(bytes(16))
        assert provider.verify(msg, provider.tag(msg))
        assert len(provider.tag(msg)) == 16

    def test_fastmac_rejects_bad_key_length(self):
        with pytest.raises(ValueError):
            FastMac(b"short")

    def test_providers_disagree(self):
        # Different constructions must not collide on tags (would hint at
        # a degenerate provider selection bug).
        key = Key.from_passphrase("x")
        cmac = AesCmac(key.material)
        fast = FastMac(key.material)
        assert cmac.tag(b"m") != fast.tag(b"m")


class TestKeyRing:
    def test_provision_and_get(self):
        ring = KeyRing()
        key = ring.provision("install")
        assert ring.get("install") is key
        assert "install" in ring

    def test_provision_explicit_key(self):
        ring = KeyRing()
        key = Key.from_passphrase("fixed")
        assert ring.provision("install", key) is key

    def test_double_provision_rejected(self):
        ring = KeyRing()
        ring.provision("install")
        with pytest.raises(KeyError):
            ring.provision("install")

    def test_get_missing_raises(self):
        with pytest.raises(KeyError):
            KeyRing().get("nope")

    def test_mac_helper_tags_and_verifies(self):
        ring = KeyRing()
        ring.provision("install", Key.from_passphrase("k"))
        mac = ring.mac("install")
        assert mac.verify(b"syscall", mac.tag(b"syscall"))

    def test_rotate_invalidates_old_tags(self):
        ring = KeyRing()
        ring.provision("install", Key.from_passphrase("k"))
        old_tag = ring.mac("install").tag(b"syscall")
        ring.rotate("install")
        assert not ring.mac("install").verify(b"syscall", old_tag)

    def test_rotate_missing_raises(self):
        with pytest.raises(KeyError):
            KeyRing().rotate("nope")
