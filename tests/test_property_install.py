"""Property-based end-to-end invariants of installation.

The central soundness property of the paper's conservative approach:
**installation never changes the behaviour of a legitimate program** —
no false alarms, identical outputs, identical syscall sequences — while
adding MAC protection.  Hypothesis generates random little programs and
checks the invariant on each.
"""

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.asm import assemble
from repro.crypto import Key
from repro.installer import install
from repro.kernel import Kernel
from repro.monitor.systrace import SyscallTracer
from repro.workloads.runtime import runtime_source

KEY = Key.from_passphrase("property-tests", provider="fast-hmac")

#: Operation menu for generated programs.  Each op is (asm body, stubs).
_WRITE_OP = (
    "    li r1, 1\n    li r2, msg\n    li r3, 3\n    call sys_write\n",
    ("write",),
)
_GETPID_OP = ("    call sys_getpid\n", ("getpid",))
_TIME_OP = ("    li r1, 0\n    call sys_time\n", ("time",))
_BRK_OP = ("    li r1, 0\n    call sys_brk\n", ("brk",))
_OPEN_CLOSE_OP = (
    "    li r1, msg\n    li r2, 0x42\n    li r3, 0x1a4\n    call sys_open\n"
    "    mov r1, r0\n    call sys_close\n",
    ("open", "close"),
)
_UMASK_OP = ("    li r1, 18\n    call sys_umask\n", ("umask",))
_LOOP_OP = (
    "    li r10, 3\n{label}:\n    call sys_getpid\n    subi r10, r10, 1\n"
    "    cmpi r10, 0\n    bgt {label}\n",
    ("getpid",),
)
_BRANCH_OP = (
    "    cmpi r12, 1\n    beq {label}\n    call sys_getpid\n"
    "{label}:\n    call sys_getuid\n",
    ("getpid", "getuid"),
)

_OPS = [_WRITE_OP, _GETPID_OP, _TIME_OP, _BRK_OP, _OPEN_CLOSE_OP,
        _UMASK_OP, _LOOP_OP, _BRANCH_OP]


def _build_program(op_indices):
    body = []
    stubs = {"exit"}
    for serial, index in enumerate(op_indices):
        text, needed = _OPS[index % len(_OPS)]
        body.append(text.format(label=f".gen{serial}"))
        stubs.update(needed)
    source = (
        ".section .text\n.global _start\n_start:\n"
        + "".join(body)
        + "    li r1, 0\n    call sys_exit\n"
        + '.section .rodata\nmsg:\n    .asciz "/tmp/prop-file"\n'
        + runtime_source("linux", tuple(sorted(stubs)))
    )
    return assemble(source, metadata={"program": "generated"})


def _run(binary, tracer=None):
    kernel = Kernel(key=KEY)
    kernel.tracer = tracer
    return kernel.run(binary)


@settings(max_examples=30, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(op_indices=st.lists(st.integers(min_value=0, max_value=7),
                           min_size=1, max_size=10))
def test_installation_preserves_behaviour(op_indices):
    binary = _build_program(op_indices)
    installed = install(binary, KEY)

    raw_trace = SyscallTracer()
    raw = _run(binary, raw_trace)
    auth_trace = SyscallTracer()
    auth = _run(installed.binary, auth_trace)

    # No false alarms, identical observable behaviour.
    assert not auth.killed, auth.kill_reason
    assert auth.exit_status == raw.exit_status == 0
    assert auth.stdout == raw.stdout
    assert auth_trace.calls == raw_trace.calls
    # Authentication costs cycles but never changes the call count.
    assert auth.syscalls == raw.syscalls
    assert auth.cycles > raw.cycles


@settings(max_examples=15, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(op_indices=st.lists(st.integers(min_value=0, max_value=7),
                           min_size=1, max_size=6),
       flip_byte=st.integers(min_value=0, max_value=10_000))
def test_any_authdata_corruption_fail_stops(op_indices, flip_byte):
    """Flipping any byte of any *loaded* record kills the process (the
    MAC guarantees no silent acceptance).  The flip is applied to the
    mapped image, which is what an attacker's write primitive reaches —
    flips in the file's relocation slots would simply be re-patched by
    the loader."""
    binary = _build_program(op_indices)
    installed = install(binary, KEY)
    kernel = Kernel(key=KEY)
    process, vm = kernel.load(installed.binary)
    region = vm.memory.find_region(".authdata")
    size = installed.binary.section(".authdata").size
    if not size:
        return
    offset = flip_byte % size
    byte = vm.memory.read(region.start + offset, 1, force=True)[0]
    vm.memory.write(region.start + offset, bytes([byte ^ 0x01]), force=True)
    vm.run()
    assert vm.killed


@settings(max_examples=15, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(op_indices=st.lists(st.integers(min_value=0, max_value=7),
                           min_size=1, max_size=6))
def test_installation_is_idempotent_on_policy(op_indices):
    """Two installs of the same binary produce identical binaries and
    policies (determinism matters for reproducible deployments)."""
    binary = _build_program(op_indices)
    first = install(binary, KEY)
    second = install(binary, KEY)
    assert first.binary.to_bytes() == second.binary.to_bytes()
    assert first.policy.coverage_row() == second.policy.coverage_row()
