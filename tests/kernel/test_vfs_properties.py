"""Property tests for VFS path resolution.

The invariants under random path inputs and random tree shapes:

1. Resolution never escapes the root — ``..`` at ``/`` stays at ``/``,
   and every resolvable path normalizes to an absolute path inside the
   tree.
2. No input makes resolution raise anything but :class:`VfsError` —
   in particular, symlink cycles must surface as ``ELOOP``, never as a
   Python ``RecursionError``.
3. ``normalize`` is idempotent: normalizing a normalized path is a
   no-op.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.kernel.errors import Errno
from repro.kernel.vfs import Vfs, VfsError

#: Path components the generator draws from: names that exist, names
#: that don't, dot/dotdot, over-long names, and empty segments (which
#: the splitter drops, like repeated slashes).
_COMPONENTS = st.sampled_from(
    ["etc", "tmp", "motd", "missing", ".", "..", "", "x" * 300, "a", "b"]
)

_PATHS = st.builds(
    lambda parts, absolute: ("/" if absolute else "") + "/".join(parts),
    st.lists(_COMPONENTS, min_size=0, max_size=8),
    st.booleans(),
)


def _populated() -> Vfs:
    vfs = Vfs()
    vfs.write_file("/etc/motd", b"hello\n")
    vfs.mkdir("/a")
    vfs.mkdir("/a/b")
    vfs.write_file("/a/b/file", b"data")
    vfs.symlink("/a/b", "/a/link")
    vfs.symlink("../b/file", "/a/b/../b/rel")  # relative target
    return vfs


class TestResolutionProperties:
    @settings(max_examples=200, deadline=None)
    @given(path=_PATHS)
    def test_lookup_raises_only_vfs_errors(self, path):
        """Arbitrary dot/dotdot/empty/overlong paths either resolve or
        raise VfsError — nothing else gets out."""
        vfs = _populated()
        try:
            vfs.lookup(path)
        except VfsError:
            pass

    @settings(max_examples=200, deadline=None)
    @given(path=_PATHS, cwd=st.sampled_from(["/", "/a", "/a/b", "/etc"]))
    def test_normalize_stays_inside_root(self, path, cwd):
        """Every normalizable path is absolute and, after arbitrary
        ``..`` chains, still starts at the root."""
        vfs = _populated()
        try:
            normalized = vfs.normalize(path, cwd=cwd)
        except VfsError:
            return
        assert normalized.startswith("/")
        assert "/../" not in normalized + "/"
        # Idempotence: a canonical path canonicalizes to itself.
        assert vfs.normalize(normalized) == normalized

    @settings(max_examples=100, deadline=None)
    @given(depth=st.integers(min_value=1, max_value=40))
    def test_dotdot_never_escapes_root(self, depth):
        """N leading ``..`` components clamp at the root, matching
        Unix semantics."""
        vfs = _populated()
        path = "/".join([".."] * depth) + "/etc/motd"
        assert vfs.read_file(path, cwd="/") == b"hello\n"
        expected = "/a" if depth == 1 else "/"  # cwd /a/b is 2 deep
        assert vfs.normalize("/".join([".."] * depth), cwd="/a/b") == expected

    @settings(max_examples=50, deadline=None)
    @given(depth=st.integers(min_value=1, max_value=30))
    def test_deep_nesting_round_trips(self, depth):
        """A chain of nested dirs resolves back out with ``..`` and
        normalizes to the textual path."""
        vfs = Vfs()
        parts = [f"d{i}" for i in range(depth)]
        path = ""
        for part in parts:
            path += "/" + part
            vfs.mkdir(path)
        vfs.write_file(path + "/leaf", b"x")
        assert vfs.normalize(path + "/leaf") == path + "/leaf"
        backout = path + "/" + "/".join([".."] * depth) + "/etc"
        assert vfs.normalize(backout) == "/etc"


class TestSymlinkCycles:
    def _cyclic(self) -> Vfs:
        vfs = Vfs()
        vfs.symlink("/tmp/b", "/tmp/a")
        vfs.symlink("/tmp/a", "/tmp/b")
        vfs.symlink("/tmp/self", "/tmp/self")
        return vfs

    @pytest.mark.parametrize("path", ["/tmp/a", "/tmp/b", "/tmp/self"])
    def test_resolve_cycle_is_eloop(self, path):
        vfs = self._cyclic()
        with pytest.raises(VfsError) as excinfo:
            vfs.resolve(path)
        assert excinfo.value.errno == Errno.ELOOP

    @pytest.mark.parametrize("path", ["/tmp/a", "/tmp/self"])
    def test_normalize_cycle_is_eloop(self, path):
        """normalize() follows final-component symlinks itself; a cycle
        must be ELOOP, not a blown Python stack."""
        vfs = self._cyclic()
        with pytest.raises(VfsError) as excinfo:
            vfs.normalize(path)
        assert excinfo.value.errno == Errno.ELOOP

    @pytest.mark.parametrize("path", ["/tmp/a", "/tmp/self"])
    def test_create_through_cycle_is_eloop(self, path):
        """open(O_CREAT) through a symlink cycle is ELOOP too."""
        vfs = self._cyclic()
        with pytest.raises(VfsError) as excinfo:
            vfs.create_file(path)
        assert excinfo.value.errno == Errno.ELOOP

    def test_cycle_through_intermediate_component_is_eloop(self):
        vfs = self._cyclic()
        with pytest.raises(VfsError) as excinfo:
            vfs.lookup("/tmp/a/child")
        assert excinfo.value.errno == Errno.ELOOP

    @settings(max_examples=50, deadline=None)
    @given(chain=st.integers(min_value=1, max_value=20))
    def test_long_symlink_chains_bounded(self, chain):
        """Chains within MAX_SYMLINK_DEPTH resolve; longer ones are
        ELOOP — never RecursionError."""
        vfs = Vfs()
        vfs.write_file("/tmp/real", b"end")
        previous = "/tmp/real"
        for i in range(chain):
            link = f"/tmp/l{i}"
            vfs.symlink(previous, link)
            previous = link
        try:
            assert vfs.read_file(previous) == b"end"
        except VfsError as err:
            assert err.errno == Errno.ELOOP
