"""§5.1 pattern policies enforced end-to-end, hints supplied by the guest.

The guest program passes its proof hint in ``r8`` (a pointer to
``[count, v0, v1, ...]`` words).  The kernel verifies the pattern match
with one linear scan; a wrong or missing hint is a fail-stop.
"""


from repro.asm import assemble
from repro.crypto import Key
from repro.installer import InstallerOptions, install
from repro.kernel import Kernel
from repro.workloads.runtime import runtime_source

KEY = Key.from_passphrase("pattern-tests", provider="fast-hmac")

#: Opens a dynamically-computed path (so analysis cannot constrain it);
#: the administrator's metapolicy fill imposes the pattern
#: "/tmp/{foo,bar}*baz".  The guest proves "/tmp/foofoobaz" with the
#: paper's worked hint (0, 3).
PROGRAM_TEMPLATE = """
.section .text
.global _start
_start:
    li r9, cell
    ld r1, [r9+0]        ; dynamic path argument
    li r2, 0
    li r8, {hint_label}  ; proof hint block
    call sys_open
    li r1, 0
    call sys_exit
.section .data
cell:
    .word pathstr
pathstr:
    .asciz "{path}"
good_hint:
    .word 2, 0, 3        ; count=2: branch 0 ("foo"), star consumes 3
bad_hint:
    .word 2, 1, 3        ; wrong branch
empty_hint:
    .word 0
""" + runtime_source("linux", ("open", "exit"))


def _installed(path: str, hint_label: str):
    source = PROGRAM_TEMPLATE.format(path=path, hint_label=hint_label)
    binary = assemble(source, metadata={"program": "patterned"})
    return install(
        binary, KEY,
        InstallerOptions(template_fills={("open", 0): "/tmp/{foo,bar}*baz"}),
    )


def _run(installed):
    kernel = Kernel(key=KEY)
    kernel.vfs.write_file("/tmp/foofoobaz", b"x")
    kernel.vfs.write_file("/tmp/barbaz", b"y")
    kernel.vfs.write_file("/etc/passwd", b"secret")
    return kernel.run(installed.binary)


class TestPatternRuntime:
    def test_descriptor_carries_pattern_bit(self):
        installed = _installed("/tmp/foofoobaz", "good_hint")
        policy = installed.policy.sites[installed.site_for_syscall("open")]
        assert policy.descriptor().param_is_pattern(0)

    def test_matching_argument_with_correct_hint(self):
        result = _run(_installed("/tmp/foofoobaz", "good_hint"))
        assert result.ok, result.kill_reason

    def test_wrong_hint_fail_stops(self):
        result = _run(_installed("/tmp/foofoobaz", "bad_hint"))
        assert result.killed
        assert "pattern" in result.kill_reason

    def test_missing_hint_fail_stops(self):
        result = _run(_installed("/tmp/foofoobaz", "empty_hint"))
        assert result.killed

    def test_non_matching_argument_fail_stops(self):
        # /etc/passwd cannot match /tmp/{foo,bar}*baz with any hint.
        result = _run(_installed("/etc/passwd", "good_hint"))
        assert result.killed
        assert "pattern" in result.kill_reason

    def test_bar_branch_matches_with_its_own_hint(self):
        source = PROGRAM_TEMPLATE.format(path="/tmp/barbaz", hint_label="bar_hint")
        source = source.replace(
            "good_hint:", "bar_hint:\n    .word 2, 1, 0\ngood_hint:"
        )
        binary = assemble(source, metadata={"program": "patterned"})
        installed = install(
            binary, KEY,
            InstallerOptions(template_fills={("open", 0): "/tmp/{foo,bar}*baz"}),
        )
        result = _run(installed)
        assert result.ok, result.kill_reason

    def test_tampered_pattern_string_fail_stops(self):
        installed = _installed("/tmp/foofoobaz", "good_hint")
        kernel = Kernel(key=KEY)
        kernel.vfs.write_file("/tmp/foofoobaz", b"x")
        process, vm = kernel.load(installed.binary)
        # Overwrite the pattern AS contents (widen it to match anything).
        authstr = vm.memory.find_region(".authstr")
        blob = bytes(authstr.data)
        index = blob.find(b"/tmp/{foo,bar}*baz")
        assert index > 0
        vm.memory.write(authstr.start + index, b"*" + bytes(17), force=True)
        vm.run()
        assert vm.killed
        assert "integrity" in vm.kill_reason or "MAC" in vm.kill_reason
