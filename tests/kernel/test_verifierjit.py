"""The verifier specialization engine (kernel/verifierjit.py).

Lifecycle: thunks are compiled on first full verification of a
(process, call-site) pair, reused across repeated traps, voided by
write-version guards, and partitioned per pid — exit and execve drop
the partition, fork children start empty.  Soundness: everything here
must be invisible except in host time, so cycle accounting and attack
verdicts are asserted bit-identical with the JIT on and off.
"""

import pytest

from repro.asm import assemble
from repro.binfmt import link
from repro.crypto import Key
from repro.installer import install
from repro.kernel import Kernel
from repro.obs import TraceRecorder
from repro.workloads.runtime import runtime_source

KEY = Key.from_passphrase("verifier-jit", provider="fast-hmac")

ITERATIONS = 30
WARMUP_SYSCALLS = 10

LOOP_PROGRAM = f"""
.section .text
.global _start
_start:
    li r13, {ITERATIONS}
loop:
    call sys_getpid
    subi r13, r13, 1
    cmpi r13, 0
    bgt loop
    li r1, 0
    call sys_exit
""" + runtime_source("linux", ("getpid", "exit"))

#: Open/close loop with a string argument and control flow — exercises
#: the string-auth, predecessor-set, and polstate pieces of a thunk.
OPEN_PROGRAM = f"""
.section .text
.global _start
_start:
    li r13, {ITERATIONS}
loop:
    li r1, path
    li r2, 0
    call sys_open
    mov r1, r0
    call sys_close
    subi r13, r13, 1
    cmpi r13, 0
    bgt loop
    li r1, 0
    call sys_exit
.section .rodata
path:
    .asciz "/etc/motd"
""" + runtime_source("linux", ("open", "close", "exit"))


@pytest.fixture(scope="module")
def installed_loop():
    return install(assemble(LOOP_PROGRAM, metadata={"program": "vjloop"}), KEY)


@pytest.fixture(scope="module")
def installed_open():
    return install(assemble(OPEN_PROGRAM, metadata={"program": "vjopen"}), KEY)


def _run(installed, **kernel_kwargs):
    kernel = Kernel(key=KEY, **kernel_kwargs)
    kernel.vfs.write_file("/etc/motd", b"greetings")
    result = kernel.run(installed.binary)
    assert result.ok, result.kill_reason
    return kernel, result


class TestThunkReuse:
    def test_sites_compile_once_and_hit_thereafter(self, installed_loop):
        kernel, result = _run(installed_loop)
        compiled = kernel.metrics.get("verifier.thunks_compiled")
        hits = kernel.metrics.get("verifier.thunk_hits")
        # One thunk per site (the getpid site and the exit site), never
        # recompiled; every later trap is served by the thunk.
        assert compiled == 2
        assert hits == result.syscalls - compiled
        assert hits > 0

    def test_thunk_hits_count_as_fastpath_hits(self, installed_loop):
        kernel, result = _run(installed_loop)
        hits = kernel.metrics.get("verifier.thunk_hits")
        assert kernel.audit.fastpath.hits == hits
        assert kernel.audit.fastpath.misses == 2

    def test_partition_dropped_at_exit(self, installed_loop):
        kernel, _ = _run(installed_loop)
        assert kernel._jits == {}
        # Every compiled thunk was eventually invalidated (at exit).
        assert (kernel.metrics.get("verifier.thunks_invalidated")
                == kernel.metrics.get("verifier.thunks_compiled"))

    def test_escape_hatch_never_compiles(self, installed_loop):
        kernel, _ = _run(installed_loop, verifier_jit=False)
        assert kernel.metrics.get("verifier.thunks_compiled") == 0
        assert kernel.metrics.get("verifier.thunk_hits") == 0

    def test_jit_rides_on_the_fastpath(self, installed_loop):
        # No fast path, no thunks: the JIT extends the cache's
        # invalidation machinery and never outlives it.
        kernel, _ = _run(installed_loop, fastpath=False)
        assert kernel.metrics.get("verifier.thunks_compiled") == 0


class TestBitIdentity:
    @pytest.mark.parametrize("fixture", ["installed_loop", "installed_open"])
    def test_cycles_and_accounting_identical(self, fixture, request):
        installed = request.getfixturevalue(fixture)
        baseline = None
        for jit in (True, False):
            kernel, result = _run(installed, verifier_jit=jit)
            snapshot = (
                result.cycles,
                result.instructions,
                result.syscalls,
                result.exit_status,
                kernel.audit.fastpath.hits,
                kernel.audit.fastpath.misses,
            )
            if baseline is None:
                baseline = snapshot
            else:
                assert snapshot == baseline


class TestObservability:
    def test_compile_span_and_mirrored_counters(self, installed_open):
        recorder = TraceRecorder()
        kernel = Kernel(key=KEY, recorder=recorder)
        kernel.vfs.write_file("/etc/motd", b"greetings")
        result = kernel.run(installed_open.binary)
        assert result.ok
        compiled = kernel.metrics.get("verifier.thunks_compiled")
        totals = recorder.stage_totals()
        assert totals["verifier-compile"]["count"] == compiled
        # One root span per trap, thunk hit or miss.
        assert totals["syscall-verify"]["count"] == result.syscalls
        for name in ("verifier.thunks_compiled", "verifier.thunk_hits",
                     "verifier.thunks_invalidated"):
            assert recorder.counters.get(name, 0) == kernel.metrics.get(name)


def _warm(installed, **kernel_kwargs):
    """Load and step until the thunks are provably warm."""
    kernel = Kernel(key=KEY, **kernel_kwargs)
    kernel.vfs.write_file("/etc/motd", b"greetings")
    process, vm = kernel.load(installed.binary)
    while vm.syscall_count < WARMUP_SYSCALLS:
        assert vm.step(), "program ended before warm-up completed"
    return kernel, process, vm


class TestGuardInvalidation:
    def test_policy_record_write_voids_and_recompiles(self, installed_open):
        kernel, process, vm = _warm(installed_open)
        jit = kernel._jits[process.pid]
        open_site = installed_open.site_for_syscall("open")
        assert jit.thunk_at(open_site) is not None
        compiled_before = kernel.metrics.get("verifier.thunks_compiled")

        # Rewrite one record byte with its existing value: the bytes
        # are unchanged but the region's write version advances, so the
        # guard must fail closed and the thunk must be dropped.
        image = link(installed_open.binary)
        record = image.address_of(installed_open.site_records[open_site])
        byte = vm.memory.read(record, 1, force=True)
        vm.memory.write(record, byte, force=True)

        vm.run()
        assert not vm.killed
        assert kernel.metrics.get("verifier.thunks_invalidated") >= 1
        # The site re-verified in full and was specialized again.
        assert kernel.metrics.get("verifier.thunks_compiled") > compiled_before

    def test_guard_churn_stops_recompilation(self, installed_open):
        # A site whose policy material is written before every trap
        # must not recompile forever: after MAX_RECOMPILES guard
        # failures the generic path serves it (correctness unchanged).
        kernel, process, vm = _warm(installed_open)
        jit = kernel._jits[process.pid]
        open_site = installed_open.site_for_syscall("open")
        image = link(installed_open.binary)
        record = image.address_of(installed_open.site_records[open_site])
        byte = vm.memory.read(record, 1, force=True)

        seen_none_while_running = False
        while vm.syscall_count < ITERATIONS * 2:
            vm.memory.write(record, byte, force=True)  # bump the version
            if not vm.step():
                break
            if jit.thunk_at(open_site) is None and vm.syscall_count > 0:
                seen_none_while_running = True
        assert seen_none_while_running
        # Both the open and close records live in the shared .authdata
        # region, so both sites churn; each is capped independently and
        # compilation stays far below the ~60 traps served.
        assert (kernel.metrics.get("verifier.thunks_compiled")
                <= 2 * (jit.MAX_RECOMPILES + 1) + 1)


class TestTamperAfterWarmup:
    """The fastpath-boundary attack, re-run against warm *thunks*: a
    post-warm-up corruption must fail-stop identically with the JIT on
    and off (same kill reason, not merely both killed)."""

    @pytest.mark.parametrize("mutation, fragment", [
        ("string", "integrity"),
        ("polstate", "policy state"),
    ])
    def test_tamper_killed_with_jit_on_and_off(
        self, installed_open, mutation, fragment
    ):
        reasons = []
        for jit in (True, False):
            kernel, process, vm = _warm(installed_open, verifier_jit=jit)
            if jit:
                assert kernel.metrics.get("verifier.thunk_hits") > 0
            image = link(installed_open.binary)
            if mutation == "string":
                vm.memory.write(
                    image.address_of("path"), b"/etc/shad", force=True
                )
            else:
                vm.memory.write_u32(
                    image.address_of("__asc_polstate"), 42, force=True
                )
            vm.run()
            assert vm.killed and fragment in vm.kill_reason
            reasons.append(vm.kill_reason)
        assert reasons[0] == reasons[1]


class TestProcessPartitions:
    FORK_BODY = """
    li r13, 5
warm:
    call sys_getpid
    subi r13, r13, 1
    cmpi r13, 0
    bgt warm
    call sys_fork
    cmpi r0, 0
    beq child
    li r1, 0xFFFFFFFF
    li r2, 0
    li r3, 0
    li r4, 0
    call sys_wait4
    li r1, 0
    call sys_exit
child:
    li r13, 5
cloop:
    call sys_getpid
    subi r13, r13, 1
    cmpi r13, 0
    bgt cloop
    li r1, 0
    call sys_exit
"""

    def test_fork_child_gets_fresh_partition(self):
        source = (
            ".section .text\n.global _start\n_start:\n" + self.FORK_BODY
            + runtime_source("linux", ("getpid", "fork", "wait4", "exit"))
        )
        installed = install(
            assemble(source, metadata={"program": "vjfork"}), KEY
        )
        kernel = Kernel(key=KEY)
        observations = {}  # pid -> [(partition id, len) at each trap]
        original = kernel.handle_trap

        def spy(vm, authenticated):
            process = kernel._vm_process.get(id(vm))
            if process is not None:
                jit = kernel._jits.get(process.pid)
                if jit is not None:
                    observations.setdefault(process.pid, []).append(
                        (id(jit), len(jit))
                    )
            return original(vm, authenticated)

        kernel.handle_trap = spy
        multi = kernel.run_many([(installed.binary, None, b"")])
        assert all(not r.killed for r in multi.results)
        assert len(observations) == 2
        parent_pid, child_pid = sorted(observations)
        parent_obs, child_obs = observations[parent_pid], observations[child_pid]
        # Distinct partition objects: the child never sees the parent's.
        assert {pid for pid, _ in parent_obs}.isdisjoint(
            {pid for pid, _ in child_obs}
        )
        # The parent was warm at fork time; the child still started
        # cold — a sibling's thunk is never reused.
        assert parent_obs[-1][1] > 0
        assert child_obs[0][1] == 0
        # The shared getpid site was therefore compiled at least twice.
        assert kernel.metrics.get("verifier.thunks_compiled") >= 4

    def test_execve_drops_partition_in_place(self, installed_loop):
        execer_source = """
.section .text
.global _start
_start:
    li r13, 5
warm:
    call sys_getpid
    subi r13, r13, 1
    cmpi r13, 0
    bgt warm
    li r1, path
    li r2, 0
    li r3, 0
    call sys_execve
    li r1, 1
    call sys_exit
.section .rodata
path:
    .asciz "/bin/next"
""" + runtime_source("linux", ("getpid", "execve", "exit"))
        execer = install(
            assemble(execer_source, metadata={"program": "vjexec"}), KEY
        )
        kernel = Kernel(key=KEY)
        kernel.vfs.write_file("/bin/next", installed_loop.binary.to_bytes())

        lens = []  # partition length at each trap of the (single) pid
        original = kernel.handle_trap

        def spy(vm, authenticated):
            process = kernel._vm_process.get(id(vm))
            if process is not None and process.pid in kernel._jits:
                lens.append(len(kernel._jits[process.pid]))
            return original(vm, authenticated)

        kernel.handle_trap = spy
        multi = kernel.run_many([(execer.binary, None, b"")])
        assert multi.results[0].exit_status == 0
        assert kernel.metrics.get("sched.execs") == 1
        # Warm before the exec, empty again at the first trap of the
        # replacement image: the partition died with the old image.
        peak = max(lens)
        assert peak > 0
        assert 0 in lens[lens.index(peak):]
