"""Honest readiness: select/poll over sockets, pipes, and the console.

The pre-net degenerate forms (every fd-set pointer NULL / a NULL
pollfd array) must keep their historical stub return values — the
Table 3 profile programs still call them that way — while real
pointers get real readiness.
"""

from repro.kernel.errors import Errno
from tests.kernel.conftest import run_guest

FAIL = """
fail:
    li r1, 77
    call sys_exit
"""

EXIT0 = """
    li r1, 0
    call sys_exit
"""


class TestLegacyStubForms:
    def test_select_with_null_sets_returns_nfds(self, kernel):
        result = run_guest(kernel, """
    li r1, 5
    li r2, 0
    li r3, 0
    li r4, 0
    li r5, 0
    call sys_select
    mov r1, r0
    call sys_exit
""", ["select"])
        assert result.exit_status == 5

    def test_poll_with_null_array_returns_nfds(self, kernel):
        result = run_guest(kernel, """
    li r1, 0
    li r2, 7
    li r3, 100
    call sys_poll
    mov r1, r0
    call sys_exit
""", ["poll"])
        assert result.exit_status == 7

    def test_poll_rejects_oversized_arrays(self, kernel):
        result = run_guest(kernel, """
    li r1, pfds
    li r2, 300
    li r3, 0
    call sys_poll
    xori r1, r0, 0xFFFFFFFF
    addi r1, r1, 1
    call sys_exit
""", ["poll"], data=".section .bss\npfds:\n  .space 8")
        assert result.exit_status == int(Errno.EINVAL)


class TestSelectOverSockets:
    def test_socket_readiness_lifecycle(self, kernel):
        # fds: 3 = listener, 4 = client, 5 = accepted server end.
        result = run_guest(kernel, """
    li r1, 2
    li r2, 1
    li r3, 0
    call sys_socket
    mov r12, r0
    mov r1, r12
    li r2, name
    li r3, 0
    call sys_bind
    mov r1, r12
    li r2, 4
    call sys_listen
    ; empty accept queue: the listener is not readable
    li r9, fdset
    li r10, 0x08           ; {3}
    st r10, [r9+0]
    li r1, 8
    li r2, fdset
    li r3, 0
    li r4, 0
    li r5, tv
    call sys_select
    cmpi r0, 0
    bne fail
    li r1, 2
    li r2, 1
    li r3, 0
    call sys_socket
    mov r13, r0            ; client fd 4
    mov r1, r13
    li r2, name
    li r3, 0
    call sys_connect
    cmpi r0, 0
    bne fail
    ; pending connection: the listener is now readable
    li r9, fdset
    li r10, 0x08
    st r10, [r9+0]
    li r1, 8
    li r2, fdset
    li r3, 0
    li r4, 0
    li r5, tv
    call sys_select
    cmpi r0, 1
    bne fail
    mov r1, r12
    li r2, 0
    li r3, 0
    call sys_accept
    cmpi r0, 0
    blt fail
    mov r14, r0            ; server fd 5
    ; nothing sent yet: neither data end is readable ...
    li r9, fdset
    li r10, 0x30           ; {4, 5}
    st r10, [r9+0]
    li r1, 8
    li r2, fdset
    li r3, 0
    li r4, 0
    li r5, tv
    call sys_select
    cmpi r0, 0
    bne fail
    ; ... but the client has buffer space, so it is writable
    li r9, fdset
    li r10, 0x10           ; {4}
    st r10, [r9+0]
    li r1, 8
    li r2, 0
    li r3, fdset
    li r4, 0
    li r5, tv
    call sys_select
    cmpi r0, 1
    bne fail
    ; send; the server end turns readable and the result mask says so
    mov r1, r13
    li r2, msg
    li r3, 8
    li r4, 0
    call sys_send
    cmpi r0, 8
    bne fail
    li r9, fdset
    li r10, 0x30           ; {4, 5}
    st r10, [r9+0]
    li r1, 8
    li r2, fdset
    li r3, 0
    li r4, 0
    li r5, tv
    call sys_select
    cmpi r0, 1
    bne fail
    li r9, fdset
    ld r10, [r9+0]
    cmpi r10, 0x20         ; only {5}
    bne fail
""" + EXIT0 + FAIL,
            ["socket", "bind", "listen", "connect", "accept",
             "send", "select"],
            data='.section .rodata\nname:\n  .asciz "svc:sel"\n'
                 'msg:\n  .asciz "selload"\n'
                 '.section .data\ntv:\n  .word 0\n'
                 '.section .bss\nfdset:\n  .space 4')
        assert result.exit_status == 0

    def test_console_is_always_ready(self, kernel):
        result = run_guest(kernel, """
    li r9, fdset
    li r10, 0x01           ; {0}
    st r10, [r9+0]
    li r1, 4
    li r2, fdset
    li r3, 0
    li r4, 0
    li r5, tv
    call sys_select
    mov r1, r0
    call sys_exit
""", ["select"],
            data='.section .data\ntv:\n  .word 0\n'
                 '.section .bss\nfdset:\n  .space 4')
        assert result.exit_status == 1


class TestPollOverPipes:
    def test_pipe_readiness_and_hangup(self, kernel):
        # pollfd = <fd:i32, events:u16, revents:u16>; revents rides in
        # the high half of the second word.
        result = run_guest(kernel, """
    li r1, fds
    call sys_pipe
    cmpi r0, 0
    bne fail
    li r9, fds
    ld r12, [r9+0]         ; read end
    ld r13, [r9+4]         ; write end
    ; poll both: empty pipe -> only the write end is ready (POLLOUT)
    li r9, pfds
    st r12, [r9+0]
    li r10, 1              ; POLLIN
    st r10, [r9+4]
    st r13, [r9+8]
    li r10, 4              ; POLLOUT
    st r10, [r9+12]
    li r1, pfds
    li r2, 2
    li r3, 0
    call sys_poll
    cmpi r0, 1
    bne fail
    li r9, pfds
    ld r10, [r9+4]
    shri r10, r10, 16
    cmpi r10, 0
    bne fail
    ld r10, [r9+12]
    shri r10, r10, 16
    cmpi r10, 4
    bne fail
    ; one byte in flight -> both ends ready
    mov r1, r13
    li r2, msg
    li r3, 1
    call sys_write
    cmpi r0, 1
    bne fail
    li r9, pfds
    li r10, 1
    st r10, [r9+4]
    li r10, 4
    st r10, [r9+12]
    li r1, pfds
    li r2, 2
    li r3, 0
    call sys_poll
    cmpi r0, 2
    bne fail
    li r9, pfds
    ld r10, [r9+4]
    shri r10, r10, 16
    cmpi r10, 1            ; POLLIN
    bne fail
    ; writer gone and drained: POLLIN (EOF is readable) | POLLHUP
    mov r1, r13
    call sys_close
    mov r1, r12
    li r2, buf
    li r3, 4
    call sys_read
    cmpi r0, 1
    bne fail
    li r9, pfds
    li r10, 1
    st r10, [r9+4]
    li r1, pfds
    li r2, 1
    li r3, 0
    call sys_poll
    cmpi r0, 1
    bne fail
    li r9, pfds
    ld r10, [r9+4]
    shri r10, r10, 16
    cmpi r10, 0x11         ; POLLIN | POLLHUP
    bne fail
""" + EXIT0 + FAIL,
            ["pipe", "write", "read", "close", "poll"],
            data='.section .rodata\nmsg:\n  .asciz "x"\n'
                 '.section .bss\nfds:\n  .space 8\n'
                 'pfds:\n  .space 16\nbuf:\n  .space 4')
        assert result.exit_status == 0

    def test_unknown_fd_reports_pollnval(self, kernel):
        result = run_guest(kernel, """
    li r9, pfds
    li r10, 9              ; never-opened fd
    st r10, [r9+0]
    li r10, 1
    st r10, [r9+4]
    li r1, pfds
    li r2, 1
    li r3, 0
    call sys_poll
    cmpi r0, 1
    bne fail
    li r9, pfds
    ld r10, [r9+4]
    shri r10, r10, 16
    mov r1, r10
    call sys_exit
""" + FAIL, ["poll"], data=".section .bss\npfds:\n  .space 8")
        assert result.exit_status == 0x20  # POLLNVAL
