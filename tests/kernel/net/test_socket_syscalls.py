"""The socket system calls, exercised by real guest programs.

Synchronous single-process mode: blocking falls back to the
non-blocking semantics (see kernel/net/socket.py), so a guest can
stand up a listener, dial it, and echo through the accepted end all
in one program — which is exactly what these tests do.
"""

from repro.kernel.errors import Errno
from tests.kernel.conftest import run_guest

NEG_R0_EXIT = """
    xori r1, r0, 0xFFFFFFFF
    addi r1, r1, 1
    call sys_exit
"""

EXIT_R0 = """
    mov r1, r0
    call sys_exit
"""

FAIL = """
fail:
    li r1, 77
    call sys_exit
"""


def _socket(domain, type_, protocol):
    return f"""
    li r1, {domain}
    li r2, {type_}
    li r3, {protocol}
    call sys_socket
"""


class TestSocketArgumentValidation:
    def test_unknown_domain_is_eafnosupport(self, kernel):
        result = run_guest(
            kernel, _socket(5, 1, 0) + NEG_R0_EXIT, ["socket"]
        )
        assert result.exit_status == int(Errno.EAFNOSUPPORT)

    def test_unknown_type_is_eprotonosupport(self, kernel):
        result = run_guest(
            kernel, _socket(2, 3, 0) + NEG_R0_EXIT, ["socket"]
        )
        assert result.exit_status == int(Errno.EPROTONOSUPPORT)

    def test_udp_protocol_on_stream_is_rejected(self, kernel):
        result = run_guest(
            kernel, _socket(2, 1, 17) + NEG_R0_EXIT, ["socket"]
        )
        assert result.exit_status == int(Errno.EPROTONOSUPPORT)

    def test_tcp_protocol_on_dgram_is_rejected(self, kernel):
        result = run_guest(
            kernel, _socket(2, 2, 6) + NEG_R0_EXIT, ["socket"]
        )
        assert result.exit_status == int(Errno.EPROTONOSUPPORT)

    def test_matching_protocols_accepted(self, kernel):
        # AF_INET stream+TCP and AF_UNIX dgram+UDP both yield fds.
        result = run_guest(kernel, _socket(2, 1, 6) + """
    cmpi r0, 0
    blt fail
""" + _socket(1, 2, 17) + """
    cmpi r0, 0
    blt fail
    li r1, 0
    call sys_exit
""" + FAIL, ["socket"])
        assert result.exit_status == 0


class TestSocketFstat:
    def test_fstat_reports_s_ifsock(self, kernel):
        # Exit with the file-type nibbles of st_mode (mode >> 12):
        # S_IFSOCK = 0o140000 -> 0o14 = 12.
        result = run_guest(kernel, _socket(2, 1, 0) + """
    mov r1, r0
    li r2, statbuf
    call sys_fstat
    cmpi r0, 0
    bne fail
    li r9, statbuf
    ld r10, [r9+4]
    shri r1, r10, 12
    call sys_exit
""" + FAIL, ["socket", "fstat"],
            data=".section .bss\nstatbuf:\n  .space 32")
        assert result.exit_status == 0o140000 >> 12

    def test_socket_pipe_console_types_differ(self, kernel):
        # socket 0o14, pipe 0o01, console 0o02 — packed as nibble sums
        # to prove the three synthesized stats are distinguishable.
        result = run_guest(kernel, _socket(2, 1, 0) + """
    mov r1, r0
    li r2, statbuf
    call sys_fstat
    li r9, statbuf
    ld r10, [r9+4]
    shri r13, r10, 12      ; r13 = socket type bits (12)
    li r1, fds
    call sys_pipe
    cmpi r0, 0
    bne fail
    li r9, fds
    ld r1, [r9+0]
    li r2, statbuf
    call sys_fstat
    li r9, statbuf
    ld r10, [r9+4]
    shri r10, r10, 12      ; pipe type bits (1)
    shli r10, r10, 8
    add r13, r13, r10
    li r1, 1
    li r2, statbuf
    call sys_fstat
    li r9, statbuf
    ld r10, [r9+4]
    shri r10, r10, 12      ; console type bits (2)
    shli r10, r10, 4
    add r13, r13, r10
    mov r1, r13
    call sys_exit
""" + FAIL, ["socket", "fstat", "pipe"],
            data=".section .bss\nstatbuf:\n  .space 32\nfds:\n  .space 8")
        assert result.exit_status == (12 + (2 << 4) + (1 << 8)) & 0xFF


class TestStreamErrors:
    def test_send_on_console_is_enotsock(self, kernel):
        result = run_guest(kernel, """
    li r1, 1
    li r2, buf
    li r3, 4
    li r4, 0
    call sys_send
""" + NEG_R0_EXIT, ["send"],
            data=".section .bss\nbuf:\n  .space 8")
        assert result.exit_status == int(Errno.ENOTSOCK)

    def test_sendto_on_console_is_einval(self, kernel):
        result = run_guest(kernel, """
    li r1, 1
    li r2, buf
    li r3, 4
    li r4, 0
    li r5, 0
    li r6, 0
    call sys_sendto
""" + NEG_R0_EXIT, ["sendto"],
            data=".section .bss\nbuf:\n  .space 8")
        assert result.exit_status == int(Errno.EINVAL)

    def test_sendto_unconnected_stays_a_diagnostic_sink(self, kernel):
        # The pre-net contract: an unconnected socket with no
        # destination swallows the bytes and reports the count.
        result = run_guest(kernel, _socket(2, 1, 0) + """
    mov r1, r0
    li r2, buf
    li r3, 5
    li r4, 0
    li r5, 0
    li r6, 0
    call sys_sendto
""" + EXIT_R0, ["socket", "sendto"],
            data=".section .bss\nbuf:\n  .space 8")
        assert result.exit_status == 5

    def test_recv_unconnected_is_enotconn(self, kernel):
        result = run_guest(kernel, _socket(2, 1, 0) + """
    mov r1, r0
    li r2, buf
    li r3, 8
    li r4, 0
    call sys_recv
""" + NEG_R0_EXIT, ["socket", "recv"],
            data=".section .bss\nbuf:\n  .space 8")
        assert result.exit_status == int(Errno.ENOTCONN)

    def test_send_unconnected_is_enotconn(self, kernel):
        result = run_guest(kernel, _socket(2, 1, 0) + """
    mov r1, r0
    li r2, buf
    li r3, 8
    li r4, 0
    call sys_send
""" + NEG_R0_EXIT, ["socket", "send"],
            data=".section .bss\nbuf:\n  .space 8")
        assert result.exit_status == int(Errno.ENOTCONN)

    def test_shutdown_errors(self, kernel):
        result = run_guest(kernel, _socket(2, 1, 0) + """
    mov r12, r0
    mov r1, r12
    li r2, 9               ; bad `how`
    call sys_shutdown
""" + NEG_R0_EXIT, ["socket", "shutdown"])
        assert result.exit_status == int(Errno.EINVAL)
        result = run_guest(kernel, _socket(2, 1, 0) + """
    mov r1, r0
    li r2, 1               ; SHUT_WR, but not connected
    call sys_shutdown
""" + NEG_R0_EXIT, ["socket", "shutdown"])
        assert result.exit_status == int(Errno.ENOTCONN)

    def test_connect_without_listener_is_econnrefused(self, kernel):
        result = run_guest(kernel, _socket(2, 1, 0) + """
    mov r1, r0
    li r2, name
    li r3, 0
    call sys_connect
""" + NEG_R0_EXIT, ["socket", "connect"],
            data='.section .rodata\nname:\n  .asciz "svc:ghost"')
        assert result.exit_status == int(Errno.ECONNREFUSED)

    def test_bind_null_address_is_efault(self, kernel):
        result = run_guest(kernel, _socket(2, 1, 0) + """
    mov r1, r0
    li r2, 0
    li r3, 0
    call sys_bind
""" + NEG_R0_EXIT, ["socket", "bind"])
        assert result.exit_status == int(Errno.EFAULT)


class TestLoopbackEcho:
    def test_single_process_echo_through_accepted_end(self, kernel):
        # Listener, dialer, and accepted end all in one program: the
        # synchronous fallback semantics make this legal.
        result = run_guest(kernel, _socket(2, 1, 0) + """
    mov r12, r0            ; r12 = listen fd
    mov r1, r12
    li r2, name
    li r3, 0
    call sys_bind
    cmpi r0, 0
    bne fail
    mov r1, r12
    li r2, 4
    call sys_listen
    cmpi r0, 0
    bne fail
""" + _socket(2, 1, 0) + """
    mov r13, r0            ; r13 = client fd
    mov r1, r13
    li r2, name
    li r3, 0
    call sys_connect
    cmpi r0, 0
    bne fail
    mov r1, r12
    li r2, addrbuf
    li r3, addrlen
    call sys_accept
    cmpi r0, 0
    blt fail
    mov r14, r0            ; r14 = server-side fd
    ; the reported peer name is the deterministic "conn:<ident>"
    li r9, addrbuf
    ld r10, [r9+0]
    li r9, 0x6E6E6F63      ; "conn" little-endian
    cmp r10, r9
    bne fail
    mov r1, r13
    li r2, msg
    li r3, 8
    li r4, 0
    call sys_send
    cmpi r0, 8
    bne fail
    mov r1, r14
    li r2, buf
    li r3, 8
    li r4, 0
    call sys_recv
    cmpi r0, 8
    bne fail
    li r9, msg
    ld r10, [r9+0]
    li r9, buf
    ld r9, [r9+0]
    cmp r9, r10
    bne fail
    ; tear down: EOF flows from a closed client to the server side
    mov r1, r13
    call sys_close
    mov r1, r14
    li r2, buf
    li r3, 8
    li r4, 0
    call sys_recv
    cmpi r0, 0
    bne fail
    li r1, 0
    call sys_exit
""" + FAIL,
            ["socket", "bind", "listen", "connect", "accept",
             "send", "recv", "close"],
            data='.section .rodata\nname:\n  .asciz "svc:test"\n'
                 'msg:\n  .asciz "ping-01"\n'
                 '.section .data\naddrlen:\n  .word 16\n'
                 '.section .bss\naddrbuf:\n  .space 16\nbuf:\n  .space 8')
        assert result.exit_status == 0
        assert not result.killed

    def test_dgram_roundtrip_reports_source(self, kernel):
        result = run_guest(kernel, _socket(2, 2, 0) + """
    mov r12, r0            ; r12 = receiver
    mov r1, r12
    li r2, name_a
    li r3, 0
    call sys_bind
    cmpi r0, 0
    bne fail
""" + _socket(2, 2, 0) + """
    mov r13, r0            ; r13 = sender
    mov r1, r13
    li r2, name_b
    li r3, 0
    call sys_bind
    cmpi r0, 0
    bne fail
    mov r1, r13
    li r2, msg
    li r3, 6
    li r4, 0
    li r5, name_a
    li r6, 0
    call sys_sendto
    cmpi r0, 6
    bne fail
    mov r1, r12
    li r2, buf
    li r3, 16
    li r4, 0
    li r5, srcbuf
    li r6, srclen
    call sys_recvfrom
    cmpi r0, 6
    bne fail
    li r9, srcbuf
    ld r10, [r9+0]
    li r9, 0x3A637673      ; "svc:" little-endian
    cmp r10, r9
    bne fail
    li r9, buf
    ld r10, [r9+0]
    li r9, msg
    ld r9, [r9+0]
    cmp r9, r10
    bne fail
    li r1, 0
    call sys_exit
""" + FAIL,
            ["socket", "bind", "sendto", "recvfrom"],
            data='.section .rodata\nname_a:\n  .asciz "svc:a"\n'
                 'name_b:\n  .asciz "svc:b"\nmsg:\n  .asciz "hello"\n'
                 '.section .data\nsrclen:\n  .word 16\n'
                 '.section .bss\nbuf:\n  .space 16\nsrcbuf:\n  .space 16')
        assert result.exit_status == 0
