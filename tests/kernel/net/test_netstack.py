"""The loopback socket primitives, exercised directly (no guest).

Mirrors tests/kernel/sched/test_pipes.py: construct Connection /
ListenQueue / NetStack objects by hand and pin the exact blocking,
EOF, shutdown, and teardown semantics the syscall layer and the
scheduler rely on.
"""

import pytest

from repro.kernel.errors import Errno
from repro.kernel.net.socket import (
    AF_INET,
    DGRAM_QUEUE_MAX,
    MAX_BACKLOG,
    SHUT_RD,
    SHUT_RDWR,
    SHUT_WR,
    SOCK_DGRAM,
    SOCK_STREAM,
    Connection,
    ListenQueue,
    NetStack,
    SendOnShutdown,
    Socket,
)
from repro.kernel.sched.blocking import WouldBlock
from repro.kernel.vfs import VfsError


def _errno(excinfo) -> Errno:
    return excinfo.value.errno


class TestConnection:
    def test_roundtrip_both_directions(self):
        conn = Connection(ident=1)
        assert conn.send(0, b"to-server", blocking=False) == 9
        assert conn.recv(1, 64, blocking=False) == b"to-server"
        assert conn.send(1, b"to-client", blocking=False) == 9
        assert conn.recv(0, 64, blocking=False) == b"to-client"

    def test_recv_respects_count_and_keeps_remainder(self):
        conn = Connection(ident=1)
        conn.send(0, b"abcdef", blocking=False)
        assert conn.recv(1, 4, blocking=False) == b"abcd"
        assert conn.recv(1, 4, blocking=False) == b"ef"

    def test_blocking_send_on_full_buffer_raises_wouldblock(self):
        conn = Connection(ident=7, capacity=4)
        assert conn.send(0, b"xxxx", blocking=True) == 4
        with pytest.raises(WouldBlock) as excinfo:
            conn.send(0, b"y", blocking=True)
        assert excinfo.value.wait == "sock:7:send"
        assert excinfo.value.fallback == 0

    def test_blocking_send_takes_partial_fill(self):
        # Short counts, not splits across records: the guest loops.
        conn = Connection(ident=1, capacity=4)
        conn.send(0, b"ab", blocking=True)
        assert conn.send(0, b"cdEFG", blocking=True) == 2
        assert bytes(conn.buffers[1]) == b"abcd"

    def test_nonblocking_send_is_unbounded(self):
        # Synchronous mode: nobody could ever drain the buffer, so
        # capacity is not enforced (the pipe fallback contract).
        conn = Connection(ident=1, capacity=4)
        assert conn.send(0, b"x" * 100, blocking=False) == 100

    def test_blocking_recv_on_empty_raises_wouldblock(self):
        conn = Connection(ident=9)
        with pytest.raises(WouldBlock) as excinfo:
            conn.recv(0, 8, blocking=True)
        assert excinfo.value.wait == "sock:9:recv"
        assert excinfo.value.fallback == 0

    def test_nonblocking_recv_on_empty_returns_no_bytes(self):
        conn = Connection(ident=1)
        assert conn.recv(0, 8, blocking=False) == b""

    def test_peer_close_drains_inflight_then_eof(self):
        conn = Connection(ident=1)
        conn.send(0, b"last", blocking=False)
        conn.close(0)
        assert conn.recv(1, 64, blocking=True) == b"last"
        # Graceful close: once drained, EOF even for a blocking reader.
        assert conn.recv(1, 64, blocking=True) == b""

    def test_peer_shut_wr_is_eof_for_reader(self):
        conn = Connection(ident=1)
        conn.shutdown(0, SHUT_WR)
        assert conn.recv(1, 8, blocking=True) == b""

    def test_send_after_own_shut_wr_raises(self):
        conn = Connection(ident=3)
        conn.shutdown(0, SHUT_WR)
        with pytest.raises(SendOnShutdown):
            conn.send(0, b"x", blocking=True)

    def test_send_to_closed_peer_raises(self):
        conn = Connection(ident=3)
        conn.close(1)
        with pytest.raises(SendOnShutdown):
            conn.send(0, b"x", blocking=False)

    def test_send_to_peer_with_shut_rd_raises(self):
        conn = Connection(ident=3)
        conn.shutdown(1, SHUT_RD)
        with pytest.raises(SendOnShutdown):
            conn.send(0, b"x", blocking=False)

    def test_shut_rd_discards_buffered_inbound(self):
        conn = Connection(ident=1)
        conn.send(0, b"stale", blocking=False)
        conn.shutdown(1, SHUT_RD)
        assert conn.recv(1, 64, blocking=True) == b""

    def test_shut_rdwr_sets_both_directions(self):
        conn = Connection(ident=1)
        conn.shutdown(0, SHUT_RDWR)
        assert conn.rd_shutdown[0] and conn.wr_shutdown[0]

    def test_close_discards_own_unread_but_outbound_survives(self):
        conn = Connection(ident=1)
        conn.send(0, b"from-client", blocking=False)
        conn.send(1, b"to-client", blocking=False)
        conn.close(0)  # client gone: its unread inbound is dropped
        assert not conn.buffers[0]
        assert conn.recv(1, 64, blocking=False) == b"from-client"

    def test_recv_readiness_transitions(self):
        conn = Connection(ident=1)
        assert not conn.recv_ready(1)
        conn.send(0, b"x", blocking=False)
        assert conn.recv_ready(1)
        conn.recv(1, 8, blocking=False)
        assert not conn.recv_ready(1)
        conn.close(0)
        assert conn.recv_ready(1)  # EOF counts as readable

    def test_send_readiness_tracks_space_and_errors(self):
        conn = Connection(ident=1, capacity=2)
        assert conn.send_ready(0)
        conn.send(0, b"ab", blocking=True)
        assert not conn.send_ready(0)
        conn.recv(1, 2, blocking=False)
        assert conn.send_ready(0)
        conn.close(1)
        # An immediate EPIPE analog counts as "ready": the guest must
        # get the error, not park.
        assert conn.send_ready(0)


class TestListenQueue:
    def test_backlog_clamped_to_somaxconn(self):
        assert ListenQueue(1, "svc", 10_000).backlog == MAX_BACKLOG

    def test_backlog_floor_is_one(self):
        assert ListenQueue(1, "svc", 0).backlog == 1
        assert ListenQueue(1, "svc", -3).backlog == 1


class TestNetStack:
    def _listener(self, stack, address="svc:echo", backlog=4):
        server = stack.create(AF_INET, SOCK_STREAM)
        stack.bind(server, address)
        stack.listen(server, backlog)
        return server

    def test_connect_accept_send_recv(self):
        stack = NetStack()
        server = self._listener(stack)
        client = stack.create(AF_INET, SOCK_STREAM)
        stack.connect(client, "svc:echo", blocking=False)
        child = stack.accept(server, blocking=False)
        assert child.side == 1 and client.side == 0
        assert child.conn is client.conn
        client.conn.send(client.side, b"ping", blocking=False)
        assert child.conn.recv(child.side, 8, blocking=False) == b"ping"

    def test_bind_claims_port_and_rejects_reuse(self):
        stack = NetStack()
        self._listener(stack, "svc:one")
        other = stack.create(AF_INET, SOCK_STREAM)
        with pytest.raises(VfsError) as excinfo:
            stack.bind(other, "svc:one")
        assert _errno(excinfo) == Errno.EADDRINUSE

    def test_stream_and_dgram_namespaces_are_independent(self):
        stack = NetStack()
        self._listener(stack, "svc:shared")
        dgram = stack.create(AF_INET, SOCK_DGRAM)
        stack.bind(dgram, "svc:shared")  # no conflict: TCP/UDP analog
        assert (SOCK_DGRAM, "svc:shared") in stack.ports

    def test_bind_empty_or_double_is_einval(self):
        stack = NetStack()
        sock = stack.create(AF_INET, SOCK_STREAM)
        with pytest.raises(VfsError) as excinfo:
            stack.bind(sock, "")
        assert _errno(excinfo) == Errno.EINVAL
        stack.bind(sock, "svc:a")
        with pytest.raises(VfsError) as excinfo:
            stack.bind(sock, "svc:b")
        assert _errno(excinfo) == Errno.EINVAL

    def test_listen_requires_stream_and_bound_address(self):
        stack = NetStack()
        dgram = stack.create(AF_INET, SOCK_DGRAM)
        with pytest.raises(VfsError) as excinfo:
            stack.listen(dgram, 4)
        assert _errno(excinfo) == Errno.EOPNOTSUPP
        unbound = stack.create(AF_INET, SOCK_STREAM)
        with pytest.raises(VfsError) as excinfo:
            stack.listen(unbound, 4)
        assert _errno(excinfo) == Errno.EDESTADDRREQ

    def test_connect_without_listener_is_refused(self):
        stack = NetStack()
        client = stack.create(AF_INET, SOCK_STREAM)
        with pytest.raises(VfsError) as excinfo:
            stack.connect(client, "svc:ghost", blocking=False)
        assert _errno(excinfo) == Errno.ECONNREFUSED

    def test_connect_twice_is_eisconn(self):
        stack = NetStack()
        self._listener(stack)
        client = stack.create(AF_INET, SOCK_STREAM)
        stack.connect(client, "svc:echo", blocking=False)
        with pytest.raises(VfsError) as excinfo:
            stack.connect(client, "svc:echo", blocking=False)
        assert _errno(excinfo) == Errno.EISCONN

    def test_connect_on_listener_is_einval(self):
        stack = NetStack()
        server = self._listener(stack)
        with pytest.raises(VfsError) as excinfo:
            stack.connect(server, "svc:echo", blocking=False)
        assert _errno(excinfo) == Errno.EINVAL

    def test_full_backlog_parks_blocking_connector(self):
        stack = NetStack()
        server = self._listener(stack, backlog=1)
        first = stack.create(AF_INET, SOCK_STREAM)
        stack.connect(first, "svc:echo", blocking=True)
        second = stack.create(AF_INET, SOCK_STREAM)
        with pytest.raises(WouldBlock) as excinfo:
            stack.connect(second, "svc:echo", blocking=True)
        assert excinfo.value.wait == f"sock:{server.listener.ident}:connect"
        # accept drains the queue; the retried connect then succeeds.
        stack.accept(server, blocking=False)
        stack.connect(second, "svc:echo", blocking=True)
        assert second.connected

    def test_accept_semantics(self):
        stack = NetStack()
        server = self._listener(stack)
        not_listening = stack.create(AF_INET, SOCK_STREAM)
        with pytest.raises(VfsError) as excinfo:
            stack.accept(not_listening, blocking=False)
        assert _errno(excinfo) == Errno.EINVAL
        with pytest.raises(VfsError) as excinfo:
            stack.accept(server, blocking=False)
        assert _errno(excinfo) == Errno.EAGAIN
        with pytest.raises(WouldBlock) as excinfo:
            stack.accept(server, blocking=True)
        assert excinfo.value.wait == f"sock:{server.listener.ident}:accept"
        assert excinfo.value.fallback == Errno.EAGAIN.as_result()

    def test_accept_order_is_fifo(self):
        stack = NetStack()
        server = self._listener(stack)
        clients = []
        for _ in range(3):
            client = stack.create(AF_INET, SOCK_STREAM)
            stack.connect(client, "svc:echo", blocking=False)
            clients.append(client)
        accepted = [stack.accept(server, blocking=False) for _ in range(3)]
        assert [a.conn for a in accepted] == [c.conn for c in clients]

    def test_release_frees_port_for_rebinding(self):
        stack = NetStack()
        server = self._listener(stack, "svc:re")
        server.release()
        assert (SOCK_STREAM, "svc:re") not in stack.ports
        self._listener(stack, "svc:re")  # no EADDRINUSE

    def test_refcount_defers_teardown_to_last_release(self):
        stack = NetStack()
        server = self._listener(stack, "svc:re")
        server.retain()  # fork/dup analog: shared open file description
        server.release()
        assert (SOCK_STREAM, "svc:re") in stack.ports
        server.release()
        assert (SOCK_STREAM, "svc:re") not in stack.ports

    def test_listener_teardown_closes_unaccepted_connections(self):
        stack = NetStack()
        server = self._listener(stack)
        client = stack.create(AF_INET, SOCK_STREAM)
        stack.connect(client, "svc:echo", blocking=False)
        server.release()
        # The never-accepted connection reads EOF, and a parked client
        # would wake to it instead of hanging.
        assert client.conn.recv(client.side, 8, blocking=True) == b""
        with pytest.raises(VfsError) as excinfo:
            dialer = stack.create(AF_INET, SOCK_STREAM)
            stack.connect(dialer, "svc:echo", blocking=False)
        assert _errno(excinfo) == Errno.ECONNREFUSED

    def test_dgram_delivery_carries_source_address(self):
        stack = NetStack()
        receiver = stack.create(AF_INET, SOCK_DGRAM)
        stack.bind(receiver, "svc:a")
        sender = stack.create(AF_INET, SOCK_DGRAM)
        stack.bind(sender, "svc:b")
        assert stack.send_dgram(sender, "svc:a", b"hello", blocking=False) == 5
        assert stack.recv_dgram(receiver, 64, blocking=False) == ("svc:b", b"hello")

    def test_dgram_truncation_preserves_boundaries(self):
        stack = NetStack()
        receiver = stack.create(AF_INET, SOCK_DGRAM)
        stack.bind(receiver, "svc:a")
        sender = stack.create(AF_INET, SOCK_DGRAM)
        stack.send_dgram(sender, "svc:a", b"0123456789", blocking=False)
        stack.send_dgram(sender, "svc:a", b"next", blocking=False)
        # Truncated datagram: excess bytes discarded, not re-queued.
        assert stack.recv_dgram(receiver, 4, blocking=False) == ("", b"0123")
        assert stack.recv_dgram(receiver, 64, blocking=False) == ("", b"next")

    def test_dgram_to_unbound_address_is_refused(self):
        stack = NetStack()
        sender = stack.create(AF_INET, SOCK_DGRAM)
        with pytest.raises(VfsError) as excinfo:
            stack.send_dgram(sender, "svc:ghost", b"x", blocking=False)
        assert _errno(excinfo) == Errno.ECONNREFUSED

    def test_dgram_queue_is_bounded_for_blocking_senders(self):
        stack = NetStack()
        receiver = stack.create(AF_INET, SOCK_DGRAM)
        stack.bind(receiver, "svc:a")
        sender = stack.create(AF_INET, SOCK_DGRAM)
        for _ in range(DGRAM_QUEUE_MAX):
            stack.send_dgram(sender, "svc:a", b"x", blocking=True)
        with pytest.raises(WouldBlock) as excinfo:
            stack.send_dgram(sender, "svc:a", b"x", blocking=True)
        assert excinfo.value.wait == f"sock:{receiver.ident}:dgram"

    def test_empty_dgram_queue_blocks_or_returns_nothing(self):
        stack = NetStack()
        receiver = stack.create(AF_INET, SOCK_DGRAM)
        stack.bind(receiver, "svc:a")
        assert stack.recv_dgram(receiver, 8, blocking=False) == ("", b"")
        with pytest.raises(WouldBlock):
            stack.recv_dgram(receiver, 8, blocking=True)

    def test_readiness_over_stack_objects(self):
        stack = NetStack()
        server = self._listener(stack)
        assert not stack.recv_ready(server)  # empty accept queue
        assert not stack.send_ready(server)  # listeners never send
        client = stack.create(AF_INET, SOCK_STREAM)
        stack.connect(client, "svc:echo", blocking=False)
        assert stack.recv_ready(server)  # pending connection
        child = stack.accept(server, blocking=False)
        assert not stack.recv_ready(child)
        assert stack.send_ready(child)

    def test_socket_idents_are_deterministic(self):
        a, b = NetStack(), NetStack()
        for stack in (a, b):
            self._listener(stack)
            client = stack.create(AF_INET, SOCK_STREAM)
            stack.connect(client, "svc:echo", blocking=False)
        assert a._next_ident == b._next_ident
        assert isinstance(a.create(AF_INET, SOCK_STREAM), Socket)
