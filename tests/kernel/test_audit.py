"""Audit log: the administrator-visible record of §3.4's alerts."""

from repro.kernel.audit import AuditEvent, AuditLog


def _event(kind="killed", syscall="open", reason="tampered"):
    return AuditEvent(
        kind=kind, pid=7, program="victim", syscall=syscall,
        reason=reason, call_site=0x8048020,
    )


class TestAuditLog:
    def test_record_and_count(self):
        log = AuditLog()
        log.record(_event())
        log.record(_event(kind="info", reason="started"))
        assert len(log) == 2

    def test_kills_filter(self):
        log = AuditLog()
        log.record(_event(kind="killed"))
        log.record(_event(kind="blocked"))
        log.record(_event(kind="info"))
        assert len(log.kills()) == 1
        assert len(log.alerts()) == 2

    def test_clear(self):
        log = AuditLog()
        log.record(_event())
        log.clear()
        assert len(log) == 0

    def test_render_contains_essentials(self):
        text = _event().render()
        assert "pid=7" in text
        assert "victim" in text
        assert "syscall=open" in text
        assert "0x08048020" in text
        assert "tampered" in text

    def test_render_without_site(self):
        event = AuditEvent(
            kind="alert", pid=1, program="p", syscall=None, reason="r"
        )
        assert "site=" not in event.render()
        assert "syscall=" not in event.render()
