"""Process model: fd table, std streams, counters."""

import pytest

from repro.kernel.errors import Errno
from repro.kernel.process import (
    MAX_FDS,
    O_RDONLY,
    O_RDWR,
    O_WRONLY,
    FileDescription,
    Process,
)
from repro.kernel.vfs import Inode, VfsError


def _process() -> Process:
    return Process(pid=1, name="p")


class TestStandardStreams:
    def test_std_fds_preinstalled(self):
        process = _process()
        assert set(process.fds) == {0, 1, 2}
        assert process.fd(0).readable
        assert process.fd(1).writable
        assert not process.fd(0).writable

    def test_custom_fds_not_overwritten(self):
        custom = {5: FileDescription(None, O_RDONLY, kind="console")}
        process = Process(pid=1, name="p", fds=custom)
        assert 0 not in process.fds
        assert 5 in process.fds


class TestFdTable:
    def test_allocate_lowest_free(self):
        process = _process()
        description = FileDescription(Inode(kind="file", mode=0o644), O_RDONLY)
        assert process.allocate_fd(description) == 3
        assert process.allocate_fd(description) == 4

    def test_allocate_reuses_closed(self):
        process = _process()
        description = FileDescription(Inode(kind="file", mode=0o644), O_RDONLY)
        fd = process.allocate_fd(description)
        process.close_fd(fd)
        assert process.allocate_fd(description) == fd

    def test_close_unknown_raises(self):
        with pytest.raises(VfsError) as err:
            _process().close_fd(33)
        assert err.value.errno == Errno.EBADF

    def test_fd_lookup_unknown_raises(self):
        with pytest.raises(VfsError):
            _process().fd(99)

    def test_exhaustion(self):
        process = _process()
        description = FileDescription(None, O_RDONLY, kind="console")
        for _ in range(MAX_FDS - 3):
            process.allocate_fd(description)
        with pytest.raises(VfsError) as err:
            process.allocate_fd(description)
        assert err.value.errno == Errno.EMFILE


class TestAccessModes:
    def test_rdwr_is_both(self):
        description = FileDescription(None, O_RDWR)
        assert description.readable and description.writable

    def test_wronly(self):
        description = FileDescription(None, O_WRONLY)
        assert description.writable and not description.readable


class TestAuthCounter:
    def test_counter_starts_at_zero(self):
        assert _process().auth_counter == 0

    def test_unauthenticated_by_default(self):
        assert not _process().authenticated
