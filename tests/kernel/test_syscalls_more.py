"""Long-tail syscall coverage: the calls the big profiles exercise."""


from repro.kernel.errors import Errno
from tests.kernel.conftest import run_guest

EXIT0 = """
    li r1, 0
    call sys_exit
"""


def _exit_r0():
    return "\n    mov r1, r0\n    call sys_exit\n"


class TestIdentityTail:
    def test_gid_family(self, kernel):
        result = run_guest(kernel, "call sys_getgid" + _exit_r0(), ["getgid"])
        assert result.exit_status == 1000 & 0xFF

    def test_setuid_to_self_ok(self, kernel):
        result = run_guest(
            kernel, "li r1, 1000\ncall sys_setuid" + _exit_r0(), ["setuid"]
        )
        assert result.exit_status == 0

    def test_setuid_to_root_denied(self, kernel):
        result = run_guest(kernel, """
    li r1, 0
    call sys_setuid
    xori r1, r0, 0xFFFFFFFF
    addi r1, r1, 1
    call sys_exit
""", ["setuid"])
        assert result.exit_status == int(Errno.EPERM)

    def test_pgrp_and_sid(self, kernel):
        result = run_guest(kernel, """
    call sys_getpgrp
    mov r14, r0
    call sys_setsid
    sub r1, r0, r14
    call sys_exit
""", ["getpgrp", "setsid"])
        assert result.exit_status == 0  # both return the pid


class TestFileTail:
    def test_truncate_and_ftruncate(self, kernel):
        kernel.vfs.write_file("/tmp/f", b"0123456789")
        run_guest(kernel, """
    li r1, path
    li r2, 4
    call sys_truncate
""" + EXIT0, ["truncate"], data='.section .rodata\npath:\n  .asciz "/tmp/f"')
        assert kernel.vfs.read_file("/tmp/f") == b"0123"
        run_guest(kernel, """
    li r1, path
    li r2, 2
    call sys_open
    mov r1, r0
    li r2, 8
    call sys_ftruncate
""" + EXIT0, ["open", "ftruncate"],
                  data='.section .rodata\npath:\n  .asciz "/tmp/f"')
        assert kernel.vfs.read_file("/tmp/f") == b"0123" + bytes(4)

    def test_fchmod(self, kernel):
        kernel.vfs.write_file("/tmp/f", b"")
        run_guest(kernel, """
    li r1, path
    li r2, 2
    call sys_open
    mov r1, r0
    li r2, 0x180
    call sys_fchmod
""" + EXIT0, ["open", "fchmod"],
                  data='.section .rodata\npath:\n  .asciz "/tmp/f"')
        assert kernel.vfs.lookup("/tmp/f").mode == 0o600

    def test_link_shares_inode(self, kernel):
        kernel.vfs.write_file("/tmp/orig", b"shared")
        run_guest(kernel, """
    li r1, old
    li r2, new
    call sys_link
""" + EXIT0, ["link"],
                  data='.section .rodata\nold:\n  .asciz "/tmp/orig"\n'
                       'new:\n  .asciz "/tmp/alias"')
        assert kernel.vfs.read_file("/tmp/alias") == b"shared"
        assert kernel.vfs.lookup("/tmp/alias") is kernel.vfs.lookup("/tmp/orig")
        assert kernel.vfs.lookup("/tmp/orig").nlink == 2

    def test_fchdir(self, kernel):
        result = run_guest(kernel, """
    li r1, path
    li r2, 0
    call sys_open
    mov r1, r0
    call sys_fchdir
    li r1, buf
    li r2, 32
    call sys_getcwd
    subi r3, r0, 1
    li r1, 1
    li r2, buf
    call sys_write
""" + EXIT0, ["open", "fchdir", "getcwd", "write"],
                  data='.section .rodata\npath:\n  .asciz "/etc"\n'
                       '.section .bss\nbuf:\n  .space 32')
        assert result.stdout == b"/etc"

    def test_flock_and_fsync_noop_success(self, kernel):
        kernel.vfs.write_file("/tmp/f", b"")
        result = run_guest(kernel, """
    li r1, path
    li r2, 2
    call sys_open
    mov r14, r0
    mov r1, r14
    li r2, 2
    call sys_flock
    mov r1, r14
    call sys_fsync
""" + _exit_r0(), ["open", "flock", "fsync"],
                  data='.section .rodata\npath:\n  .asciz "/tmp/f"')
        assert result.exit_status == 0

    def test_readv_gathers(self, kernel):
        kernel.vfs.write_file("/tmp/f", b"ABCDEFGH")
        result = run_guest(kernel, """
    li r1, path
    li r2, 0
    call sys_open
    mov r1, r0
    li r2, iov
    li r3, 2
    call sys_readv
    mov r14, r0
    li r1, 1
    li r2, b1
    li r3, 3
    call sys_write
    li r1, 1
    li r2, b2
    li r3, 5
    call sys_write
""" + EXIT0, ["open", "readv", "write"],
                  data='.section .rodata\npath:\n  .asciz "/tmp/f"\n'
                       '.section .data\niov:\n  .word b1, 3, b2, 5\n'
                       '.section .bss\nb1:\n  .space 3\nb2:\n  .space 8')
        assert result.stdout == b"ABCDEFGH"


class TestResourceTail:
    def test_times_reports_ticks(self, kernel):
        result = run_guest(kernel, """
    cpuwork 48000000
    li r1, buf
    call sys_times
""" + _exit_r0(), ["times"], data=".section .bss\nbuf:\n  .space 16")
        # 48M cycles at 2.4G/100 ticks-per-second granularity = 2 ticks
        assert result.exit_status == 2

    def test_getrusage_writes_struct(self, kernel):
        result = run_guest(kernel, """
    li r1, 0
    li r2, buf
    call sys_getrusage
""" + _exit_r0(), ["getrusage"], data=".section .bss\nbuf:\n  .space 16")
        assert result.exit_status == 0

    def test_priority_calls(self, kernel):
        result = run_guest(kernel, """
    li r1, 0
    li r2, 0
    call sys_getpriority
""" + _exit_r0(), ["getpriority"])
        assert result.exit_status == 20

    def test_getgroups(self, kernel):
        result = run_guest(kernel, """
    li r1, 4
    li r2, buf
    call sys_getgroups
    ld r1, [r2+0]
    andi r1, r1, 0xFF
    call sys_exit
""", ["getgroups"], data=".section .bss\nbuf:\n  .space 16")
        assert result.exit_status == 1000 & 0xFF

    def test_wait4_echild(self, kernel):
        result = run_guest(kernel, """
    li r1, 0xFFFFFFFF
    li r2, 0
    li r3, 0
    li r4, 0
    call sys_wait4
    xori r1, r0, 0xFFFFFFFF
    addi r1, r1, 1
    call sys_exit
""", ["wait4"])
        assert result.exit_status == int(Errno.ECHILD)

    def test_statfs(self, kernel):
        result = run_guest(kernel, """
    li r1, path
    li r2, buf
    call sys_statfs
    ld r1, [r2+4]
    shri r1, r1, 8
    call sys_exit
""", ["statfs"],
                  data='.section .rodata\npath:\n  .asciz "/tmp"\n'
                       ".section .bss\nbuf:\n  .space 16")
        assert result.exit_status == 0x10  # block size 4096 >> 8

    def test_select_and_poll_report_ready(self, kernel):
        result = run_guest(kernel, """
    li r1, 3
    li r2, 0
    li r3, 0
    li r4, 0
    li r5, 0
    call sys_select
    mov r14, r0
    li r1, 0
    li r2, 2
    li r3, 0
    call sys_poll
    add r1, r0, r14
    call sys_exit
""", ["select", "poll"])
        assert result.exit_status == 5


class TestSpawn:
    def test_spawn_returns_child_status(self, kernel):
        from repro.asm import assemble
        from repro.workloads.runtime import runtime_source

        child = assemble(
            ".section .text\n.global _start\n_start:\n    li r1, 7\n"
            "    call sys_exit\n" + runtime_source("linux", ("exit",)),
            metadata={"program": "child"},
        )
        kernel.register_binary("/bin/child", child)
        result = run_guest(kernel, """
    li r1, path
    li r2, 0
    call sys_spawn
""" + _exit_r0(), ["spawn"],
                  data='.section .rodata\npath:\n  .asciz "/bin/child"')
        assert result.exit_status == 7

    def test_spawn_missing_program(self, kernel):
        result = run_guest(kernel, """
    li r1, path
    li r2, 0
    call sys_spawn
    xori r1, r0, 0xFFFFFFFF
    addi r1, r1, 1
    call sys_exit
""", ["spawn"], data='.section .rodata\npath:\n  .asciz "/bin/ghost"')
        # spawn truncates the status to a byte; an error surfaces as the
        # low byte of -ENOENT... check it is nonzero and not a crash.
        assert result.exit_status != 7

    def test_exec_depth_limited(self, kernel):
        # A self-spawning program must hit the kernel's depth cap, not
        # recurse the host interpreter to death.
        from repro.asm import assemble
        from repro.workloads.runtime import runtime_source

        source = """
.section .text
.global _start
_start:
    li r1, path
    li r2, 0
    call sys_spawn
    li r1, 0
    call sys_exit
.section .rodata
path:
    .asciz "/bin/loop"
""" + runtime_source("linux", ("spawn", "exit"))
        binary = assemble(source, metadata={"program": "loop"})
        kernel.register_binary("/bin/loop", binary)
        result = kernel.run(binary)
        assert result.exit_status == 0  # bottoms out at ELOOP, unwinds
