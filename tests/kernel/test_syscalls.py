"""System call semantics, exercised by real guest programs."""

import struct

from repro.kernel.errors import Errno, errno_of, is_error
from tests.kernel.conftest import run_guest

EXIT0 = """
    li r1, 0
    call sys_exit
"""


def _exit_with_r0():
    """Exit with the low byte of the last syscall's result."""
    return """
    mov r1, r0
    call sys_exit
"""


class TestErrnoHelpers:
    def test_as_result_is_twos_complement(self):
        assert Errno.ENOENT.as_result() == 0xFFFFFFFE

    def test_is_error_range(self):
        assert is_error(Errno.ENOENT.as_result())
        assert not is_error(0)
        assert not is_error(0x7FFFFFFF)

    def test_errno_of(self):
        assert errno_of(Errno.EBADF.as_result()) == Errno.EBADF


class TestProcessIdentity:
    def test_getpid_stable_and_unique(self, kernel):
        first = run_guest(kernel, "call sys_getpid\n" + _exit_with_r0(), ["getpid"])
        second = run_guest(kernel, "call sys_getpid\n" + _exit_with_r0(), ["getpid"])
        assert second.exit_status == first.exit_status + 1

    def test_uid_gid(self, kernel):
        result = run_guest(kernel, "call sys_getuid\n" + _exit_with_r0(), ["getuid"])
        assert result.exit_status == 1000 & 0xFF

    def test_exit_status_masked(self, kernel):
        result = run_guest(kernel, "li r1, 300\ncall sys_exit", [])
        assert result.exit_status == 300 & 0xFF


class TestFileIo:
    def test_open_read_write_close(self, kernel):
        kernel.vfs.write_file("/tmp/in", b"abcdef")
        result = run_guest(kernel, """
    li r1, path
    li r2, 0
    call sys_open
    mov r14, r0
    mov r1, r14
    li r2, buf
    li r3, 16
    call sys_read
    mov r13, r0
    li r1, 1
    li r2, buf
    mov r3, r13
    call sys_write
    mov r1, r14
    call sys_close
""" + EXIT0,
            ["open", "read", "write", "close"],
            data='.section .rodata\npath:\n  .asciz "/tmp/in"\n'
                 '.section .bss\nbuf:\n  .space 16',
        )
        assert result.stdout == b"abcdef"
        assert result.exit_status == 0

    def test_open_missing_file_returns_enoent(self, kernel):
        result = run_guest(kernel, """
    li r1, path
    li r2, 0
    call sys_open
    xori r1, r0, 0xFFFFFFFF
    addi r1, r1, 1
    call sys_exit
""", ["open"], data='.section .rodata\npath:\n  .asciz "/tmp/ghost"')
        assert result.exit_status == int(Errno.ENOENT)

    def test_o_creat_and_trunc(self, kernel):
        kernel.vfs.write_file("/tmp/f", b"oldcontent")
        run_guest(kernel, """
    li r1, path
    li r2, 0x241
    li r3, 0x1a4
    call sys_open
    mov r1, r0
    li r2, msg
    li r3, 3
    call sys_write
""" + EXIT0,
            ["open", "write"],
            data='.section .rodata\npath:\n  .asciz "/tmp/f"\nmsg:\n  .asciz "new"',
        )
        assert kernel.vfs.read_file("/tmp/f") == b"new"

    def test_append_mode(self, kernel):
        kernel.vfs.write_file("/tmp/f", b"AB")
        run_guest(kernel, """
    li r1, path
    li r2, 0x401         ; O_WRONLY|O_APPEND (0o2001)
    call sys_open
    mov r1, r0
    li r2, msg
    li r3, 2
    call sys_write
""" + EXIT0,
            ["open", "write"],
            data='.section .rodata\npath:\n  .asciz "/tmp/f"\nmsg:\n  .asciz "CD"',
        )
        assert kernel.vfs.read_file("/tmp/f") == b"ABCD"

    def test_read_from_stdin(self, kernel):
        result = run_guest(kernel, """
    li r1, 0
    li r2, buf
    li r3, 5
    call sys_read
    li r1, 1
    li r2, buf
    mov r3, r0
    call sys_write
""" + EXIT0,
            ["read", "write"],
            data=".section .bss\nbuf:\n  .space 8",
            stdin=b"hi!",
        )
        assert result.stdout == b"hi!"

    def test_bad_fd(self, kernel):
        result = run_guest(kernel, """
    li r1, 55
    call sys_close
    xori r1, r0, 0xFFFFFFFF
    addi r1, r1, 1
    call sys_exit
""", ["close"])
        assert result.exit_status == int(Errno.EBADF)

    def test_lseek_set_and_end(self, kernel):
        kernel.vfs.write_file("/tmp/f", b"0123456789")
        result = run_guest(kernel, """
    li r1, path
    li r2, 0
    call sys_open
    mov r14, r0
    mov r1, r14
    li r2, 4
    li r3, 0
    call sys_lseek
    mov r1, r14
    li r2, buf
    li r3, 2
    call sys_read
    li r1, 1
    li r2, buf
    li r3, 2
    call sys_write
""" + EXIT0,
            ["open", "lseek", "read", "write"],
            data='.section .rodata\npath:\n  .asciz "/tmp/f"\n'
                 '.section .bss\nbuf:\n  .space 4',
        )
        assert result.stdout == b"45"

    def test_dup_shares_offset_snapshot(self, kernel):
        kernel.vfs.write_file("/tmp/f", b"xyz")
        result = run_guest(kernel, """
    li r1, path
    li r2, 0
    call sys_open
    mov r1, r0
    call sys_dup
""" + _exit_with_r0(),
            ["open", "dup"],
            data='.section .rodata\npath:\n  .asciz "/tmp/f"',
        )
        assert result.exit_status == 4  # 0,1,2 std; 3 open; 4 dup


class TestNamespaceCalls:
    def test_mkdir_chdir_getcwd(self, kernel):
        result = run_guest(kernel, """
    li r1, path
    li r2, 0x1ed
    call sys_mkdir
    li r1, path
    call sys_chdir
    li r1, buf
    li r2, 64
    call sys_getcwd
    subi r3, r0, 1
    li r1, 1
    li r2, buf
    call sys_write
""" + EXIT0,
            ["mkdir", "chdir", "getcwd", "write"],
            data='.section .rodata\npath:\n  .asciz "/tmp/newdir"\n'
                 '.section .bss\nbuf:\n  .space 64',
        )
        assert result.stdout == b"/tmp/newdir"

    def test_unlink_and_access(self, kernel):
        kernel.vfs.write_file("/tmp/f", b"")
        result = run_guest(kernel, """
    li r1, path
    call sys_unlink
    li r1, path
    li r2, 0
    call sys_access
    xori r1, r0, 0xFFFFFFFF
    addi r1, r1, 1
    call sys_exit
""", ["unlink", "access"], data='.section .rodata\npath:\n  .asciz "/tmp/f"')
        assert result.exit_status == int(Errno.ENOENT)

    def test_rename(self, kernel):
        kernel.vfs.write_file("/tmp/a", b"data")
        run_guest(kernel, """
    li r1, old
    li r2, new
    call sys_rename
""" + EXIT0,
            ["rename"],
            data='.section .rodata\nold:\n  .asciz "/tmp/a"\nnew:\n  .asciz "/tmp/b"',
        )
        assert kernel.vfs.read_file("/tmp/b") == b"data"

    def test_symlink_readlink(self, kernel):
        result = run_guest(kernel, """
    li r1, target
    li r2, ln
    call sys_symlink
    li r1, ln
    li r2, buf
    li r3, 64
    call sys_readlink
    mov r3, r0
    li r1, 1
    li r2, buf
    call sys_write
""" + EXIT0,
            ["symlink", "readlink", "write"],
            data='.section .rodata\ntarget:\n  .asciz "/etc/motd"\n'
                 'ln:\n  .asciz "/tmp/ln"\n.section .bss\nbuf:\n  .space 64',
        )
        assert result.stdout == b"/etc/motd"


class TestMetadataCalls:
    def test_stat_fields(self, kernel):
        kernel.vfs.write_file("/tmp/f", b"12345")
        result = run_guest(kernel, """
    li r1, path
    li r2, buf
    call sys_stat
    li r1, 1
    li r2, buf
    li r3, 12
    call sys_write
""" + EXIT0,
            ["stat", "write"],
            data='.section .rodata\npath:\n  .asciz "/tmp/f"\n'
                 '.section .bss\nbuf:\n  .space 32',
        )
        ino, mode, size = struct.unpack_from("<III", result.stdout, 0)
        assert size == 5
        assert mode & 0o170000 == 0o100000  # S_IFREG

    def test_gettimeofday_writes_tv(self, kernel):
        result = run_guest(kernel, """
    li r1, buf
    li r2, 0
    call sys_gettimeofday
    li r1, 1
    li r2, buf
    li r3, 8
    call sys_write
""" + EXIT0,
            ["gettimeofday", "write"],
            data=".section .bss\nbuf:\n  .space 8",
        )
        seconds, _micros = struct.unpack("<II", result.stdout)
        assert seconds >= 1127692800

    def test_uname(self, kernel):
        result = run_guest(kernel, """
    li r1, buf
    call sys_uname
    li r1, 1
    li r2, buf
    li r3, 5
    call sys_write
""" + EXIT0,
            ["uname", "write"],
            data=".section .bss\nbuf:\n  .space 160",
        )
        assert result.stdout == b"SVM32"

    def test_getdirentries_format(self, kernel):
        kernel.vfs.write_file("/tmp/zz", b"")
        result = run_guest(kernel, """
    li r1, path
    li r2, 0
    call sys_open
    mov r1, r0
    li r2, buf
    li r3, 256
    li r4, 0
    call sys_getdirentries
    mov r3, r0
    li r1, 1
    li r2, buf
    call sys_write
""" + EXIT0,
            ["open", "getdirentries", "write"],
            data='.section .rodata\npath:\n  .asciz "/tmp"\n'
                 '.section .bss\nbuf:\n  .space 256',
        )
        assert b"zz\x00" in result.stdout


class TestMemoryCalls:
    def test_brk_grows_heap(self, kernel):
        result = run_guest(kernel, """
    li r1, 0
    call sys_brk
    mov r14, r0
    addi r1, r14, 8192
    call sys_brk
    sub r1, r0, r14
    call sys_exit
""", ["brk"])
        assert result.exit_status == 8192 & 0xFF or result.exit_status == 0

    def test_brk_memory_usable(self, kernel):
        result = run_guest(kernel, """
    li r1, 0
    call sys_brk
    mov r14, r0
    addi r1, r14, 4096
    call sys_brk
    li r9, 77
    st r9, [r14+100]
    ld r1, [r14+100]
    call sys_exit
""", ["brk"])
        assert result.exit_status == 77

    def test_mmap_returns_usable_region(self, kernel):
        result = run_guest(kernel, """
    li r1, 0
    li r2, 8192
    li r3, 3
    li r4, 0x22
    li r5, 0xFFFFFFFF
    li r6, 0
    call sys_mmap
    mov r14, r0
    li r9, 55
    st r9, [r14+4096]
    ld r1, [r14+4096]
    call sys_exit
""", ["mmap"])
        assert result.exit_status == 55

    def test_mmap_file_backed(self, kernel):
        kernel.vfs.write_file("/tmp/f", b"Q" + bytes(10))
        result = run_guest(kernel, """
    li r1, path
    li r2, 0
    call sys_open
    mov r13, r0
    li r1, 0
    li r2, 4096
    li r3, 1
    li r4, 2
    mov r5, r13
    li r6, 0
    call sys_mmap
    ldb r1, [r0+0]
    call sys_exit
""", ["open", "mmap"], data='.section .rodata\npath:\n  .asciz "/tmp/f"')
        assert result.exit_status == ord("Q")


class TestVectoredIo:
    def test_writev_gathers(self, kernel):
        result = run_guest(kernel, """
    li r1, 1
    li r2, iov
    li r3, 2
    call sys_writev
""" + EXIT0,
            ["writev"],
            data=".section .rodata\n"
                 'part1:\n  .asciz "hello "\n'
                 'part2:\n  .asciz "world"\n'
                 ".section .data\niov:\n"
                 "  .word part1, 6, part2, 5",
        )
        assert result.stdout == b"hello world"


class TestIndirection:
    def test_generic_syscall_dispatches(self, kernel):
        # __syscall(20) == getpid
        result = run_guest(kernel, """
    li r1, 20
    call sys_syscall
""" + _exit_with_r0(), ["__syscall", "getpid"])
        assert result.exit_status == result.process.pid & 0xFF

    def test_generic_syscall_rejects_recursion(self, kernel):
        result = run_guest(kernel, """
    li r1, 198
    call sys_syscall
    xori r1, r0, 0xFFFFFFFF
    addi r1, r1, 1
    call sys_exit
""", ["__syscall"])
        assert result.exit_status == int(Errno.ENOSYS)


class TestSignalsAndLimits:
    def test_kill_signal_zero_probe(self, kernel):
        result = run_guest(kernel, """
    call sys_getpid
    mov r1, r0
    li r2, 0
    call sys_kill
""" + _exit_with_r0(), ["getpid", "kill"])
        assert result.exit_status == 0

    def test_kill_self_terminates(self, kernel):
        result = run_guest(kernel, """
    call sys_getpid
    mov r1, r0
    li r2, 9
    call sys_kill
""" + EXIT0, ["getpid", "kill"])
        assert result.killed
        assert result.exit_status == 128 + 9

    def test_sigaction_records_handler(self, kernel):
        result = run_guest(kernel, """
    li r1, 2
    li r2, 0x1234
    li r3, 0
    call sys_sigaction
""" + _exit_with_r0(), ["sigaction"])
        assert result.exit_status == 0
        assert result.process.signal_handlers[2] == 0x1234

    def test_getrlimit(self, kernel):
        result = run_guest(kernel, """
    li r1, 0
    li r2, buf
    call sys_getrlimit
    ld r1, [r2+0]
    andi r1, r1, 0xFF
    call sys_exit
""", ["getrlimit"], data=".section .bss\nbuf:\n  .space 8")
        assert result.exit_status == 0xFF


class TestSockets:
    def test_socket_sendto(self, kernel):
        result = run_guest(kernel, """
    li r1, 2
    li r2, 1
    li r3, 0
    call sys_socket
    mov r1, r0
    li r2, msg
    li r3, 4
    li r4, 0
    li r5, 0
    li r6, 0
    call sys_sendto
""" + _exit_with_r0(),
            ["socket", "sendto"],
            data='.section .rodata\nmsg:\n  .asciz "ping"',
        )
        assert result.exit_status == 4
        assert result.process.network == [b"ping"]

    def test_sendto_on_file_fd_rejected(self, kernel):
        kernel.vfs.write_file("/tmp/f", b"")
        result = run_guest(kernel, """
    li r1, path
    li r2, 1
    call sys_open
    mov r1, r0
    li r2, msg
    li r3, 1
    li r4, 0
    call sys_sendto
    xori r1, r0, 0xFFFFFFFF
    addi r1, r1, 1
    call sys_exit
""",
            ["open", "sendto"],
            data='.section .rodata\npath:\n  .asciz "/tmp/f"\nmsg:\n  .asciz "x"',
        )
        assert result.exit_status == int(Errno.EINVAL)


class TestUnknownSyscall:
    def test_enosys(self, kernel):
        result = run_guest(kernel, """
    li r0, 9999
    sys
    xori r1, r0, 0xFFFFFFFF
    addi r1, r1, 1
    call sys_exit
""", [])
        assert result.exit_status == int(Errno.ENOSYS)
