"""Authenticated system call checking (§3.4): the security core.

These tests install a small program and then tamper with specific
pieces — each check of the kernel's three-step validation must catch
its corresponding corruption, and untampered runs must pass.
"""

import pytest

from repro.asm import assemble
from repro.binfmt import link
from repro.crypto import Key
from repro.installer import InstallerOptions, install
from repro.kernel import EnforcementMode, Kernel
from repro.workloads.runtime import runtime_source

KEY = Key.from_passphrase("test-auth", provider="fast-hmac")

PROGRAM = """
.section .text
.global _start
_start:
    li r1, path
    li r2, 0
    call sys_open
    mov r14, r0
    mov r1, r14
    li r2, buf
    li r3, 32
    call sys_read
    li r1, 1
    li r2, buf
    mov r3, r0
    call sys_write
    li r1, 0
    call sys_exit
.section .rodata
path:
    .asciz "/etc/motd"
.section .bss
buf:
    .space 32
""" + runtime_source("linux", ("open", "read", "write", "exit"))


@pytest.fixture(scope="module")
def installed():
    binary = assemble(PROGRAM, metadata={"program": "authtest"})
    return install(binary, KEY)


def _kernel():
    kernel = Kernel(key=KEY)
    kernel.vfs.write_file("/etc/motd", b"greetings")
    return kernel


class TestHappyPath:
    def test_authenticated_run_succeeds(self, installed):
        result = _kernel().run(installed.binary)
        assert result.ok
        assert result.stdout == b"greetings"

    def test_repeat_runs_are_independent(self, installed):
        kernel = _kernel()
        for _ in range(3):
            assert kernel.run(installed.binary).ok

    def test_enforcing_mode_accepts_authenticated(self, installed):
        kernel = _kernel()
        kernel.mode = EnforcementMode.ENFORCE
        assert kernel.run(installed.binary).ok

    def test_auth_cycles_charged(self, installed):
        raw = assemble(PROGRAM, metadata={"program": "authtest"})
        plain = _kernel().run(raw)
        checked = _kernel().run(installed.binary)
        assert checked.cycles > plain.cycles
        # ~4k+ cycles per checked call (Table 4's surcharge).
        per_call = (checked.cycles - plain.cycles) / checked.syscalls
        assert 3000 < per_call < 15000


class TestWrongKey:
    def test_key_mismatch_fail_stops(self, installed):
        kernel = Kernel(key=Key.from_passphrase("other", provider="fast-hmac"))
        kernel.vfs.write_file("/etc/motd", b"x")
        result = kernel.run(installed.binary)
        assert result.killed
        assert "MAC mismatch" in result.kill_reason

    def test_rotated_key_invalidates_binaries(self, installed):
        kernel = _kernel()
        assert kernel.run(installed.binary).ok
        kernel.key = Key.generate()
        from repro.crypto import mac_provider_for_key
        from repro.kernel.auth import AuthChecker

        kernel.mac = mac_provider_for_key(kernel.key)
        kernel._checker = AuthChecker(kernel.mac, kernel.costs)
        assert kernel.run(installed.binary).killed


def _tamper_and_run(installed, mutate):
    """Load, apply a memory mutation, run; returns the RunResult-ish vm."""
    kernel = _kernel()
    process, vm = kernel.load(installed.binary)
    image = link(installed.binary)
    mutate(vm, image, installed)
    vm.run()
    return kernel, process, vm


class TestTampering:
    def test_flipped_call_mac(self, installed):
        def mutate(vm, image, inst):
            site = inst.site_for_syscall("open")
            record = image.address_of(inst.site_records[site])
            byte = vm.memory.read(record + 16, 1, force=True)[0]
            vm.memory.write(record + 16, bytes([byte ^ 1]), force=True)

        _, _, vm = _tamper_and_run(installed, mutate)
        assert vm.killed and "call MAC mismatch" in vm.kill_reason

    def test_weakened_policy_descriptor(self, installed):
        def mutate(vm, image, inst):
            site = inst.site_for_syscall("open")
            record = image.address_of(inst.site_records[site])
            vm.memory.write_u32(record, 0, force=True)  # descriptor := 0

        _, _, vm = _tamper_and_run(installed, mutate)
        assert vm.killed and "MAC mismatch" in vm.kill_reason

    def test_swapped_block_id(self, installed):
        def mutate(vm, image, inst):
            site = inst.site_for_syscall("open")
            record = image.address_of(inst.site_records[site])
            vm.memory.write_u32(record + 4, 999, force=True)

        _, _, vm = _tamper_and_run(installed, mutate)
        assert vm.killed

    def test_corrupted_string_content(self, installed):
        def mutate(vm, image, inst):
            path = image.address_of("path")
            vm.memory.write(path, b"/etc/passwd"[:9], force=True)

        _, _, vm = _tamper_and_run(installed, mutate)
        assert vm.killed and "integrity" in vm.kill_reason

    def test_corrupted_string_length(self, installed):
        def mutate(vm, image, inst):
            path = image.address_of("path")
            vm.memory.write_u32(path - 20, 3, force=True)  # shrink length

        _, _, vm = _tamper_and_run(installed, mutate)
        assert vm.killed

    def test_absurd_string_length_bounded(self, installed):
        # A forged huge length must not stall the kernel; it is killed.
        def mutate(vm, image, inst):
            path = image.address_of("path")
            vm.memory.write_u32(path - 20, 0xFFFFFF, force=True)

        _, _, vm = _tamper_and_run(installed, mutate)
        assert vm.killed

    def test_corrupted_predecessor_set(self, installed):
        def mutate(vm, image, inst):
            site = inst.site_for_syscall("read")
            record = image.address_of(inst.site_records[site])
            predset = vm.memory.read_u32(record + 8, force=True)
            vm.memory.write_u32(predset, 0xDEAD, force=True)

        _, _, vm = _tamper_and_run(installed, mutate)
        assert vm.killed

    def test_corrupted_lastblock(self, installed):
        def mutate(vm, image, inst):
            polstate = image.address_of("__asc_polstate")
            vm.memory.write_u32(polstate, 42, force=True)

        _, _, vm = _tamper_and_run(installed, mutate)
        assert vm.killed and "policy state" in vm.kill_reason

    def test_dangling_record_pointer(self, installed):
        def mutate(vm, image, inst):
            site = inst.site_for_syscall("open")
            # The LI r7 immediately before the ASYS holds the record
            # pointer; repoint it at unmapped memory.
            vm.memory.write_u32(site - 8 + 4, 0x99999000, force=True)
            vm._decode_cache.clear()

        _, _, vm = _tamper_and_run(installed, mutate)
        assert vm.killed and "auth record" in vm.kill_reason

    def test_audit_log_records_kills(self, installed):
        kernel = _kernel()
        process, vm = kernel.load(installed.binary)
        image = link(installed.binary)
        site = installed.site_for_syscall("open")
        record = image.address_of(installed.site_records[site])
        byte = vm.memory.read(record + 16, 1, force=True)[0]
        vm.memory.write(record + 16, bytes([byte ^ 1]), force=True)
        vm.run()
        kills = kernel.audit.kills()
        assert len(kills) == 1
        assert kills[0].syscall == "open"
        assert kills[0].call_site == site


class TestControlFlowPolicy:
    def test_predecessors_enforced_in_order(self, installed):
        # The legitimate order passes (already covered); skipping a
        # call by jumping over it must fail.
        kernel = _kernel()
        process, vm = kernel.load(installed.binary)
        read_site = installed.site_for_syscall("read")
        # Jump directly to the read sequence, skipping open entirely.
        vm.pc = read_site - 8 * 4
        vm.regs[1] = 3
        vm.run()
        assert vm.killed

    def test_no_control_flow_option(self):
        binary = assemble(PROGRAM, metadata={"program": "authtest"})
        inst = install(binary, KEY, InstallerOptions(control_flow=False))
        for policy in inst.policy.sites.values():
            assert not policy.control_flow
        result = _kernel().run(inst.binary)
        assert result.ok


class TestUnauthenticatedCalls:
    def test_plain_sys_blocked_in_protected_binary(self, installed):
        from repro.isa import Instruction, encode_instruction
        from repro.isa.opcodes import Op

        kernel = _kernel()
        process, vm = kernel.load(installed.binary)
        text = vm.memory.find_region(".text")
        vm.memory.write(
            text.start,
            encode_instruction(Instruction(Op.LI, regs=(0,), imm=20))
            + encode_instruction(Instruction(Op.SYS)),
            force=True,
        )
        vm._decode_cache.clear()
        vm.run()
        assert vm.killed
        assert "unauthenticated" in vm.kill_reason

    def test_legacy_binary_allowed_in_permissive(self):
        binary = assemble(PROGRAM, metadata={"program": "legacy"})
        kernel = _kernel()
        assert kernel.run(binary).ok

    def test_legacy_binary_killed_in_enforcing(self):
        binary = assemble(PROGRAM, metadata={"program": "legacy"})
        kernel = _kernel()
        kernel.mode = EnforcementMode.ENFORCE
        result = kernel.run(binary)
        assert result.killed
