"""NX ablation: page protection vs authentication as the stopper.

The paper's threat model predates NX; the §4.1 shellcode attack works
*because* readable memory executes.  With ``Kernel(nx=True)`` the same
attack dies at instruction fetch instead of at the trap — but NX does
nothing against mimicry or non-control-data attacks, which is exactly
why authenticated calls matter even on NX hardware.
"""

import pytest

from repro.attacks import (
    non_control_data_attack,
    shellcode_attack,
)
from repro.attacks.scenarios import _install_victim, _prepare_kernel
from repro.crypto import Key
from repro.cpu import ExecutionFault
from tests.kernel.conftest import run_guest

KEY = Key.from_passphrase("nx-tests", provider="fast-hmac")


class TestMprotect:
    def test_mprotect_revokes_write(self, kernel):
        with pytest.raises(ExecutionFault, match="protection"):
            run_guest(kernel, """
    li r9, cell
    li r10, 1
    st r10, [r9+0]       ; writable before
    mov r1, r9
    li r2, 4096
    li r3, 1             ; PROT_READ only
    call sys_mprotect
    st r10, [r9+0]       ; faults now
    li r1, 0
    call sys_exit
""", ["mprotect"], data=".section .data\ncell:\n  .word 0")

    def test_mprotect_bad_bits(self, kernel):
        from repro.kernel.errors import Errno

        result = run_guest(kernel, """
    li r1, cell
    li r2, 4096
    li r3, 0xFF
    call sys_mprotect
    xori r1, r0, 0xFFFFFFFF
    addi r1, r1, 1
    call sys_exit
""", ["mprotect"], data=".section .data\ncell:\n  .word 0")
        assert result.exit_status == int(Errno.EINVAL)

    def test_mprotect_unmapped(self, kernel):
        from repro.kernel.errors import Errno

        result = run_guest(kernel, """
    li r1, 0x99990000
    li r2, 4096
    li r3, 1
    call sys_mprotect
    xori r1, r0, 0xFFFFFFFF
    addi r1, r1, 1
    call sys_exit
""", ["mprotect"])
        assert result.exit_status == int(Errno.ENOMEM)


class TestNxAblation:
    def test_shellcode_dies_at_fetch_under_nx(self):
        # Same §4.1 attack; the NX kernel never reaches the trap — the
        # injected code cannot even execute.
        installed = _install_victim(KEY)
        from repro.attacks.scenarios import _find_buffer_address
        import struct
        from repro.isa import Instruction, encode_instruction
        from repro.isa.opcodes import Op
        from repro.kernel.syscalls import SYSCALL_NUMBERS

        buffer_address = _find_buffer_address(KEY, installed)
        code = encode_instruction(
            Instruction(Op.LI, regs=(0,), imm=SYSCALL_NUMBERS["execve"])
        ) + encode_instruction(Instruction(Op.SYS))
        payload = code.ljust(64, b"\x00") + struct.pack("<I", buffer_address)

        kernel = _prepare_kernel(KEY)
        kernel.nx = True
        process, vm = kernel.load(installed.binary, stdin=payload)
        with pytest.raises(ExecutionFault, match="NX"):
            vm.run()

    def test_nx_does_not_stop_non_control_data(self):
        # NX is irrelevant here: no injected code executes.  Only the
        # authenticated-string check stops the attack — the reason
        # authentication still matters on NX hardware.
        result = non_control_data_attack(KEY)
        assert result.blocked
        assert "integrity" in result.kill_reason

    def test_authentication_stops_shellcode_without_nx(self):
        result = shellcode_attack(KEY)
        assert result.blocked
        assert "unauthenticated" in result.kill_reason
