"""Shared helpers: run guest assembly snippets against a kernel."""

import pytest

from repro.asm import assemble
from repro.kernel import Kernel
from repro.workloads.runtime import runtime_source


@pytest.fixture
def kernel():
    return Kernel()


def run_guest(
    kernel,
    body: str,
    syscalls=(),
    data: str = "",
    stdin: bytes = b"",
    argv=None,
):
    """Assemble `_start: <body>` plus the runtime and run it.

    The body is expected to end the process itself (call sys_exit or
    halt)."""
    source = (
        ".section .text\n.global _start\n_start:\n"
        + body
        + "\n"
        + (data + "\n" if data else "")
        + runtime_source("linux", tuple(syscalls) + ("exit",))
    )
    binary = assemble(source, metadata={"program": "guest"})
    return kernel.run(binary, stdin=stdin, argv=argv)
