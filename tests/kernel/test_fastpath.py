"""The per-site verification fast path (VerifiedSiteCache).

Covers the cache's unit semantics, the kernel-level counters surfaced
through the audit log, the ``fastpath=False`` escape hatch, and the
cycle accounting that makes a cached check visibly cheaper than a cold
one.  The *security* boundary of the cache — tampering after warm-up —
is exercised in tests/attacks/test_fastpath_boundary.py.
"""

import pytest

from repro.asm import assemble
from repro.binfmt import link
from repro.crypto import Key
from repro.installer import install
from repro.kernel import FastPathStats, Kernel, VerifiedSiteCache
from repro.policy.descriptor import PolicyDescriptor
from repro.workloads.runtime import runtime_source

KEY = Key.from_passphrase("test-fastpath", provider="fast-hmac")

LOOP_ITERATIONS = 50

LOOP_PROGRAM = f"""
.section .text
.global _start
_start:
    li r13, {LOOP_ITERATIONS}
loop:
    call sys_getpid
    subi r13, r13, 1
    cmpi r13, 0
    bgt loop
    li r1, 0
    call sys_exit
""" + runtime_source("linux", ("getpid", "exit"))


@pytest.fixture(scope="module")
def installed():
    binary = assemble(LOOP_PROGRAM, metadata={"program": "fploop"})
    return install(binary, KEY)


class TestCacheUnit:
    DESC = PolicyDescriptor(bits=0x5)

    def test_probe_misses_cold(self):
        cache = VerifiedSiteCache()
        assert not cache.probe(0x1000, self.DESC, b"encoded", b"mac")
        assert cache.misses == 1 and cache.hits == 0

    def test_store_then_probe_hits(self):
        cache = VerifiedSiteCache()
        cache.store(0x1000, self.DESC, b"encoded", b"mac")
        assert cache.probe(0x1000, self.DESC, b"encoded", b"mac")
        assert cache.hits == 1

    def test_any_divergence_misses(self):
        cache = VerifiedSiteCache()
        cache.store(0x1000, self.DESC, b"encoded", b"mac")
        assert not cache.probe(0x1000, self.DESC, b"Encoded", b"mac")
        assert not cache.probe(0x1000, self.DESC, b"encoded", b"Mac")
        assert not cache.probe(0x1004, self.DESC, b"encoded", b"mac")
        assert not cache.probe(
            0x1000, PolicyDescriptor(bits=0x7), b"encoded", b"mac"
        )
        # The verified pair itself is still intact.
        assert cache.probe(0x1000, self.DESC, b"encoded", b"mac")

    def test_invalidate_reports_dropped_entries(self):
        cache = VerifiedSiteCache()
        cache.store(0x1000, self.DESC, b"a", b"m1")
        cache.store(0x2000, self.DESC, b"b", b"m2")
        assert len(cache) == 2
        assert cache.invalidate() == 2
        assert len(cache) == 0
        assert not cache.probe(0x1000, self.DESC, b"a", b"m1")

    def test_overflow_flushes(self):
        cache = VerifiedSiteCache()
        for site in range(VerifiedSiteCache.MAX_SITES):
            cache.store(site, self.DESC, b"e", b"m")
        assert len(cache) == VerifiedSiteCache.MAX_SITES
        cache.store(0xFFFFFF, self.DESC, b"e", b"m")
        assert len(cache) == 1


class TestFastPathStats:
    def test_hit_rate(self):
        stats = FastPathStats(hits=3, misses=1)
        assert stats.lookups == 4
        assert stats.hit_rate() == pytest.approx(0.75)

    def test_hit_rate_no_lookups(self):
        assert FastPathStats().hit_rate() == 0.0

    def test_render_and_reset(self):
        stats = FastPathStats(hits=9, misses=1, invalidations=2)
        assert "90.0% hit rate" in stats.render()
        stats.reset()
        assert stats.lookups == 0 and stats.invalidations == 0


class TestKernelCounters:
    def test_steady_state_hits(self, installed):
        kernel = Kernel(key=KEY)
        result = kernel.run(installed.binary)
        assert result.ok
        stats = kernel.audit.fastpath
        # One getpid site (miss on first trap, hits after) plus exit.
        assert stats.hits >= LOOP_ITERATIONS - 2
        assert stats.misses <= 2
        assert stats.hit_rate() > 0.9

    def test_cache_invalidated_at_exit(self, installed):
        kernel = Kernel(key=KEY)
        kernel.run(installed.binary)
        assert kernel.audit.fastpath.invalidations > 0

    def test_no_fastpath_never_probes(self, installed):
        kernel = Kernel(key=KEY, fastpath=False)
        result = kernel.run(installed.binary)
        assert result.ok
        stats = kernel.audit.fastpath
        assert stats.hits == 0 and stats.misses == 0 and stats.lookups == 0

    def test_both_modes_agree_on_outcome(self, installed):
        fast = Kernel(key=KEY).run(installed.binary)
        cold = Kernel(key=KEY, fastpath=False).run(installed.binary)
        assert fast.ok and cold.ok
        assert fast.exit_status == cold.exit_status
        assert fast.syscalls == cold.syscalls

    def test_cached_checks_cost_fewer_cycles(self, installed):
        fast = Kernel(key=KEY).run(installed.binary)
        cold = Kernel(key=KEY, fastpath=False).run(installed.binary)
        assert fast.cycles < cold.cycles
        # The surcharge per hit must shrink by the Table-4 factor (>=3x
        # on the verification work; here we assert the weaker whole-run
        # property to stay robust to cost-model recalibration).
        saved = cold.cycles - fast.cycles
        assert saved > LOOP_ITERATIONS * 1000

    def test_audit_clear_resets_fastpath_stats(self, installed):
        kernel = Kernel(key=KEY)
        kernel.run(installed.binary)
        assert kernel.audit.fastpath.lookups > 0
        kernel.audit.clear()
        assert kernel.audit.fastpath.lookups == 0


class TestMemoizedAsParsing:
    def test_write_into_as_region_forces_reparse(self, installed):
        # The AS reader memoizes *parsing*; any store into the regions
        # holding the header or content must drop the memo so the next
        # trap re-reads live memory.
        from repro.policy.record import read_auth_record

        kernel = Kernel(key=KEY)
        process, vm = kernel.load(installed.binary)
        image = link(installed.binary)
        site = installed.site_for_syscall("getpid")
        record = read_auth_record(
            vm.memory, image.address_of(installed.site_records[site])
        )
        cache = VerifiedSiteCache()
        first = cache.read_as(vm.memory, record.predset_ptr)
        assert cache.read_as(vm.memory, record.predset_ptr) is first
        mutated = bytes([first.content[0] ^ 0xFF]) + first.content[1:]
        vm.memory.write(record.predset_ptr, mutated, force=True)
        reread = cache.read_as(vm.memory, record.predset_ptr)
        assert reread is not first
        assert reread.content == mutated
