"""§5.3 capability tracking enforced at runtime, end to end."""

import pytest

from repro.asm import assemble
from repro.crypto import Key
from repro.installer import InstallError, InstallerOptions, install
from repro.kernel import Kernel
from repro.workloads.runtime import runtime_source

KEY = Key.from_passphrase("cap-tests", provider="fast-hmac")

#: Opens two files; reads from the first fd.  With capability tracking,
#: the read's fd must descend from the *first* open site.
PROGRAM = """
.section .text
.global _start
_start:
    li r1, patha
    li r2, 0
    call sys_open
    mov r13, r0          ; fd A  (the permitted producer for the read)
    li r1, pathb
    li r2, 0
    call sys_open
    mov r14, r0          ; fd B
    mov r1, r13
    li r2, buf
    li r3, 16
    call sys_read
    li r1, 0
    call sys_exit
.section .rodata
patha:
    .asciz "/etc/a"
pathb:
    .asciz "/etc/b"
.section .bss
buf:
    .space 16
""" + runtime_source("linux", ("open", "read", "exit"))


def _kernel():
    kernel = Kernel(key=KEY, capability_tracking=True)
    kernel.vfs.write_file("/etc/a", b"AAAA")
    kernel.vfs.write_file("/etc/b", b"BBBB")
    return kernel


@pytest.fixture(scope="module")
def installed():
    return install(
        assemble(PROGRAM, metadata={"program": "capdemo"}), KEY,
        InstallerOptions(capability_tracking=True),
    )


class TestCapabilityRuntime:
    def test_policy_names_the_producer(self, installed):
        read_policy = installed.policy.sites[installed.site_for_syscall("read")]
        open_policy = installed.policy.sites[installed.site_for_syscall("open")]
        assert read_policy.fd_producers[0] == frozenset({open_policy.block_id})

    def test_legitimate_run_passes(self, installed):
        result = _kernel().run(installed.binary)
        assert result.ok, result.kill_reason

    def test_confused_fd_fail_stops(self, installed):
        """An attacker redirects the read to fd B (produced by the
        *other* open site): the capability check catches it even though
        B is a perfectly valid descriptor."""
        kernel = _kernel()
        process, vm = kernel.load(installed.binary)
        read_site = installed.site_for_syscall("read")
        original = kernel.handle_trap

        class Confuser:
            def handle_trap(self, inner_vm, authenticated):
                if inner_vm.pc == read_site:
                    inner_vm.regs[1] = inner_vm.regs[14]  # swap in fd B
                return original(inner_vm, authenticated)

        vm.trap_handler = Confuser()
        vm.run()
        assert vm.killed
        assert "capability violation" in vm.kill_reason

    def test_closed_fd_fail_stops(self, installed):
        """Reusing the fd after a (forced) close is caught: capability
        sets track *live* descriptors, the §5.3 subtlety."""
        kernel = _kernel()
        process, vm = kernel.load(installed.binary)
        read_site = installed.site_for_syscall("read")

        class Revoker:
            def handle_trap(self, inner_vm, authenticated):
                if inner_vm.pc == read_site:
                    kernel.capability_table(inner_vm).revoke(inner_vm.regs[13])
                return kernel.handle_trap(inner_vm, authenticated)

        vm.trap_handler = Revoker()
        vm.run()
        assert vm.killed

    def test_tracking_disabled_kernel_allows_confusion(self, installed):
        """Ablation: without the extension the confused fd sails
        through — exactly the gap §5.3 exists to close."""
        kernel = Kernel(key=KEY, capability_tracking=False)
        kernel.vfs.write_file("/etc/a", b"A")
        kernel.vfs.write_file("/etc/b", b"B")
        process, vm = kernel.load(installed.binary)
        read_site = installed.site_for_syscall("read")

        class Confuser:
            def handle_trap(self, inner_vm, authenticated):
                if inner_vm.pc == read_site:
                    inner_vm.regs[1] = inner_vm.regs[14]
                return kernel.handle_trap(inner_vm, authenticated)

        vm.trap_handler = Confuser()
        vm.run()
        assert not vm.killed


class TestInstallGuards:
    def test_double_install_rejected(self, installed):
        with pytest.raises(InstallError, match="already installed"):
            install(installed.binary, KEY)
