"""Scheduler semantics: preemption, fork, wait, exec, signals."""

import pytest

from repro.kernel import Kernel
from repro.kernel.errors import Errno
from repro.kernel.sched.scheduler import SCHED_KILL_STATUS, TaskState
from repro.workloads.multiproc import build_server

from tests.kernel.sched.conftest import guest_binary, run_sched_guest

WSTATUS_DATA = """
.section .data
wstatus:
    .space 4
"""


class TestServerAcceptance:
    @pytest.mark.parametrize("engine", ["interp", "threaded"])
    def test_four_worker_server(self, engine):
        """The ISSUE acceptance bar: a 4-worker pipe-fed server runs to
        completion under both engines with interleaved execution."""
        kernel = Kernel(engine=engine)
        multi = kernel.run_many(
            [build_server(workers=4, requests=16)], timeslice=500
        )
        assert multi.results[0].exit_status == 0
        assert not multi.results[0].killed
        tasks = multi.scheduler.tasks
        assert len(tasks) == 5  # master + 4 forked workers
        master = min(tasks)
        workers = [task for pid, task in tasks.items() if pid != master]
        # Every worker handled its round-robin share...
        assert [task.exit_status for task in workers] == [4, 4, 4, 4]
        # ...echoed each 8-byte record...
        for task in workers:
            assert len(task.process.stdout) == 4 * 8
        # ...and was context-switched in more than once (interleaving,
        # not run-to-completion), asserted via the new obs counters.
        for pid in tasks:
            if pid == master:
                continue
            assert kernel.metrics.get(f"sched.switches.pid{pid}") > 1
        assert kernel.metrics.get("sched.context_switches") > len(tasks)
        assert kernel.metrics.get("sched.preemptions") > 0
        assert kernel.metrics.get("sched.blocks") > 0
        assert kernel.metrics.get("sched.forks") == 4
        assert kernel.metrics.get("sched.zombies_reaped") == 4


class TestForkWait:
    def test_fork_returns_zero_in_child_and_pid_in_parent(self, kernel):
        multi = run_sched_guest(kernel, """
    call sys_fork
    cmpi r0, 0
    beq child
    li r1, 0xFFFFFFFF
    li r2, wstatus
    li r3, 0
    li r4, 0
    call sys_wait4
    li r9, wstatus
    ld r1, [r9+0]
    shri r1, r1, 8
    call sys_exit
child:
    li r1, 7
    call sys_exit
""", ["fork", "wait4"], data=WSTATUS_DATA)
        assert multi.results[0].exit_status == 7

    def test_wait4_specific_pid(self, kernel):
        multi = run_sched_guest(kernel, """
    call sys_fork
    cmpi r0, 0
    beq child
    mov r1, r0           ; wait for exactly the forked pid
    li r2, wstatus
    li r3, 0
    li r4, 0
    call sys_wait4
    li r9, wstatus
    ld r1, [r9+0]
    shri r1, r1, 8
    call sys_exit
child:
    li r1, 9
    call sys_exit
""", ["fork", "wait4"], data=WSTATUS_DATA)
        assert multi.results[0].exit_status == 9

    def test_wait4_echild_without_children(self, kernel):
        multi = run_sched_guest(kernel, """
    li r1, 0xFFFFFFFF
    li r2, 0
    li r3, 0
    li r4, 0
    call sys_wait4
    xori r1, r0, 0xFFFFFFFF
    addi r1, r1, 1
    call sys_exit
""", ["wait4"])
        assert multi.results[0].exit_status == int(Errno.ECHILD)

    def test_wait4_wnohang_returns_zero_while_child_runs(self, kernel):
        # The parent's WNOHANG poll runs in the same slice as the fork,
        # before the child has ever been scheduled.
        multi = run_sched_guest(kernel, """
    call sys_fork
    cmpi r0, 0
    beq child
    li r1, 0xFFFFFFFF
    li r2, 0
    li r3, 1             ; WNOHANG
    li r4, 0
    call sys_wait4
    mov r1, r0
    call sys_exit
child:
    li r1, 0
    call sys_exit
""", ["fork", "wait4"])
        assert multi.results[0].exit_status == 0

    def test_fork_fails_without_scheduler(self, kernel):
        from tests.kernel.conftest import run_guest

        result = run_guest(kernel, """
    call sys_fork
    xori r1, r0, 0xFFFFFFFF
    addi r1, r1, 1
    call sys_exit
""", ["fork"])
        assert result.exit_status == int(Errno.EAGAIN)

    def test_getppid_in_child(self, kernel):
        multi = run_sched_guest(kernel, """
    call sys_fork
    cmpi r0, 0
    beq child
    li r1, 0xFFFFFFFF
    li r2, wstatus
    li r3, 0
    li r4, 0
    call sys_wait4
    li r9, wstatus
    ld r1, [r9+0]
    shri r1, r1, 8
    call sys_exit
child:
    call sys_getppid
    mov r1, r0
    call sys_exit
""", ["fork", "wait4", "getppid"], data=WSTATUS_DATA)
        # The top-level process gets pid 100; the child reports it.
        assert multi.results[0].exit_status == 100


class TestSignalsAndYield:
    def test_cross_process_kill_and_wstatus(self, kernel):
        multi = run_sched_guest(kernel, """
    call sys_fork
    cmpi r0, 0
    beq child
    mov r14, r0
    call sys_sched_yield  ; let the child get onto the CPU once
    mov r1, r14
    li r2, 9
    call sys_kill
    mov r1, r14
    li r2, wstatus
    li r3, 0
    li r4, 0
    call sys_wait4
    li r9, wstatus
    ld r1, [r9+0]
    andi r1, r1, 0x7F    ; killed-by-signal encoding
    call sys_exit
child:
    jmp child            ; spin until killed
""", ["fork", "kill", "wait4", "sched_yield"], data=WSTATUS_DATA)
        assert multi.results[0].exit_status == 9
        assert kernel.metrics.get("sched.signal_kills") == 1
        child = multi.scheduler.tasks[101]
        assert child.killed
        assert "signal 9" in child.kill_reason

    def test_sched_yield_requeues(self, kernel):
        binary = guest_binary("""
    call sys_sched_yield
    call sys_sched_yield
    call sys_sched_yield
    li r1, 0
    call sys_exit
""", ["sched_yield"])
        multi = kernel.run_many([binary, binary], timeslice=100_000)
        assert all(r.exit_status == 0 for r in multi.results)
        assert kernel.metrics.get("sched.yields") == 6
        # With a huge timeslice the only scheduling points are the
        # yields; the two tasks must actually alternate.
        pids = [pid for pid, _ in multi.scheduler.interleaving]
        assert len(set(pids)) == 2
        assert kernel.metrics.get("sched.context_switches") > 2


class TestBlockingAndDeadlock:
    def test_read_own_empty_pipe_is_deadlock_killed(self, kernel):
        multi = run_sched_guest(kernel, """
    li r1, pfd
    call sys_pipe
    li r9, pfd
    ld r1, [r9+0]
    li r2, buf
    li r3, 8
    call sys_read        ; our own write end is open: blocks forever
    li r1, 0
    call sys_exit
""", ["pipe", "read"], data="""
.section .data
pfd:
    .space 8
.section .bss
buf:
    .space 8
""")
        result = multi.results[0]
        assert result.killed
        assert result.exit_status == SCHED_KILL_STATUS
        assert "deadlock" in result.kill_reason
        assert kernel.metrics.get("sched.deadlock_kills") == 1
        assert any(
            "deadlock" in event.reason for event in kernel.audit.alerts()
        )


class TestSpawnExec:
    CHILD_SOURCE = """
    li r1, 5
    call sys_exit
"""

    def _install_child(self, kernel):
        binary = guest_binary(self.CHILD_SOURCE, name="five")
        kernel.vfs.write_file("/bin/five", binary.to_bytes())

    def test_spawn_is_asynchronous(self, kernel):
        self._install_child(kernel)
        multi = run_sched_guest(kernel, """
    li r1, path
    li r2, 0
    call sys_spawn
    cmpi r0, 0
    ble bad
    mov r1, r0
    li r2, wstatus
    li r3, 0
    li r4, 0
    call sys_wait4
    li r9, wstatus
    ld r1, [r9+0]
    shri r1, r1, 8
    call sys_exit
bad:
    li r1, 1
    call sys_exit
""", ["spawn", "wait4"], data=WSTATUS_DATA + """
.section .rodata
path:
    .asciz "/bin/five"
""")
        assert multi.results[0].exit_status == 5
        assert kernel.metrics.get("sched.spawns") == 1

    def test_execve_replaces_image_in_place(self, kernel):
        self._install_child(kernel)
        multi = run_sched_guest(kernel, """
    li r1, path
    li r2, 0
    li r3, 0
    call sys_execve
    li r1, 1
    call sys_exit        ; unreachable unless exec failed
""", ["execve"], data="""
.section .rodata
path:
    .asciz "/bin/five"
""")
        assert multi.results[0].exit_status == 5
        assert kernel.metrics.get("sched.execs") == 1
        # Same pid before and after the exec: one task only.
        assert len(multi.scheduler.tasks) == 1

    def test_zombie_states_visible(self, kernel):
        multi = run_sched_guest(kernel, """
    call sys_fork
    cmpi r0, 0
    beq child
    li r1, 0xFFFFFFFF
    li r2, 0
    li r3, 0
    li r4, 0
    call sys_wait4
    li r1, 0
    call sys_exit
child:
    li r1, 3
    call sys_exit
""", ["fork", "wait4"])
        assert multi.results[0].exit_status == 0
        assert all(
            task.state is TaskState.REAPED
            for task in multi.scheduler.tasks.values()
        )
        assert kernel.metrics.get("sched.zombies_reaped") >= 1
