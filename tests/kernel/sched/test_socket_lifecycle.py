"""Socket descriptor lifecycle under the scheduler: fork, execve, exit.

The networking analogue of test_pipes.py's process tests: endpoint
refcounting across fork, EOF propagation when the last copy of a peer
descriptor goes away, the EPIPE analog on send-after-shutdown, and
the determinism of the blocked-accept wakeup path.
"""

from repro.kernel import Kernel
from repro.kernel.errors import Errno
from tests.kernel.sched.conftest import guest_binary, run_sched_guest

FAIL = """
fail:
    li r1, 77
    call sys_exit
"""

SOCKET_STREAM = """
    li r1, 2
    li r2, 1
    li r3, 0
    call sys_socket
"""

NAME_DATA = """
.section .rodata
name:
    .asciz "svc:life"
msg:
    .asciz "record7"
.section .data
wstatus:
    .word 0
.section .bss
buf:
    .space 8
"""

#: Stand up the listener as fd 3 and bail to fail: on any error.
LISTENER = SOCKET_STREAM + """
    cmpi r0, 3
    bne fail
    li r1, 3
    li r2, name
    li r3, 0
    call sys_bind
    cmpi r0, 0
    bne fail
    li r1, 3
    li r2, 4
    call sys_listen
    cmpi r0, 0
    bne fail
"""


class TestForkRefcounting:
    def test_connection_survives_forked_copies_exit(self, kernel):
        # The pair (client fd 4, accepted fd 5) exists before the fork,
        # so the child holds a copy of every endpoint.  Its exit must
        # only drop references — the parent's connection stays usable,
        # and EOF appears exactly when the parent closes its own copy.
        multi = run_sched_guest(kernel, LISTENER + SOCKET_STREAM + """
    cmpi r0, 4
    bne fail
    li r1, 4
    li r2, name
    li r3, 0
    call sys_connect
    cmpi r0, 0
    bne fail
    li r1, 3
    li r2, 0
    li r3, 0
    call sys_accept
    cmpi r0, 5
    bne fail
    call sys_fork
    cmpi r0, 0
    beq child
    blt fail
    li r1, 0xFFFFFFFF
    li r2, wstatus
    li r3, 0
    li r4, 0
    call sys_wait4
    cmpi r0, 0
    blt fail
    ; the child's exit closed its copies; ours still work
    li r1, 4
    li r2, msg
    li r3, 8
    li r4, 0
    call sys_send
    cmpi r0, 8
    bne fail
    li r1, 5
    li r2, buf
    li r3, 8
    li r4, 0
    call sys_recv
    cmpi r0, 8
    bne fail
    ; last client copy gone: the server end now reads EOF
    li r1, 4
    call sys_close
    li r1, 5
    li r2, buf
    li r3, 8
    li r4, 0
    call sys_recv
    cmpi r0, 0
    bne fail
    li r1, 0
    call sys_exit
child:
    li r1, 9
    call sys_exit
""" + FAIL,
            ["socket", "bind", "listen", "connect", "accept", "send",
             "recv", "close", "fork", "wait4"],
            data=NAME_DATA)
        assert multi.results[0].exit_status == 0
        assert not multi.results[0].killed

    def test_child_exit_gives_blocked_reader_eof(self, kernel):
        # The child never calls close: process exit must release its
        # socket descriptors, and the parent's recv — possibly already
        # parked — must wake to EOF instead of hanging.
        multi = run_sched_guest(kernel, LISTENER + """
    call sys_fork
    cmpi r0, 0
    beq child
    blt fail
    li r1, 3
    li r2, 0
    li r3, 0
    call sys_accept
    cmpi r0, 0
    blt fail
    mov r12, r0
    mov r1, r12
    li r2, buf
    li r3, 8
    li r4, 0
    call sys_recv
    cmpi r0, 8
    bne fail
    mov r1, r12
    li r2, buf
    li r3, 8
    li r4, 0
    call sys_recv
    cmpi r0, 0
    bne fail
    li r1, 0xFFFFFFFF
    li r2, wstatus
    li r3, 0
    li r4, 0
    call sys_wait4
    li r9, wstatus
    ld r10, [r9+0]
    shri r10, r10, 8
    cmpi r10, 5
    bne fail
    li r1, 0
    call sys_exit
child:
    li r1, 3
    call sys_close
""" + SOCKET_STREAM + """
    mov r12, r0
    mov r1, r12
    li r2, name
    li r3, 0
    call sys_connect
    cmpi r0, 0
    bne fail
    mov r1, r12
    li r2, msg
    li r3, 8
    li r4, 0
    call sys_send
    cmpi r0, 8
    bne fail
    li r1, 5
    call sys_exit
""" + FAIL,
            ["socket", "bind", "listen", "connect", "accept", "send",
             "recv", "close", "fork", "wait4"],
            data=NAME_DATA)
        assert multi.results[0].exit_status == 0
        assert not multi.results[0].killed


class TestEpipeAnalog:
    def test_send_after_peer_close_is_epipe(self, kernel):
        multi = run_sched_guest(kernel, LISTENER + SOCKET_STREAM + """
    li r1, 4
    li r2, name
    li r3, 0
    call sys_connect
    li r1, 3
    li r2, 0
    li r3, 0
    call sys_accept
    cmpi r0, 5
    bne fail
    li r1, 5
    call sys_close
    li r1, 4
    li r2, msg
    li r3, 8
    li r4, 0
    call sys_send
    xori r1, r0, 0xFFFFFFFF
    addi r1, r1, 1
    call sys_exit
""" + FAIL,
            ["socket", "bind", "listen", "connect", "accept", "send",
             "close"],
            data=NAME_DATA)
        assert multi.results[0].exit_status == int(Errno.EPIPE)

    def test_send_after_own_shut_wr_is_epipe(self, kernel):
        multi = run_sched_guest(kernel, LISTENER + SOCKET_STREAM + """
    li r1, 4
    li r2, name
    li r3, 0
    call sys_connect
    li r1, 3
    li r2, 0
    li r3, 0
    call sys_accept
    cmpi r0, 5
    bne fail
    li r1, 4
    li r2, 1               ; SHUT_WR
    call sys_shutdown
    cmpi r0, 0
    bne fail
    li r1, 4
    li r2, msg
    li r3, 8
    li r4, 0
    call sys_send
    xori r1, r0, 0xFFFFFFFF
    addi r1, r1, 1
    call sys_exit
""" + FAIL,
            ["socket", "bind", "listen", "connect", "accept", "send",
             "shutdown"],
            data=NAME_DATA)
        assert multi.results[0].exit_status == int(Errno.EPIPE)


ACCEPT_WAKEUP_BODY = LISTENER + """
    call sys_fork
    cmpi r0, 0
    beq child
    blt fail
    ; the accept parks: the child has not connected yet (it burns a
    ; delay loop first), so this exercises park -> connect -> wake
    li r1, 3
    li r2, 0
    li r3, 0
    call sys_accept
    cmpi r0, 0
    blt fail
    mov r12, r0
    mov r1, r12
    li r2, buf
    li r3, 8
    li r4, 0
    call sys_recv
    cmpi r0, 8
    bne fail
    li r1, 0xFFFFFFFF
    li r2, wstatus
    li r3, 0
    li r4, 0
    call sys_wait4
    li r1, 0
    call sys_exit
child:
    li r1, 3
    call sys_close
    li r9, 600
delay:
    subi r9, r9, 1
    cmpi r9, 0
    bgt delay
""" + SOCKET_STREAM + """
    mov r12, r0
    mov r1, r12
    li r2, name
    li r3, 0
    call sys_connect
    cmpi r0, 0
    bne fail
    mov r1, r12
    li r2, msg
    li r3, 8
    li r4, 0
    call sys_send
    cmpi r0, 8
    bne fail
    li r1, 3
    call sys_exit
""" + FAIL

ACCEPT_WAKEUP_SYSCALLS = ["socket", "bind", "listen", "connect", "accept",
                          "send", "recv", "close", "fork", "wait4"]


class TestBlockedAcceptDeterminism:
    def _run(self, kernel):
        multi = run_sched_guest(
            kernel, ACCEPT_WAKEUP_BODY, ACCEPT_WAKEUP_SYSCALLS,
            data=NAME_DATA, timeslice=150,
        )
        assert multi.results[0].exit_status == 0
        statuses = tuple(
            multi.scheduler.tasks[pid].exit_status
            for pid in sorted(multi.scheduler.tasks)
        )
        assert statuses == (0, 3)
        return tuple(multi.scheduler.interleaving)

    def test_wakeup_interleaving_is_reproducible(self):
        assert self._run(Kernel()) == self._run(Kernel())

    def test_wakeup_interleaving_is_engine_independent(self):
        interleavings = {
            self._run(Kernel(engine="interp")),
            self._run(Kernel(engine="threaded", chain=True)),
            self._run(Kernel(engine="threaded", chain=False)),
        }
        assert len(interleavings) == 1


class TestExecvePreservesSockets:
    def test_greeting_survives_exec_and_eof_follows_exit(self, kernel):
        # The child sends one record, then replaces its image.  The
        # descriptor must ride through execve untouched (no EOF yet)
        # and be released when the *new* image exits — which is when
        # the parent's second recv sees EOF.
        binary = guest_binary("    li r1, 5\n    call sys_exit\n",
                              name="five")
        kernel.vfs.write_file("/bin/five", binary.to_bytes())
        multi = run_sched_guest(kernel, LISTENER + """
    call sys_fork
    cmpi r0, 0
    beq child
    blt fail
    li r1, 3
    li r2, 0
    li r3, 0
    call sys_accept
    cmpi r0, 0
    blt fail
    mov r12, r0
    mov r1, r12
    li r2, buf
    li r3, 8
    li r4, 0
    call sys_recv
    cmpi r0, 8
    bne fail
    mov r1, r12
    li r2, buf
    li r3, 8
    li r4, 0
    call sys_recv
    cmpi r0, 0
    bne fail
    li r1, 0xFFFFFFFF
    li r2, wstatus
    li r3, 0
    li r4, 0
    call sys_wait4
    li r9, wstatus
    ld r10, [r9+0]
    shri r10, r10, 8
    cmpi r10, 5            ; the exec'd image's status
    bne fail
    li r1, 0
    call sys_exit
child:
    li r1, 3
    call sys_close
""" + SOCKET_STREAM + """
    mov r12, r0
    mov r1, r12
    li r2, name
    li r3, 0
    call sys_connect
    cmpi r0, 0
    bne fail
    mov r1, r12
    li r2, msg
    li r3, 8
    li r4, 0
    call sys_send
    cmpi r0, 8
    bne fail
    li r1, path
    li r2, 0
    li r3, 0
    call sys_execve
    jmp fail               ; unreachable unless exec failed
""" + FAIL,
            ["socket", "bind", "listen", "connect", "accept", "send",
             "recv", "close", "fork", "wait4", "execve"],
            data=NAME_DATA + """
.section .rodata
path:
    .asciz "/bin/five"
""")
        assert multi.results[0].exit_status == 0
        assert not multi.results[0].killed
