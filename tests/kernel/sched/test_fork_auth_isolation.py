"""Per-process authentication state isolation.

The tentpole property: each process carries its own auth counter,
its own lastBlock/lbMAC region, and its own fast-path cache partition.
These tests check the three ways that could break: counters failing to
diverge after fork, verification-cache hits leaking across pids, and a
fail-stop in one process taking siblings down with it."""

from repro.crypto import Key
from repro.installer import InstallerOptions, install
from repro.binfmt import link
from repro.kernel import EnforcementMode, Kernel
from repro.kernel.sched.scheduler import Scheduler

from repro.attacks.crossproc import _forker_binary, _looper_binary


def _kernel(key, **kwargs):
    return Kernel(key=key, mode=EnforcementMode.PERMISSIVE, **kwargs)


class TestForkCounterDivergence:
    def test_counters_diverge_then_both_complete(self):
        """Fork copies the parent's counter; asymmetric syscall rates
        must then pull the two counters apart — and both processes
        still verify and finish (each one's polstate is MAC'd under
        its OWN counter)."""
        key = Key.generate()
        installed = install(_forker_binary(), key, InstallerOptions())
        kernel = _kernel(key)
        scheduler = Scheduler(kernel, timeslice=800)
        parent = scheduler.adopt(*kernel.load(installed.binary))
        observed: list[tuple[int, int]] = []

        def on_switch(sched, task):
            if task.parent_pid is None:
                return
            source = sched.tasks.get(task.parent_pid)
            if source is not None:
                observed.append(
                    (source.process.auth_counter, task.process.auth_counter)
                )

        scheduler.on_switch = on_switch
        scheduler.run()

        child = next(
            task for task in scheduler.tasks.values() if task.pid != parent.pid
        )
        assert parent.exit_status == 0 and not parent.killed
        assert child.exit_status == 0 and not child.killed
        # The hook saw the counters apart at least once mid-run.
        assert any(p != c for p, c in observed)
        # Both advanced their own counter the same total distance
        # (same program structure), independently.
        assert parent.process.auth_counter > 1
        assert child.process.auth_counter > 1

    def test_child_counter_snapshot_at_fork(self):
        """At the child's first schedule the inherited counter equals
        what the parent held when fork dispatched — not the parent's
        since-advanced value."""
        key = Key.generate()
        installed = install(_forker_binary(), key, InstallerOptions())
        kernel = _kernel(key)
        scheduler = Scheduler(kernel, timeslice=800)
        scheduler.adopt(*kernel.load(installed.binary))
        first: list[tuple[int, int]] = []

        def on_switch(sched, task):
            if task.parent_pid is not None and not first:
                source = sched.tasks[task.parent_pid]
                first.append(
                    (source.process.auth_counter, task.process.auth_counter)
                )

        scheduler.on_switch = on_switch
        scheduler.run()
        (parent_ctr, child_ctr) = first[0]
        # fork itself is the child's first inherited authenticated
        # call: the snapshot is exactly 1 (entry block -> fork site),
        # while the parent has already raced ahead in its first slice.
        assert child_ctr == 1
        assert parent_ctr > child_ctr


class TestFastpathPartitioning:
    def test_no_cross_pid_cache_leak(self):
        """Two instances of the same installed binary: the second
        process's first visit to every call site must MISS in its own
        per-pid cache — warm entries from the sibling's partition must
        not satisfy it."""
        key = Key.generate()
        installed = install(_looper_binary(), key, InstallerOptions())
        kernel = _kernel(key, fastpath=True)
        multi = kernel.run_many(
            [installed.binary, installed.binary], timeslice=1000
        )
        assert all(r.exit_status == 0 for r in multi.results)
        tasks = sorted(multi.scheduler.tasks.values(), key=lambda t: t.pid)
        for task in tasks:
            # Each process paid its own cold misses (one per distinct
            # site) and then hit within its own partition.
            assert task.fastpath_misses >= 1
            assert task.fastpath_hits > 0
        # A leak would show as the machine-wide miss total collapsing
        # to a single process's worth.
        total_misses = sum(task.fastpath_misses for task in tasks)
        assert total_misses == kernel.metrics.get("fastpath.misses")
        assert tasks[0].fastpath_misses == tasks[1].fastpath_misses


class TestFailStopContainment:
    def test_kill_one_keep_others(self):
        """Corrupt one sibling's policy state mid-run: only that
        process fail-stops; the other two instances finish, and the
        audit log names exactly the corrupted pid."""
        key = Key.generate()
        installed = install(_looper_binary(), key, InstallerOptions())
        kernel = _kernel(key)
        polstate = link(installed.binary).address_of("__asc_polstate")
        scheduler = Scheduler(kernel, timeslice=1000)
        tasks = [
            scheduler.adopt(*kernel.load(installed.binary)) for _ in range(3)
        ]
        victim = tasks[1]
        corrupted: list[int] = []

        def on_switch(sched, task):
            if not corrupted and task.pid == victim.pid:
                task.vm.memory.write(polstate, b"\x00" * 20, force=True)
                corrupted.append(task.pid)

        scheduler.on_switch = on_switch
        scheduler.run()

        assert corrupted
        assert victim.killed
        assert "policy state MAC" in victim.kill_reason
        assert tasks[0].exit_status == 0 and not tasks[0].killed
        assert tasks[2].exit_status == 0 and not tasks[2].killed
        killed_pids = {event.pid for event in kernel.audit.kills()}
        assert killed_pids == {victim.pid}
