"""Helpers for multiprogramming tests: run guests under the scheduler."""

import pytest

from repro.asm import assemble
from repro.kernel import Kernel
from repro.workloads.runtime import runtime_source


@pytest.fixture
def kernel():
    return Kernel()


def guest_binary(body: str, syscalls=(), data: str = "", name: str = "guest"):
    """Assemble `_start: <body>` plus the runtime."""
    source = (
        ".section .text\n.global _start\n_start:\n"
        + body
        + "\n"
        + (data + "\n" if data else "")
        + runtime_source("linux", tuple(syscalls) + ("exit",))
    )
    return assemble(source, metadata={"program": name})


def run_sched_guest(
    kernel,
    body: str,
    syscalls=(),
    data: str = "",
    stdin: bytes = b"",
    timeslice: int = 2000,
):
    """Run one guest as the sole top-level task of a scheduled machine
    (it may fork/spawn more).  Returns the MultiRunResult."""
    binary = guest_binary(body, syscalls, data)
    return kernel.run_many([(binary, None, stdin)], timeslice=timeslice)
