"""Scheduler determinism: the CI gate's contract.

Two runs with the same programs and timeslice must produce identical
interleavings, exit statuses, and scheduler metrics — and the property
must hold ACROSS engines, because both account instructions
identically."""

import pytest

from repro.kernel import Kernel
from repro.workloads.multiproc import build_server


def _run(engine: str, timeslice: int = 500):
    kernel = Kernel(engine=engine)
    multi = kernel.run_many(
        [build_server(workers=4, requests=16)], timeslice=timeslice
    )
    sched_metrics = {
        name: value
        for name, value in kernel.metrics.snapshot().items()
        if name.startswith("sched.")
    }
    statuses = {
        pid: task.exit_status for pid, task in multi.scheduler.tasks.items()
    }
    return multi.scheduler.interleaving, statuses, sched_metrics


class TestDeterminism:
    @pytest.mark.parametrize("engine", ["interp", "threaded"])
    def test_repeated_runs_identical(self, engine):
        first = _run(engine)
        second = _run(engine)
        assert first == second

    def test_cross_engine_identical(self):
        """The acceptance property: interp and threaded consume
        exactly the same instruction counts per slice, so a
        multiprogrammed run schedules identically on both."""
        interleaving_i, statuses_i, metrics_i = _run("interp")
        interleaving_t, statuses_t, metrics_t = _run("threaded")
        assert interleaving_i == interleaving_t
        assert statuses_i == statuses_t
        assert metrics_i == metrics_t

    def test_timeslice_changes_interleaving_but_not_results(self):
        _, statuses_a, _ = _run("threaded", timeslice=500)
        interleaving_b, statuses_b, _ = _run("threaded", timeslice=2000)
        interleaving_a, _, _ = _run("threaded", timeslice=500)
        assert statuses_a == statuses_b
        assert interleaving_a != interleaving_b
