"""Scheduler determinism: the CI gate's contract.

Two runs with the same programs and timeslice must produce identical
interleavings, exit statuses, and scheduler metrics — and the property
must hold ACROSS engine configurations (interpreter, plain threaded,
threaded with direct block chaining and superblock fusion), because
every configuration accounts instructions identically and only enters
chained successors or fused superblocks when the remaining timeslice
covers them."""

import pytest

from repro.kernel import Kernel
from repro.workloads.multiproc import build_server

#: label -> (engine, chain)
CONFIGS = {
    "interp": ("interp", True),
    "threaded": ("threaded", False),
    "chained": ("threaded", True),
}


def _run(engine: str, chain: bool = True, timeslice: int = 500):
    kernel = Kernel(engine=engine, chain=chain)
    multi = kernel.run_many(
        [build_server(workers=4, requests=16)], timeslice=timeslice
    )
    sched_metrics = {
        name: value
        for name, value in kernel.metrics.snapshot().items()
        if name.startswith("sched.")
    }
    statuses = {
        pid: task.exit_status for pid, task in multi.scheduler.tasks.items()
    }
    return multi.scheduler.interleaving, statuses, sched_metrics


class TestDeterminism:
    @pytest.mark.parametrize("config", sorted(CONFIGS))
    def test_repeated_runs_identical(self, config):
        engine, chain = CONFIGS[config]
        first = _run(engine, chain)
        second = _run(engine, chain)
        assert first == second

    def test_cross_engine_identical(self):
        """The acceptance property: every engine configuration consumes
        exactly the same instruction counts per slice, so a
        multiprogrammed run schedules identically on all of them —
        preemption points land on the same boundaries even when they
        fall where the chained engine would otherwise hop a chain link
        or start a superblock pass."""
        results = {label: _run(engine, chain)
                   for label, (engine, chain) in CONFIGS.items()}
        for label, (interleaving, statuses, metrics) in results.items():
            assert interleaving == results["interp"][0], label
            assert statuses == results["interp"][1], label
            assert metrics == results["interp"][2], label

    def test_timeslice_changes_interleaving_but_not_results(self):
        _, statuses_a, _ = _run("threaded", timeslice=500)
        interleaving_b, statuses_b, _ = _run("threaded", timeslice=2000)
        interleaving_a, _, _ = _run("threaded", timeslice=500)
        assert statuses_a == statuses_b
        assert interleaving_a != interleaving_b

    def test_tight_timeslices_identical_across_configs(self):
        """Small timeslices force preemptions to land mid-loop, right
        where chains and superblocks live; the interleaving must stay
        engine-invariant there too."""
        for timeslice in (37, 101):
            results = {label: _run(engine, chain, timeslice=timeslice)
                       for label, (engine, chain) in CONFIGS.items()}
            for label, result in results.items():
                assert result == results["interp"], (label, timeslice)
