"""Kernel pipe objects: the Pipe primitive and the fd-level plumbing."""

import pytest

from repro.kernel.sched.blocking import WouldBlock
from repro.kernel.sched.pipe import PIPE_CAPACITY, BrokenPipe, Pipe

from tests.kernel.sched.conftest import run_sched_guest


class TestPipePrimitive:
    def _pipe(self):
        pipe = Pipe(ident=0)
        pipe.retain(writer=False)
        pipe.retain(writer=True)
        return pipe

    def test_roundtrip(self):
        pipe = self._pipe()
        assert pipe.write(b"hello", blocking=True) == 5
        assert pipe.read(5, blocking=True) == b"hello"

    def test_short_read_drains_what_is_there(self):
        pipe = self._pipe()
        pipe.write(b"abc", blocking=True)
        assert pipe.read(100, blocking=True) == b"abc"

    def test_empty_read_blocks_while_writers_exist(self):
        pipe = self._pipe()
        with pytest.raises(WouldBlock):
            pipe.read(1, blocking=True)

    def test_empty_read_is_eof_after_writers_close(self):
        pipe = self._pipe()
        pipe.release(writer=True)
        assert pipe.read(1, blocking=True) == b""

    def test_buffered_data_survives_writer_close(self):
        pipe = self._pipe()
        pipe.write(b"tail", blocking=True)
        pipe.release(writer=True)
        assert pipe.read(10, blocking=True) == b"tail"
        assert pipe.read(10, blocking=True) == b""

    def test_write_without_readers_breaks(self):
        pipe = self._pipe()
        pipe.release(writer=False)
        with pytest.raises(BrokenPipe):
            pipe.write(b"x", blocking=True)

    def test_full_pipe_blocks_blocking_writer(self):
        pipe = self._pipe()
        pipe.write(b"x" * PIPE_CAPACITY, blocking=True)
        with pytest.raises(WouldBlock):
            pipe.write(b"y", blocking=True)

    def test_partial_write_accepts_available_space(self):
        pipe = self._pipe()
        pipe.write(b"x" * (PIPE_CAPACITY - 3), blocking=True)
        assert pipe.write(b"abcdef", blocking=True) == 3

    def test_nonblocking_read_returns_empty(self):
        pipe = self._pipe()
        assert pipe.read(8, blocking=False) == b""

    def test_nonblocking_write_is_unbounded(self):
        pipe = self._pipe()
        assert pipe.write(b"z" * (PIPE_CAPACITY + 10), blocking=False) == (
            PIPE_CAPACITY + 10
        )


PIPE_DATA = """
.section .rodata
msg:
    .ascii "hi"
.section .data
pfd:
    .space 8
.section .bss
buf:
    .space 16
"""


class TestPipeSyscalls:
    def test_sync_roundtrip(self, kernel):
        """The same fd API works without a scheduler (the old
        file-backed pipe contract): write then read back."""
        from tests.kernel.conftest import run_guest

        result = run_guest(kernel, """
    li r1, pfd
    call sys_pipe
    li r9, pfd
    ld r1, [r9+4]
    li r2, msg
    li r3, 2
    call sys_write
    li r9, pfd
    ld r1, [r9+0]
    li r2, buf
    li r3, 16
    call sys_read
    mov r1, r0
    call sys_exit
""", ["pipe", "read", "write"], data=PIPE_DATA)
        assert result.exit_status == 2

    def test_sync_empty_read_returns_zero(self, kernel):
        from tests.kernel.conftest import run_guest

        result = run_guest(kernel, """
    li r1, pfd
    call sys_pipe
    li r9, pfd
    ld r1, [r9+0]
    li r2, buf
    li r3, 16
    call sys_read
    mov r1, r0
    call sys_exit
""", ["pipe", "read"], data=PIPE_DATA)
        assert result.exit_status == 0

    def test_scheduled_roundtrip(self, kernel):
        multi = run_sched_guest(kernel, """
    li r1, pfd
    call sys_pipe
    li r9, pfd
    ld r1, [r9+4]
    li r2, msg
    li r3, 2
    call sys_write
    li r9, pfd
    ld r1, [r9+0]
    li r2, buf
    li r3, 16
    call sys_read
    mov r1, r0
    call sys_exit
""", ["pipe", "read", "write"], data=PIPE_DATA)
        assert multi.results[0].exit_status == 2

    def test_dup_keeps_write_end_alive(self, kernel):
        """dup the write end, close the original: the reader must NOT
        see EOF (refcount 1 remains), so a sync read returns 0 bytes
        rather than failing."""
        from tests.kernel.conftest import run_guest

        result = run_guest(kernel, """
    li r1, pfd
    call sys_pipe
    li r9, pfd
    ld r1, [r9+4]
    call sys_dup
    li r9, pfd
    ld r1, [r9+4]
    call sys_close
    ; write through the dup'd fd, read it back
    li r9, pfd
    ld r1, [r9+4]
    addi r1, r1, 1       ; dup allocated the next free fd
    li r2, msg
    li r3, 2
    call sys_write
    li r9, pfd
    ld r1, [r9+0]
    li r2, buf
    li r3, 16
    call sys_read
    mov r1, r0
    call sys_exit
""", ["pipe", "dup", "close", "read", "write"], data=PIPE_DATA)
        assert result.exit_status == 2
