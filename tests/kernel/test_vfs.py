"""VFS: paths, directories, symlinks, permissions, normalization."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.kernel.errors import Errno
from repro.kernel.vfs import Vfs, VfsError


@pytest.fixture
def vfs():
    return Vfs()


class TestBasics:
    def test_standard_directories_exist(self, vfs):
        for path in ("/bin", "/tmp", "/etc", "/dev", "/home", "/usr"):
            assert vfs.lookup(path).is_dir

    def test_write_read_round_trip(self, vfs):
        vfs.write_file("/tmp/a", b"hello")
        assert vfs.read_file("/tmp/a") == b"hello"

    def test_create_exclusive(self, vfs):
        vfs.create_file("/tmp/a", exclusive=True)
        with pytest.raises(VfsError) as err:
            vfs.create_file("/tmp/a", exclusive=True)
        assert err.value.errno == Errno.EEXIST

    def test_create_over_directory_rejected(self, vfs):
        with pytest.raises(VfsError) as err:
            vfs.create_file("/tmp")
        assert err.value.errno == Errno.EISDIR

    def test_missing_file(self, vfs):
        with pytest.raises(VfsError) as err:
            vfs.read_file("/tmp/ghost")
        assert err.value.errno == Errno.ENOENT

    def test_missing_intermediate_dir(self, vfs):
        with pytest.raises(VfsError) as err:
            vfs.write_file("/tmp/no/such/file", b"x")
        assert err.value.errno == Errno.ENOENT

    def test_file_as_directory(self, vfs):
        vfs.write_file("/tmp/a", b"x")
        with pytest.raises(VfsError) as err:
            vfs.lookup("/tmp/a/b")
        assert err.value.errno == Errno.ENOTDIR


class TestRelativePaths:
    def test_cwd_resolution(self, vfs):
        vfs.write_file("/tmp/a", b"x")
        assert vfs.read_file("a", cwd="/tmp") == b"x"

    def test_dot_and_dotdot(self, vfs):
        vfs.write_file("/tmp/a", b"x")
        assert vfs.read_file("./a", cwd="/tmp") == b"x"
        assert vfs.read_file("../tmp/a", cwd="/etc") == b"x"

    def test_dotdot_at_root(self, vfs):
        assert vfs.lookup("/..") is vfs.root
        assert vfs.lookup("..", cwd="/") is vfs.root


class TestDirectories:
    def test_mkdir_rmdir(self, vfs):
        vfs.mkdir("/tmp/d")
        assert vfs.lookup("/tmp/d").is_dir
        vfs.rmdir("/tmp/d")
        assert not vfs.exists("/tmp/d")

    def test_rmdir_nonempty(self, vfs):
        vfs.mkdir("/tmp/d")
        vfs.write_file("/tmp/d/f", b"x")
        with pytest.raises(VfsError) as err:
            vfs.rmdir("/tmp/d")
        assert err.value.errno == Errno.ENOTEMPTY

    def test_rmdir_of_file(self, vfs):
        vfs.write_file("/tmp/f", b"x")
        with pytest.raises(VfsError) as err:
            vfs.rmdir("/tmp/f")
        assert err.value.errno == Errno.ENOTDIR

    def test_mkdir_existing(self, vfs):
        with pytest.raises(VfsError) as err:
            vfs.mkdir("/tmp")
        assert err.value.errno == Errno.EEXIST

    def test_listdir_sorted(self, vfs):
        vfs.write_file("/tmp/b", b"")
        vfs.write_file("/tmp/a", b"")
        assert vfs.listdir("/tmp") == ["a", "b"]


class TestUnlinkRename:
    def test_unlink(self, vfs):
        vfs.write_file("/tmp/a", b"x")
        vfs.unlink("/tmp/a")
        assert not vfs.exists("/tmp/a")

    def test_unlink_directory_rejected(self, vfs):
        vfs.mkdir("/tmp/d")
        with pytest.raises(VfsError) as err:
            vfs.unlink("/tmp/d")
        assert err.value.errno == Errno.EISDIR

    def test_rename_moves_content(self, vfs):
        vfs.write_file("/tmp/a", b"payload")
        vfs.rename("/tmp/a", "/etc/b")
        assert vfs.read_file("/etc/b") == b"payload"
        assert not vfs.exists("/tmp/a")

    def test_rename_overwrites_file(self, vfs):
        vfs.write_file("/tmp/a", b"new")
        vfs.write_file("/tmp/b", b"old")
        vfs.rename("/tmp/a", "/tmp/b")
        assert vfs.read_file("/tmp/b") == b"new"


class TestSymlinks:
    def test_follow(self, vfs):
        vfs.write_file("/etc/target", b"data")
        vfs.symlink("/etc/target", "/tmp/ln")
        assert vfs.read_file("/tmp/ln") == b"data"

    def test_nofollow(self, vfs):
        vfs.symlink("/etc/target", "/tmp/ln")
        node = vfs.lookup("/tmp/ln", follow=False)
        assert node.is_symlink
        assert vfs.readlink("/tmp/ln") == "/etc/target"

    def test_relative_target(self, vfs):
        vfs.write_file("/tmp/real", b"x")
        vfs.symlink("real", "/tmp/ln")
        assert vfs.read_file("/tmp/ln") == b"x"

    def test_symlink_in_middle_of_path(self, vfs):
        vfs.mkdir("/etc/deep")
        vfs.write_file("/etc/deep/f", b"x")
        vfs.symlink("/etc/deep", "/tmp/d")
        assert vfs.read_file("/tmp/d/f") == b"x"

    def test_loop_detected(self, vfs):
        vfs.symlink("/tmp/b", "/tmp/a")
        vfs.symlink("/tmp/a", "/tmp/b")
        with pytest.raises(VfsError) as err:
            vfs.read_file("/tmp/a")
        assert err.value.errno == Errno.ELOOP

    def test_readlink_of_file_rejected(self, vfs):
        vfs.write_file("/tmp/a", b"")
        with pytest.raises(VfsError) as err:
            vfs.readlink("/tmp/a")
        assert err.value.errno == Errno.EINVAL

    def test_create_through_symlink(self, vfs):
        vfs.write_file("/etc/real", b"old")
        vfs.symlink("/etc/real", "/tmp/ln")
        node = vfs.create_file("/tmp/ln")
        assert node is vfs.lookup("/etc/real")


class TestNormalize:
    def test_plain_path(self, vfs):
        vfs.write_file("/tmp/a", b"")
        assert vfs.normalize("/tmp/a") == "/tmp/a"

    def test_relative(self, vfs):
        vfs.write_file("/tmp/a", b"")
        assert vfs.normalize("a", cwd="/tmp") == "/tmp/a"

    def test_symlink_resolved(self, vfs):
        vfs.write_file("/etc/passwd", b"")
        vfs.symlink("/etc/passwd", "/tmp/foo")
        assert vfs.normalize("/tmp/foo") == "/etc/passwd"

    def test_missing_final_component(self, vfs):
        assert vfs.normalize("/tmp/newfile") == "/tmp/newfile"

    def test_dotdot_folded(self, vfs):
        vfs.write_file("/etc/a", b"")
        assert vfs.normalize("/tmp/../etc/a") == "/etc/a"


class TestChmod:
    def test_chmod(self, vfs):
        vfs.write_file("/tmp/a", b"")
        vfs.chmod("/tmp/a", 0o600)
        assert vfs.lookup("/tmp/a").mode == 0o600

    def test_tmp_is_sticky(self, vfs):
        assert vfs.lookup("/tmp").mode == 0o1777


_NAME = st.text(
    alphabet=st.characters(whitelist_categories=("Ll", "Nd")),
    min_size=1,
    max_size=12,
)


class TestProperties:
    @given(name=_NAME, data=st.binary(max_size=64))
    def test_write_read_identity(self, name, data):
        vfs = Vfs()
        vfs.write_file(f"/tmp/{name}", data)
        assert vfs.read_file(f"/tmp/{name}") == data

    @given(names=st.lists(_NAME, min_size=1, max_size=8, unique=True))
    def test_listdir_matches_creations(self, names):
        vfs = Vfs()
        for name in names:
            vfs.write_file(f"/home/{name}", b"")
        assert vfs.listdir("/home") == sorted(names)

    @given(name=_NAME)
    def test_normalize_idempotent(self, name):
        vfs = Vfs()
        vfs.write_file(f"/tmp/{name}", b"")
        once = vfs.normalize(f"/tmp/{name}")
        assert vfs.normalize(once) == once
