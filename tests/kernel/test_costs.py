"""Cost model calibration: the Table 4 baseline column is exact."""

from repro.kernel.costs import CostModel, mac_blocks


class TestCalibration:
    """The 'Original cost' column of Table 4, cycle for cycle."""

    def test_getpid(self):
        assert CostModel().syscall_cost("getpid") == 1141

    def test_gettimeofday(self):
        assert CostModel().syscall_cost("gettimeofday") == 1395

    def test_read_4096(self):
        assert CostModel().syscall_cost("read", 4096) == 7324

    def test_write_4096(self):
        assert CostModel().syscall_cost("write", 4096) == 39479

    def test_brk(self):
        assert CostModel().syscall_cost("brk") == 1155


class TestStructure:
    def test_uncalibrated_call_uses_default(self):
        model = CostModel()
        assert model.syscall_cost("sigaction") == model.trap_cost + model.default_service_cost

    def test_transfer_only_charged_for_io_calls(self):
        model = CostModel()
        assert model.syscall_cost("getpid", 4096) == model.syscall_cost("getpid")

    def test_read_scales_linearly(self):
        model = CostModel()
        small = model.syscall_cost("read", 1024)
        large = model.syscall_cost("read", 2048)
        assert large - small == int(1024 * model.read_byte_cost)

    def test_auth_cost_grows_with_blocks(self):
        model = CostModel()
        assert model.auth_cost_blocks(4) - model.auth_cost_blocks(2) == 2 * model.mac_block_cost

    def test_auth_surcharge_magnitude(self):
        # Table 4: authenticated getpid ≈ 5,045 = 1,141 + ~3,900.
        model = CostModel()
        surcharge = model.auth_cost_blocks(2)
        assert 3500 <= surcharge <= 4500


class TestMacBlocks:
    def test_minimum_one_block(self):
        assert mac_blocks(0) == 1
        assert mac_blocks(1) == 1

    def test_exact_boundary(self):
        assert mac_blocks(16) == 1
        assert mac_blocks(17) == 2
        assert mac_blocks(48) == 3

    def test_ablation_variant_is_isolated(self):
        slow = CostModel(mac_block_cost=5000)
        assert slow.auth_cost_blocks(2) > CostModel().auth_cost_blocks(2)
        assert slow.syscall_cost("getpid") == CostModel().syscall_cost("getpid")
