"""Golden-byte test of the encoded policy (the §3.3 worked example).

The paper walks through encoding this policy::

    Permit fcntl from location 0x806c57b in basic block 1234
        Parameter 0 equals ANY
        Parameter 1 equals value 2
        Possible predecessors 1235, 2010, 3012
    Basic block number of previous call stored at 0x0810c4ab

Our byte layout differs from the paper's unpublished one (ours is
documented in repro.policy.encode), but the *same logical policy* must
encode deterministically, and this test pins every field position so an
accidental layout change — which would silently break MAC compatibility
between installer and kernel versions — fails loudly.
"""

import struct

from repro.crypto import FastMac
from repro.kernel.syscalls import SYSCALL_NUMBERS
from repro.policy import ParamEncoding, PolicyDescriptor, encode_policy
from repro.policy.encode import pack_predecessor_set

MAC = FastMac(bytes(16))


def _paper_example():
    descriptor = (
        PolicyDescriptor()
        .with_call_site()
        .with_param(1)           # parameter 1 equals 2; parameter 0 is ANY
        .with_control_flow()
    )
    predset_content = pack_predecessor_set(frozenset({1235, 2010, 3012}))
    predset_mac = MAC.tag(predset_content)
    encoded = encode_policy(
        descriptor,
        SYSCALL_NUMBERS["fcntl"],
        0x806C57B,
        1234,
        [ParamEncoding.immediate(1, 2)],
        predset=(0x81ADCDE, len(predset_content), predset_mac),
        lastblock_address=0x810C4AB,
    )
    return descriptor, predset_content, predset_mac, encoded


class TestWorkedExample:
    def test_total_length(self):
        _, predset_content, _, encoded = _paper_example()
        # u16 num + u32 des + u32 site + u32 block + u32 param
        # + (u32 addr + u32 len + 16B mac) + u32 lastBlock
        assert len(encoded) == 2 + 4 + 4 + 4 + 4 + (4 + 4 + 16) + 4

    def test_field_positions(self):
        descriptor, predset_content, predset_mac, encoded = _paper_example()
        (number,) = struct.unpack_from("<H", encoded, 0)
        assert number == SYSCALL_NUMBERS["fcntl"]
        (bits,) = struct.unpack_from("<I", encoded, 2)
        assert bits == int(descriptor)
        (site,) = struct.unpack_from("<I", encoded, 6)
        assert site == 0x806C57B
        (block,) = struct.unpack_from("<I", encoded, 10)
        assert block == 1234
        (param1,) = struct.unpack_from("<I", encoded, 14)
        assert param1 == 2
        address, length = struct.unpack_from("<II", encoded, 18)
        assert address == 0x81ADCDE
        assert length == len(predset_content) == 12  # 3 blocks * 4 bytes
        assert encoded[26:42] == predset_mac
        (lastblock,) = struct.unpack_from("<I", encoded, 42)
        assert lastblock == 0x810C4AB

    def test_parameter_zero_unconstrained(self):
        descriptor, *_ = _paper_example()
        assert not descriptor.param_constrained(0)
        assert descriptor.param_constrained(1)

    def test_deterministic(self):
        assert _paper_example()[3] == _paper_example()[3]

    def test_predset_content_is_sorted_u32s(self):
        _, predset_content, _, _ = _paper_example()
        values = struct.unpack("<3I", predset_content)
        assert values == (1235, 2010, 3012)
