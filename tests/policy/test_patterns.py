"""Argument patterns with proof hints (§5.1)."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.policy import Pattern, PatternError, derive_hint, match_with_hint


class TestParsing:
    def test_literal_only(self):
        pattern = Pattern.parse("/etc/passwd")
        assert pattern.hint_slots == 0

    def test_star_and_choice_slots(self):
        assert Pattern.parse("/tmp/*").hint_slots == 1
        assert Pattern.parse("/tmp/{a,b}*").hint_slots == 2

    def test_unterminated_brace(self):
        with pytest.raises(PatternError):
            Pattern.parse("/tmp/{ab")

    def test_empty_alternation(self):
        with pytest.raises(PatternError):
            Pattern.parse("/tmp/{}")

    def test_stray_close_brace(self):
        with pytest.raises(PatternError):
            Pattern.parse("/tmp/a}b")


class TestPaperExample:
    """§5.1's worked example: /tmp/{foo,bar}*baz vs /tmp/foofoobaz."""

    PATTERN = Pattern.parse("/tmp/{foo,bar}*baz")

    def test_hint_is_0_3(self):
        assert derive_hint(self.PATTERN, b"/tmp/foofoobaz") == (0, 3)

    def test_kernel_verifies_hint(self):
        assert match_with_hint(self.PATTERN, b"/tmp/foofoobaz", (0, 3))

    def test_wrong_branch_hint_rejected(self):
        assert not match_with_hint(self.PATTERN, b"/tmp/foofoobaz", (1, 3))

    def test_wrong_skip_hint_rejected(self):
        assert not match_with_hint(self.PATTERN, b"/tmp/foofoobaz", (0, 2))

    def test_bar_branch(self):
        assert match_with_hint(self.PATTERN, b"/tmp/barbaz", (1, 0))

    def test_non_matching_argument(self):
        assert derive_hint(self.PATTERN, b"/etc/passwd") is None


class TestMatching:
    def test_literal_exact(self):
        pattern = Pattern.parse("/etc/motd")
        assert match_with_hint(pattern, b"/etc/motd", ())
        assert not match_with_hint(pattern, b"/etc/motdX", ())
        assert not match_with_hint(pattern, b"/etc/mot", ())

    def test_star_consumes_exactly_hint(self):
        pattern = Pattern.parse("/tmp/*")
        assert match_with_hint(pattern, b"/tmp/abc", (3,))
        assert not match_with_hint(pattern, b"/tmp/abc", (2,))

    def test_star_can_be_empty(self):
        pattern = Pattern.parse("/tmp/*")
        assert match_with_hint(pattern, b"/tmp/", (0,))

    def test_leftover_hint_rejected(self):
        pattern = Pattern.parse("/tmp/x")
        assert not match_with_hint(pattern, b"/tmp/x", (0,))

    def test_missing_hint_rejected(self):
        pattern = Pattern.parse("/tmp/*")
        assert not match_with_hint(pattern, b"/tmp/abc", ())

    def test_negative_or_overlong_skip(self):
        pattern = Pattern.parse("/tmp/*")
        assert not match_with_hint(pattern, b"/tmp/abc", (99,))
        assert not match_with_hint(pattern, b"/tmp/abc", (-1,))

    def test_two_stars(self):
        pattern = Pattern.parse("*x*")
        hint = derive_hint(pattern, b"aaxbb")
        assert hint == (2, 2)
        assert match_with_hint(pattern, b"aaxbb", hint)


_LITERAL = st.text(
    alphabet=st.characters(whitelist_categories=("Ll",), max_codepoint=127),
    max_size=6,
)


class TestProperties:
    @given(prefix=_LITERAL, middle=_LITERAL, suffix=_LITERAL)
    def test_derived_hints_always_verify(self, prefix, middle, suffix):
        pattern = Pattern.parse(f"{prefix}*{suffix}")
        argument = (prefix + middle + suffix).encode()
        hint = derive_hint(pattern, argument)
        assert hint is not None
        assert match_with_hint(pattern, argument, hint)

    @given(
        branches=st.lists(_LITERAL.filter(lambda s: s and "," not in s),
                          min_size=1, max_size=3, unique=True),
        pick=st.integers(min_value=0, max_value=2),
        tail=_LITERAL,
    )
    def test_choice_round_trip(self, branches, pick, tail):
        pattern = Pattern.parse("{" + ",".join(branches) + "}" + tail)
        chosen = branches[pick % len(branches)]
        argument = (chosen + tail).encode()
        hint = derive_hint(pattern, argument)
        assert hint is not None
        assert match_with_hint(pattern, argument, hint)

    @given(data=st.binary(max_size=16))
    def test_verifier_never_crashes(self, data):
        pattern = Pattern.parse("/tmp/{a,b}*")
        for hint in ((), (0,), (0, 0), (1, 5), (2, 2)):
            match_with_hint(pattern, data, hint)  # must not raise
