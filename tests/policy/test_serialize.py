"""Policy serialization round trips and audit diffs."""

import pytest

from repro.asm import assemble
from repro.installer import generate_policy_only
from repro.policy.serialize import (
    diff_policies,
    policy_from_json,
    policy_to_json,
)
from repro.workloads.runtime import runtime_source
from repro.workloads import build_profile_program

SOURCE = """
.section .text
.global _start
_start:
    li r1, path
    li r2, 0
    call sys_open
    mov r1, r0
    li r2, buf
    li r3, 64
    call sys_read
    li r1, 0
    call sys_exit
.section .rodata
path:
    .asciz "/etc/motd"
.section .bss
buf:
    .space 64
""" + runtime_source("linux", ("open", "read", "exit"))


@pytest.fixture(scope="module")
def policy():
    return generate_policy_only(assemble(SOURCE, metadata={"program": "ser"}))


class TestRoundTrip:
    def test_json_round_trip_preserves_everything(self, policy):
        restored = policy_from_json(policy_to_json(policy))
        assert restored.program == policy.program
        assert restored.coverage_row() == policy.coverage_row()
        assert restored.distinct_syscalls() == policy.distinct_syscalls()
        for block in policy.sites:
            before = policy.sites[block]
            after = restored.sites[before.call_site] if before.call_site in restored.sites else restored.sites[block]
            assert after.predecessors == before.predecessors
            assert set(after.params) == set(before.params)

    def test_serialization_is_canonical(self, policy):
        assert policy_to_json(policy) == policy_to_json(
            policy_from_json(policy_to_json(policy))
        )

    def test_profile_policy_round_trips(self):
        policy = generate_policy_only(build_profile_program("bison", "linux"))
        restored = policy_from_json(policy_to_json(policy))
        assert restored.coverage_row() == policy.coverage_row()

    def test_unknown_format_rejected(self):
        with pytest.raises(ValueError):
            policy_from_json('{"format": 99, "sites": []}')

    def test_descriptors_survive(self, policy):
        restored = policy_from_json(policy_to_json(policy))
        for block, site in policy.sites.items():
            twin = list(
                s for s in restored.sites.values()
                if s.block_id == site.block_id
            )[0]
            assert int(twin.descriptor()) == int(site.descriptor())


class TestDiff:
    def test_no_change(self, policy):
        assert diff_policies(policy, policy) == []

    def test_new_syscall_flagged(self, policy):
        wider = policy_from_json(policy_to_json(policy))
        site = next(iter(wider.sites.values()))
        import dataclasses

        clone = dataclasses.replace(
            site, syscall="execve", number=11, call_site=0xDEAD,
            block_id=999, params={},
        )
        clone.params.clear()
        wider.sites[0xDEAD] = clone
        lines = diff_policies(policy, wider)
        assert any("+ syscall execve" in line for line in lines)

    def test_dropped_constraint_flagged(self, policy):
        weaker = policy_from_json(policy_to_json(policy))
        for site in weaker.sites.values():
            if site.syscall == "open":
                site.params.pop(0)
        lines = diff_policies(policy, weaker)
        assert any("no longer constrained" in line for line in lines)

    def test_changed_predecessors_flagged(self, policy):
        shifted = policy_from_json(policy_to_json(policy))
        for site in shifted.sites.values():
            if site.syscall == "read":
                site.predecessors = frozenset({12345})
        lines = diff_policies(policy, shifted)
        assert any("predecessor set changed" in line for line in lines)
