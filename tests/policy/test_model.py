"""Logical policy objects: descriptors, rendering, coverage rows."""

import pytest

from repro.policy import ParamPolicy, ProgramPolicy, SyscallPolicy
from repro.policy.descriptor import ParamClass


def _policy(**kwargs):
    defaults = dict(
        syscall="open", number=5, call_site=0x806C462, block_id=9, arg_count=3
    )
    defaults.update(kwargs)
    return SyscallPolicy(**defaults)


class TestParamPolicy:
    def test_immediate_requires_int(self):
        with pytest.raises(ValueError):
            ParamPolicy(0, ParamClass.IMMEDIATE, b"not an int")

    def test_string_requires_bytes(self):
        with pytest.raises(ValueError):
            ParamPolicy(0, ParamClass.STRING, 5)

    def test_index_bounds(self):
        with pytest.raises(ValueError):
            ParamPolicy(6, ParamClass.IMMEDIATE, 1)


class TestDescriptorDerivation:
    def test_call_site_always_constrained(self):
        assert _policy().descriptor().call_site_constrained

    def test_string_param_sets_string_bit(self):
        policy = _policy()
        policy.params[0] = ParamPolicy(0, ParamClass.STRING, b"/dev/console")
        descriptor = policy.descriptor()
        assert descriptor.param_is_string(0)

    def test_pattern_param_sets_pattern_bit(self):
        policy = _policy()
        policy.params[0] = ParamPolicy(
            0, ParamClass.STRING, b"/tmp/*", pattern="/tmp/*"
        )
        assert policy.descriptor().param_is_pattern(0)

    def test_control_flow_bit(self):
        policy = _policy(control_flow=True, predecessors=frozenset({1}))
        assert policy.descriptor().control_flow_constrained

    def test_capability_bit_from_producers(self):
        policy = _policy()
        policy.fd_producers[0] = frozenset({3})
        assert policy.descriptor().capability_tracked


class TestRendering:
    def test_paper_form(self):
        policy = _policy(control_flow=True, predecessors=frozenset({1235, 2010}))
        policy.params[0] = ParamPolicy(0, ParamClass.STRING, b"/dev/console")
        policy.params[1] = ParamPolicy(1, ParamClass.IMMEDIATE, 5)
        text = policy.render()
        assert "Permit open from location 0x0806c462" in text
        assert 'Parameter 0 equals "/dev/console"' in text
        assert "Parameter 1 equals 5" in text
        assert "Parameter 2 equals ANY" in text
        assert "Possible predecessors 1235, 2010" in text


class TestProgramPolicy:
    def test_duplicate_site_rejected(self):
        program = ProgramPolicy(program="p")
        program.add(_policy())
        with pytest.raises(ValueError):
            program.add(_policy())

    def test_distinct_syscalls(self):
        program = ProgramPolicy(program="p")
        program.add(_policy(call_site=1))
        program.add(_policy(call_site=2))
        program.add(_policy(call_site=3, syscall="read", number=3))
        assert program.distinct_syscalls() == {"open", "read"}

    def test_coverage_row(self):
        program = ProgramPolicy(program="p")
        site = _policy(
            output_params=frozenset({2}),
            multi_value_params=frozenset({1}),
            fd_params=frozenset(),
        )
        site.params[0] = ParamPolicy(0, ParamClass.STRING, b"/x")
        program.add(site)
        row = program.coverage_row()
        assert row == {
            "sites": 1, "calls": 1, "args": 3, "o/p": 1,
            "auth": 1, "mv": 1, "fds": 0,
        }


class TestPredecessorStats:
    def test_empty(self):
        assert ProgramPolicy(program="p").predecessor_stats()["sites"] == 0

    def test_distribution(self):
        program = ProgramPolicy(program="p")
        program.add(_policy(call_site=1, control_flow=True,
                            predecessors=frozenset({0})))
        program.add(_policy(call_site=2, control_flow=True,
                            predecessors=frozenset({1, 2, 3})))
        stats = program.predecessor_stats()
        assert stats == {"sites": 2, "min": 1, "max": 3, "mean": 2.0, "total": 4}

    def test_profile_program_stats_are_reasonable(self):
        from repro.installer import generate_policy_only
        from repro.workloads import build_profile_program

        policy = generate_policy_only(build_profile_program("bison", "linux"))
        stats = policy.predecessor_stats()
        assert stats["sites"] == policy.site_count()
        assert stats["min"] >= 1
        # Straight-line emission keeps predecessor sets small; the
        # branchy mv sites and the rare-gate joins push the max up.
        assert stats["max"] >= 2
