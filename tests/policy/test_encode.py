"""Encoded policy construction: installer/kernel agreement surface."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.policy import ParamEncoding, PolicyDescriptor, encode_policy
from repro.policy.encode import (
    EncodeError,
    pack_predecessor_set,
    unpack_predecessor_set,
)

MAC = bytes(16)


def _descriptor(params=(), strings=(), control_flow=False, capability=False):
    descriptor = PolicyDescriptor().with_call_site()
    for index in params:
        descriptor = descriptor.with_param(index, is_string=index in strings)
    if control_flow:
        descriptor = descriptor.with_control_flow()
    if capability:
        descriptor = descriptor.with_capability()
    return descriptor


class TestEncoding:
    def test_minimal_layout(self):
        encoded = encode_policy(_descriptor(), 20, 0x8048000, 7, [])
        # u16 num + u32 descriptor + u32 site + u32 block
        assert len(encoded) == 2 + 4 + 4 + 4
        assert encoded[:2] == (20).to_bytes(2, "little")

    def test_immediate_param_adds_four_bytes(self):
        base = encode_policy(_descriptor(), 4, 0, 1, [])
        with_param = encode_policy(
            _descriptor(params=(1,)), 4, 0, 1, [ParamEncoding.immediate(1, 5)]
        )
        assert len(with_param) == len(base) + 4

    def test_string_param_adds_triple(self):
        base = encode_policy(_descriptor(), 4, 0, 1, [])
        with_string = encode_policy(
            _descriptor(params=(0,), strings=(0,)),
            4, 0, 1,
            [ParamEncoding.auth_string(0, 0x1000, 9, MAC)],
        )
        assert len(with_string) == len(base) + 4 + 4 + 16

    def test_control_flow_section(self):
        encoded = encode_policy(
            _descriptor(control_flow=True),
            4, 0, 1, [],
            predset=(0x2000, 8, MAC),
            lastblock_address=0x3000,
        )
        assert (0x3000).to_bytes(4, "little") in encoded

    def test_capability_section(self):
        encoded = encode_policy(
            _descriptor(capability=True),
            3, 0, 1, [],
            capability=(0b10, (0x2000, 8, MAC)),
        )
        base = encode_policy(_descriptor(), 3, 0, 1, [])
        assert len(encoded) == len(base) + 4 + 4 + 4 + 16

    def test_params_ordered_by_index(self):
        a = encode_policy(
            _descriptor(params=(0, 2)),
            4, 0, 1,
            [ParamEncoding.immediate(0, 0xAAAA), ParamEncoding.immediate(2, 0xBBBB)],
        )
        b = encode_policy(
            _descriptor(params=(0, 2)),
            4, 0, 1,
            [ParamEncoding.immediate(2, 0xBBBB), ParamEncoding.immediate(0, 0xAAAA)],
        )
        assert a == b

    def test_any_field_change_changes_encoding(self):
        reference = encode_policy(
            _descriptor(params=(1,)), 4, 0x100, 2, [ParamEncoding.immediate(1, 7)]
        )
        variants = [
            encode_policy(_descriptor(params=(1,)), 5, 0x100, 2, [ParamEncoding.immediate(1, 7)]),
            encode_policy(_descriptor(params=(1,)), 4, 0x104, 2, [ParamEncoding.immediate(1, 7)]),
            encode_policy(_descriptor(params=(1,)), 4, 0x100, 3, [ParamEncoding.immediate(1, 7)]),
            encode_policy(_descriptor(params=(1,)), 4, 0x100, 2, [ParamEncoding.immediate(1, 8)]),
        ]
        assert all(v != reference for v in variants)


class TestValidation:
    def test_missing_param_encoding(self):
        with pytest.raises(EncodeError):
            encode_policy(_descriptor(params=(0,)), 4, 0, 1, [])

    def test_unconstrained_param_rejected(self):
        with pytest.raises(EncodeError):
            encode_policy(_descriptor(), 4, 0, 1, [ParamEncoding.immediate(0, 5)])

    def test_duplicate_params_rejected(self):
        with pytest.raises(EncodeError):
            encode_policy(
                _descriptor(params=(0,)),
                4, 0, 1,
                [ParamEncoding.immediate(0, 5), ParamEncoding.immediate(0, 6)],
            )

    def test_string_where_immediate_expected(self):
        with pytest.raises(EncodeError):
            encode_policy(
                _descriptor(params=(0,)),
                4, 0, 1,
                [ParamEncoding.auth_string(0, 0x1000, 4, MAC)],
            )

    def test_control_flow_without_predset(self):
        with pytest.raises(EncodeError):
            encode_policy(_descriptor(control_flow=True), 4, 0, 1, [])

    def test_predset_without_control_flow(self):
        with pytest.raises(EncodeError):
            encode_policy(_descriptor(), 4, 0, 1, [], predset=(0, 0, MAC))

    def test_capability_without_bit(self):
        with pytest.raises(EncodeError):
            encode_policy(_descriptor(), 4, 0, 1, [], capability=(1, (0, 0, MAC)))

    def test_bad_mac_size(self):
        with pytest.raises(ValueError):
            ParamEncoding.auth_string(0, 0, 0, b"short")


class TestPredecessorSets:
    def test_round_trip(self):
        blocks = frozenset({1, 5, 99})
        assert unpack_predecessor_set(pack_predecessor_set(blocks)) == blocks

    def test_sorted_packing_is_canonical(self):
        assert pack_predecessor_set(frozenset({2, 1})) == pack_predecessor_set(
            frozenset({1, 2})
        )

    def test_empty(self):
        assert unpack_predecessor_set(b"") == frozenset()

    def test_ragged_rejected(self):
        with pytest.raises(EncodeError):
            unpack_predecessor_set(b"\x01\x02\x03")

    @given(blocks=st.frozensets(st.integers(min_value=0, max_value=0xFFFFFFFF), max_size=32))
    def test_round_trip_property(self, blocks):
        assert unpack_predecessor_set(pack_predecessor_set(blocks)) == blocks
