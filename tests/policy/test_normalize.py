"""File-name normalization (§5.4)."""

from repro.kernel import Kernel
from repro.policy.normalize import check_normalized, normalize_path


class TestNormalizePath:
    def test_plain(self):
        kernel = Kernel()
        kernel.vfs.write_file("/tmp/a", b"")
        assert normalize_path(kernel.vfs, "/tmp/a") == "/tmp/a"

    def test_missing_path_is_identity(self):
        kernel = Kernel()
        assert normalize_path(kernel.vfs, "/no/such/dir/file") == "/no/such/dir/file"

    def test_relative_made_absolute(self):
        kernel = Kernel()
        kernel.vfs.write_file("/tmp/a", b"")
        assert normalize_path(kernel.vfs, "a", cwd="/tmp") == "/tmp/a"


class TestSymlinkRace:
    """The §5.4 scenario: /tmp/foo -> /etc/passwd."""

    def test_clean_file_matches_policy(self):
        kernel = Kernel()
        kernel.vfs.write_file("/tmp/foo", b"temp data")
        assert check_normalized(kernel.vfs, "/tmp/foo", "/tmp/foo")

    def test_planted_symlink_detected(self):
        kernel = Kernel()
        kernel.vfs.write_file("/etc/passwd", b"root:x")
        kernel.vfs.symlink("/etc/passwd", "/tmp/foo")
        assert not check_normalized(kernel.vfs, "/tmp/foo", "/tmp/foo")

    def test_dotdot_traversal_detected(self):
        kernel = Kernel()
        kernel.vfs.write_file("/etc/passwd", b"root:x")
        assert not check_normalized(
            kernel.vfs, "/tmp/../etc/passwd", "/tmp/passwd"
        )

    def test_equivalent_spellings_accepted(self):
        kernel = Kernel()
        kernel.vfs.write_file("/tmp/foo", b"")
        assert check_normalized(kernel.vfs, "/tmp/./foo", "/tmp/foo")
        assert check_normalized(kernel.vfs, "/etc/../tmp/foo", "/tmp/foo")

    def test_symlink_chain(self):
        kernel = Kernel()
        kernel.vfs.write_file("/etc/passwd", b"")
        kernel.vfs.symlink("/etc/passwd", "/tmp/one")
        kernel.vfs.symlink("/tmp/one", "/tmp/two")
        assert normalize_path(kernel.vfs, "/tmp/two") == "/etc/passwd"
