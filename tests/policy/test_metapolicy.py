"""Metapolicies and policy templates (§5.2)."""

import pytest

from repro.policy import MetaPolicy, Strictness
from repro.policy.descriptor import ParamClass
from repro.policy.metapolicy import MetaRule
from repro.policy.model import ParamPolicy, ProgramPolicy, SyscallPolicy


def _site(syscall="open", number=5, call_site=0x100, params=None, nargs=3,
          outputs=frozenset()):
    policy = SyscallPolicy(
        syscall=syscall, number=number, call_site=call_site, block_id=1,
        arg_count=nargs, output_params=outputs,
    )
    for index, value in (params or {}).items():
        kind = ParamClass.STRING if isinstance(value, bytes) else ParamClass.IMMEDIATE
        policy.params[index] = ParamPolicy(index, kind, value)
    return policy


def _program(*sites):
    program = ProgramPolicy(program="demo")
    for site in sites:
        program.sites[site.call_site] = site
    return program


class TestRules:
    def test_default_rule(self):
        assert MetaPolicy().rule_for("read").strictness is Strictness.CALL_SITE

    def test_high_threat_defaults(self):
        metapolicy = MetaPolicy.high_threat_default()
        assert metapolicy.rule_for("execve").strictness is Strictness.FULL
        assert 0 in metapolicy.rule_for("open").required_params


class TestUnmetRequirements:
    def test_call_site_tier_satisfied(self):
        metapolicy = MetaPolicy()
        assert metapolicy.unmet_requirements(_site()) == []

    def test_args_tier_missing_param(self):
        metapolicy = MetaPolicy(rules={"open": MetaRule("open", Strictness.ARGS, frozenset({0}))})
        assert metapolicy.unmet_requirements(_site()) == [0]

    def test_args_tier_satisfied_by_string(self):
        metapolicy = MetaPolicy(rules={"open": MetaRule("open", Strictness.ARGS, frozenset({0}))})
        site = _site(params={0: b"/etc/motd"})
        assert metapolicy.unmet_requirements(site) == []

    def test_full_tier_excludes_outputs(self):
        metapolicy = MetaPolicy(rules={"stat": MetaRule("stat", Strictness.FULL)})
        site = _site(syscall="stat", number=106, nargs=2, outputs=frozenset({1}))
        assert metapolicy.unmet_requirements(site) == [0]

    def test_none_tier(self):
        metapolicy = MetaPolicy(rules={"getpid": MetaRule("getpid", Strictness.NONE)})
        assert metapolicy.unmet_requirements(_site(syscall="getpid", nargs=0)) == []


class TestTemplates:
    def _template(self):
        metapolicy = MetaPolicy(
            rules={"open": MetaRule("open", Strictness.ARGS, frozenset({0}))}
        )
        program = _program(_site(call_site=0x100), _site(call_site=0x200))
        return metapolicy.evaluate(program), program

    def test_holes_enumerated(self):
        template, _ = self._template()
        assert len(template.holes) == 2
        assert not template.complete

    def test_fill_and_resolve(self):
        template, program = self._template()
        template.fill(0x100, 0, b"/etc/motd")
        template.fill(0x200, 0, "/tmp/*")
        assert template.complete
        resolved = template.resolve()
        assert resolved.sites[0x100].params[0].pattern == "/etc/motd"
        assert resolved.sites[0x200].params[0].pattern == "/tmp/*"

    def test_fill_unknown_hole(self):
        template, _ = self._template()
        with pytest.raises(KeyError):
            template.fill(0x999, 0, 5)

    def test_resolve_incomplete_rejected(self):
        template, _ = self._template()
        template.fill(0x100, 0, b"/a")
        with pytest.raises(ValueError):
            template.resolve()

    def test_integer_fill_is_immediate(self):
        metapolicy = MetaPolicy(
            rules={"open": MetaRule("open", Strictness.ARGS, frozenset({1}))}
        )
        program = _program(_site())
        template = metapolicy.evaluate(program)
        template.fill(0x100, 1, 0)
        resolved = template.resolve()
        assert resolved.sites[0x100].params[1].kind is ParamClass.IMMEDIATE
