"""Auth record pack/unpack: the ASYS trap ABI."""

import pytest

from repro.cpu.memory import Memory, MemoryFault, PROT_READ
from repro.policy import PolicyDescriptor
from repro.policy.record import (
    AuthRecord,
    CORE_SIZE,
    pack_policy_state,
    read_auth_record,
    read_policy_state,
    state_mac_payload,
)

MAC = bytes(range(16))


def _roundtrip(record: AuthRecord) -> AuthRecord:
    memory = Memory()
    blob = record.pack()
    memory.map_region(0x1000, max(len(blob), 16), PROT_READ, data=blob)
    return read_auth_record(memory, 0x1000)


class TestCoreRecord:
    def test_core_size(self):
        assert CORE_SIZE == 32

    def test_round_trip(self):
        descriptor = PolicyDescriptor().with_call_site().with_control_flow()
        record = AuthRecord(
            descriptor=descriptor, block_id=9, predset_ptr=0x2000,
            lastblock_ptr=0x3000, call_mac=MAC,
        )
        parsed = _roundtrip(record)
        assert int(parsed.descriptor) == int(descriptor)
        assert parsed.block_id == 9
        assert parsed.predset_ptr == 0x2000
        assert parsed.lastblock_ptr == 0x3000
        assert parsed.call_mac == MAC
        assert parsed.size == CORE_SIZE

    def test_pattern_pointers(self):
        descriptor = (
            PolicyDescriptor().with_call_site()
            .with_pattern_param(0).with_pattern_param(2)
        )
        record = AuthRecord(
            descriptor=descriptor, block_id=1, predset_ptr=0,
            lastblock_ptr=0, call_mac=MAC, pattern_ptrs=(0xA000, 0xB000),
        )
        parsed = _roundtrip(record)
        assert parsed.pattern_ptrs == (0xA000, 0xB000)
        assert parsed.size == CORE_SIZE + 8

    def test_capability_fields(self):
        descriptor = PolicyDescriptor().with_call_site().with_capability()
        record = AuthRecord(
            descriptor=descriptor, block_id=1, predset_ptr=0,
            lastblock_ptr=0, call_mac=MAC, fd_mask=0b101, fd_allowed_ptr=0xC000,
        )
        parsed = _roundtrip(record)
        assert parsed.fd_mask == 0b101
        assert parsed.fd_allowed_ptr == 0xC000
        assert parsed.size == CORE_SIZE + 8

    def test_unmapped_record_faults(self):
        with pytest.raises(MemoryFault):
            read_auth_record(Memory(), 0x5000)


class TestPolicyState:
    def test_pack_read_round_trip(self):
        memory = Memory()
        blob = pack_policy_state(42, MAC)
        memory.map_region(0x1000, 32, PROT_READ, data=blob)
        last_block, mac = read_policy_state(memory, 0x1000)
        assert last_block == 42
        assert mac == MAC

    def test_state_payload_includes_counter(self):
        assert state_mac_payload(5, 1) != state_mac_payload(5, 2)
        assert state_mac_payload(5, 1) != state_mac_payload(6, 1)

    def test_state_payload_size(self):
        assert len(state_mac_payload(0, 0)) == 12
