"""Capability tracking (§5.3): tables and authenticated dictionaries."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.crypto import FastMac
from repro.policy import CapabilityError, CapabilityTable
from repro.policy.capability import AuthenticatedDictionary


class TestCapabilityTable:
    def test_grant_check(self):
        table = CapabilityTable()
        table.grant(7, 3)
        assert table.check(3, frozenset({7}))
        assert not table.check(3, frozenset({8}))
        assert not table.check(4, frozenset({7}))

    def test_revoke(self):
        table = CapabilityTable()
        table.grant(7, 3)
        table.revoke(3)
        assert not table.check(3, frozenset({7}))

    def test_revoke_unknown_ignored(self):
        CapabilityTable().revoke(99)  # must not raise

    def test_fd_reuse_after_close(self):
        # The paper's motivating subtlety: descriptors are reused.
        table = CapabilityTable()
        table.grant(7, 3)
        table.revoke(3)
        table.grant(9, 3)  # same fd number, different producing site
        assert table.check(3, frozenset({9}))
        assert not table.check(3, frozenset({7}))

    def test_multiple_live_fds_per_site(self):
        # ... and one open site can have several live descriptors.
        table = CapabilityTable()
        table.grant(7, 3)
        table.grant(7, 4)
        assert table.live_fds(7) == frozenset({3, 4})

    def test_double_grant_is_a_kernel_bug(self):
        table = CapabilityTable()
        table.grant(7, 3)
        with pytest.raises(CapabilityError):
            table.grant(8, 3)


class TestAuthenticatedDictionary:
    def _dict(self):
        return AuthenticatedDictionary(provider=FastMac(bytes(16)))

    def test_add_contains_remove(self):
        d = self._dict()
        d.add(5)
        assert d.contains(5)
        d.remove(5)
        assert not d.contains(5)

    def test_tampered_contents_detected(self):
        d = self._dict()
        d.add(5)
        d.contents = (5, 6)  # attacker edits untrusted memory
        with pytest.raises(CapabilityError):
            d.contains(6)

    def test_tampered_mac_detected(self):
        d = self._dict()
        d.add(5)
        d.mac = bytes(16)
        with pytest.raises(CapabilityError):
            d.contains(5)

    def test_replay_detected(self):
        d = self._dict()
        d.add(5)
        stale = (d.contents, d.mac)
        d.remove(5)
        d.contents, d.mac = stale  # roll back the untrusted half
        with pytest.raises(CapabilityError):
            d.contains(5)

    def test_counter_lives_in_trusted_memory(self):
        d = self._dict()
        d.add(5)
        counter_before = d.counter
        d.remove(5)
        assert d.counter == counter_before + 1

    @given(values=st.lists(st.integers(min_value=0, max_value=100), max_size=20))
    def test_matches_a_plain_set(self, values):
        d = self._dict()
        reference: set[int] = set()
        for value in values:
            if value % 3 == 0 and value in reference:
                d.remove(value)
                reference.discard(value)
            else:
                d.add(value)
                reference.add(value)
        assert set(d.contents) == reference
