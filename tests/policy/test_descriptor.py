"""Policy descriptor bit layout."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.policy import PolicyDescriptor


class TestBits:
    def test_empty(self):
        descriptor = PolicyDescriptor()
        assert not descriptor.call_site_constrained
        assert not descriptor.control_flow_constrained
        assert descriptor.constrained_params() == []

    def test_call_site(self):
        assert PolicyDescriptor().with_call_site().call_site_constrained

    def test_params(self):
        descriptor = PolicyDescriptor().with_param(0).with_param(3, is_string=True)
        assert descriptor.param_constrained(0)
        assert not descriptor.param_is_string(0)
        assert descriptor.param_constrained(3)
        assert descriptor.param_is_string(3)
        assert descriptor.constrained_params() == [0, 3]

    def test_control_flow(self):
        assert PolicyDescriptor().with_control_flow().control_flow_constrained

    def test_capability(self):
        assert PolicyDescriptor().with_capability().capability_tracked

    def test_pattern_implies_string(self):
        descriptor = PolicyDescriptor().with_pattern_param(2)
        assert descriptor.param_is_pattern(2)
        assert descriptor.param_is_string(2)
        assert descriptor.pattern_params() == [2]

    def test_out_of_range_param(self):
        with pytest.raises(ValueError):
            PolicyDescriptor().with_param(6)

    def test_int_round_trip(self):
        descriptor = (
            PolicyDescriptor().with_call_site().with_param(1).with_control_flow()
        )
        assert PolicyDescriptor(int(descriptor)).constrained_params() == [1]

    def test_immutable_builders(self):
        base = PolicyDescriptor()
        derived = base.with_call_site()
        assert not base.call_site_constrained
        assert derived is not base


class TestProperties:
    @given(params=st.sets(st.integers(min_value=0, max_value=5)))
    def test_constrained_params_round_trip(self, params):
        descriptor = PolicyDescriptor()
        for index in params:
            descriptor = descriptor.with_param(index)
        assert descriptor.constrained_params() == sorted(params)

    @given(
        params=st.sets(st.integers(min_value=0, max_value=5)),
        strings=st.sets(st.integers(min_value=0, max_value=5)),
    )
    def test_string_bits_independent(self, params, strings):
        descriptor = PolicyDescriptor()
        for index in params:
            descriptor = descriptor.with_param(index, is_string=index in strings)
        for index in params:
            assert descriptor.param_is_string(index) == (index in strings)
