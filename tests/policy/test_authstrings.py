"""Authenticated strings: layout, verification, bounds."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.cpu.memory import Memory, MemoryFault, PROT_READ
from repro.crypto import AesCmac, FastMac
from repro.policy import (
    AS_HEADER_SIZE,
    build_authenticated_string,
    read_authenticated_string,
)

MAC = FastMac(bytes(16))


def _memory_with_as(content: bytes, at: int = 0x1000):
    blob = build_authenticated_string(content, MAC)
    memory = Memory()
    memory.map_region(at, max(len(blob), 16), PROT_READ, data=blob)
    return memory, at + AS_HEADER_SIZE  # pointer to the content


class TestLayout:
    def test_header_is_20_bytes(self):
        assert AS_HEADER_SIZE == 20

    def test_blob_shape(self):
        blob = build_authenticated_string(b"/dev/console", MAC)
        assert len(blob) == 20 + 12 + 1  # header + content + NUL
        assert blob[-1] == 0
        assert int.from_bytes(blob[:4], "little") == 12

    def test_pointer_still_works_as_c_string(self):
        memory, pointer = _memory_with_as(b"/etc/motd")
        assert memory.read_cstring(pointer) == b"/etc/motd"

    def test_too_long_rejected(self):
        with pytest.raises(ValueError):
            build_authenticated_string(bytes(1 << 17), MAC)


class TestVerification:
    def test_valid(self):
        memory, pointer = _memory_with_as(b"/etc/motd")
        parsed = read_authenticated_string(memory, pointer)
        assert parsed.content == b"/etc/motd"
        assert parsed.verify(MAC)

    def test_modified_content_fails(self):
        memory, pointer = _memory_with_as(b"/bin/ls")
        memory.write(pointer + 5, b"h", force=True)  # /bin/ls -> /bin/hs
        assert not read_authenticated_string(memory, pointer).verify(MAC)

    def test_wrong_provider_fails(self):
        memory, pointer = _memory_with_as(b"x")
        other = AesCmac(bytes(16))
        assert not read_authenticated_string(memory, pointer).verify(other)

    def test_shrunk_length_fails(self):
        memory, pointer = _memory_with_as(b"/etc/motd")
        memory.write_u32(pointer - 20, 4, force=True)
        assert not read_authenticated_string(memory, pointer).verify(MAC)

    def test_huge_length_refused_before_read(self):
        memory, pointer = _memory_with_as(b"/etc/motd")
        memory.write_u32(pointer - 20, 1 << 24, force=True)
        with pytest.raises(MemoryFault):
            read_authenticated_string(memory, pointer)

    def test_unmapped_header_faults(self):
        memory = Memory()
        memory.map_region(0x1000, 16, PROT_READ)
        with pytest.raises(MemoryFault):
            read_authenticated_string(memory, 0x1004)

    @given(content=st.binary(max_size=128))
    def test_round_trip_property(self, content):
        memory, pointer = _memory_with_as(content)
        parsed = read_authenticated_string(memory, pointer)
        assert parsed.content == content
        assert parsed.verify(MAC)
