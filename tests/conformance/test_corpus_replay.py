"""Pinned corpus replay: every checked-in entry must run clean and
bit-identical on all five engine configurations, assembled from the
*stored* source (generator drift cannot mask an old reproducer)."""

from pathlib import Path

import pytest

from repro.asm import assemble
from repro.crypto import Key
from repro.installer import InstallerOptions, install
from repro.conformance.corpus import (
    SEED_FAMILIES,
    CorpusEntry,
    load_entries,
    make_entry,
    write_entry,
)
from repro.conformance.grammar import GenOp, ProgramSpec, render
from repro.conformance.oracle import divergences, run_all_configs

KEY = Key.from_passphrase("conformance-corpus-tests", provider="fast-hmac")

CORPUS_DIR = Path(__file__).parent / "corpus"

ENTRIES = load_entries(CORPUS_DIR)


def test_corpus_is_seeded():
    names = {entry.name for entry in ENTRIES}
    assert {f"seed-{family}" for family in SEED_FAMILIES} <= names


def test_corpus_covers_required_families():
    covered = {family for entry in ENTRIES for family in entry.families}
    assert set(SEED_FAMILIES) <= covered


@pytest.mark.parametrize(
    "entry", ENTRIES, ids=[entry.name for entry in ENTRIES]
)
def test_entry_replays_conformant(entry):
    binary = assemble(
        entry.source, metadata={"program": f"corpus-{entry.name}"}
    )
    installed = install(binary, KEY, InstallerOptions())
    outcomes = run_all_configs(KEY, installed)
    assert divergences(outcomes) == [], (
        f"corpus entry {entry.name} diverged"
    )
    for config_name, outcome in outcomes.items():
        assert outcome.clean, (
            f"corpus entry {entry.name} died on {config_name}: "
            f"{outcome.kill_reasons}"
        )


@pytest.mark.parametrize(
    "entry", ENTRIES, ids=[entry.name for entry in ENTRIES]
)
def test_entry_metadata_consistent(entry):
    assert entry.families == entry.spec.families()
    assert entry.source  # pinned at capture time, non-empty


def test_entry_round_trips_through_json(tmp_path):
    entry = make_entry(
        name="rt",
        description="round-trip check",
        spec=ProgramSpec(program_id=9, ops=(GenOp("write", 0, 3),)),
    )
    path = write_entry(tmp_path, entry)
    assert path.name == "rt.json"
    loaded = CorpusEntry.from_json(path.read_text())
    assert loaded == entry
    assert loaded.source == render(loaded.spec)
