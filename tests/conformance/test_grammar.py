"""Generator determinism, JSON round-trips, and per-kind buildability."""

import pytest

from repro.binfmt import SefBinary
from repro.conformance.grammar import (
    FAMILIES,
    OP_KINDS,
    GenOp,
    ProgramSpec,
    build,
    generate_specs,
    render,
)

#: A representative single op per kind (params chosen mid-range).
KIND_EXAMPLES = {
    "write": GenOp("write", 1, 2),
    "openclose": GenOp("openclose", 1),
    "getpid": GenOp("getpid"),
    "spin": GenOp("spin", extra=67),
    "smc": GenOp("smc", 7, 9),
    "forkpipe": GenOp("forkpipe", 2),
    "socket": GenOp("socket", 2),
}


def test_generation_is_deterministic():
    assert generate_specs(0, 30) == generate_specs(0, 30)
    assert generate_specs(1, 30) != generate_specs(0, 30)


def test_generated_programs_cover_every_kind():
    specs = generate_specs(0, 200)
    kinds = {op.kind for spec in specs for op in spec.ops}
    assert kinds == set(OP_KINDS)


def test_every_kind_has_a_family():
    assert set(FAMILIES) == set(OP_KINDS)


def test_spec_json_round_trip():
    for spec in generate_specs(3, 20):
        assert ProgramSpec.from_json(spec.to_json()) == spec


@pytest.mark.parametrize("kind", OP_KINDS)
def test_single_op_renders_and_builds(kind):
    spec = ProgramSpec(program_id=0, ops=(KIND_EXAMPLES[kind],))
    source = render(spec)
    assert "_start:" in source and "fail:" in source
    assert isinstance(build(spec), SefBinary)


def test_render_is_deterministic():
    spec = generate_specs(0, 5)[4]
    assert render(spec) == render(spec)


def test_multi_op_program_builds():
    spec = ProgramSpec(program_id=1, ops=tuple(KIND_EXAMPLES.values()))
    assert isinstance(build(spec), SefBinary)
