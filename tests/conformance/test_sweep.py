"""Sweep contract: determinism, metrics, and the divergence path
(forced by monkeypatching the oracle — the real engines agree)."""

import json

from repro.crypto import Key
from repro.obs import MetricsRegistry
from repro.conformance import corpus as corpus_mod
from repro.conformance import sweep as sweep_mod
from repro.conformance.sweep import run_conformance

KEY = Key.from_passphrase("conformance-sweep-tests", provider="fast-hmac")

SWEEP_ARGS = dict(key=KEY, seed=0, count=6)


def test_small_sweep_is_clean_and_deterministic():
    first = run_conformance(**SWEEP_ARGS)
    second = run_conformance(**SWEEP_ARGS)
    assert first.ok
    assert first.totals["runs"] == 6 * 5
    assert first.to_json() == second.to_json()


def test_report_json_shape():
    report = run_conformance(**SWEEP_ARGS)
    payload = json.loads(report.to_json())
    assert payload["seed"] == 0
    assert len(payload["programs"]) == 6
    assert payload["divergent"] == []
    for program in payload["programs"]:
        assert program["clean"] is True
        assert program["divergent_configs"] == []
        assert len(program["fingerprint"]) == 16


def test_metrics_and_summary():
    metrics = MetricsRegistry()
    report = run_conformance(metrics=metrics, **SWEEP_ARGS)
    assert metrics.get("conform.programs") == 6
    assert metrics.get("conform.runs") == 30
    assert metrics.get("conform.divergences") == 0
    assert "OK: 0 divergences" in report.summary()


def test_config_subset():
    report = run_conformance(
        key=KEY, seed=0, count=3, config_names=["interp", "chained"]
    )
    assert report.configs == ("interp", "chained")
    assert report.totals["runs"] == 6


def test_divergence_path_shrinks_and_writes_reproducer(tmp_path, monkeypatch):
    """Force program 2 to 'diverge' on one config and check the full
    failure path: report flags it, the shrinker minimizes it, and a
    reproducer entry lands in the corpus directory."""
    real_run_all = sweep_mod.run_all_configs

    def fake_run_all(key, installed, **kwargs):
        outcomes = real_run_all(key, installed, **kwargs)
        if installed.binary.metadata.get("program") == "conform-2":
            names = list(outcomes)
            victim = outcomes[names[-1]]
            outcomes[names[-1]] = type(victim)(
                per_task=victim.per_task,
                trace=victim.trace + ((99, "phantom"),),
                digests=victim.digests,
                families=victim.families,
                killed=victim.killed,
                kill_reasons=victim.kill_reasons,
                exit_status=victim.exit_status,
            )
        return outcomes

    # The shrink predicate re-runs programs; make it a pure function of
    # the op list so the test is fast and the minimum is known.
    def fake_diverges(spec, key, **kwargs):
        return any(op.kind in ("write", "getpid") for op in spec.ops)

    monkeypatch.setattr(sweep_mod, "run_all_configs", fake_run_all)
    monkeypatch.setattr(sweep_mod, "spec_diverges", fake_diverges)

    metrics = MetricsRegistry()
    report = run_conformance(
        corpus_dir=tmp_path, metrics=metrics, **SWEEP_ARGS
    )
    assert not report.ok
    assert len(report.divergent) == 1
    entry = report.divergent[0]
    assert entry["program_id"] == 2
    assert len(entry["configs"]) == 1
    assert entry["minimized_ops"]  # shrunk spec recorded in the report
    assert metrics.get("conform.divergences") == 1
    assert metrics.get("conform.shrink_evaluations") > 0
    assert "FAIL: 1 DIVERGED" in report.summary()

    written = list(tmp_path.glob("*.json"))
    assert len(written) == 1
    loaded = corpus_mod.load_entries(tmp_path)[0]
    assert loaded.name == report.reproducers[0]
    assert loaded.name.startswith("diverge-seed0-p2")
    # The pinned source is the *minimized* program's rendering.
    assert loaded.source == corpus_mod.render(loaded.spec)
