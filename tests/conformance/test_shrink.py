"""Shrinker behavior on synthetic predicates (no programs are run)."""

from repro.conformance.grammar import GenOp, ProgramSpec
from repro.conformance.shrink import shrink_spec


def _spec(*ops):
    return ProgramSpec(program_id=0, ops=tuple(ops))


def _has_kind(kind):
    return lambda spec: any(op.kind == kind for op in spec.ops)


def test_minimizes_to_single_triggering_op():
    spec = _spec(
        GenOp("write", 1, 4),
        GenOp("spin", extra=100),
        GenOp("socket", 3),
        GenOp("getpid"),
        GenOp("forkpipe", 2),
    )
    result = shrink_spec(spec, _has_kind("socket"))
    assert [op.kind for op in result.spec.ops] == ["socket"]
    # ...and the param ladder pulled the record count down to 1.
    assert result.spec.ops[0].value == 1
    assert result.reductions > 0


def test_param_reduction_without_removal():
    spec = _spec(GenOp("spin", extra=190))
    result = shrink_spec(spec, _has_kind("spin"))
    assert result.spec.ops == (GenOp("spin", extra=1),)


def test_preserves_conjunction_properties():
    """A predicate needing two ops keeps both (ddmin can't drop
    either) but still simplifies their parameters."""
    spec = _spec(
        GenOp("smc", 7, 9),
        GenOp("write", 2, 16),
        GenOp("forkpipe", 3),
    )
    def predicate(s):
        return _has_kind("smc")(s) and _has_kind("forkpipe")(s)

    result = shrink_spec(spec, predicate)
    kinds = [op.kind for op in result.spec.ops]
    assert kinds == ["smc", "forkpipe"]
    assert result.spec.ops[0] == GenOp("smc", 1, 2)
    assert result.spec.ops[1] == GenOp("forkpipe", 1)


def test_irreducible_spec_returned_unchanged():
    spec = _spec(GenOp("getpid"))
    result = shrink_spec(spec, _has_kind("getpid"))
    assert result.spec == spec


def test_respects_evaluation_budget():
    spec = _spec(*(GenOp("getpid") for _ in range(5)))
    calls = []

    def predicate(candidate):
        calls.append(candidate)
        return True

    result = shrink_spec(spec, predicate, max_evaluations=3)
    assert len(calls) == 3
    assert result.evaluations == 3


def test_shrink_is_deterministic():
    spec = _spec(
        GenOp("write", 0, 8),
        GenOp("socket", 2),
        GenOp("spin", extra=50),
    )
    first = shrink_spec(spec, _has_kind("socket"))
    second = shrink_spec(spec, _has_kind("socket"))
    assert first.spec == second.spec
    assert first.evaluations == second.evaluations
