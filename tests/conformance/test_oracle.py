"""Oracle behavior: five-config equality, signature contents,
divergence detection on synthetic outcomes."""

from repro.crypto import Key
from repro.conformance.grammar import GenOp, ProgramSpec
from repro.conformance.oracle import (
    ENGINE_CONFIGS,
    ProgramOutcome,
    divergences,
    install_spec,
    run_all_configs,
    run_program,
    spec_diverges,
)

KEY = Key.from_passphrase("conformance-oracle-tests", provider="fast-hmac")

#: One op from each syscall family plus a near-budget spin: the
#: broadest single program the oracle tests run.
BROAD_SPEC = ProgramSpec(
    program_id=0,
    ops=(
        GenOp("write", 0, 8),
        GenOp("spin", extra=67),
        GenOp("smc", 5, 11),
        GenOp("forkpipe", 2),
        GenOp("socket", 1),
    ),
)


def test_all_five_configs_agree():
    outcomes = run_all_configs(KEY, install_spec(BROAD_SPEC, KEY))
    assert set(outcomes) == {config.name for config in ENGINE_CONFIGS}
    assert divergences(outcomes) == []
    for outcome in outcomes.values():
        assert outcome.clean
        assert outcome.exit_status == 0


def test_outcome_has_trace_digests_and_families():
    config = ENGINE_CONFIGS[0]
    outcome = run_program(KEY, config, install_spec(BROAD_SPEC, KEY))
    # fork twice (pipe + socket ops) -> three processes.
    assert len(outcome.per_task) == 3
    assert len(outcome.digests) == 3
    assert outcome.families == ("", "", "")
    names = [name for _pid, name in outcome.trace]
    assert "write" in names and "fork" in names and "socket" in names
    pids = {pid for pid, _name in outcome.trace}
    assert len(pids) == 3


def test_fingerprint_is_stable_across_runs():
    installed = install_spec(BROAD_SPEC, KEY)
    config = ENGINE_CONFIGS[0]
    first = run_program(KEY, config, installed)
    second = run_program(KEY, config, installed)
    assert first.fingerprint() == second.fingerprint()
    assert first.comparable() == second.comparable()


def test_spec_diverges_false_for_clean_program():
    assert not spec_diverges(BROAD_SPEC, KEY)


def _outcome(trace):
    return ProgramOutcome(
        per_task=((0, "", False, "", b"", b"", 10),),
        trace=trace,
        digests=("d",),
        families=("",),
        killed=False,
        kill_reasons="",
        exit_status=0,
    )


def test_divergences_flags_differing_configs():
    outcomes = {
        "interp": _outcome(((1, "write"),)),
        "chained": _outcome(((1, "write"),)),
        "no-chain": _outcome(((1, "read"),)),
    }
    assert divergences(outcomes) == ["no-chain"]
    outcomes["no-chain"] = _outcome(((1, "write"),))
    assert divergences(outcomes) == []


def test_comparable_excludes_noncompared_fields():
    """kill_reasons and exit_status ride along for reporting but the
    cross-config equality ignores them (they are derivable from the
    compared per-task signatures)."""
    outcome = _outcome(((1, "write"),))
    assert outcome.comparable() == (
        outcome.per_task, outcome.trace, outcome.digests, outcome.families
    )
    assert "exit_status" not in repr(outcome.comparable())
