"""The counter registry and its FastPathStats facade."""

from repro.kernel import FastPathStats
from repro.obs import MetricsRegistry
from repro.obs.metrics import COUNTER_HELP, merge_counters


class TestMetricsRegistry:
    def test_inc_get_snapshot(self):
        reg = MetricsRegistry()
        assert reg.get("fastpath.hits") == 0
        reg.inc("fastpath.hits")
        reg.inc("fastpath.hits", 9)
        reg.set("engine.syscalls", 4)
        assert reg.get("fastpath.hits") == 10
        assert reg.snapshot() == {"fastpath.hits": 10, "engine.syscalls": 4}
        assert len(reg) == 2

    def test_iteration_is_sorted(self):
        reg = MetricsRegistry()
        reg.inc("zeta", 1)
        reg.inc("alpha", 2)
        assert list(reg) == [("alpha", 2), ("zeta", 1)]

    def test_reset_returns_pre_reset_snapshot(self):
        reg = MetricsRegistry()
        reg.inc("fastpath.hits", 3)
        old = reg.reset()
        assert old == {"fastpath.hits": 3}
        assert reg.snapshot() == {}
        assert reg.get("fastpath.hits") == 0

    def test_merge_counters_with_prefix(self):
        reg = MetricsRegistry()
        merge_counters(reg, {"compiles": 2, "evictions": 1}, prefix="engine")
        merge_counters(reg, {"engine.compiles": 3})
        assert reg.get("engine.compiles") == 5
        assert reg.get("engine.evictions") == 1

    def test_prometheus_rendering(self):
        reg = MetricsRegistry()
        reg.inc("fastpath.hits", 12)
        reg.inc("custom.thing", 1)  # no HELP entry: still renders
        text = reg.render_prometheus()
        lines = text.splitlines()
        assert f"# HELP repro_fastpath_hits {COUNTER_HELP['fastpath.hits']}" in lines
        assert "# TYPE repro_fastpath_hits counter" in lines
        assert "repro_fastpath_hits 12" in lines
        assert "repro_custom_thing 1" in lines
        assert text.endswith("\n")
        assert MetricsRegistry().render_prometheus() == ""


class TestFastPathStatsFacade:
    def test_kwargs_constructor_still_works(self):
        stats = FastPathStats(hits=3, misses=1)
        assert stats.hits == 3
        assert stats.misses == 1
        assert stats.invalidations == 0
        assert stats.lookups == 4

    def test_backed_by_shared_registry(self):
        reg = MetricsRegistry()
        stats = FastPathStats(registry=reg)
        stats.hits += 5
        stats.misses += 2
        assert reg.get("fastpath.hits") == 5
        assert reg.get("fastpath.misses") == 2
        reg.inc("fastpath.hits", 1)  # registry writes are visible back
        assert stats.hits == 6

    def test_reset_returns_snapshot(self):
        stats = FastPathStats(hits=7, misses=3, invalidations=1)
        snap = stats.reset()
        assert (snap.hits, snap.misses, snap.invalidations) == (7, 3, 1)
        assert snap.lookups == 10
        assert snap.hit_rate() == 0.7
        assert stats.hits == stats.misses == stats.invalidations == 0
        # The snapshot is immutable and detached from the live stats.
        stats.hits += 1
        assert snap.hits == 7
