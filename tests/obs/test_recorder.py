"""Unit semantics of the span recorders (fake clock, no kernel).

The deterministic clock makes every duration exact, so these tests pin
the arithmetic contract the benchmarks rely on: self times partition
the trace, ``close_to`` unwinds cleanly, and the Chrome export survives
a JSON round trip.
"""

import json
import tracemalloc

from repro.obs import NULL_RECORDER, NullRecorder, Recorder, TraceRecorder


class FakeClock:
    """Returns pre-seeded nanosecond readings in order."""

    def __init__(self, *readings):
        self._readings = list(readings)

    def __call__(self):
        return self._readings.pop(0)


class TestTraceRecorder:
    def test_single_span_duration(self):
        rec = TraceRecorder(clock=FakeClock(100, 350))
        rec.begin("mac-check", "verify")
        rec.end()
        (span,) = rec.spans
        assert span.name == "mac-check"
        assert span.cat == "verify"
        assert span.start_ns == 100
        assert span.dur_ns == 250
        assert span.self_ns == 250
        assert span.depth == 0

    def test_nested_spans_self_time(self):
        # parent [0..1000], child [200..500]: parent self = 700.
        rec = TraceRecorder(clock=FakeClock(0, 200, 500, 1000))
        rec.begin("syscall-verify", "verify")
        rec.begin("mac-check", "verify")
        rec.end()
        rec.end()
        by_name = {s.name: s for s in rec.spans}
        assert by_name["mac-check"].dur_ns == 300
        assert by_name["mac-check"].depth == 1
        assert by_name["syscall-verify"].dur_ns == 1000
        assert by_name["syscall-verify"].self_ns == 700
        assert by_name["syscall-verify"].depth == 0

    def test_self_times_partition_root_duration(self):
        # Three levels plus a sibling; the partition identity must hold
        # exactly, not approximately.
        rec = TraceRecorder(
            clock=FakeClock(0, 10, 20, 40, 70, 100, 130, 150, 180, 200)
        )
        rec.begin("execute", "engine")
        rec.begin("syscall-verify", "verify")
        rec.begin("policy-decode", "verify")
        rec.end()
        rec.begin("mac-check", "verify")
        rec.end()
        rec.end()
        rec.begin("block-compile", "engine")
        rec.end()
        rec.end()
        assert rec.open_spans == 0
        assert sum(s.self_ns for s in rec.spans) == rec.total_traced_ns() == 200

    def test_stage_totals_aggregate_across_instances(self):
        rec = TraceRecorder(clock=FakeClock(0, 5, 10, 35))
        rec.begin("mac-check", "verify")
        rec.end()
        rec.begin("mac-check", "verify")
        rec.end()
        totals = rec.stage_totals()
        assert totals["mac-check"]["count"] == 2
        assert totals["mac-check"]["total_ns"] == 5 + 25
        assert totals["mac-check"]["self_ns"] == 5 + 25
        assert totals["mac-check"]["cat"] == "verify"

    def test_close_to_unwinds_to_depth(self):
        rec = TraceRecorder(clock=FakeClock(0, 1, 2, 3, 4, 5))
        rec.begin("execute", "engine")
        depth = rec.open_spans
        rec.begin("syscall-verify", "verify")
        rec.begin("string-auth", "verify")
        rec.close_to(depth)  # simulated AuthViolation unwind
        assert rec.open_spans == depth
        assert {s.name for s in rec.spans} == {"syscall-verify", "string-auth"}
        rec.end()
        assert rec.open_spans == 0

    def test_counters_inc_and_merge(self):
        rec = TraceRecorder(clock=FakeClock())
        rec.inc("fastpath.hits")
        rec.inc("fastpath.hits", 4)
        rec.merge_counters({"fastpath.hits": 5, "engine.syscalls": 7})
        assert rec.counters == {"fastpath.hits": 10, "engine.syscalls": 7}

    def test_chrome_trace_round_trip(self):
        rec = TraceRecorder(clock=FakeClock(1000, 3000, 5000, 9000))
        rec.begin("execute", "engine")
        rec.begin("mac-check", "verify")
        rec.end()
        rec.end()
        rec.inc("engine.syscalls", 3)
        doc = json.loads(json.dumps(rec.chrome_trace()))
        events = doc["traceEvents"]
        xs = [e for e in events if e["ph"] == "X"]
        # Sorted by start; microsecond units.
        assert [e["name"] for e in xs] == ["execute", "mac-check"]
        assert xs[0]["ts"] == 1.0 and xs[0]["dur"] == 8.0
        assert xs[1]["ts"] == 3.0 and xs[1]["dur"] == 2.0
        (counter_event,) = [e for e in events if e["ph"] == "C"]
        assert counter_event["args"] == {"engine.syscalls": 3}
        assert doc["counters"] == {"engine.syscalls": 3}

    def test_write_chrome_trace(self, tmp_path):
        rec = TraceRecorder(clock=FakeClock(0, 10))
        rec.begin("execute", "engine")
        rec.end()
        out = tmp_path / "trace.json"
        rec.write_chrome_trace(out)
        doc = json.loads(out.read_text())
        assert doc["traceEvents"][0]["name"] == "execute"


class TestNullRecorder:
    def test_satisfies_protocol(self):
        assert isinstance(NULL_RECORDER, Recorder)
        assert isinstance(TraceRecorder(), Recorder)

    def test_disabled_and_inert(self):
        rec = NullRecorder()
        assert rec.enabled is False
        assert rec.begin("x", "y") is None
        assert rec.end() is None
        assert rec.inc("x", 5) is None
        assert rec.close_to(0) is None
        assert rec.open_spans == 0

    def test_no_allocations_on_hot_path(self):
        """The off-state contract: NullRecorder method calls allocate
        nothing, so leaving instrumentation unguarded in warm code can
        never create GC pressure."""
        rec = NULL_RECORDER
        # Warm up any lazy interpreter state (method cache, etc.).
        for _ in range(100):
            if rec.enabled:
                rec.begin("syscall-verify", "verify")
                rec.end()
            rec.inc("fastpath.hits")
        tracemalloc.start()
        before = tracemalloc.take_snapshot()
        for _ in range(1000):
            if rec.enabled:
                rec.begin("syscall-verify", "verify")
                rec.end()
            rec.inc("fastpath.hits")
        after = tracemalloc.take_snapshot()
        tracemalloc.stop()
        here = tracemalloc.Filter(True, __file__)
        grown = sum(
            stat.size_diff
            for stat in after.filter_traces([here]).compare_to(
                before.filter_traces([here]), "lineno"
            )
            if stat.size_diff > 0
        )
        # Per-iteration allocation over 1000 iterations would show as
        # tens of kilobytes; allow a single transient object of slack.
        assert grown < 100, (
            f"NullRecorder hot path allocated {grown} bytes over 1000 calls"
        )
