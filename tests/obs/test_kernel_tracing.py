"""End-to-end observability: a traced kernel run must produce a
well-nested span tree whose counters agree with the kernel's own
books, and a disabled recorder must never be called from the hot path.
"""

import json

import pytest

from repro.asm import assemble
from repro.crypto import Key
from repro.installer import install
from repro.kernel import Kernel
from repro.obs import TraceRecorder
from repro.tools.cli import main as cli_main
from repro.workloads.runtime import runtime_source

KEY = Key.from_passphrase("test-obs", provider="fast-hmac")

LOOP_ITERATIONS = 25

LOOP_PROGRAM = f"""
.section .text
.global _start
_start:
    li r13, {LOOP_ITERATIONS}
loop:
    call sys_getpid
    subi r13, r13, 1
    cmpi r13, 0
    bgt loop
    li r1, 0
    call sys_exit
""" + runtime_source("linux", ("getpid", "exit"))


@pytest.fixture(scope="module")
def installed():
    binary = assemble(LOOP_PROGRAM, metadata={"program": "obsloop"})
    return install(binary, KEY).binary


@pytest.fixture(scope="module")
def traced(installed):
    recorder = TraceRecorder()
    kernel = Kernel(key=KEY, recorder=recorder)
    result = kernel.run(installed)
    assert result.ok, result.kill_reason
    return recorder, kernel, result


class TestTracedRun:
    def test_spans_balanced_and_nested(self, traced):
        recorder, _, _ = traced
        assert recorder.open_spans == 0
        names = {s.name for s in recorder.spans}
        assert {"execute", "syscall-verify", "policy-decode", "mac-check",
                "string-auth"} <= names
        # Verification stages sit strictly inside syscall-verify, which
        # sits inside the engine's execute span.
        depth = {s.name: s.depth for s in recorder.spans}
        assert depth["execute"] == 0
        assert depth["syscall-verify"] == 1
        assert depth["mac-check"] == 2
        # Replaying spans in start order against an interval stack
        # proves proper containment: children end before parents.
        stack = []
        for span in sorted(recorder.spans, key=lambda s: (s.start_ns, -s.dur_ns)):
            end = span.start_ns + span.dur_ns
            while stack and span.start_ns >= stack[-1]:
                stack.pop()
            if stack:
                assert end <= stack[-1], f"{span.name} leaks out of its parent"
            assert len(stack) == span.depth
            stack.append(end)

    def test_self_times_partition_wall_clock(self, traced):
        recorder, _, _ = traced
        totals = recorder.stage_totals()
        self_sum = sum(entry["self_ns"] for entry in totals.values())
        assert self_sum == recorder.total_traced_ns()

    def test_counters_match_kernel_books(self, traced):
        recorder, kernel, result = traced
        assert recorder.counters["engine.instructions_retired"] == result.instructions
        assert recorder.counters["engine.syscalls"] == result.syscalls
        assert recorder.counters["fastpath.hits"] == kernel.audit.fastpath.hits
        assert recorder.counters["fastpath.misses"] == kernel.audit.fastpath.misses
        assert recorder.counters["fastpath.hits"] >= LOOP_ITERATIONS - 1
        # Threaded engine: the loop compiles a handful of blocks once.
        assert recorder.counters["engine.blocks_compiled"] > 0
        assert "block-compile" in {s.name for s in recorder.spans}

    def test_metrics_registry_mirrors_trace_counters(self, traced):
        recorder, kernel, _ = traced
        for name, value in recorder.counters.items():
            assert kernel.metrics.get(name) == value, name

    def test_syscall_span_count_matches_verified_calls(self, traced):
        recorder, _, result = traced
        verifies = [s for s in recorder.spans if s.name == "syscall-verify"]
        assert len(verifies) == result.syscalls

    def test_chrome_export_loads(self, traced, tmp_path):
        recorder, _, _ = traced
        out = tmp_path / "trace.json"
        recorder.write_chrome_trace(out)
        doc = json.loads(out.read_text())
        events = doc["traceEvents"]
        assert all(e["ph"] in ("X", "C") for e in events)
        assert all(e["dur"] >= 0 for e in events if e["ph"] == "X")
        assert doc["counters"] == dict(sorted(recorder.counters.items()))


class TestViolationUnwind:
    def test_auth_violation_leaves_balanced_trace(self, installed):
        # Wrong kernel key: the call MAC fails mid-verification, the
        # span stack must still unwind to balance.
        recorder = TraceRecorder()
        kernel = Kernel(key=Key.from_passphrase("other", provider="fast-hmac"),
                        recorder=recorder)
        result = kernel.run(installed)
        assert result.killed
        assert recorder.open_spans == 0
        totals = recorder.stage_totals()
        assert sum(e["self_ns"] for e in totals.values()) == recorder.total_traced_ns()
        assert "syscall-verify" in totals


class RaisingRecorder:
    """enabled=False recorder whose span/counter methods all raise:
    passing it through a full run proves the hot path never calls a
    disabled recorder."""

    enabled = False

    def _boom(self, *args, **kwargs):
        raise AssertionError("disabled recorder was called from the hot path")

    begin = end = inc = close_to = _boom

    @property
    def open_spans(self):
        return 0


class TestDisabledRecorder:
    def test_hot_path_never_calls_disabled_recorder(self, installed):
        kernel = Kernel(key=KEY, recorder=RaisingRecorder())
        result = kernel.run(installed)
        assert result.ok, result.kill_reason

    def test_default_kernel_uses_shared_null_recorder(self):
        from repro.obs import NULL_RECORDER

        assert Kernel(key=KEY).obs is NULL_RECORDER


class TestCliSurface:
    @pytest.fixture
    def installed_on_disk(self, tmp_path, installed):
        path = tmp_path / "obsloop.sef"
        path.write_bytes(installed.to_bytes())
        return path

    def test_run_trace_flag_writes_chrome_json(self, tmp_path, installed_on_disk,
                                               capsys):
        out = tmp_path / "trace.json"
        rc = cli_main(["--fast-mac", "--key", "test-obs", "run",
                       str(installed_on_disk), "--trace", str(out)])
        assert rc == 0
        doc = json.loads(out.read_text())
        assert any(e["name"] == "syscall-verify" for e in doc["traceEvents"])
        err = capsys.readouterr().err
        assert "[trace]" in err and "syscall-verify" in err

    def test_metrics_subcommand_emits_prometheus(self, tmp_path, installed_on_disk,
                                                 capsys):
        rc = cli_main(["--fast-mac", "--key", "test-obs", "metrics",
                       str(installed_on_disk)])
        assert rc == 0
        text = capsys.readouterr().out
        assert "# TYPE repro_fastpath_hits counter" in text
        assert "repro_engine_instructions_retired" in text
