"""Unit coverage for the CI perf-gate script.

The gate guards every perf PR, so its own edge cases — missing
workloads, missing columns, the opt-out flags, both verify-share
regimes — deserve tests of their own rather than being exercised only
when CI happens to trip them.
"""

import json

from benchmarks.check_wallclock_regression import (
    DEFAULT_SCHED_PARITY,
    VERIFY_CREEP_ALLOWANCE,
    VERIFY_GATE_WORKLOAD,
    VERIFY_IMPROVEMENT_GATE,
    VERIFY_SHARE_PR6_BASELINE,
    check_sched_parity,
    check_verify_share,
    compare,
    main,
)


def _entry(ips, sched_ips=None, verify_share=None):
    entry = {
        "interp": {"instructions_per_second": ips // 4},
        "threaded": {"instructions_per_second": ips},
        "threaded_chained": {"instructions_per_second": ips * 2},
    }
    if sched_ips is not None:
        entry["threaded_sched"] = {"instructions_per_second": sched_ips}
    if verify_share is not None:
        entry["verify_share"] = verify_share
    return entry


def _doc(**workloads):
    return {"workloads": workloads}


# -- compare() --------------------------------------------------------------


def test_identical_runs_pass():
    doc = _doc(**{"gzip-spec": _entry(1_000_000)})
    assert compare(doc, doc, 0.7) == []


def test_regression_below_threshold_fails_with_named_column():
    baseline = _doc(**{"gzip-spec": _entry(1_000_000)})
    current = _doc(**{"gzip-spec": _entry(500_000)})
    failures = compare(baseline, current, 0.7)
    assert len(failures) == 2  # both gated columns halved
    assert "gzip-spec" in failures[0]
    assert "threaded" in failures[0]


def test_small_dip_within_threshold_passes():
    baseline = _doc(**{"gzip-spec": _entry(1_000_000)})
    current = _doc(**{"gzip-spec": _entry(800_000)})
    assert compare(baseline, current, 0.7) == []


def test_no_shared_workloads_is_a_failure():
    baseline = _doc(**{"gzip-spec": _entry(1_000_000)})
    current = _doc(**{"bison-diff": _entry(1_000_000)})
    failures = compare(baseline, current, 0.7)
    assert failures == [
        "no workloads in common between baseline and current run"
    ]


def test_missing_column_in_baseline_is_skipped_not_failed():
    # A committed baseline that predates chaining lacks the
    # threaded_chained column: the gate skips that comparison.
    base_entry = _entry(1_000_000)
    del base_entry["threaded_chained"]
    baseline = _doc(**{"gzip-spec": base_entry})
    current = _doc(**{"gzip-spec": _entry(1_000_000)})
    assert compare(baseline, current, 0.7) == []


def test_extra_baseline_workload_is_ignored():
    baseline = _doc(**{
        "gzip-spec": _entry(1_000_000),
        "retired": _entry(1_000_000),
    })
    current = _doc(**{"gzip-spec": _entry(900_000)})
    assert compare(baseline, current, 0.7) == []


# -- check_sched_parity() ---------------------------------------------------


def test_sched_parity_ok_at_default_threshold():
    current = _doc(**{"gzip-spec": _entry(1_000_000, sched_ips=1_960_000)})
    assert check_sched_parity(current, DEFAULT_SCHED_PARITY) == []


def test_sched_parity_regression_detected():
    # Chained column is 2x the threaded ips; sched at half of that is
    # far under the 0.95 parity gate.
    current = _doc(**{"gzip-spec": _entry(1_000_000, sched_ips=1_000_000)})
    failures = check_sched_parity(current, DEFAULT_SCHED_PARITY)
    assert len(failures) == 1
    assert "scheduler overhead" in failures[0]


def test_sched_parity_skipped_when_not_measured():
    current = _doc(**{"gzip-spec": _entry(1_000_000)})
    assert check_sched_parity(current, DEFAULT_SCHED_PARITY) == []


# -- check_verify_share() ---------------------------------------------------


def test_verify_share_pre_jit_baseline_demands_improvement():
    # Baseline without the field = PR 6 era: current share must beat
    # the hard-coded reference by the improvement factor.
    ceiling = VERIFY_SHARE_PR6_BASELINE / VERIFY_IMPROVEMENT_GATE
    baseline = _doc(**{VERIFY_GATE_WORKLOAD: _entry(1_000_000)})
    good = _doc(**{
        VERIFY_GATE_WORKLOAD: _entry(1_000_000, verify_share=ceiling * 0.9)
    })
    bad = _doc(**{
        VERIFY_GATE_WORKLOAD: _entry(1_000_000, verify_share=ceiling * 1.1)
    })
    assert check_verify_share(baseline, good) == []
    failures = check_verify_share(baseline, bad)
    assert len(failures) == 1
    assert "verify-stage share" in failures[0]


def test_verify_share_post_jit_baseline_allows_bounded_creep():
    baseline = _doc(**{
        VERIFY_GATE_WORKLOAD: _entry(1_000_000, verify_share=0.10)
    })
    within = _doc(**{
        VERIFY_GATE_WORKLOAD: _entry(
            1_000_000, verify_share=0.10 * VERIFY_CREEP_ALLOWANCE - 0.001
        )
    })
    beyond = _doc(**{
        VERIFY_GATE_WORKLOAD: _entry(
            1_000_000, verify_share=0.10 * VERIFY_CREEP_ALLOWANCE + 0.001
        )
    })
    assert check_verify_share(baseline, within) == []
    assert len(check_verify_share(baseline, beyond)) == 1


def test_verify_share_reads_nested_observability_block():
    baseline = _doc(**{VERIFY_GATE_WORKLOAD: _entry(1_000_000)})
    baseline["workloads"][VERIFY_GATE_WORKLOAD]["observability"] = {
        "verify_share": 0.10
    }
    current = _doc(**{VERIFY_GATE_WORKLOAD: _entry(1_000_000)})
    current["workloads"][VERIFY_GATE_WORKLOAD]["observability"] = {
        "verify_share": 0.10
    }
    assert check_verify_share(baseline, current) == []


def test_verify_share_skipped_when_current_lacks_it():
    baseline = _doc(**{VERIFY_GATE_WORKLOAD: _entry(1_000_000)})
    current = _doc(**{VERIFY_GATE_WORKLOAD: _entry(1_000_000)})
    assert check_verify_share(baseline, current) == []


# -- main() -----------------------------------------------------------------


def _write(tmp_path, name, doc):
    path = tmp_path / name
    path.write_text(json.dumps(doc))
    return str(path)


def test_main_passes_on_identical_files(tmp_path):
    doc = _doc(**{"gzip-spec": _entry(1_000_000, sched_ips=1_960_000)})
    base = _write(tmp_path, "base.json", doc)
    curr = _write(tmp_path, "curr.json", doc)
    assert main(["--baseline", base, "--current", curr,
                 "--no-verify-share-gate"]) == 0


def test_main_fails_on_regression(tmp_path):
    base = _write(
        tmp_path, "base.json", _doc(**{"gzip-spec": _entry(1_000_000)})
    )
    curr = _write(
        tmp_path, "curr.json", _doc(**{"gzip-spec": _entry(100_000)})
    )
    assert main(["--baseline", base, "--current", curr,
                 "--no-verify-share-gate"]) == 1


def test_main_sched_parity_zero_disables_that_gate(tmp_path):
    # sched far below parity, but --sched-parity-threshold 0 opts out.
    doc = _doc(**{"gzip-spec": _entry(1_000_000, sched_ips=10)})
    base = _write(tmp_path, "base.json", doc)
    curr = _write(tmp_path, "curr.json", doc)
    assert main(["--baseline", base, "--current", curr,
                 "--sched-parity-threshold", "0",
                 "--no-verify-share-gate"]) == 0
    assert main(["--baseline", base, "--current", curr,
                 "--no-verify-share-gate"]) == 1


def test_main_verify_share_gate_opt_out(tmp_path):
    # Share over the pre-JIT ceiling: gated by default, waived by flag.
    doc = _doc(**{
        VERIFY_GATE_WORKLOAD: _entry(1_000_000, verify_share=0.5)
    })
    base = _write(
        tmp_path, "base.json", _doc(**{VERIFY_GATE_WORKLOAD: _entry(1_000_000)})
    )
    curr = _write(tmp_path, "curr.json", doc)
    assert main(["--baseline", base, "--current", curr]) == 1
    assert main(["--baseline", base, "--current", curr,
                 "--no-verify-share-gate"]) == 0


def test_main_custom_threshold(tmp_path):
    base = _write(
        tmp_path, "base.json", _doc(**{"gzip-spec": _entry(1_000_000)})
    )
    curr = _write(
        tmp_path, "curr.json", _doc(**{"gzip-spec": _entry(600_000)})
    )
    common = ["--baseline", base, "--current", curr,
              "--no-verify-share-gate"]
    assert main(common + ["--threshold", "0.5"]) == 0
    assert main(common + ["--threshold", "0.7"]) == 1
