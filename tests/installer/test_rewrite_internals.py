"""Rewrite-phase internals: sections, sharing, record wiring."""

import struct

import pytest

from repro.asm import assemble
from repro.binfmt import link
from repro.crypto import Key
from repro.installer import install
from repro.policy.authstrings import AS_HEADER_SIZE
from repro.policy.record import read_auth_record
from repro.cpu.memory import Memory, PROT_READ
from repro.workloads.runtime import runtime_source

KEY = Key.from_passphrase("rewrite-tests", provider="fast-hmac")

#: The same string constant is an argument at two different call sites.
SHARED_STRING = """
.section .text
.global _start
_start:
    li r1, path
    li r2, 0
    call sys_open
    li r1, path
    li r2, buf
    call sys_stat
    li r1, 0
    call sys_exit
.section .rodata
path:
    .asciz "/etc/motd"
.section .bss
buf:
    .space 32
""" + runtime_source("linux", ("open", "stat", "exit"))


@pytest.fixture(scope="module")
def installed():
    return install(assemble(SHARED_STRING, metadata={"program": "rw"}), KEY)


class TestStringSharing:
    def test_shared_constant_becomes_one_as(self, installed):
        authstr = installed.binary.section(".authstr")
        assert bytes(authstr.data).count(b"/etc/motd") == 1

    def test_symbol_points_into_authstr_content(self, installed):
        symbol = installed.binary.symbols["path"]
        assert symbol.section == ".authstr"
        section = installed.binary.section(".authstr")
        content_start = symbol.offset
        (length,) = struct.unpack_from(
            "<I", section.data, content_start - AS_HEADER_SIZE
        )
        assert length == len(b"/etc/motd")
        assert bytes(
            section.data[content_start : content_start + length]
        ) == b"/etc/motd"

    def test_both_sites_encode_same_as_address(self, installed):
        image = link(installed.binary)
        path = image.address_of("path")
        memory = Memory()
        for segment in image.segments:
            if segment.size:
                memory.map_region(
                    segment.vaddr, max(segment.size, 4), PROT_READ,
                    data=segment.data,
                )
        for site in ("open", "stat"):
            record_symbol = installed.site_records[
                installed.site_for_syscall(site)
            ]
            record = read_auth_record(memory, image.address_of(record_symbol))
            assert record.descriptor.param_is_string(0)
        # Single AS means the policies must agree on the content value.
        open_policy = installed.policy.sites[installed.site_for_syscall("open")]
        stat_policy = installed.policy.sites[installed.site_for_syscall("stat")]
        assert open_policy.params[0].value == stat_policy.params[0].value


class TestRecordWiring:
    def test_every_site_has_a_record_symbol(self, installed):
        assert set(installed.site_records) == set(installed.policy.sites)

    def test_records_reference_shared_polstate(self, installed):
        image = link(installed.binary)
        memory = Memory()
        for segment in image.segments:
            if segment.size:
                memory.map_region(
                    segment.vaddr, max(segment.size, 4), PROT_READ,
                    data=segment.data,
                )
        polstate = image.address_of("__asc_polstate")
        for record_symbol in installed.site_records.values():
            record = read_auth_record(memory, image.address_of(record_symbol))
            assert record.lastblock_ptr == polstate

    def test_predsets_are_distinct_per_site(self, installed):
        image = link(installed.binary)
        memory = Memory()
        for segment in image.segments:
            if segment.size:
                memory.map_region(
                    segment.vaddr, max(segment.size, 4), PROT_READ,
                    data=segment.data,
                )
        pointers = set()
        for record_symbol in installed.site_records.values():
            record = read_auth_record(memory, image.address_of(record_symbol))
            pointers.add(record.predset_ptr)
        assert len(pointers) == len(installed.site_records)

    def test_block_ids_match_policies(self, installed):
        image = link(installed.binary)
        memory = Memory()
        for segment in image.segments:
            if segment.size:
                memory.map_region(
                    segment.vaddr, max(segment.size, 4), PROT_READ,
                    data=segment.data,
                )
        for call_site, record_symbol in installed.site_records.items():
            record = read_auth_record(memory, image.address_of(record_symbol))
            assert record.block_id == installed.policy.sites[call_site].block_id

    def test_polstate_initial_contents(self, installed):
        from repro.crypto import mac_provider_for_key
        from repro.policy.record import state_mac_payload

        section = installed.binary.section(".polstate")
        (last_block,) = struct.unpack_from("<I", section.data, 0)
        assert last_block == 0  # program id 0 << 20
        mac = mac_provider_for_key(KEY)
        assert mac.verify(state_mac_payload(0, 0), bytes(section.data[4:20]))
