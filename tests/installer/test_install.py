"""The trusted installer: policy generation, rewriting, signing."""

import pytest

from repro.asm import assemble
from repro.binfmt import link
from repro.crypto import Key
from repro.installer import (
    InstallError,
    InstallerOptions,
    generate_policy_only,
    install,
)
from repro.isa import decode_instruction
from repro.isa.opcodes import Op
from repro.kernel import Kernel
from repro.policy import MetaPolicy
from repro.policy.descriptor import ParamClass
from repro.workloads.runtime import runtime_source

KEY = Key.from_passphrase("installer-tests", provider="fast-hmac")

PROGRAM = """
.section .text
.global _start
_start:
    li r1, path
    li r2, 0
    call sys_open
    mov r14, r0
    mov r1, r14
    li r2, buf
    li r3, 64
    call sys_read
    li r1, 0
    call sys_exit
.section .rodata
path:
    .asciz "/etc/motd"
.section .bss
buf:
    .space 64
""" + runtime_source("linux", ("open", "read", "exit"))


@pytest.fixture(scope="module")
def installed():
    return install(assemble(PROGRAM, metadata={"program": "itest"}), KEY)


class TestPolicyGeneration:
    def test_sites_and_syscalls(self, installed):
        policy = installed.policy
        assert installed.sites_rewritten == 3
        assert policy.distinct_syscalls() == {"open", "read", "exit"}

    def test_open_policy_contents(self, installed):
        open_policy = installed.policy.sites[installed.site_for_syscall("open")]
        assert open_policy.params[0].kind is ParamClass.STRING
        assert open_policy.params[0].value == b"/etc/motd"
        assert open_policy.params[1].value == 0
        assert open_policy.control_flow

    def test_read_buffer_is_output(self, installed):
        read_policy = installed.policy.sites[installed.site_for_syscall("read")]
        assert 1 in read_policy.output_params
        assert 1 not in read_policy.params
        assert read_policy.params[2].value == 64

    def test_fd_arg_recorded(self, installed):
        read_policy = installed.policy.sites[installed.site_for_syscall("read")]
        assert 0 in read_policy.fd_params

    def test_predecessor_chain(self, installed):
        policy = installed.policy
        open_p = policy.sites[installed.site_for_syscall("open")]
        read_p = policy.sites[installed.site_for_syscall("read")]
        assert open_p.predecessors == frozenset({0})
        assert read_p.predecessors == frozenset({open_p.block_id})

    def test_sites_keyed_by_call_site_address(self, installed):
        image = link(installed.binary)
        for call_site in installed.policy.sites:
            text = image.segment(".text")
            offset = call_site - text.vaddr
            instr = decode_instruction(text.data, offset)
            assert instr.op == Op.ASYS


class TestRewriting:
    def test_metadata_marks_authenticated(self, installed):
        assert installed.binary.metadata["authenticated"] == "yes"

    def test_new_sections_present(self, installed):
        for name in (".authstr", ".authdata", ".polstate"):
            assert name in installed.binary.sections

    def test_no_plain_sys_remains(self, installed):
        text = installed.binary.sections[".text"]
        for offset in range(0, text.size, 8):
            assert decode_instruction(bytes(text.data), offset).op != Op.SYS

    def test_string_symbol_moved_to_authstr(self, installed):
        symbol = installed.binary.symbols["path"]
        assert symbol.section == ".authstr"

    def test_original_source_unmodified(self):
        binary = assemble(PROGRAM, metadata={"program": "x"})
        before = binary.to_bytes()
        install(binary, KEY)
        assert binary.to_bytes() == before

    def test_runs_correctly(self, installed):
        kernel = Kernel(key=KEY)
        kernel.vfs.write_file("/etc/motd", b"ok")
        assert kernel.run(installed.binary).ok

    def test_deterministic_output(self):
        binary = assemble(PROGRAM, metadata={"program": "itest"})
        first = install(binary, KEY).binary.to_bytes()
        second = install(binary, KEY).binary.to_bytes()
        assert first == second


class TestOptions:
    def test_program_id_namespaces_blocks(self):
        binary = assemble(PROGRAM, metadata={"program": "itest"})
        inst = install(binary, KEY, InstallerOptions(program_id=3))
        for policy in inst.policy.sites.values():
            assert policy.block_id >> 20 == 3

    def test_capability_tracking_emits_producers(self):
        binary = assemble(PROGRAM, metadata={"program": "itest"})
        inst = install(binary, KEY, InstallerOptions(capability_tracking=True))
        read_policy = inst.policy.sites[inst.site_for_syscall("read")]
        assert 0 in read_policy.fd_producers
        kernel = Kernel(key=KEY, capability_tracking=True)
        kernel.vfs.write_file("/etc/motd", b"ok")
        assert kernel.run(inst.binary).ok

    def test_metapolicy_unfilled_hole_rejected(self):
        source = """
.section .text
.global _start
_start:
    li r9, cell
    ld r1, [r9+0]
    li r2, 0
    call sys_open
    li r1, 0
    call sys_exit
.section .data
cell:
    .word 0
""" + runtime_source("linux", ("open", "exit"))
        binary = assemble(source, metadata={"program": "dynamic-open"})
        with pytest.raises(InstallError, match="open param 0"):
            install(binary, KEY, InstallerOptions(metapolicy=MetaPolicy.high_threat_default()))

    def test_metapolicy_with_fill_installs(self):
        source = """
.section .text
.global _start
_start:
    li r9, cell
    ld r1, [r9+0]
    li r2, 0
    call sys_open
    li r1, 0
    call sys_exit
.section .data
cell:
    .word pathstr
pathstr:
    .asciz "/etc/motd"
""" + runtime_source("linux", ("open", "exit"))
        binary = assemble(source, metadata={"program": "dynamic-open"})
        inst = install(
            binary,
            KEY,
            InstallerOptions(
                metapolicy=MetaPolicy.high_threat_default(),
                template_fills={("open", 0): "/etc/*"},
            ),
        )
        kernel = Kernel(key=KEY)
        kernel.vfs.write_file("/etc/motd", b"x")
        result = kernel.run(inst.binary)
        # The pattern has one hint slot and the program supplies no
        # hint block (r8 = 0), so the open is rejected fail-stop —
        # hint-less patterns only work for literal patterns.
        assert result.killed

    def test_literal_pattern_fill_works_without_hints(self):
        source = """
.section .text
.global _start
_start:
    li r9, cell
    ld r1, [r9+0]
    li r2, 0
    call sys_open
    li r1, 0
    call sys_exit
.section .data
cell:
    .word pathstr
pathstr:
    .asciz "/etc/motd"
""" + runtime_source("linux", ("open", "exit"))
        binary = assemble(source, metadata={"program": "dynamic-open"})
        inst = install(
            binary, KEY,
            InstallerOptions(template_fills={("open", 0): "/etc/motd"}),
        )
        kernel = Kernel(key=KEY)
        kernel.vfs.write_file("/etc/motd", b"x")
        assert kernel.run(inst.binary).ok

    def test_literal_pattern_blocks_other_paths(self):
        source = """
.section .text
.global _start
_start:
    li r9, cell
    ld r1, [r9+0]
    li r2, 0
    call sys_open
    li r1, 0
    call sys_exit
.section .data
cell:
    .word pathstr
pathstr:
    .asciz "/etc/passwd"
""" + runtime_source("linux", ("open", "exit"))
        binary = assemble(source, metadata={"program": "dynamic-open"})
        inst = install(
            binary, KEY,
            InstallerOptions(template_fills={("open", 0): "/etc/motd"}),
        )
        kernel = Kernel(key=KEY)
        kernel.vfs.write_file("/etc/passwd", b"secret")
        result = kernel.run(inst.binary)
        assert result.killed
        assert "pattern" in result.kill_reason


class TestPolicyOnly:
    def test_non_strict_tolerates_unknown_numbers(self):
        source = """
.section .text
.global _start
_start:
    li r9, cell
    ld r0, [r9+0]
    sys
    li r1, 0
    call sys_exit
.section .data
cell:
    .word 20
""" + runtime_source("linux", ("exit",))
        binary = assemble(source, metadata={"program": "weird"})
        policy = generate_policy_only(binary)
        assert len(policy.unidentified_sites) == 1
        assert policy.distinct_syscalls() == {"exit"}

    def test_strict_install_rejects_unknown_numbers(self):
        source = """
.section .text
.global _start
_start:
    li r9, cell
    ld r0, [r9+0]
    sys
    li r1, 0
    call sys_exit
.section .data
cell:
    .word 20
""" + runtime_source("linux", ("exit",))
        binary = assemble(source, metadata={"program": "weird"})
        from repro.installer import PolicyGenerationError

        with pytest.raises(PolicyGenerationError):
            install(binary, KEY)


class TestOpenbsdInstall:
    def test_syscall_indirection_installs_and_runs(self):
        """The OpenBSD mmap stub (via __syscall) is installable: the
        policy constrains the indirection's first argument to the real
        mmap number, exactly as §4.2 describes."""
        source = """
.section .text
.global _start
_start:
    li r1, 0
    li r2, 8192
    li r3, 3
    li r4, 0x22
    li r5, 0xFFFFFFFF
    call sys_mmap
    mov r14, r0
    li r9, 9
    st r9, [r14+0]
    ld r1, [r14+0]
    call sys_exit
""" + runtime_source("openbsd", ("mmap", "exit"))
        binary = assemble(
            source, metadata={"program": "obsd-mmap", "personality": "openbsd"}
        )
        inst = install(binary, KEY)
        indirect = [
            p for p in inst.policy.sites.values() if p.syscall == "__syscall"
        ]
        assert len(indirect) == 1
        assert indirect[0].params[0].value == 90  # the real mmap number
        result = Kernel(key=KEY).run(inst.binary)
        assert not result.killed, result.kill_reason
        assert result.exit_status == 9

    def test_tampered_inner_number_fail_stops(self):
        """Redirecting the indirection to a different inner call (e.g.
        unlink) changes the constrained first argument -> MAC fail."""
        source = """
.section .text
.global _start
_start:
    li r1, 0
    li r2, 8192
    li r3, 3
    li r4, 0x22
    li r5, 0xFFFFFFFF
    call sys_mmap
    li r1, 0
    call sys_exit
""" + runtime_source("openbsd", ("mmap", "exit"))
        binary = assemble(
            source, metadata={"program": "obsd-mmap", "personality": "openbsd"}
        )
        inst = install(binary, KEY)
        kernel = Kernel(key=KEY)
        process, vm = kernel.load(inst.binary)
        site = inst.site_for_syscall("__syscall")

        class Redirector:
            def handle_trap(self, inner_vm, authenticated):
                if inner_vm.pc == site:
                    inner_vm.regs[1] = 10  # unlink instead of mmap
                return kernel.handle_trap(inner_vm, authenticated)

        vm.trap_handler = Redirector()
        vm.run()
        assert vm.killed
        assert "MAC mismatch" in vm.kill_reason
