"""Dynamic-library triage (§5.2)."""

from repro.asm import assemble
from repro.installer.dynlib import (
    DynamicLibrary,
    LibraryFunction,
    process_library,
)
from repro.policy import MetaPolicy
from repro.policy.metapolicy import MetaRule, Strictness
from repro.workloads.runtime import runtime_source


def _function(name: str, body: str, syscalls=("exit",), data: str = "") -> LibraryFunction:
    source = (
        ".section .text\n.global _start\n_start:\n"
        + body
        + ("\n" + data if data else "")
        + "\n"
        + runtime_source("linux", syscalls)
    )
    return LibraryFunction(name=name, binary=assemble(source, metadata={"program": name}))


def _static_open():
    return _function(
        "open_motd",
        "    li r1, p\n    li r2, 0\n    call sys_open\n    li r1, 0\n    call sys_exit",
        ("open", "exit"),
        '.section .rodata\np:\n  .asciz "/etc/motd"',
    )


def _dynamic_open():
    return _function(
        "open_arg",
        "    li r9, c\n    ld r1, [r9+0]\n    li r2, 0\n    call sys_open\n"
        "    li r1, 0\n    call sys_exit",
        ("open", "exit"),
        ".section .data\nc:\n  .word 0",
    )


def _undisassemblable_close():
    return _function(
        "weird_close",
        "    li r9, n\n    ld r0, [r9+0]\n    sys\n    li r1, 0\n    call sys_exit",
        ("exit",),
        ".section .data\nn:\n  .word 6",
    )


class TestTriage:
    def test_complete_function_protected(self):
        library = DynamicLibrary("libc")
        library.add(_static_open())
        report = process_library(library)
        assert report.protected == ["open_motd"]
        assert not report.withdrawn

    def test_incomplete_function_withdrawn(self):
        library = DynamicLibrary("libc")
        library.add(_dynamic_open())
        report = process_library(library)
        assert "open_arg" in report.withdrawn
        assert "metapolicy unmet" in report.withdrawn["open_arg"]

    def test_unidentifiable_syscall_withdrawn(self):
        library = DynamicLibrary("libc")
        library.add(_undisassemblable_close())
        report = process_library(library)
        assert "weird_close" in report.withdrawn
        assert "unidentifiable" in report.withdrawn["weird_close"]

    def test_mixed_library(self):
        library = DynamicLibrary("libc")
        library.add(_static_open())
        library.add(_dynamic_open())
        library.add(_undisassemblable_close())
        report = process_library(library)
        assert report.protected == ["open_motd"]
        assert set(report.withdrawn) == {"open_arg", "weird_close"}
        assert abs(report.protected_fraction - 1 / 3) < 1e-9

    def test_lenient_metapolicy_keeps_dynamic_open(self):
        # With only call-site strictness, the dynamic open is fine.
        library = DynamicLibrary("libc")
        library.add(_dynamic_open())
        lenient = MetaPolicy(rules={"open": MetaRule("open", Strictness.CALL_SITE)})
        report = process_library(library, lenient)
        assert report.protected == ["open_arg"]
