"""AsmBuilder DSL tests."""

import pytest

from repro.asm import AsmBuilder
from repro.kernel import Kernel


class TestBuilder:
    def test_generates_parsable_source(self):
        builder = AsmBuilder("demo")
        builder.section(".text")
        builder.label("_start")
        builder.li("r1", 5)
        builder.halt()
        source = builder.source()
        assert "li r1, 5" in source
        assert "_start:" in source

    def test_assemble_and_run(self):
        builder = AsmBuilder("demo")
        builder.section(".text")
        builder.label("_start")
        builder.li("r1", 7)
        builder.halt()
        vm_result = Kernel().run(builder.assemble())
        assert vm_result.exit_status == 7

    def test_mem_operand_helper(self):
        builder = AsmBuilder()
        assert builder.mem("sp", 4) == "[sp+4]"
        assert builder.mem("r1", -8) == "[r1-8]"
        assert builder.mem("r2") == "[r2+0]"
        assert builder.mem("r2", "table") == "[r2+table]"

    def test_keyword_mnemonics(self):
        builder = AsmBuilder()
        builder.section(".text")
        builder.label("_start")
        builder.li("r1", 0b1100)
        builder.li("r2", 0b1010)
        builder.and_("r3", "r1", "r2")
        builder.or_("r4", "r1", "r2")
        builder.halt()
        binary = builder.assemble()
        assert binary.sections[".text"].size == 5 * 8

    def test_fresh_labels_distinct(self):
        builder = AsmBuilder()
        assert builder.fresh_label() != builder.fresh_label()

    def test_unknown_mnemonic_attribute_error(self):
        with pytest.raises(AttributeError):
            AsmBuilder().frobnicate("r1")

    def test_data_helpers(self):
        builder = AsmBuilder()
        builder.section(".text")
        builder.label("_start")
        builder.li("r9", "msg")
        builder.ldb("r1", builder.mem("r9"))
        builder.halt()
        builder.section(".rodata")
        builder.label("msg")
        builder.asciz("A")
        builder.word(1, 2)
        builder.byte(3, 4)
        builder.align(8)
        builder.space(4)
        result = Kernel().run(builder.assemble())
        assert result.exit_status == ord("A")

    def test_asciz_escapes(self):
        builder = AsmBuilder()
        builder.section(".text")
        builder.label("_start")
        builder.halt()
        builder.section(".rodata")
        builder.label("s")
        builder.asciz('with "quotes"\nand\tnewline')
        binary = builder.assemble()
        data = bytes(binary.sections[".rodata"].data)
        assert b'with "quotes"\nand\tnewline\x00' == data

    def test_metadata_defaults_to_name(self):
        builder = AsmBuilder("named")
        builder.section(".text")
        builder.label("_start")
        builder.halt()
        assert builder.assemble().metadata["program"] == "named"

    def test_bool_operand_rejected(self):
        builder = AsmBuilder()
        builder.section(".text")
        builder.label("_start")
        with pytest.raises(TypeError):
            builder.li("r1", True)
