"""Assembler tests: parsing, symbol/relocation emission, directives."""

import struct

import pytest

from repro.asm import AsmError, AsmSyntaxError, assemble, parse
from repro.binfmt import link
from repro.isa import INSTRUCTION_SIZE, Op, decode_instruction

HELLO = """
.equ SYS_write, 4
.section .text
.global _start
_start:
    li r0, SYS_write
    li r1, 1
    li r2, msg
    li r3, 6
    sys
    halt
.section .rodata
msg:
    .asciz "hello\\n"
"""


class TestParse:
    def test_label_and_instruction_same_line(self):
        stmts = parse("loop: addi r1, r1, 1")
        assert stmts[0].name == "loop"
        assert stmts[1].op == Op.ADDI

    def test_comments_stripped(self):
        stmts = parse("nop ; trailing\n# full line\nhalt")
        assert len(stmts) == 2

    def test_semicolon_inside_string_kept(self):
        stmts = parse('.asciz "a;b"')
        assert stmts[0].args[0] == b"a;b"

    def test_char_literal(self):
        stmts = parse("cmpi r1, 'a'")
        assert stmts[0].operands[1].addend == ord("a")

    def test_escape_in_string(self):
        stmts = parse('.asciz "a\\tb\\n"')
        assert stmts[0].args[0] == b"a\tb\n"

    def test_unknown_mnemonic(self):
        with pytest.raises(AsmSyntaxError):
            parse("frobnicate r1")

    def test_unknown_directive(self):
        with pytest.raises(AsmSyntaxError):
            parse(".frob 12")

    def test_memory_operand_forms(self):
        stmts = parse("ld r1, [sp+8]\nld r2, [sp-4]\nld r3, [r4]")
        assert stmts[0].operands[1].addend == 8
        assert stmts[1].operands[1].addend == -4
        assert stmts[2].operands[1].base == 4

    def test_symbolic_displacement(self):
        stmts = parse("ld r1, [r2+table]")
        assert stmts[0].operands[1].symbol == "table"


class TestAssemble:
    def test_hello_structure(self):
        binary = assemble(HELLO)
        text = binary.sections[".text"]
        assert text.size == 6 * INSTRUCTION_SIZE
        assert binary.symbols["msg"].section == ".rodata"
        assert binary.symbols["_start"].binding == "global"
        # exactly one relocation: the li r2, msg
        assert len(binary.relocations) == 1
        assert binary.relocations[0].symbol == "msg"
        assert binary.relocations[0].offset == 2 * INSTRUCTION_SIZE + 4

    def test_equ_resolution(self):
        binary = assemble(HELLO)
        first = decode_instruction(bytes(binary.sections[".text"].data), 0)
        assert first.op == Op.LI
        assert first.imm == 4

    def test_equ_chains(self):
        binary = assemble(
            ".equ A, 5\n.equ B, A+2\n.section .text\n_start: li r0, B\nhalt"
        )
        first = decode_instruction(bytes(binary.sections[".text"].data), 0)
        assert first.imm == 7

    def test_equ_forward_reference_rejected(self):
        with pytest.raises(AsmError):
            assemble(".equ B, A+1\n.equ A, 1\n.section .text\n_start: halt")

    def test_word_with_symbol_emits_relocation(self):
        binary = assemble(
            ".section .text\n_start: halt\n.section .data\nptr: .word _start"
        )
        relocs = binary.relocations_for(".data")
        assert 0 in relocs and relocs[0].symbol == "_start"

    def test_negative_immediate(self):
        binary = assemble(".section .text\n_start: addi sp, sp, -16\nhalt")
        first = decode_instruction(bytes(binary.sections[".text"].data), 0)
        assert first.imm == 0xFFFFFFF0

    def test_bss_space(self):
        binary = assemble(
            ".section .text\n_start: halt\n.section .bss\nbuf: .space 256"
        )
        assert binary.sections[".bss"].reserve == 256
        assert binary.symbols["buf"].offset == 0

    def test_data_in_bss_rejected(self):
        with pytest.raises(AsmError):
            assemble(".section .text\n_start: halt\n.section .bss\n.word 5")

    def test_instruction_in_data_rejected(self):
        with pytest.raises(AsmError):
            assemble(".section .data\n_start: nop")

    def test_align_pads(self):
        binary = assemble(
            ".section .text\n_start: halt\n"
            ".section .data\n.byte 1\n.align 8\nhere: .word 2"
        )
        assert binary.symbols["here"].offset == 8

    def test_duplicate_label_rejected(self):
        with pytest.raises(AsmError):
            assemble(".section .text\n_start: nop\n_start: halt")

    def test_wrong_operand_count(self):
        with pytest.raises(AsmError):
            assemble(".section .text\n_start: add r1, r2")

    def test_wrong_operand_kind(self):
        with pytest.raises(AsmError):
            assemble(".section .text\n_start: li 5, r1")

    def test_undefined_symbol_caught_at_validate(self):
        with pytest.raises(Exception):
            assemble(".section .text\n_start: jmp nowhere")

    def test_branch_relocation_round_trip_through_link(self):
        binary = assemble(
            ".section .text\n_start: jmp target\nnop\ntarget: halt"
        )
        image = link(binary)
        (imm,) = struct.unpack_from("<I", image.segment(".text").data, 4)
        assert imm == image.address_of("target")
        assert image.address_of("target") == image.entry + 2 * INSTRUCTION_SIZE

    def test_metadata_attached(self):
        binary = assemble(HELLO, metadata={"program": "hello"})
        assert binary.metadata["program"] == "hello"
