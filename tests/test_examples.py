"""The shipped examples must run clean (they are executable docs)."""

import runpy
import sys

import pytest

EXAMPLES = [
    "quickstart",
    "attack_demo",
    "extensions_tour",
    "protected_system",
    "multiprocess_server",
]


@pytest.mark.parametrize("name", EXAMPLES)
def test_example_runs(name, capsys, monkeypatch):
    monkeypatch.setattr(sys, "argv", [f"{name}.py"])
    runpy.run_path(f"examples/{name}.py", run_name="__main__")
    out = capsys.readouterr().out
    assert out.strip(), f"{name} produced no output"


@pytest.mark.slow
def test_policy_comparison_example(capsys, monkeypatch):
    monkeypatch.setattr(sys, "argv", ["policy_comparison.py"])
    runpy.run_path("examples/policy_comparison.py", run_name="__main__")
    out = capsys.readouterr().out
    assert "Table 1" in out
    assert "Table 2" in out


def test_quickstart_shows_fail_stop(capsys, monkeypatch):
    monkeypatch.setattr(sys, "argv", ["quickstart.py"])
    runpy.run_path("examples/quickstart.py", run_name="__main__")
    out = capsys.readouterr().out
    assert "killed: True" in out
    assert "call MAC mismatch" in out


def test_attack_demo_outcomes(capsys, monkeypatch):
    monkeypatch.setattr(sys, "argv", ["attack_demo.py"])
    runpy.run_path("examples/attack_demo.py", run_name="__main__")
    out = capsys.readouterr().out
    assert "6/7 attacks blocked" in out
