"""SEF container: sections, symbols, relocations, serialization."""

import pytest

from repro.binfmt import (
    BinaryFormatError,
    Relocation,
    SEC_READ,
    Section,
    SefBinary,
)
from repro.binfmt.symbols import BIND_GLOBAL


def _minimal_binary() -> SefBinary:
    binary = SefBinary()
    text = binary.get_or_create_section(".text")
    text.append(bytes(16))
    binary.define_symbol("_start", ".text", 0, BIND_GLOBAL)
    return binary


class TestSection:
    def test_named_flags(self):
        assert Section.named(".text").executable
        assert not Section.named(".rodata").writable
        assert Section.named(".data").writable

    def test_named_unknown_requires_flags(self):
        with pytest.raises(ValueError):
            Section.named(".mystery")

    def test_append_returns_offset(self):
        section = Section.named(".data")
        assert section.append(b"abc") == 0
        assert section.append(b"d") == 3
        assert section.size == 4

    def test_nobits_rejects_data(self):
        with pytest.raises(ValueError):
            Section(".bss", SEC_READ, data=bytearray(b"x"), nobits=True)

    def test_nobits_reserve(self):
        section = Section(".bss", SEC_READ, nobits=True)
        assert section.reserve_bytes(32) == 0
        assert section.reserve_bytes(8) == 32
        assert section.size == 40

    def test_nobits_append_rejected(self):
        section = Section(".bss", SEC_READ, nobits=True)
        with pytest.raises(ValueError):
            section.append(b"x")


class TestSefBinary:
    def test_duplicate_section_rejected(self):
        binary = _minimal_binary()
        with pytest.raises(BinaryFormatError):
            binary.add_section(Section.named(".text"))

    def test_duplicate_symbol_rejected(self):
        binary = _minimal_binary()
        with pytest.raises(BinaryFormatError):
            binary.define_symbol("_start", ".text", 8)

    def test_symbol_in_unknown_section_rejected(self):
        binary = _minimal_binary()
        with pytest.raises(BinaryFormatError):
            binary.define_symbol("x", ".nope", 0)

    def test_validate_missing_entry(self):
        binary = SefBinary()
        binary.get_or_create_section(".text").append(bytes(8))
        with pytest.raises(BinaryFormatError):
            binary.validate()

    def test_validate_symbol_outside_section(self):
        binary = _minimal_binary()
        binary.define_symbol("end", ".text", 999)
        with pytest.raises(BinaryFormatError):
            binary.validate()

    def test_validate_reloc_undefined_symbol(self):
        binary = _minimal_binary()
        binary.add_relocation(Relocation(".text", 4, "ghost"))
        with pytest.raises(BinaryFormatError):
            binary.validate()

    def test_validate_reloc_out_of_bounds(self):
        binary = _minimal_binary()
        binary.add_relocation(Relocation(".text", 14, "_start"))
        with pytest.raises(BinaryFormatError):
            binary.validate()

    def test_relocations_for(self):
        binary = _minimal_binary()
        binary.add_relocation(Relocation(".text", 4, "_start"))
        assert set(binary.relocations_for(".text")) == {4}
        assert binary.relocations_for(".data") == {}


class TestSerialization:
    def test_round_trip(self):
        binary = _minimal_binary()
        data_section = binary.get_or_create_section(".data")
        data_section.append(b"hello world\x00")
        binary.define_symbol("msg", ".data", 0)
        binary.add_relocation(Relocation(".text", 4, "msg", addend=2))
        binary.get_or_create_section(".bss", nobits=True).reserve_bytes(64)
        binary.metadata["program"] = "demo"
        binary.metadata["personality"] = "linux"

        restored = SefBinary.from_bytes(binary.to_bytes())
        assert restored.entry == "_start"
        assert restored.metadata == binary.metadata
        assert restored.sections[".data"].data == b"hello world\x00"
        assert restored.sections[".bss"].reserve == 64
        assert restored.symbols["msg"].section == ".data"
        assert restored.relocations[0].addend == 2
        assert restored.symbols["_start"].binding == BIND_GLOBAL

    def test_bad_magic(self):
        with pytest.raises(BinaryFormatError):
            SefBinary.from_bytes(b"ELF!" + bytes(32))

    def test_round_trip_is_stable(self):
        binary = _minimal_binary()
        first = binary.to_bytes()
        assert SefBinary.from_bytes(first).to_bytes() == first
