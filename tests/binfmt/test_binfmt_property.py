"""Property tests over the binary container: serialization fidelity."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.binfmt import Relocation, SefBinary
from repro.binfmt.symbols import BIND_GLOBAL, BIND_LOCAL

_NAME = st.text(
    alphabet=st.characters(whitelist_categories=("Ll",), max_codepoint=127),
    min_size=1,
    max_size=12,
)


@st.composite
def binaries(draw):
    binary = SefBinary()
    text = binary.get_or_create_section(".text")
    n_insns = draw(st.integers(min_value=1, max_value=8))
    text.append(bytes(8 * n_insns))
    binary.define_symbol("_start", ".text", 0, BIND_GLOBAL)

    data = binary.get_or_create_section(".data")
    blob = draw(st.binary(max_size=64))
    data.append(blob)

    names = draw(st.lists(_NAME, max_size=4, unique=True))
    for index, name in enumerate(names):
        if name == "_start":
            continue
        section = draw(st.sampled_from([".text", ".data"]))
        limit = binary.sections[section].size
        offset = draw(st.integers(min_value=0, max_value=max(0, limit)))
        binding = draw(st.sampled_from([BIND_LOCAL, BIND_GLOBAL]))
        binary.define_symbol(name, section, offset, binding)

    symbols = list(binary.symbols)
    n_relocs = draw(st.integers(min_value=0, max_value=3))
    for _ in range(n_relocs):
        target = draw(st.sampled_from(symbols))
        offset = draw(st.integers(min_value=0, max_value=8 * n_insns - 4))
        addend = draw(st.integers(min_value=-128, max_value=128))
        binary.add_relocation(Relocation(".text", offset, target, addend))

    metadata_keys = draw(st.lists(_NAME, max_size=3, unique=True))
    for key in metadata_keys:
        binary.metadata[key] = draw(_NAME)
    return binary


class TestSerializationProperties:
    @settings(max_examples=60, deadline=None)
    @given(binary=binaries())
    def test_round_trip_identity(self, binary):
        blob = binary.to_bytes()
        restored = SefBinary.from_bytes(blob)
        assert restored.to_bytes() == blob

    @settings(max_examples=60, deadline=None)
    @given(binary=binaries())
    def test_round_trip_preserves_structure(self, binary):
        restored = SefBinary.from_bytes(binary.to_bytes())
        assert restored.entry == binary.entry
        assert set(restored.sections) == set(binary.sections)
        assert restored.symbols == binary.symbols
        assert restored.relocations == binary.relocations
        assert restored.metadata == binary.metadata

    @settings(max_examples=40, deadline=None)
    @given(binary=binaries())
    def test_linking_is_deterministic(self, binary):
        from repro.binfmt import link

        first = link(binary)
        second = link(binary)
        assert first.symbol_addresses == second.symbol_addresses
        assert [s.data for s in first.segments] == [s.data for s in second.segments]
