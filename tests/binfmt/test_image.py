"""Linker tests: layout, relocation patching, symbol addresses."""

import struct

import pytest

from repro.binfmt import Relocation, SefBinary, link
from repro.binfmt.image import DEFAULT_BASE, PAGE_SIZE, assign_addresses


def _binary_with_reloc() -> SefBinary:
    binary = SefBinary()
    text = binary.get_or_create_section(".text")
    text.append(bytes(8))  # one placeholder instruction
    data = binary.get_or_create_section(".data")
    data.append(b"/etc/motd\x00")
    binary.define_symbol("_start", ".text", 0)
    binary.define_symbol("path", ".data", 0)
    binary.add_relocation(Relocation(".text", 4, "path", addend=0))
    return binary


class TestLayout:
    def test_sections_page_aligned(self):
        addresses = assign_addresses(_binary_with_reloc())
        assert addresses[".text"] == DEFAULT_BASE
        assert addresses[".data"] % PAGE_SIZE == 0
        assert addresses[".data"] > addresses[".text"]

    def test_custom_base(self):
        addresses = assign_addresses(_binary_with_reloc(), base=0x40000000)
        assert addresses[".text"] == 0x40000000

    def test_canonical_section_order(self):
        binary = _binary_with_reloc()
        binary.get_or_create_section(".rodata").append(b"x")
        binary.get_or_create_section(".bss", nobits=True).reserve_bytes(4)
        addresses = assign_addresses(binary)
        assert (
            addresses[".text"]
            < addresses[".rodata"]
            < addresses[".data"]
            < addresses[".bss"]
        )


class TestLink:
    def test_entry_and_symbols(self):
        image = link(_binary_with_reloc())
        assert image.entry == DEFAULT_BASE
        assert image.address_of("path") == image.segment(".data").vaddr

    def test_relocation_patched(self):
        image = link(_binary_with_reloc())
        text = image.segment(".text").data
        (patched,) = struct.unpack_from("<I", text, 4)
        assert patched == image.address_of("path")

    def test_relocation_with_addend(self):
        binary = _binary_with_reloc()
        binary.add_relocation(Relocation(".data", 0, "path", addend=5))
        image = link(binary)
        (patched,) = struct.unpack_from("<I", image.segment(".data").data, 0)
        assert patched == image.address_of("path") + 5

    def test_end_covers_nobits(self):
        binary = _binary_with_reloc()
        binary.get_or_create_section(".bss", nobits=True).reserve_bytes(128)
        image = link(binary)
        bss = image.segment(".bss")
        assert len(bss.data) == 0
        assert bss.size == 128
        assert image.end == bss.vaddr + 128

    def test_missing_symbol_lookup(self):
        image = link(_binary_with_reloc())
        with pytest.raises(KeyError):
            image.address_of("ghost")

    def test_metadata_carried(self):
        binary = _binary_with_reloc()
        binary.metadata["program"] = "demo"
        assert link(binary).metadata["program"] == "demo"
