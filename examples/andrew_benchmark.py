#!/usr/bin/env python3
"""The §4.3 Andrew-like multiprogram benchmark.

Runs the real mini-tool pipeline (mkdir, cp, chmod, cat, wc, ls, sort,
tar, untar, gzip, gunzip, mv, rm) against the simulated VFS twice —
once with PLTO-processed unauthenticated binaries, once with fully
authenticated binaries — and reports the overhead.  The paper measured
+0.96% (259.66s -> 262.14s) at ~12,000 syscalls per iteration.

Run:  python examples/andrew_benchmark.py [iterations]
"""

import sys

from repro.crypto import Key
from repro.workloads import AndrewBenchmark


def main() -> None:
    iterations = int(sys.argv[1]) if len(sys.argv) > 1 else 1
    key = Key.from_passphrase("andrew-demo", provider="fast-hmac")

    print(f"running {iterations} iteration(s) with original binaries...")
    original = AndrewBenchmark(key=key, iterations=iterations, authenticated=False).run()
    print(f"  cycles={original.cycles:,}  syscalls={original.syscalls:,}  "
          f"processes={original.processes}")
    if original.failures:
        print(f"  failures: {original.failures}")

    print(f"running {iterations} iteration(s) with authenticated binaries...")
    authenticated = AndrewBenchmark(key=key, iterations=iterations, authenticated=True).run()
    print(f"  cycles={authenticated.cycles:,}  syscalls={authenticated.syscalls:,}  "
          f"processes={authenticated.processes}")
    if authenticated.failures:
        print(f"  failures: {authenticated.failures}")

    overhead = 100.0 * (authenticated.cycles - original.cycles) / original.cycles
    print(f"\noverhead: {overhead:.2f}%   (paper: 0.96%)")
    print(f"syscalls per iteration: {authenticated.syscalls // iterations:,} "
          "(paper: ~12,000)")


if __name__ == "__main__":
    main()
