#!/usr/bin/env python3
"""ASC vs Systrace policies for bison (Tables 1 and 2, condensed).

Generates the ASC policy for the bison profile program by static
analysis on both OS personalities, trains a Systrace-style policy on
common-path runs, applies the fsread/fswrite hand edits, and prints
the per-syscall diff — reproducing the §4.2 findings:

- static analysis finds the rare-path calls training misses;
- the OpenBSD build routes mmap through __syscall (ASC constrains the
  indirection; Systrace sees the resolved mmap);
- OpenBSD's close is unidentifiable to the disassembler (reported and
  omitted from the ASC policy, observed at runtime by Systrace);
- the alias hand-edits admit unneeded calls (mkdir/rmdir/unlink/...).

Run:  python examples/policy_comparison.py
"""

from repro.analysis import format_table
from repro.installer import generate_policy_only
from repro.monitor import train_policy
from repro.workloads import build_profile_program


def main() -> None:
    print("building bison profile programs (linux & openbsd builds)...")
    linux = build_profile_program("bison", "linux")
    openbsd = build_profile_program("bison", "openbsd")

    asc_linux = generate_policy_only(linux).distinct_syscalls()
    policy_openbsd = generate_policy_only(openbsd)
    asc_openbsd = policy_openbsd.distinct_syscalls()

    print("training the Systrace baseline on common-path runs...")
    systrace = train_policy(openbsd, training_argvs=[["bison"], ["bison"]])

    print()
    print(format_table(
        ["program", "ASC (linux)", "ASC (openbsd)", "Systrace (openbsd)"],
        [["bison", len(asc_linux), len(asc_openbsd), len(systrace.allowed)]],
        title="Table 1 (bison row): distinct syscalls permitted",
    ))

    print(f"\nunidentifiable call sites on openbsd (the close stub): "
          f"{len(policy_openbsd.unidentified_sites)}")

    rows = []
    for name in sorted(asc_openbsd | systrace.allowed):
        in_asc = name in asc_openbsd
        in_st = name in systrace.allowed
        if in_asc != in_st:
            note = "(fsread/fswrite)" if name in systrace.via_alias else ""
            rows.append([
                name,
                "yes" if in_asc else "NO",
                ("yes " + note).strip() if in_st else "NO",
            ])
    print()
    print(format_table(
        ["syscall", "ASC", "Systrace"],
        rows,
        title="Table 2: bison policy differences (OpenBSD build)",
    ))
    print("\nASC-only rows are rare-path calls that training never saw;")
    print("Systrace-only rows are runtime observations (mmap via the")
    print("__syscall indirection, the undisassemblable close) and alias")
    print("hand-edits admitting unneeded calls.")


if __name__ == "__main__":
    main()
