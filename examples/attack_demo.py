#!/usr/bin/env python3
"""The §4.1 attack experiments, live.

The victim reads a file name into an undersized stack buffer and then
invokes /bin/ls — the paper's exact scenario.  Seven attacks are
mounted; the kernel converts each into a fail-stop (except the
deliberately *undefended* Frankenstein variant, which demonstrates why
§5.5's unique block identifiers exist).

Run:  python examples/attack_demo.py
"""

from repro.attacks import run_all_attacks
from repro.crypto import Key


def main() -> None:
    key = Key.generate()
    print("mounting the attack battery against the installed victim...\n")
    results = run_all_attacks(key)
    width = max(len(r.name) for r in results)
    for result in results:
        verdict = "BLOCKED" if result.blocked else "SUCCEEDED"
        print(f"{result.name.ljust(width)}  {verdict:9s}  {result.detail}")
        if result.kill_reason:
            print(f"{' ' * width}  kernel: {result.kill_reason}")
        if result.stdout:
            print(f"{' ' * width}  guest stdout: {result.stdout!r}")
        print()

    blocked = sum(1 for r in results if r.blocked)
    print(f"{blocked}/{len(results)} attacks blocked "
          "(the undefended Frankenstein run is *expected* to succeed; "
          "re-run with program ids to see the §5.5 defense engage)")


if __name__ == "__main__":
    main()
