#!/usr/bin/env python3
"""Quickstart: protect a program with authenticated system calls.

Walks the full paper pipeline on a tiny file-copying program:

1. assemble a relocatable SVM32 binary;
2. run the trusted installer (static analysis -> policies -> binary
   rewriting -> MAC signing);
3. execute under the simulated kernel, which checks every call;
4. show that a tampered binary is fail-stopped.

Run:  python examples/quickstart.py
"""

from repro import EnforcementMode, Kernel, Key, assemble, install

PROGRAM = """
.equ SYS_exit, 1
.equ SYS_read, 3
.equ SYS_write, 4
.equ SYS_open, 5
.equ SYS_close, 6

.section .text
.global _start
_start:
    ; fd = open("/etc/motd", O_RDONLY)
    li r1, path
    li r2, 0
    call sys_open
    mov r14, r0
    ; n = read(fd, buf, 512)
    mov r1, r14
    li r2, buf
    li r3, 512
    call sys_read
    mov r13, r0
    ; write(stdout, buf, n)
    li r1, 1
    li r2, buf
    mov r3, r13
    call sys_write
    ; close(fd); exit(0)
    mov r1, r14
    call sys_close
    li r1, 0
    call sys_exit

; --- libc-style syscall stubs (the installer inlines these) ---
sys_open:
    li r0, SYS_open
    sys
    ret
sys_read:
    li r0, SYS_read
    sys
    ret
sys_write:
    li r0, SYS_write
    sys
    ret
sys_close:
    li r0, SYS_close
    sys
    ret
sys_exit:
    li r0, SYS_exit
    sys
    ret

.section .rodata
path:
    .asciz "/etc/motd"
.section .bss
buf:
    .space 512
"""


def main() -> None:
    # The machine key: shared by the trusted installer and the kernel,
    # never accessible to applications.
    key = Key.generate()

    print("== 1. assemble ==")
    binary = assemble(PROGRAM, metadata={"program": "quickstart"})
    print(f"sections: {sorted(binary.sections)}  "
          f"text bytes: {binary.sections['.text'].size}")

    print("\n== 2. install (analyze + rewrite + sign) ==")
    installed = install(binary, key)
    print(f"call sites rewritten: {installed.sites_rewritten}")
    print(f"stubs inlined: {', '.join(installed.inlined_stubs)}")
    print("\ngenerated policies (the §3.1 textual form):")
    for site in sorted(installed.policy.sites):
        print(installed.policy.sites[site].render())
        print()

    print("== 3. run under the checking kernel ==")
    kernel = Kernel(key=key, mode=EnforcementMode.ENFORCE)
    kernel.vfs.write_file("/etc/motd", b"Welcome to SVM32 / authenticated syscalls!\n")
    result = kernel.run(installed.binary)
    print(f"exit status: {result.exit_status}   killed: {result.killed}")
    print(f"stdout: {result.stdout!r}")
    print(f"syscalls checked: {result.syscalls}   cycles: {result.cycles}")

    print("\n== 4. tamper with the policy -> fail-stop ==")
    tampered = install(binary, key)
    authdata = tampered.binary.section(".authdata")
    authdata.data[20] ^= 0xFF  # flip one MAC byte
    result = Kernel(key=key).run(tampered.binary)
    print(f"killed: {result.killed}   reason: {result.kill_reason}")


if __name__ == "__main__":
    main()
