#!/usr/bin/env python3
"""Tour of the §5 policy extensions.

1. Argument patterns with proof hints (§5.1): the application proves
   the match; the kernel verifies with one linear scan.
2. Metapolicies and policy templates (§5.2): what *must be* protected
   vs what static analysis *can* protect; the administrator fills the
   gap, and dynamic libraries are triaged under the machine metapolicy.
3. Capability tracking (§5.3): fd arguments must descend from permitted
   producing call sites; state can live in untrusted memory via an
   authenticated dictionary.
4. File-name normalization (§5.4): symlink races vs normalized names.

Run:  python examples/extensions_tour.py
"""

from repro.installer.dynlib import DynamicLibrary, LibraryFunction, process_library
from repro.kernel import Kernel
from repro.policy import (
    CapabilityTable,
    MetaPolicy,
    Pattern,
    derive_hint,
    match_with_hint,
)
from repro.policy.capability import AuthenticatedDictionary
from repro.policy.normalize import check_normalized
from repro.crypto import AesCmac
from repro.workloads.tools import build_tool


def patterns_demo() -> None:
    print("== §5.1 argument patterns with proof hints ==")
    pattern = Pattern.parse("/tmp/{foo,bar}*baz")
    argument = b"/tmp/foofoobaz"
    hint = derive_hint(pattern, argument)  # the application's job
    print(f"pattern  : {pattern.source}")
    print(f"argument : {argument.decode()}")
    print(f"hint     : {hint}  (paper's worked example: (0, 3))")
    print(f"kernel verify with hint      : {match_with_hint(pattern, argument, hint)}")
    print(f"kernel verify with bad hint  : {match_with_hint(pattern, argument, (1, 3))}")
    print(f"non-matching argument        : "
          f"{derive_hint(pattern, b'/etc/passwd')}")
    print()


def metapolicy_demo() -> None:
    print("== §5.2 metapolicies, templates, dynamic libraries ==")
    metapolicy = MetaPolicy.high_threat_default()
    rule = metapolicy.rule_for("execve")
    print(f"execve rule: strictness={rule.strictness.name}")

    library = DynamicLibrary(name="libdemo")
    for tool in ("cat", "rm"):
        library.add(LibraryFunction(name=tool, binary=build_tool(tool)))
    report = process_library(library, metapolicy)
    print(f"library triage: protected={report.protected} "
          f"withdrawn={list(report.withdrawn)}")
    for name, reason in report.withdrawn.items():
        print(f"  {name}: {reason[:90]}")
    print()


def capability_demo() -> None:
    print("== §5.3 capability tracking ==")
    table = CapabilityTable()
    table.grant(site_block=7, fd=3)   # open at block 7 returned fd 3
    table.grant(site_block=9, fd=4)   # a different open site
    print(f"fd 3 allowed for a reader constrained to site 7: "
          f"{table.check(3, frozenset({7}))}")
    print(f"fd 4 allowed for the same reader: {table.check(4, frozenset({7}))}")
    table.revoke(3)
    print(f"fd 3 after close: {table.check(3, frozenset({7}))}")

    print("authenticated dictionary (state in untrusted memory):")
    auth_dict = AuthenticatedDictionary(provider=AesCmac(bytes(16)))
    auth_dict.add(3)
    snapshot = (auth_dict.contents, auth_dict.mac)
    auth_dict.remove(3)
    auth_dict.contents, auth_dict.mac = snapshot  # replay a stale state
    try:
        auth_dict.contains(3)
        print("  replay went UNDETECTED (bug!)")
    except Exception as err:
        print(f"  replay detected: {err}")
    print()


def normalization_demo() -> None:
    print("== §5.4 file-name normalization ==")
    kernel = Kernel()
    kernel.vfs.write_file("/etc/passwd", b"root:x:0:0\n")
    # At install time /tmp/foo is (or will be) an ordinary temp file,
    # so the policy's normalized name is the literal path.
    policy_name = "/tmp/foo"
    print(f"policy permits open of normalized name {policy_name!r}")
    # The attacker plants a symlink before the victim's open.
    kernel.vfs.symlink("/etc/passwd", "/tmp/foo")
    naive_match = "/tmp/foo" == policy_name
    observed = kernel.vfs.normalize("/tmp/foo")
    print(f"naive string compare accepts the open: {naive_match} "
          "(would overwrite /etc/passwd)")
    print(f"normalized('/tmp/foo') now resolves to {observed!r}")
    print(f"normalized check accepts the open: "
          f"{observed == policy_name}  <- the race is closed")
    assert not check_normalized(kernel.vfs, "/tmp/foo", "/tmp/fooX")


def main() -> None:
    patterns_demo()
    metapolicy_demo()
    capability_demo()
    normalization_demo()


if __name__ == "__main__":
    main()
