#!/usr/bin/env python3
"""Multiprogramming, live: a pipe-fed worker pool plus a blocked
cross-process attack.

Part 1 runs the multi-process server workload: a master forks four
workers, feeds sixteen requests round-robin through kernel pipes,
closes the write ends (EOF), and reaps every worker with wait4.  The
preemptive scheduler timeslices all five processes; the run is fully
deterministic, and identical under either execution engine.

Part 2 mounts the cross-process replay attack: three instances of one
installed program run side by side, and at a context switch the
attacker copies a sibling's live lastBlock/lbMAC into the second
instance.  The per-process auth counter — the kernel-resident nonce of
the §3.2 online memory checker — makes the transplanted state verify
against the wrong nonce: that process alone is fail-stopped while its
siblings run to completion.

Run:  python examples/multiprocess_server.py
"""

from repro.attacks import cross_process_replay_attack
from repro.crypto import Key
from repro.kernel import Kernel
from repro.workloads.multiproc import build_server

WORKERS = 4
REQUESTS = 16


def main() -> None:
    print(f"-- part 1: {WORKERS}-worker pipe-fed server, preemptive "
          "round-robin --\n")
    kernel = Kernel()
    multi = kernel.run_many(
        [build_server(workers=WORKERS, requests=REQUESTS)], timeslice=500
    )
    master = multi.results[0]
    print(f"master exit status: {master.exit_status} "
          f"(0 = every request accounted for)")
    tasks = multi.scheduler.tasks
    master_pid = min(tasks)
    for pid, task in sorted(tasks.items()):
        role = "master" if pid == master_pid else "worker"
        switches = kernel.metrics.get(f"sched.switches.pid{pid}")
        print(f"  pid {pid} ({role}): exit={task.exit_status} "
              f"handled={len(task.process.stdout) // 8} records, "
              f"switched in {switches}x")
    print(f"context switches: {kernel.metrics.get('sched.context_switches')}, "
          f"preemptions: {kernel.metrics.get('sched.preemptions')}, "
          f"blocked waits: {kernel.metrics.get('sched.blocks')}, "
          f"forks: {kernel.metrics.get('sched.forks')}")

    print("\n-- part 2: cross-process lastBlock/lbMAC replay --\n")
    result = cross_process_replay_attack(Key.generate())
    verdict = "BLOCKED" if result.blocked else "SUCCEEDED"
    print(f"{result.name}: {verdict}")
    print(f"  {result.detail}")
    print(f"  kernel: {result.kill_reason}")
    print("  (the corrupted sibling was fail-stopped; the donor and the "
          "bystander ran to completion)")


if __name__ == "__main__":
    main()
