#!/usr/bin/env python3
"""A fully protected system (§3.3).

"The system as a whole is protected once all binaries that run in user
space have been transformed to use authenticated system calls by the
installer."

This example builds that end state: a guest shell plus a toolbox, all
installed with per-program ids, registered in /bin, and run under an
*enforcing* kernel (unauthenticated binaries cannot even be exec'd).
A legacy (unauthenticated) binary is then dropped into /bin to show the
kernel refusing it.

Run:  python examples/protected_system.py
"""

from repro import EnforcementMode, InstallerOptions, Kernel, Key, install
from repro.workloads.tools import build_tool

TOOLS = ("sh", "cat", "wc", "sort", "mkdir", "cp", "ls")

SCRIPT = b"""\
/bin/mkdir /tmp/work
/bin/cp /etc/motd /tmp/work/copy.txt
/bin/cat /tmp/work/copy.txt
/bin/wc /tmp/work/copy.txt
/bin/sort /tmp/work/copy.txt
/bin/ls /tmp/work
/bin/legacy
"""


def main() -> None:
    key = Key.generate()
    kernel = Kernel(key=key, mode=EnforcementMode.ENFORCE)
    kernel.vfs.write_file("/etc/motd", b"zebra\napple\nmango\n")

    print("installing the toolchain (every binary authenticated)...")
    shell = None
    for program_id, name in enumerate(TOOLS, start=1):
        installed = install(
            build_tool(name), key, InstallerOptions(program_id=program_id)
        )
        kernel.register_binary(f"/bin/{name}", installed.binary)
        if name == "sh":
            shell = installed
        print(f"  /bin/{name}: {installed.sites_rewritten} sites, "
              f"program id {program_id}")

    # A legacy binary that was never run through the installer.
    kernel.register_binary("/bin/legacy", build_tool("cat"))

    print("\nrunning the shell script under the enforcing kernel:")
    print("-" * 50)
    result = kernel.run(shell.binary, argv=["sh"], stdin=SCRIPT)
    print(result.stdout.decode(), end="")
    print("-" * 50)
    print(f"shell exit: {result.exit_status}  killed: {result.killed}")

    blocked = [e for e in kernel.audit.events if e.kind == "blocked"]
    print(f"\naudit log: {len(blocked)} blocked exec(s)")
    for event in blocked:
        print(f"  {event.render()}")
    print("\nthe last script line (ERR) was /bin/legacy: the enforcing "
          "kernel refuses to exec an unauthenticated binary.")


if __name__ == "__main__":
    main()
