"""AsmBuilder: a programmatic assembly-generation DSL.

The workload corpus (:mod:`repro.workloads`) synthesizes benchmark
programs in Python; this builder renders them to assembly text so the
result is always inspectable and goes through the same parser and
assembler as hand-written programs.

Example::

    b = AsmBuilder("hello")
    b.section(".text")
    b.global_("_start")
    b.label("_start")
    b.li("r0", "SYS_write")
    b.li("r1", 1)
    b.li("r2", "msg")
    b.li("r3", 13)
    b.sys()
    b.halt()
    b.section(".rodata")
    b.label("msg")
    b.asciz("Hello, world\\n")
    binary = b.assemble()
"""

from __future__ import annotations

from typing import Optional, Union

from repro.asm.assembler import assemble
from repro.binfmt import SefBinary
from repro.isa.opcodes import MNEMONIC_TO_OP

Operand = Union[int, str]


def _render(operand: Operand) -> str:
    if isinstance(operand, bool):
        raise TypeError("bool is not a valid operand")
    if isinstance(operand, int):
        return str(operand)
    return operand


class AsmBuilder:
    """Accumulates assembly lines and renders/assembles them."""

    def __init__(self, name: str = "program"):
        self.name = name
        self._lines: list[str] = []
        self._label_counter = 0

    # -- structural ----------------------------------------------------

    def raw(self, line: str) -> "AsmBuilder":
        self._lines.append(line)
        return self

    def comment(self, text: str) -> "AsmBuilder":
        self._lines.append(f"    ; {text}")
        return self

    def section(self, name: str) -> "AsmBuilder":
        self._lines.append(f".section {name}")
        return self

    def global_(self, name: str) -> "AsmBuilder":
        self._lines.append(f".global {name}")
        return self

    def label(self, name: str) -> "AsmBuilder":
        self._lines.append(f"{name}:")
        return self

    def fresh_label(self, stem: str = "L") -> str:
        """Generate a unique local label name (not yet placed)."""
        self._label_counter += 1
        return f".{stem}{self._label_counter}"

    def equ(self, name: str, value: int) -> "AsmBuilder":
        self._lines.append(f".equ {name}, {value}")
        return self

    # -- data ----------------------------------------------------------

    def asciz(self, text: str) -> "AsmBuilder":
        escaped = (
            text.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")
            .replace("\t", "\\t").replace("\r", "\\r").replace("\0", "\\0")
        )
        self._lines.append(f'    .asciz "{escaped}"')
        return self

    def word(self, *values: Operand) -> "AsmBuilder":
        rendered = ", ".join(_render(v) for v in values)
        self._lines.append(f"    .word {rendered}")
        return self

    def byte(self, *values: int) -> "AsmBuilder":
        rendered = ", ".join(str(v) for v in values)
        self._lines.append(f"    .byte {rendered}")
        return self

    def space(self, count: int) -> "AsmBuilder":
        self._lines.append(f"    .space {count}")
        return self

    def align(self, boundary: int) -> "AsmBuilder":
        self._lines.append(f"    .align {boundary}")
        return self

    # -- instructions (generated generically via __getattr__) -----------

    def insn(self, mnemonic: str, *operands: Operand) -> "AsmBuilder":
        rendered = ", ".join(_render(op) for op in operands)
        self._lines.append(f"    {mnemonic} {rendered}".rstrip())
        return self

    def __getattr__(self, name: str):
        mnemonic = name.rstrip("_")  # and_, or_ for keywords
        if mnemonic in MNEMONIC_TO_OP:
            def emit(*operands: Operand) -> "AsmBuilder":
                return self.insn(mnemonic, *operands)

            return emit
        raise AttributeError(name)

    def mem(self, base: str, disp: Union[int, str] = 0) -> str:
        """Render a memory operand: ``mem('sp', 4)`` -> ``[sp+4]``."""
        if isinstance(disp, int) and disp < 0:
            return f"[{base}-{-disp}]"
        return f"[{base}+{disp}]"

    # -- output ---------------------------------------------------------

    def source(self) -> str:
        return "\n".join(self._lines) + "\n"

    def assemble(
        self, entry: str = "_start", metadata: Optional[dict] = None
    ) -> SefBinary:
        meta = {"program": self.name}
        if metadata:
            meta.update(metadata)
        return assemble(self.source(), entry=entry, metadata=meta)
