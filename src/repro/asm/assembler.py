"""Two-pass assembler: statements -> relocatable SEF binary.

Pass 1 pre-scans ``.equ`` constant definitions; pass 2 walks the
statements, appending encoded instructions and data to the current
section, defining symbols at label sites, and emitting a relocation for
every symbolic immediate.  Nothing is resolved to an absolute address
here — that is the linker's job (:func:`repro.binfmt.link`) — which is
precisely what lets the installer rewrite code later.
"""

from __future__ import annotations

import struct
from typing import Optional

from repro.asm.parser import (
    DirectiveStmt,
    ImmOperand,
    InstructionStmt,
    LabelStmt,
    MemOperand,
    RegOperand,
    Statement,
    parse,
)
from repro.binfmt import Relocation, Section, SefBinary
from repro.binfmt.symbols import BIND_GLOBAL, BIND_LOCAL
from repro.isa import Instruction, SymbolRef, encode_instruction
from repro.isa.encoding import IMM_OFFSET
from repro.isa.opcodes import OPCODE_INFO, OperandKind


class AsmError(ValueError):
    """Raised for semantic assembly errors (bad operands, redefinitions)."""


def _collect_equs(statements: list[Statement]) -> dict[str, int]:
    equs: dict[str, int] = {}
    for stmt in statements:
        if isinstance(stmt, DirectiveStmt) and stmt.name == ".equ":
            name, value = stmt.args
            if name in equs:
                raise AsmError(f"line {stmt.line_no}: duplicate .equ {name!r}")
            if value.symbol is not None:
                if value.symbol not in equs:
                    raise AsmError(
                        f"line {stmt.line_no}: .equ {name!r} references "
                        f"undefined constant {value.symbol!r}"
                    )
                equs[name] = equs[value.symbol] + value.addend
            else:
                equs[name] = value.addend
    return equs


class _Assembler:
    def __init__(self, statements: list[Statement], entry: str):
        self._statements = statements
        self._equs = _collect_equs(statements)
        self._binary = SefBinary(entry=entry)
        self._globals: set[str] = set()
        self._pending_symbols: dict[str, tuple[str, int]] = {}
        self._section: Optional[Section] = None

    def run(self) -> SefBinary:
        self._switch_section(".text")
        for stmt in self._statements:
            if isinstance(stmt, LabelStmt):
                self._define_label(stmt)
            elif isinstance(stmt, DirectiveStmt):
                self._directive(stmt)
            else:
                self._instruction(stmt)
        for name, (section, offset) in self._pending_symbols.items():
            binding = BIND_GLOBAL if name in self._globals else BIND_LOCAL
            self._binary.define_symbol(name, section, offset, binding)
        self._binary.validate()
        return self._binary

    # -- helpers -------------------------------------------------------

    def _switch_section(self, name: str) -> None:
        if name == ".bss":
            self._section = self._binary.get_or_create_section(name, nobits=True)
        else:
            self._section = self._binary.get_or_create_section(name)

    def _cursor(self) -> int:
        assert self._section is not None
        return self._section.size

    def _define_label(self, stmt: LabelStmt) -> None:
        if stmt.name in self._pending_symbols or stmt.name in self._equs:
            raise AsmError(f"line {stmt.line_no}: duplicate label {stmt.name!r}")
        assert self._section is not None
        self._pending_symbols[stmt.name] = (self._section.name, self._cursor())

    def _resolve_imm(self, operand, line_no: int):
        """Return (concrete_value, symbol_ref_or_None)."""
        if operand.symbol is None:
            return operand.addend, None
        if operand.symbol in self._equs:
            return self._equs[operand.symbol] + operand.addend, None
        return 0, SymbolRef(operand.symbol, operand.addend)

    def _directive(self, stmt: DirectiveStmt) -> None:
        assert self._section is not None
        if stmt.name == ".section":
            self._switch_section(stmt.args[0])
        elif stmt.name == ".global":
            self._globals.add(stmt.args[0])
        elif stmt.name == ".equ":
            pass  # handled in pass 1
        elif stmt.name == ".asciz":
            self._append_data(stmt.args[0] + b"\x00", stmt.line_no)
        elif stmt.name == ".ascii":
            self._append_data(stmt.args[0], stmt.line_no)
        elif stmt.name == ".byte":
            for value in stmt.args:
                concrete, ref = self._resolve_imm(value, stmt.line_no)
                if ref is not None:
                    raise AsmError(
                        f"line {stmt.line_no}: .byte cannot hold a symbol address"
                    )
                self._append_data(struct.pack("<B", concrete & 0xFF), stmt.line_no)
        elif stmt.name == ".word":
            for value in stmt.args:
                concrete, ref = self._resolve_imm(value, stmt.line_no)
                offset = self._cursor()
                self._append_data(struct.pack("<I", concrete & 0xFFFFFFFF), stmt.line_no)
                if ref is not None:
                    self._binary.add_relocation(
                        Relocation(self._section.name, offset, ref.symbol, ref.addend)
                    )
        elif stmt.name == ".space":
            count = stmt.args[0]
            if self._section.nobits:
                self._section.reserve_bytes(count)
            else:
                self._append_data(bytes(count), stmt.line_no)
        elif stmt.name == ".align":
            align = stmt.args[0]
            if align <= 0 or align & (align - 1):
                raise AsmError(f"line {stmt.line_no}: alignment must be a power of 2")
            padding = (-self._cursor()) % align
            if padding:
                if self._section.nobits:
                    self._section.reserve_bytes(padding)
                else:
                    self._append_data(bytes(padding), stmt.line_no)
        else:  # pragma: no cover - parser rejects unknown directives
            raise AsmError(f"line {stmt.line_no}: unknown directive {stmt.name}")

    def _append_data(self, blob: bytes, line_no: int) -> None:
        assert self._section is not None
        if self._section.nobits:
            raise AsmError(f"line {line_no}: cannot emit data into .bss")
        self._section.append(blob)

    def _instruction(self, stmt: InstructionStmt) -> None:
        assert self._section is not None
        if not self._section.executable:
            raise AsmError(
                f"line {stmt.line_no}: instruction in non-executable "
                f"section {self._section.name!r}"
            )
        info = OPCODE_INFO[stmt.op]
        if len(stmt.operands) != len(info.operands):
            raise AsmError(
                f"line {stmt.line_no}: {info.mnemonic} expects "
                f"{len(info.operands)} operands, got {len(stmt.operands)}"
            )
        regs: list[int] = []
        imm = None
        symbol_ref: Optional[SymbolRef] = None
        for kind, operand in zip(info.operands, stmt.operands):
            if kind is OperandKind.REG:
                if not isinstance(operand, RegOperand):
                    raise AsmError(
                        f"line {stmt.line_no}: {info.mnemonic} expects a register"
                    )
                regs.append(operand.number)
            elif kind is OperandKind.IMM:
                if not isinstance(operand, ImmOperand):
                    raise AsmError(
                        f"line {stmt.line_no}: {info.mnemonic} expects an immediate"
                    )
                imm, symbol_ref = self._resolve_imm(operand, stmt.line_no)
            else:  # MEM
                if not isinstance(operand, MemOperand):
                    raise AsmError(
                        f"line {stmt.line_no}: {info.mnemonic} expects a "
                        f"memory operand [reg+disp]"
                    )
                regs.append(operand.base)
                imm, symbol_ref = self._resolve_imm(
                    ImmOperand(operand.symbol, operand.addend), stmt.line_no
                )
        offset = self._cursor()
        instruction = Instruction(stmt.op, tuple(regs), imm)
        self._section.append(encode_instruction(instruction))
        if symbol_ref is not None:
            self._binary.add_relocation(
                Relocation(
                    self._section.name,
                    offset + IMM_OFFSET,
                    symbol_ref.symbol,
                    symbol_ref.addend,
                )
            )


def assemble(source: str, entry: str = "_start", metadata: Optional[dict] = None) -> SefBinary:
    """Assemble SVM32 source text into a relocatable SEF binary."""
    statements = parse(source)
    binary = _Assembler(statements, entry).run()
    if metadata:
        binary.metadata.update(metadata)
    return binary
