"""Assembler for SVM32.

Two front-ends share one code path:

- :func:`assemble` -- a classic two-pass text assembler producing a
  relocatable :class:`repro.binfmt.SefBinary`;
- :class:`AsmBuilder` -- a programmatic DSL used by
  :mod:`repro.workloads` to synthesize benchmark programs; it renders
  to assembly text and runs the text assembler, so everything that can
  be built can also be read.
"""

from repro.asm.parser import AsmSyntaxError, parse
from repro.asm.assembler import AsmError, assemble
from repro.asm.builder import AsmBuilder

__all__ = ["AsmBuilder", "AsmError", "AsmSyntaxError", "assemble", "parse"]
