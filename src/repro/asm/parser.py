"""Parsing assembly text into statement objects.

The grammar is line-oriented.  A line may hold a label definition
(``name:``), a directive (``.section``, ``.global``, ``.equ``,
``.asciz``, ``.ascii``, ``.byte``, ``.word``, ``.space``, ``.align``),
or an instruction (mnemonic plus comma-separated operands).  ``;`` and
``#`` introduce comments.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Optional, Union

from repro.isa.opcodes import MNEMONIC_TO_OP, Op
from repro.isa.registers import register_number


class AsmSyntaxError(ValueError):
    """Raised with a line number when assembly text cannot be parsed."""

    def __init__(self, line_no: int, message: str):
        super().__init__(f"line {line_no}: {message}")
        self.line_no = line_no


@dataclass(frozen=True)
class RegOperand:
    number: int


@dataclass(frozen=True)
class ImmOperand:
    """An immediate: constant and/or symbol+addend (``msg+4``, ``12``)."""

    symbol: Optional[str]
    addend: int = 0


@dataclass(frozen=True)
class MemOperand:
    """A ``[reg+disp]`` memory reference; disp may be symbolic."""

    base: int
    symbol: Optional[str]
    addend: int = 0


Operand = Union[RegOperand, ImmOperand, MemOperand]


@dataclass(frozen=True)
class LabelStmt:
    name: str
    line_no: int


@dataclass(frozen=True)
class DirectiveStmt:
    name: str
    args: tuple
    line_no: int


@dataclass(frozen=True)
class InstructionStmt:
    op: Op
    operands: tuple[Operand, ...]
    line_no: int


Statement = Union[LabelStmt, DirectiveStmt, InstructionStmt]

_LABEL_RE = re.compile(r"^([.A-Za-z_][.\w$]*):\s*(.*)$")
_SYMBOL_RE = re.compile(r"^[.A-Za-z_][.\w$]*$")
_CHAR_RE = re.compile(r"^'(\\?.)'$")

_ESCAPES = {"n": "\n", "t": "\t", "0": "\0", "\\": "\\", "'": "'", '"': '"', "r": "\r"}


def _strip_comment(line: str) -> str:
    out = []
    in_string = False
    i = 0
    while i < len(line):
        ch = line[i]
        if ch == '"' and (i == 0 or line[i - 1] != "\\"):
            in_string = not in_string
        if not in_string and ch in ";#":
            break
        out.append(ch)
        i += 1
    return "".join(out).strip()


def _parse_int(token: str, line_no: int) -> int:
    token = token.strip()
    match = _CHAR_RE.match(token)
    if match:
        ch = match.group(1)
        if ch.startswith("\\"):
            try:
                return ord(_ESCAPES[ch[1]])
            except KeyError:
                raise AsmSyntaxError(line_no, f"bad character escape {token!r}") from None
        return ord(ch)
    try:
        return int(token, 0)
    except ValueError:
        raise AsmSyntaxError(line_no, f"bad integer {token!r}") from None


def parse_value(token: str, line_no: int) -> ImmOperand:
    """Parse ``123``, ``0x10``, ``'a'``, ``sym``, ``sym+4``, ``sym-4``."""
    token = token.strip()
    if not token:
        raise AsmSyntaxError(line_no, "empty operand")
    # symbol with addend?
    for sign in ("+", "-"):
        idx = token.rfind(sign)
        if idx > 0:
            head, tail = token[:idx].strip(), token[idx + 1 :].strip()
            if _SYMBOL_RE.fullmatch(head) and tail and not _SYMBOL_RE.fullmatch(tail):
                addend = _parse_int(tail, line_no)
                return ImmOperand(head, addend if sign == "+" else -addend)
    if _SYMBOL_RE.fullmatch(token) and not token.lstrip("-").isdigit():
        return ImmOperand(token, 0)
    return ImmOperand(None, _parse_int(token, line_no))


def _parse_operand(token: str, line_no: int) -> Operand:
    token = token.strip()
    if token.startswith("["):
        if not token.endswith("]"):
            raise AsmSyntaxError(line_no, f"unterminated memory operand {token!r}")
        inner = token[1:-1].strip()
        # [reg], [reg+disp], [reg-disp]
        for sign in ("+", "-"):
            idx = inner.find(sign)
            if idx > 0:
                base = register_number(inner[:idx].strip())
                disp = parse_value(inner[idx + 1 :].strip(), line_no)
                if sign == "-":
                    if disp.symbol is not None:
                        raise AsmSyntaxError(line_no, "cannot negate a symbol")
                    disp = ImmOperand(None, -disp.addend)
                return MemOperand(base, disp.symbol, disp.addend)
        return MemOperand(register_number(inner), None, 0)
    try:
        return RegOperand(register_number(token))
    except ValueError:
        pass
    return _parse_operand_imm(token, line_no)


def _parse_operand_imm(token: str, line_no: int) -> ImmOperand:
    return parse_value(token, line_no)


def _split_operands(text: str, line_no: int) -> list[str]:
    """Split on commas that are not inside quotes."""
    parts, current, in_string = [], [], False
    for ch in text:
        if ch == '"':
            in_string = not in_string
        if ch == "," and not in_string:
            parts.append("".join(current))
            current = []
        else:
            current.append(ch)
    if current:
        parts.append("".join(current))
    parts = [p.strip() for p in parts]
    if any(not p for p in parts):
        raise AsmSyntaxError(line_no, "empty operand in list")
    return parts


def _parse_string_literal(token: str, line_no: int) -> bytes:
    token = token.strip()
    if len(token) < 2 or token[0] != '"' or token[-1] != '"':
        raise AsmSyntaxError(line_no, f"expected string literal, got {token!r}")
    body = token[1:-1]
    out = bytearray()
    i = 0
    while i < len(body):
        ch = body[i]
        if ch == "\\":
            i += 1
            if i >= len(body):
                raise AsmSyntaxError(line_no, "dangling escape in string")
            try:
                out.append(ord(_ESCAPES[body[i]]))
            except KeyError:
                raise AsmSyntaxError(line_no, f"bad escape \\{body[i]}") from None
        else:
            out.append(ord(ch))
        i += 1
    return bytes(out)


def _parse_directive(name: str, rest: str, line_no: int) -> DirectiveStmt:
    name = name.lower()
    if name in (".section", ".global"):
        token = rest.strip()
        if not token:
            raise AsmSyntaxError(line_no, f"{name} requires an argument")
        return DirectiveStmt(name, (token,), line_no)
    if name == ".equ":
        parts = _split_operands(rest, line_no)
        if len(parts) != 2:
            raise AsmSyntaxError(line_no, ".equ requires name, value")
        return DirectiveStmt(name, (parts[0], parse_value(parts[1], line_no)), line_no)
    if name in (".asciz", ".ascii"):
        return DirectiveStmt(name, (_parse_string_literal(rest, line_no),), line_no)
    if name in (".byte", ".word"):
        values = tuple(
            parse_value(p, line_no) for p in _split_operands(rest, line_no)
        )
        return DirectiveStmt(name, values, line_no)
    if name in (".space", ".align"):
        return DirectiveStmt(name, (_parse_int(rest, line_no),), line_no)
    raise AsmSyntaxError(line_no, f"unknown directive {name}")


def parse(text: str) -> list[Statement]:
    """Parse assembly text into a list of statements."""
    statements: list[Statement] = []
    for line_no, raw in enumerate(text.splitlines(), start=1):
        line = _strip_comment(raw)
        while line:
            match = _LABEL_RE.match(line)
            if not match:
                break
            statements.append(LabelStmt(match.group(1), line_no))
            line = match.group(2).strip()
        if not line:
            continue
        if line.startswith("."):
            parts = line.split(None, 1)
            statements.append(
                _parse_directive(parts[0], parts[1] if len(parts) > 1 else "", line_no)
            )
            continue
        parts = line.split(None, 1)
        mnemonic = parts[0].lower()
        op = MNEMONIC_TO_OP.get(mnemonic)
        if op is None:
            raise AsmSyntaxError(line_no, f"unknown mnemonic {mnemonic!r}")
        operand_text = parts[1] if len(parts) > 1 else ""
        operands = tuple(
            _parse_operand(tok, line_no)
            for tok in (_split_operands(operand_text, line_no) if operand_text else [])
        )
        statements.append(InstructionStmt(op, operands, line_no))
    return statements


