"""Victim programs for the attack experiments."""

from __future__ import annotations

from repro.asm import assemble
from repro.binfmt import SefBinary
from repro.workloads.runtime import runtime_source

#: Size of the vulnerable stack buffer.
BUFFER_SIZE = 64
#: How many bytes the victim is willing to read into it (the bug).
READ_LIMIT = 256


def victim_source(exec_path: str = "/bin/ls") -> str:
    """The §4.1 victim: read a file name, then execve a fixed program.

    ``get_name`` allocates a {buffer}-byte stack buffer but reads up to
    {limit} bytes into it; bytes past the buffer overwrite the saved
    return address (SVM32 CALL pushes the return PC, like x86)."""
    return f"""
.section .text
.global _start
_start:
    call get_name
    ; open the named file first (a normal-behaviour call)
    li r1, namebuf
    li r2, 0
    call sys_open
    ; run the lister on it
    li r1, exec_path
    li r2, 0
    li r3, 0
    call sys_execve
    li r1, 0
    call sys_exit

get_name:
    subi sp, sp, {BUFFER_SIZE}
    li r1, 0             ; stdin
    mov r2, sp           ; the stack buffer
    li r3, {READ_LIMIT}  ; BUG: reads past the buffer
    call sys_read
    ; keep a copy of the name for open()
    li r1, namebuf
    mov r2, sp
    li r3, {BUFFER_SIZE}
    call rt_memcpy
    addi sp, sp, {BUFFER_SIZE}
    ret

.section .rodata
exec_path:
    .asciz "{exec_path}"
.section .bss
namebuf:
    .space {BUFFER_SIZE}
""" + runtime_source("linux", ("read", "open", "execve", "exit"))


def build_victim(exec_path: str = "/bin/ls") -> SefBinary:
    return assemble(
        victim_source(exec_path), metadata={"program": "victim"}
    )


def build_frankenstein_pair() -> tuple[SefBinary, SefBinary]:
    """Two structurally identical programs differing only in string
    contents (§5.5 requires same-layout donors so records transplant).

    Program A execs the benign ``/bin/ls``; program B (imagine it is a
    legitimately installed admin tool) execs ``/bin/sh``.  Both paths
    have equal length so every section offset coincides."""
    a = assemble(victim_source("/bin/ls"), metadata={"program": "frank-a"})
    b = assemble(victim_source("/bin/sh"), metadata={"program": "frank-b"})
    return a, b
