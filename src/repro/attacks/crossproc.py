"""Cross-process attack scenarios for the multiprogramming subsystem.

Single-process attacks (scenarios.py) model an attacker who has
corrupted *the victim's own* memory.  These scenarios model the new
surface multiprogramming opens: an attacker who controls one process —
or the moment of a context switch — and tries to turn that into
authenticated system calls in *another* process.

The isolation mechanism under test is the per-process authentication
context: each process carries its own kernel-resident ``auth_counter``
(the §3.2 online-memory-checker nonce), its own lastBlock/lbMAC region
in its own address space, and its own fast-path cache partition.  The
lbMAC binds lastBlock to the *owning process's* counter value, so
policy state transplanted from a process whose counter has diverged —
a sibling with a head start, or a fork parent that ran on — fails the
MAC check and the recipient alone is fail-stopped.

1. **cross-process replay** -- copy a running sibling's
   lastBlock/lbMAC into another instance of the same program at a
   context switch.  Blocked: the donor's counter has advanced past the
   recipient's, so the MAC verifies against the wrong nonce.
2. **fork counter confusion** -- at fork the child inherits a
   mutually-consistent (counter, polstate) pair; after the pair
   diverges, splice the parent's newer polstate into the child.
   Blocked: the child's kernel counter never saw the parent's
   post-fork advances.
3. **pipe-fed tamper** -- an unauthenticated feeder process delivers a
   stack-smashing payload through a kernel pipe into a protected
   victim's ``read``.  Blocked in the victim (the injected raw ``SYS``
   is unauthenticated) while an identically-fed benign sibling runs to
   completion — fail-stop stays per-process.
"""

from __future__ import annotations

import struct
from typing import Optional

from repro.asm import assemble
from repro.binfmt import SefBinary, link
from repro.crypto import Key
from repro.installer import InstallerOptions, install
from repro.isa import Instruction
from repro.isa.opcodes import Op
from repro.kernel.sched.scheduler import Scheduler, Task
from repro.kernel.syscalls import SYSCALL_NUMBERS
from repro.workloads.runtime import runtime_source
from repro.attacks.scenarios import (
    _LS_MARKER,
    AttackResult,
    _encode,
    _prepare_kernel,
)
from repro.attacks.victim import build_victim

#: Bytes of one lastBlock/lbMAC policy-state record.
_POLSTATE_SIZE = 20


def _looper_binary(iterations: int = 12, spin: int = 60) -> SefBinary:
    """A program whose authenticated-call counter visibly advances:
    ``iterations`` stub writes with a spin loop between them (so a
    small timeslice preempts it mid-run)."""
    source = f"""
.section .text
.global _start
_start:
    li r13, {iterations}
loop:
    li r1, 1
    li r2, msg
    li r3, 5
    call sys_write
    li r9, {spin}
spin:
    subi r9, r9, 1
    cmpi r9, 0
    bgt spin
    subi r13, r13, 1
    cmpi r13, 0
    bgt loop
    li r1, 0
    call sys_exit
.section .rodata
msg:
    .ascii "tick\\n"
""" + runtime_source("linux", ("write", "exit"))
    return assemble(source, metadata={"program": "looper"})


def _forker_binary(
    iterations: int = 8, parent_spin: int = 40, child_spin: int = 400
) -> SefBinary:
    """Fork once; parent and child then make authenticated writes at
    *different* rates, so their auth counters diverge from the shared
    value they held at the fork."""
    source = f"""
.section .text
.global _start
_start:
    call sys_fork
    cmpi r0, 0
    beq child
    blt fail
    li r13, {iterations}
    li r14, {parent_spin}
    jmp loop
child:
    li r13, {iterations}
    li r14, {child_spin}
loop:
    li r1, 1
    li r2, msg
    li r3, 5
    call sys_write
    mov r9, r14
spin:
    subi r9, r9, 1
    cmpi r9, 0
    bgt spin
    subi r13, r13, 1
    cmpi r13, 0
    bgt loop
    li r1, 0
    call sys_exit
fail:
    li r1, 1
    call sys_exit
.section .rodata
msg:
    .ascii "tock\\n"
""" + runtime_source("linux", ("fork", "write", "exit"))
    return assemble(source, metadata={"program": "forker"})


# ---------------------------------------------------------------------------
# 1. cross-process lastBlock/lbMAC replay
# ---------------------------------------------------------------------------


def cross_process_replay_attack(
    key: Optional[Key] = None,
    fastpath: bool = True,
    engine: str = "threaded",
    chain: bool = True,
    verifier_jit: bool = True,
) -> AttackResult:
    """Run three instances of one installed program; after the first
    instance's counter advances, copy its live lastBlock/lbMAC into
    the second at a context switch.  The images are identical, so the
    *only* thing wrong with the transplanted state is the counter it
    was MAC'd under — the per-process nonce is what gets B killed
    while A and C run on."""
    key = key or Key.generate()
    installed = install(_looper_binary(), key, InstallerOptions())
    kernel = _prepare_kernel(
        key, fastpath=fastpath, engine=engine, chain=chain, verifier_jit=verifier_jit
    )
    polstate = link(installed.binary).address_of("__asc_polstate")

    scheduler = Scheduler(kernel, timeslice=1000)
    tasks = [
        scheduler.adopt(*kernel.load(installed.binary)) for _ in range(3)
    ]
    donor, target, bystander = tasks
    injected: list[int] = []

    def on_switch(sched: Scheduler, task: Task) -> None:
        if injected or task.pid != target.pid:
            return
        if donor.process.auth_counter == target.process.auth_counter:
            return  # equal nonces would make the transplant trivially valid
        blob = donor.vm.memory.read(polstate, _POLSTATE_SIZE, force=True)
        task.vm.memory.write(polstate, blob, force=True)
        injected.append(donor.process.auth_counter)

    scheduler.on_switch = on_switch
    scheduler.run()

    siblings_ok = donor.exit_status == 0 and bystander.exit_status == 0
    return AttackResult(
        name="cross-process-replay",
        blocked=bool(injected)
        and target.killed
        and "policy state MAC" in target.kill_reason
        and siblings_ok,
        detail=(
            "copied a sibling's live lastBlock/lbMAC across processes at a "
            "context switch"
        ),
        kill_reason=target.kill_reason,
        stdout=bytes(target.process.stdout),
    )


# ---------------------------------------------------------------------------
# 2. counter confusion after fork
# ---------------------------------------------------------------------------


def fork_counter_confusion_attack(
    key: Optional[Key] = None,
    fastpath: bool = True,
    engine: str = "threaded",
    chain: bool = True,
    verifier_jit: bool = True,
) -> AttackResult:
    """At fork, parent and child hold byte-identical polstate and equal
    counters — a mutually consistent pair, by construction.  Once the
    counters diverge, the parent's *newer* polstate is spliced into the
    child: the child's kernel counter never advanced with the parent's,
    so the MAC fails and only the child is fail-stopped."""
    key = key or Key.generate()
    installed = install(_forker_binary(), key, InstallerOptions())
    kernel = _prepare_kernel(
        key, fastpath=fastpath, engine=engine, chain=chain, verifier_jit=verifier_jit
    )
    polstate = link(installed.binary).address_of("__asc_polstate")

    scheduler = Scheduler(kernel, timeslice=800)
    parent = scheduler.adopt(*kernel.load(installed.binary))
    injected: list[tuple[int, int]] = []

    def on_switch(sched: Scheduler, task: Task) -> None:
        if injected or task.parent_pid is None:
            return
        source = sched.tasks.get(task.parent_pid)
        if source is None or not source.alive:
            return
        if source.process.auth_counter == task.process.auth_counter:
            return  # still the consistent fork-time pair; wait for divergence
        blob = source.vm.memory.read(polstate, _POLSTATE_SIZE, force=True)
        task.vm.memory.write(polstate, blob, force=True)
        injected.append(
            (source.process.auth_counter, task.process.auth_counter)
        )

    scheduler.on_switch = on_switch
    scheduler.run()

    # The parent's exit reparents the child (parent_pid -> None), so
    # identify the child as "the task that is not the parent".
    child = next(
        (task for task in scheduler.tasks.values() if task.pid != parent.pid),
        None,
    )
    return AttackResult(
        name="fork-counter-confusion",
        blocked=bool(injected)
        and child is not None
        and child.killed
        and "policy state MAC" in child.kill_reason
        and parent.exit_status == 0,
        detail=(
            "spliced the fork parent's post-divergence polstate into the child"
        ),
        kill_reason=child.kill_reason if child else "",
        stdout=bytes(child.process.stdout) if child else b"",
    )


# ---------------------------------------------------------------------------
# 3. pipe-fed argument tamper
# ---------------------------------------------------------------------------


def _launcher_binary(payload_bad: bytes, payload_ok: bytes) -> SefBinary:
    """The (unauthenticated) feeder: two pipes, two forked children
    that each dup2 their pipe onto stdin and exec the protected victim;
    the parent feeds one child the attack payload and the other a
    benign file name, then reaps both."""
    bad_words = ", ".join(str(b) for b in payload_bad)
    ok_words = ", ".join(str(b) for b in payload_ok)
    source = f"""
.section .text
.global _start
_start:
    li r1, pfd1
    call sys_pipe
    cmpi r0, 0
    bne fail
    call sys_fork
    cmpi r0, 0
    beq child1
    blt fail
    li r1, pfd2
    call sys_pipe
    cmpi r0, 0
    bne fail
    call sys_fork
    cmpi r0, 0
    beq child2
    blt fail
    ; parent: keep only the write ends
    li r9, pfd1
    ld r1, [r9+0]
    call sys_close
    li r9, pfd2
    ld r1, [r9+0]
    call sys_close
    ; feed the attack payload, then the benign one
    li r9, pfd1
    ld r1, [r9+4]
    li r2, payload_bad
    li r3, {len(payload_bad)}
    call sys_write
    li r9, pfd2
    ld r1, [r9+4]
    li r2, payload_ok
    li r3, {len(payload_ok)}
    call sys_write
    li r9, pfd1
    ld r1, [r9+4]
    call sys_close
    li r9, pfd2
    ld r1, [r9+4]
    call sys_close
    ; reap both children (their statuses are the experiment's output)
    li r1, 0xFFFFFFFF
    li r2, 0
    li r3, 0
    li r4, 0
    call sys_wait4
    li r1, 0xFFFFFFFF
    li r2, 0
    li r3, 0
    li r4, 0
    call sys_wait4
    li r1, 0
    call sys_exit
child1:
    li r9, pfd1
    ld r1, [r9+0]
    li r2, 0
    call sys_dup2
    li r9, pfd1
    ld r1, [r9+0]
    call sys_close
    li r9, pfd1
    ld r1, [r9+4]
    call sys_close
    jmp exec_victim
child2:
    li r9, pfd2
    ld r1, [r9+0]
    li r2, 0
    call sys_dup2
    li r9, pfd1
    ld r1, [r9+0]
    call sys_close
    li r9, pfd1
    ld r1, [r9+4]
    call sys_close
    li r9, pfd2
    ld r1, [r9+0]
    call sys_close
    li r9, pfd2
    ld r1, [r9+4]
    call sys_close
exec_victim:
    li r1, victim_path
    li r2, 0
    li r3, 0
    call sys_execve
    li r1, 1
    call sys_exit
fail:
    li r1, 1
    call sys_exit
.section .rodata
victim_path:
    .asciz "/bin/victim"
payload_bad:
    .byte {bad_words}
payload_ok:
    .byte {ok_words}
.section .data
pfd1:
    .space 8
pfd2:
    .space 8
""" + runtime_source(
        "linux",
        ("pipe", "fork", "dup2", "close", "write", "wait4", "execve", "exit"),
    )
    return assemble(source, metadata={"program": "launcher"})


def _find_pipe_buffer_address(
    key: Key,
    victim_bytes: bytes,
    fastpath: bool,
    engine: str,
    chain: bool,
    verifier_jit: bool,
) -> int:
    """Discovery run: launch the full pipe-fed setup with dummy
    payloads and capture r2 at the victim's stdin read.  The address
    only depends on the victim image and argv, so it holds for the
    real run."""
    kernel = _prepare_kernel(
        key, fastpath=fastpath, engine=engine, chain=chain, verifier_jit=verifier_jit
    )
    kernel.vfs.write_file("/bin/victim", victim_bytes)
    launcher = _launcher_binary(b"/etc/motd\x00", b"/etc/motd\x00")
    captured: list[int] = []
    original = kernel.handle_trap

    def spy(vm, authenticated):
        process = kernel._vm_process.get(id(vm))
        if (
            not captured
            and process is not None
            and process.name == "victim"
            and vm.regs[0] == SYSCALL_NUMBERS["read"]
            and vm.regs[1] == 0
        ):
            captured.append(vm.regs[2])
        return original(vm, authenticated)

    kernel.handle_trap = spy  # shadows the bound method for every VM
    kernel.run_many([launcher], timeslice=700)
    if not captured:
        raise RuntimeError("pipe-fed victim never reached its read call")
    return captured[0]


def pipe_fed_tamper_attack(
    key: Optional[Key] = None,
    fastpath: bool = True,
    engine: str = "threaded",
    chain: bool = True,
    verifier_jit: bool = True,
) -> AttackResult:
    """Feed a stack-smashing payload through a kernel pipe into a
    protected victim's blocking read, while an identical sibling gets
    a benign file name.  The tampered victim's injected raw ``SYS`` is
    fail-stopped; the sibling — and the unauthenticated feeder — run
    to completion, demonstrating per-process containment."""
    key = key or Key.generate()
    installed = install(build_victim(), key, InstallerOptions())
    victim_bytes = installed.binary.to_bytes()
    buffer_address = _find_pipe_buffer_address(
        key, victim_bytes, fastpath, engine, chain, verifier_jit
    )

    string_address = buffer_address + 48
    code = _encode([
        Instruction(Op.LI, regs=(0,), imm=SYSCALL_NUMBERS["execve"]),
        Instruction(Op.LI, regs=(1,), imm=string_address),
        Instruction(Op.LI, regs=(2,), imm=0),
        Instruction(Op.SYS),
        Instruction(Op.HALT),
    ])
    payload = code.ljust(48, b"\x00") + b"/bin/sh\x00".ljust(16, b"\x00")
    payload += struct.pack("<I", buffer_address)  # smashed return address

    kernel = _prepare_kernel(
        key, fastpath=fastpath, engine=engine, chain=chain, verifier_jit=verifier_jit
    )
    kernel.vfs.write_file("/bin/victim", victim_bytes)
    launcher = _launcher_binary(payload, b"/etc/motd\x00")
    multi = kernel.run_many([launcher], timeslice=700)
    tasks = multi.scheduler.tasks

    feeder, tampered, benign = (tasks[pid] for pid in sorted(tasks))
    benign_ok = (
        benign.exit_status == 0
        and not benign.killed
        and _LS_MARKER in benign.process.stdout
    )
    return AttackResult(
        name="pipe-fed-tamper",
        blocked=tampered.killed
        and "unauthenticated" in tampered.kill_reason
        and benign_ok
        and feeder.exit_status == 0,
        detail=(
            "smashed a protected victim's stack through a kernel pipe; the "
            "identically-fed sibling survived"
        ),
        kill_reason=tampered.kill_reason,
        stdout=bytes(tampered.process.stdout),
    )


def run_cross_process_attacks(
    key: Optional[Key] = None,
    fastpath: bool = True,
    engine: str = "threaded",
    chain: bool = True,
    verifier_jit: bool = True,
) -> list[AttackResult]:
    """The multiprogramming battery.  Separate from
    :func:`repro.attacks.scenarios.run_all_attacks` (whose length is a
    published experiment shape) but with the same contract: outcomes
    must be identical with the fast path off and under either engine."""
    key = key or Key.generate()
    common = dict(fastpath=fastpath, engine=engine, chain=chain, verifier_jit=verifier_jit)
    return [
        cross_process_replay_attack(key, **common),
        fork_counter_confusion_attack(key, **common),
        pipe_fed_tamper_attack(key, **common),
    ]
