"""Attack scenarios against the loopback networking stack.

The cross-process battery (crossproc.py) established that per-process
authentication contexts isolate processes that share a CPU.  These
scenarios establish the same for processes that share *sockets*: a
connection is a kernel object both ends touch, so an attacker who owns
one end (or the moment of a context switch) has a new lever against
the authenticated call sites of the other end.

All three run the real netserver workload — one listener, forked
clients — under the preemptive scheduler, and all three must fail-stop
*only* the attacked server process, in the right violation family:

1. **accept replay (mimicry)** -- snapshot the server's own
   lastBlock/lbMAC early in its accept loop and replay it verbatim
   once its auth counter has advanced, mimicking the polstate of an
   earlier, legitimately-verified accept.  Blocked by the §3.2 replay
   nonce: the stored MAC binds the snapshot to the old counter value.
2. **socket state reuse** -- copy a live *client's* polstate into the
   server at a context switch.  Server and clients are forks of one
   image, so the bytes land at the right address and carry genuinely
   valid MAC material — for the wrong process.  Blocked by the
   per-process counter, exactly like cross-process replay, but here
   the donor is a network peer attacking the service it is using.
3. **tampered send** -- flip one bit in the buffer-pointer register of
   the server's echo-loop ``send`` after the site has been verified
   (and its fast-path/JIT state warmed).  The pointer is an Immediate
   constraint in the signed per-site record, so the pre-verified site
   must still die with a call-MAC mismatch — warm caches are not an
   exemption from argument binding.

In every case the surviving clients observe EOF/ECONNREFUSED through
normal socket teardown and exit on their own error paths: fail-stop
stays confined to the attacked process, and no survivor deadlocks.
"""

from __future__ import annotations

from typing import Optional

from repro.binfmt import link
from repro.crypto import Key
from repro.installer import InstallerOptions, install
from repro.kernel.sched.scheduler import Scheduler, Task
from repro.kernel.syscalls import SYSCALL_NUMBERS
from repro.workloads.netserver import build_netserver
from repro.attacks.scenarios import AttackResult, _prepare_kernel

#: Bytes of one lastBlock/lbMAC policy-state record.
_POLSTATE_SIZE = 20

#: Netserver shape for the battery: enough clients that the server is
#: mid-service when the injection window opens, small enough to keep
#: the five-config sweep quick.
_CLIENTS = 3
_REQUESTS = 4
_TIMESLICE = 400

#: Echo-loop send traps to let pass before tampering, so the site is
#: verified and warm (authcache entry stored, verifier thunk compiled).
_WARM_SENDS = 3


def _launch(key, fastpath, engine, chain, verifier_jit):
    """Install the netserver and stand up a scheduled kernel around it.

    Returns (kernel, scheduler, master task, polstate address)."""
    installed = install(
        build_netserver(clients=_CLIENTS, requests=_REQUESTS),
        key,
        InstallerOptions(),
    )
    kernel = _prepare_kernel(
        key, fastpath=fastpath, engine=engine, chain=chain,
        verifier_jit=verifier_jit,
    )
    polstate = link(installed.binary).address_of("__asc_polstate")
    scheduler = Scheduler(kernel, timeslice=_TIMESLICE)
    master = scheduler.adopt(*kernel.load(installed.binary))
    return kernel, scheduler, master, polstate


def _clients_of(scheduler: Scheduler, master: Task) -> list[Task]:
    return [
        task for pid, task in sorted(scheduler.tasks.items())
        if pid != master.pid
    ]


def _survivors_contained(scheduler: Scheduler, master: Task) -> bool:
    """Fail-stop containment: every client ran to a normal exit (their
    own failure paths included — the service died under them), and
    none was killed by the checker or the deadlock breaker."""
    clients = _clients_of(scheduler, master)
    return bool(clients) and all(
        not task.killed and task.exit_status is not None for task in clients
    )


# ---------------------------------------------------------------------------
# 1. accept replay (mimicry)
# ---------------------------------------------------------------------------


def accept_replay_attack(
    key: Optional[Key] = None,
    fastpath: bool = True,
    engine: str = "threaded",
    chain: bool = True,
    verifier_jit: bool = True,
) -> AttackResult:
    """Mimicry via the server's own history: the polstate bytes that
    were valid at an earlier accept are replayed once the counter has
    moved on.  Every byte of the replayed state is genuine — only the
    kernel-resident nonce has advanced — so this isolates the replay
    protection from every other check."""
    key = key or Key.generate()
    kernel, scheduler, master, polstate = _launch(
        key, fastpath, engine, chain, verifier_jit
    )
    snapshot: list[tuple[int, bytes]] = []
    injected: list[int] = []

    def on_switch(sched: Scheduler, task: Task) -> None:
        if injected or task.pid != master.pid:
            return
        counter = task.process.auth_counter
        if not snapshot:
            if counter > 0:  # polstate has been written at least once
                blob = task.vm.memory.read(polstate, _POLSTATE_SIZE, force=True)
                snapshot.append((counter, bytes(blob)))
            return
        taken, blob = snapshot[0]
        if counter == taken:
            return  # nonce unchanged; the replay would be trivially valid
        task.vm.memory.write(polstate, blob, force=True)
        injected.append(counter)

    scheduler.on_switch = on_switch
    scheduler.run()

    return AttackResult(
        name="accept-replay",
        blocked=bool(injected)
        and master.killed
        and "policy state MAC" in master.kill_reason
        and _survivors_contained(scheduler, master),
        detail=(
            "replayed the server's own accept-era lastBlock/lbMAC after "
            "its replay nonce advanced"
        ),
        kill_reason=master.kill_reason,
        stdout=bytes(master.process.stdout),
    )


# ---------------------------------------------------------------------------
# 2. cross-process polstate reuse, client -> server
# ---------------------------------------------------------------------------


def socket_state_reuse_attack(
    key: Optional[Key] = None,
    fastpath: bool = True,
    engine: str = "threaded",
    chain: bool = True,
    verifier_jit: bool = True,
) -> AttackResult:
    """A connected client donates its live polstate to the server it is
    talking to.  Same image, same ``__asc_polstate`` address, valid MAC
    material — but MAC'd under the *client's* counter, which the
    server's kernel-side nonce has never seen."""
    key = key or Key.generate()
    kernel, scheduler, master, polstate = _launch(
        key, fastpath, engine, chain, verifier_jit
    )
    injected: list[tuple[int, int]] = []

    def on_switch(sched: Scheduler, task: Task) -> None:
        if injected or task.pid != master.pid:
            return
        donor = next(
            (
                client for client in _clients_of(sched, master)
                if client.alive
                and client.process.auth_counter > 0
                and client.process.auth_counter != task.process.auth_counter
            ),
            None,
        )
        if donor is None:
            return  # no client with a divergent nonce yet
        blob = donor.vm.memory.read(polstate, _POLSTATE_SIZE, force=True)
        task.vm.memory.write(polstate, blob, force=True)
        injected.append(
            (donor.process.auth_counter, task.process.auth_counter)
        )

    scheduler.on_switch = on_switch
    scheduler.run()

    return AttackResult(
        name="socket-state-reuse",
        blocked=bool(injected)
        and master.killed
        and "policy state MAC" in master.kill_reason
        and _survivors_contained(scheduler, master),
        detail=(
            "spliced a connected client's live polstate into the server "
            "at a context switch"
        ),
        kill_reason=master.kill_reason,
        stdout=bytes(master.process.stdout),
    )


# ---------------------------------------------------------------------------
# 3. tampered send at a pre-verified site
# ---------------------------------------------------------------------------


def tampered_send_attack(
    key: Optional[Key] = None,
    fastpath: bool = True,
    engine: str = "threaded",
    chain: bool = True,
    verifier_jit: bool = True,
) -> AttackResult:
    """Flip one bit in the buffer-pointer register of the server's
    echo ``send`` — after the site has trapped enough times that the
    fast path and the verifier JIT have both seen it.  The pointer is
    an Immediate constraint in the signed record, so the encoded call
    rebuilt from live registers must diverge from the MAC'd one."""
    key = key or Key.generate()
    kernel, scheduler, master, _ = _launch(
        key, fastpath, engine, chain, verifier_jit
    )
    send_number = SYSCALL_NUMBERS["send"]
    sends_seen = [0]
    tampered: list[int] = []
    forward = kernel.handle_trap

    def spy(vm, authenticated):
        process = kernel._vm_process.get(id(vm))
        if (
            authenticated
            and not tampered
            and process is not None
            and process.pid == master.pid
            and vm.regs[0] == send_number
        ):
            if sends_seen[0] < _WARM_SENDS:
                sends_seen[0] += 1
            else:
                vm.regs[2] ^= 0x40  # one bit in the buffer pointer
                tampered.append(vm.regs[2])
        return forward(vm, authenticated)

    kernel.handle_trap = spy  # shadows the bound method for every VM
    scheduler.run()

    return AttackResult(
        name="tampered-send",
        blocked=bool(tampered)
        and master.killed
        and "call MAC mismatch" in master.kill_reason
        and _survivors_contained(scheduler, master),
        detail=(
            "flipped a bit in the echo send's buffer-pointer register at "
            "a warm, pre-verified site"
        ),
        kill_reason=master.kill_reason,
        stdout=bytes(master.process.stdout),
    )


def run_net_attacks(
    key: Optional[Key] = None,
    fastpath: bool = True,
    engine: str = "threaded",
    chain: bool = True,
    verifier_jit: bool = True,
) -> list[AttackResult]:
    """The networking battery.  Same contract as the other batteries:
    every scenario blocked, with identical kill reasons, on every
    engine configuration."""
    key = key or Key.generate()
    common = dict(
        fastpath=fastpath, engine=engine, chain=chain, verifier_jit=verifier_jit
    )
    return [
        accept_replay_attack(key, **common),
        socket_state_reuse_attack(key, **common),
        tampered_send_attack(key, **common),
    ]
