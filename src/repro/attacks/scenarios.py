"""The attack scenarios.

Each scenario returns an :class:`AttackResult`; ``blocked`` is True
when the kernel converted the attack into a fail-stop termination.
The Frankenstein scenario inverts that expectation when the §5.5
defense is disabled — that case *demonstrates the vulnerability* the
defense exists for.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass
from typing import Callable, Optional

from repro.asm import assemble
from repro.binfmt import link
from repro.cpu.vm import VM, ProcessExit
from repro.crypto import Key
from repro.installer import InstalledProgram, InstallerOptions, install
from repro.isa import Instruction, encode_instruction
from repro.isa.opcodes import Op
from repro.kernel import EnforcementMode, Kernel
from repro.kernel.syscalls import SYSCALL_NUMBERS
from repro.attacks.victim import BUFFER_SIZE, build_frankenstein_pair, build_victim

#: Address (deterministic) of the vulnerable buffer; discovered by a
#: dry run, see :func:`_find_buffer_address`.
_SH_MARKER = b"SHELL-SPAWNED\n"
_LS_MARKER = b"ls-output\n"


@dataclass
class AttackResult:
    name: str
    blocked: bool
    detail: str
    kill_reason: str = ""
    stdout: bytes = b""


def _marker_program(text: bytes) -> bytes:
    """A tiny program that prints a marker (stands in for /bin/sh,
    /bin/ls as execve targets)."""
    escaped = text.decode().replace("\n", "\\n")
    source = f"""
.section .text
.global _start
_start:
    li r0, {SYSCALL_NUMBERS['write']}
    li r1, 1
    li r2, msg
    li r3, {len(text)}
    sys
    li r0, {SYSCALL_NUMBERS['exit']}
    li r1, 0
    sys
.section .rodata
msg:
    .ascii "{escaped}"
"""
    return assemble(source, metadata={"program": "marker"}).to_bytes()


def _prepare_kernel(
    key: Key,
    fastpath: bool = True,
    engine: str = "threaded",
    chain: bool = True,
    verifier_jit: bool = True,
) -> Kernel:
    kernel = Kernel(
        key=key, mode=EnforcementMode.PERMISSIVE, fastpath=fastpath, engine=engine,
        chain=chain, verifier_jit=verifier_jit,
    )
    kernel.vfs.write_file("/bin/sh", _marker_program(_SH_MARKER))
    kernel.vfs.write_file("/bin/ls", _marker_program(_LS_MARKER))
    kernel.vfs.write_file("/etc/motd", b"hello\n")
    return kernel


def _install_victim(key: Key, **options) -> InstalledProgram:
    return install(build_victim(), key, InstallerOptions(**options))


def _find_buffer_address(key: Key, installed: InstalledProgram) -> int:
    """Dry-run the victim and capture r2 (the buffer) at the read trap."""
    kernel = _prepare_kernel(key)
    process, vm = kernel.load(installed.binary, stdin=b"/etc/motd\x00")
    read_site = installed.site_for_syscall("read")
    captured: list[int] = []

    class Spy:
        def handle_trap(self, inner_vm: VM, authenticated: bool) -> int:
            if inner_vm.pc == read_site and not captured:
                captured.append(inner_vm.regs[2])
            return kernel.handle_trap(inner_vm, authenticated)

    vm.trap_handler = Spy()
    vm.run()
    if not captured:
        raise RuntimeError("victim never reached its read call")
    return captured[0]


def _run_with_payload(
    key: Key,
    installed: InstalledProgram,
    payload: bytes,
    mutate: Optional[Callable[[Kernel, VM], None]] = None,
    fastpath: bool = True,
    engine: str = "threaded",
    chain: bool = True,
    verifier_jit: bool = True,
):
    kernel = _prepare_kernel(
        key, fastpath=fastpath, engine=engine, chain=chain, verifier_jit=verifier_jit
    )
    process, vm = kernel.load(installed.binary, stdin=payload)
    if mutate:
        mutate(kernel, vm)
    vm.run()
    return kernel, process, vm


def _encode(instructions) -> bytes:
    return b"".join(encode_instruction(i) for i in instructions)


# ---------------------------------------------------------------------------
# 1. shellcode injection
# ---------------------------------------------------------------------------


def shellcode_attack(
    key: Optional[Key] = None,
    fastpath: bool = True,
    engine: str = "threaded",
    chain: bool = True,
    verifier_jit: bool = True,
) -> AttackResult:
    """Overflow the buffer, run injected code that issues a raw
    execve("/bin/sh") system call."""
    key = key or Key.generate()
    installed = _install_victim(key)
    buffer_address = _find_buffer_address(key, installed)

    # Shellcode layout inside the 64-byte buffer:
    #   [0..]   instructions
    #   [48..]  the string "/bin/sh\0"
    string_address = buffer_address + 48
    code = _encode([
        Instruction(Op.LI, regs=(0,), imm=SYSCALL_NUMBERS["execve"]),
        Instruction(Op.LI, regs=(1,), imm=string_address),
        Instruction(Op.LI, regs=(2,), imm=0),
        Instruction(Op.SYS),
        Instruction(Op.HALT),
    ])
    payload = code.ljust(48, b"\x00") + b"/bin/sh\x00".ljust(16, b"\x00")
    payload += struct.pack("<I", buffer_address)  # smashed return address

    kernel, process, vm = _run_with_payload(
        key, installed, payload, fastpath=fastpath, engine=engine, chain=chain,
        verifier_jit=verifier_jit,
    )
    return AttackResult(
        name="shellcode",
        blocked=vm.killed,
        detail="injected raw SYS execve('/bin/sh') from the smashed stack",
        kill_reason=vm.kill_reason,
        stdout=bytes(process.stdout),
    )


# ---------------------------------------------------------------------------
# 2. mimicry (reuse of authenticated calls)
# ---------------------------------------------------------------------------


def mimicry_attack(
    key: Optional[Key] = None,
    variant: str = "call-graph",
    fastpath: bool = True,
    engine: str = "threaded",
    chain: bool = True,
    verifier_jit: bool = True,
) -> AttackResult:
    """Reuse the victim's *authenticated* execve call out of context.

    ``call-graph``: jump straight to the genuine call site (skipping
    the open that must precede it) — the predecessor-set check fails.
    ``call-site``: copy the genuine record pointer but trap from
    injected code — the call-site MAC check fails."""
    key = key or Key.generate()
    installed = _install_victim(key)
    buffer_address = _find_buffer_address(key, installed)
    execve_site = installed.site_for_syscall("execve")
    image = link(installed.binary)
    exec_path = image.address_of("exec_path")
    record = image.address_of(installed.site_records[execve_site])

    if variant == "call-graph":
        # Re-enter at the LI r7 that precedes the genuine ASYS, with
        # registers staged for execve; the trap then happens at the
        # *correct* site but with the wrong predecessor state.
        code = _encode([
            Instruction(Op.LI, regs=(0,), imm=SYSCALL_NUMBERS["execve"]),
            Instruction(Op.LI, regs=(1,), imm=exec_path),
            Instruction(Op.LI, regs=(2,), imm=0),
            Instruction(Op.LI, regs=(3,), imm=0),
            Instruction(Op.JMP, imm=execve_site - 8),  # the LI r7 slot
        ])
        detail = "jumped to the genuine execve site out of order"
    else:
        # Issue ASYS from the payload itself, reusing the real record.
        code = _encode([
            Instruction(Op.LI, regs=(0,), imm=SYSCALL_NUMBERS["execve"]),
            Instruction(Op.LI, regs=(1,), imm=exec_path),
            Instruction(Op.LI, regs=(2,), imm=0),
            Instruction(Op.LI, regs=(3,), imm=0),
            Instruction(Op.LI, regs=(7,), imm=record),
            Instruction(Op.ASYS),
            Instruction(Op.HALT),
        ])
        detail = "issued ASYS from injected code with a stolen record"

    payload = code.ljust(BUFFER_SIZE, b"\x00") + struct.pack("<I", buffer_address)
    kernel, process, vm = _run_with_payload(
        key, installed, payload, fastpath=fastpath, engine=engine, chain=chain,
        verifier_jit=verifier_jit,
    )
    return AttackResult(
        name=f"mimicry/{variant}",
        blocked=vm.killed,
        detail=detail,
        kill_reason=vm.kill_reason,
        stdout=bytes(process.stdout),
    )


# ---------------------------------------------------------------------------
# 3. non-control-data (argument corruption)
# ---------------------------------------------------------------------------


def non_control_data_attack(
    key: Optional[Key] = None,
    fastpath: bool = True,
    engine: str = "threaded",
    chain: bool = True,
    verifier_jit: bool = True,
) -> AttackResult:
    """Swap the constant "/bin/ls" for "/bin/sh" in memory.

    Models an arbitrary-write primitive (Chen et al.'s non-control-data
    attacks): the string bytes change but no control flow does."""
    key = key or Key.generate()
    installed = _install_victim(key)
    image = link(installed.binary)
    exec_path = image.address_of("exec_path")

    def corrupt(kernel: Kernel, vm: VM) -> None:
        vm.memory.write(exec_path, b"/bin/sh", force=True)

    kernel, process, vm = _run_with_payload(
        key, installed, b"/etc/motd\x00", mutate=corrupt, fastpath=fastpath,
        engine=engine, verifier_jit=verifier_jit,
    )
    return AttackResult(
        name="non-control-data",
        blocked=vm.killed and _SH_MARKER not in process.stdout,
        detail="overwrote the authenticated execve argument in place",
        kill_reason=vm.kill_reason,
        stdout=bytes(process.stdout),
    )


# ---------------------------------------------------------------------------
# 4. Frankenstein (§5.5)
# ---------------------------------------------------------------------------


def frankenstein_attack(
    key: Optional[Key] = None,
    defense: bool = True,
    fastpath: bool = True,
    engine: str = "threaded",
    chain: bool = True,
    verifier_jit: bool = True,
) -> AttackResult:
    """Transplant program B's authenticated execve (of /bin/sh) into
    program A.  Both programs are legitimately installed on the same
    machine; their identical layout lets every embedded address line
    up.  Succeeds without unique block ids; blocked with them."""
    key = key or Key.generate()
    raw_a, raw_b = build_frankenstein_pair()
    options_a = InstallerOptions(program_id=1 if defense else 0)
    options_b = InstallerOptions(program_id=2 if defense else 0)
    installed_a = install(raw_a, key, options_a)
    installed_b = install(raw_b, key, options_b)

    image_b = link(installed_b.binary)
    execve_site = installed_b.site_for_syscall("execve")
    record_address = image_b.address_of(installed_b.site_records[execve_site])
    authdata_b = image_b.segment(".authdata")
    authstr_b = image_b.segment(".authstr")

    def _as_record(content_address: int) -> tuple[int, bytes]:
        """Extract one of B's AS records (header + content + NUL)."""
        start = content_address - 20 - authstr_b.vaddr
        length = int.from_bytes(authstr_b.data[start : start + 4], "little")
        blob = authstr_b.data[start : start + 20 + length + 1]
        return content_address - 20, blob

    def transplant(kernel: Kernel, vm: VM) -> None:
        # Splice exactly the pieces B's execve needs into A's running
        # image (addresses coincide by construction): the record, its
        # predecessor-set AS, and the "/bin/sh" string AS.
        offset = record_address - authdata_b.vaddr
        record = bytes(authdata_b.data[offset : offset + 32])
        vm.memory.write(record_address, record, force=True)
        predset_ptr = int.from_bytes(record[8:12], "little")
        for content_address in (predset_ptr, image_b.address_of("exec_path")):
            address, blob = _as_record(content_address)
            vm.memory.write(address, blob, force=True)

    kernel, process, vm = _run_with_payload(
        key, installed_a, b"/etc/motd\x00", mutate=transplant, fastpath=fastpath,
        engine=engine, verifier_jit=verifier_jit,
    )
    spawned_shell = _SH_MARKER in process.stdout
    return AttackResult(
        name=f"frankenstein/{'defended' if defense else 'undefended'}",
        blocked=vm.killed and not spawned_shell,
        detail=(
            "transplanted B's authenticated execve('/bin/sh') into A "
            f"({'with' if defense else 'without'} unique block ids)"
        ),
        kill_reason=vm.kill_reason,
        stdout=bytes(process.stdout),
    )


# ---------------------------------------------------------------------------
# 5. policy-state replay
# ---------------------------------------------------------------------------


def replay_attack(
    key: Optional[Key] = None,
    fastpath: bool = True,
    engine: str = "threaded",
    chain: bool = True,
    verifier_jit: bool = True,
) -> AttackResult:
    """Snapshot lastBlock/lbMAC *before* the open executes; let the
    open run (advancing the kernel counter); then restore the stale
    snapshot and re-enter the open site.  lastBlock = "after read"
    is a *valid predecessor* for open, so without the counter nonce the
    replay would pass — the kernel MACs the state against the advanced
    counter and fail-stops instead."""
    key = key or Key.generate()
    installed = _install_victim(key)
    kernel = _prepare_kernel(
        key, fastpath=fastpath, engine=engine, chain=chain, verifier_jit=verifier_jit
    )
    process, vm = kernel.load(installed.binary, stdin=b"/etc/motd\x00")

    image = link(installed.binary)
    polstate = image.address_of("__asc_polstate")
    open_site = installed.site_for_syscall("open")

    snapshot: list[bytes] = []
    replayed: list[bool] = []
    try:
        while True:
            if vm.pc == open_site and not snapshot:
                # About to trap at the open: record the pre-call state.
                snapshot.append(vm.memory.read(polstate, 20, force=True))
            if not vm.step():
                break
            if snapshot and not replayed and vm.pc != open_site:
                # The open has completed (counter advanced).  Restore
                # the stale state and jump back to re-enter the site.
                if len(snapshot) == 1 and vm.pc > open_site:
                    vm.memory.write(polstate, snapshot[0], force=True)
                    # Re-enter at the `li r0, 5` of the inlined stub so
                    # the syscall number register is staged correctly.
                    vm.pc = open_site - 16
                    replayed.append(True)
    except ProcessExit as exit_info:
        vm.killed = exit_info.killed
        vm.kill_reason = exit_info.reason

    return AttackResult(
        name="replay",
        blocked=vm.killed and bool(replayed),
        detail="restored a stale lastBlock/lbMAC and re-entered the open",
        kill_reason=vm.kill_reason,
        stdout=bytes(process.stdout),
    )


def run_all_attacks(
    key: Optional[Key] = None,
    fastpath: bool = True,
    engine: str = "threaded",
    chain: bool = True,
    verifier_jit: bool = True,
) -> list[AttackResult]:
    """The full §4.1 + §5.5 battery.

    ``fastpath=False`` runs every scenario on a ``--no-fastpath``
    kernel; the outcomes must be identical — the verification cache is
    an optimization, never a policy change.  Likewise ``engine``:
    the battery must report the same verdicts under the interpreter
    and the threaded translation cache (the §4.1 shellcode executes
    freshly written stack bytes, which exercises the threaded engine's
    invalidation protocol end to end)."""
    key = key or Key.generate()
    common = dict(fastpath=fastpath, engine=engine, chain=chain, verifier_jit=verifier_jit)
    return [
        shellcode_attack(key, **common),
        mimicry_attack(key, "call-graph", **common),
        mimicry_attack(key, "call-site", **common),
        non_control_data_attack(key, **common),
        frankenstein_attack(key, defense=True, **common),
        frankenstein_attack(key, defense=False, **common),
        replay_attack(key, **common),
    ]
