"""Attack experiments (§4.1, §5.5).

The paper's victim is "a simple program that reads in a file name and
invokes the /bin/ls program on the input.  The file name is read into a
stack allocated buffer, which can be overflowed by an attacker to gain
control of the program."  :mod:`repro.attacks.victim` builds that
program; :mod:`repro.attacks.scenarios` mounts the attacks:

1. **shellcode** -- classic stack smashing: inject code that issues a
   raw ``SYS execve("/bin/sh")``.  Blocked: the new call is
   unauthenticated (no policy argument or MAC).
2. **mimicry** -- replay an *existing* authenticated call out of
   context.  Blocked: call-graph (predecessor-set) and call-site
   policies fail.
3. **non-control-data** -- overwrite the constant ``"/bin/ls"``
   argument with ``"/bin/sh"``.  Blocked: the authenticated-string MAC
   fails.
4. **Frankenstein** (§5.5) -- splice authenticated calls from two
   applications into one.  Succeeds without per-program block ids;
   blocked when the installer namespaces block identifiers.
5. **replay** -- restore a stale ``lastBlock``/``lbMAC`` snapshot.
   Blocked: the kernel-resident counter is a nonce the attacker cannot
   rewind.

:mod:`repro.attacks.crossproc` adds the multiprogramming battery —
cross-process lastBlock/lbMAC replay, counter confusion after fork,
and pipe-fed argument tampering — exercising the per-process
authentication context under the preemptive scheduler.

:mod:`repro.attacks.netattacks` adds the networking battery against
the loopback socket stack's echo server — accept-era polstate replay,
client→server polstate reuse, and a tampered send buffer pointer at a
warm pre-verified site.
"""

from repro.attacks.victim import build_victim, build_frankenstein_pair
from repro.attacks.scenarios import (
    AttackResult,
    frankenstein_attack,
    mimicry_attack,
    non_control_data_attack,
    replay_attack,
    run_all_attacks,
    shellcode_attack,
)
from repro.attacks.crossproc import (
    cross_process_replay_attack,
    fork_counter_confusion_attack,
    pipe_fed_tamper_attack,
    run_cross_process_attacks,
)
from repro.attacks.netattacks import (
    accept_replay_attack,
    run_net_attacks,
    socket_state_reuse_attack,
    tampered_send_attack,
)

__all__ = [
    "AttackResult",
    "accept_replay_attack",
    "build_frankenstein_pair",
    "build_victim",
    "cross_process_replay_attack",
    "fork_counter_confusion_attack",
    "frankenstein_attack",
    "mimicry_attack",
    "non_control_data_attack",
    "pipe_fed_tamper_attack",
    "replay_attack",
    "run_all_attacks",
    "run_cross_process_attacks",
    "run_net_attacks",
    "shellcode_attack",
    "socket_state_reuse_attack",
    "tampered_send_attack",
]
