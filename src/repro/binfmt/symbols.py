"""Symbols and relocations."""

from __future__ import annotations

from dataclasses import dataclass

BIND_LOCAL = "local"
BIND_GLOBAL = "global"

#: Relocation types.  ABS32 patches a 32-bit little-endian word at
#: (section, offset) with the absolute address of symbol+addend.  This
#: is the only type SVM32 needs: instruction immediates and data words
#: are both 32-bit absolute.
R_ABS32 = "abs32"


@dataclass(frozen=True)
class Symbol:
    """A named location: ``section`` + ``offset`` (resolved at link)."""

    name: str
    section: str
    offset: int
    binding: str = BIND_LOCAL

    def __post_init__(self) -> None:
        if self.binding not in (BIND_LOCAL, BIND_GLOBAL):
            raise ValueError(f"bad symbol binding {self.binding!r}")
        if self.offset < 0:
            raise ValueError(f"negative symbol offset for {self.name!r}")


@dataclass(frozen=True)
class Relocation:
    """Marks an address constant: patch ``section[offset:offset+4]``
    with ``addr(symbol) + addend`` at link time."""

    section: str
    offset: int
    symbol: str
    addend: int = 0
    type: str = R_ABS32

    def __post_init__(self) -> None:
        if self.type != R_ABS32:
            raise ValueError(f"unsupported relocation type {self.type!r}")
        if self.offset < 0:
            raise ValueError("negative relocation offset")
