"""Linking: turn a relocatable SEF binary into a loadable memory image.

The linker assigns each allocatable section a virtual address (sections
are laid out in a fixed order starting at the load base, each aligned to
a page) and then applies every relocation by patching absolute 32-bit
addresses into the section bytes.  The result — a
:class:`LoadedImage` — is what the simulated kernel's ``execve`` maps
into a fresh address space.

The image records the final address of every symbol.  The installer
relies on this to compute policy contents (call sites, authenticated
string addresses, the ``lastBlock`` address) and re-links after
rewriting, because SVM32 policies — like the paper's — embed absolute
addresses and therefore fix the load layout.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.binfmt.binary import BinaryFormatError, SefBinary

DEFAULT_BASE = 0x08048000
PAGE_SIZE = 0x1000

#: Layout order; unknown sections are appended alphabetically after these.
_SECTION_ORDER = [
    ".text",
    ".rodata",
    ".data",
    ".authstr",
    ".authdata",
    ".polstate",
    ".bss",
]


def _page_align(address: int) -> int:
    return (address + PAGE_SIZE - 1) & ~(PAGE_SIZE - 1)


@dataclass
class LoadedSegment:
    """One mapped section: final address, bytes, and protection flags."""

    name: str
    vaddr: int
    data: bytes
    flags: int
    size: int  # may exceed len(data) for nobits sections


@dataclass
class LoadedImage:
    """A fully linked, position-dependent program image."""

    entry: int
    segments: list[LoadedSegment]
    symbol_addresses: dict[str, int]
    metadata: dict[str, str] = field(default_factory=dict)
    base: int = DEFAULT_BASE

    @property
    def end(self) -> int:
        """One past the highest mapped address (initial program break)."""
        return max(seg.vaddr + seg.size for seg in self.segments)

    def segment(self, name: str) -> LoadedSegment:
        for seg in self.segments:
            if seg.name == name:
                return seg
        raise KeyError(f"no segment {name!r} in image")

    def address_of(self, symbol: str) -> int:
        try:
            return self.symbol_addresses[symbol]
        except KeyError:
            raise KeyError(f"symbol {symbol!r} not present in image") from None


def assign_addresses(binary: SefBinary, base: int = DEFAULT_BASE) -> dict[str, int]:
    """Compute the virtual base address of each section."""
    ordered = [name for name in _SECTION_ORDER if name in binary.sections]
    ordered += sorted(set(binary.sections) - set(ordered))
    addresses: dict[str, int] = {}
    cursor = base
    for name in ordered:
        section = binary.sections[name]
        cursor = _page_align(cursor)
        if section.align > 1:
            cursor = (cursor + section.align - 1) & ~(section.align - 1)
        addresses[name] = cursor
        cursor += section.size
    return addresses


def link(binary: SefBinary, base: int = DEFAULT_BASE) -> LoadedImage:
    """Assign addresses, apply relocations, and produce a LoadedImage."""
    binary.validate()
    section_bases = assign_addresses(binary, base)

    symbol_addresses = {
        name: section_bases[sym.section] + sym.offset
        for name, sym in binary.symbols.items()
    }

    patched: dict[str, bytearray] = {
        name: bytearray(section.data) for name, section in binary.sections.items()
    }
    for reloc in binary.relocations:
        target = symbol_addresses[reloc.symbol] + reloc.addend
        if not 0 <= target <= 0xFFFFFFFF:
            raise BinaryFormatError(
                f"relocated address out of range for {reloc.symbol!r}: {target:#x}"
            )
        body = patched[reloc.section]
        body[reloc.offset : reloc.offset + 4] = target.to_bytes(4, "little")

    segments = [
        LoadedSegment(
            name=name,
            vaddr=section_bases[name],
            data=bytes(patched[name]),
            flags=section.flags,
            size=section.size,
        )
        for name, section in binary.sections.items()
    ]
    segments.sort(key=lambda seg: seg.vaddr)

    return LoadedImage(
        entry=symbol_addresses[binary.entry],
        segments=segments,
        symbol_addresses=symbol_addresses,
        metadata=dict(binary.metadata),
        base=base,
    )
