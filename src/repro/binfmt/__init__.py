"""SEF: the Simple Executable Format.

A relocatable ELF-like container.  PLTO requires relocatable binaries
(binaries in which the locations of addresses are marked) so that code
and data can be moved during rewriting; SEF inherits that requirement
faithfully: every address constant in code or data carries a relocation
entry naming a symbol and addend.

The installer consumes a relocatable SEF binary and (as in the paper)
emits a *non-relocatable, statically linked* image for execution — the
policies embed absolute call-site addresses, so the output of
installation is position-dependent by design.
"""

from repro.binfmt.sections import (
    SEC_ALLOC,
    SEC_EXEC,
    SEC_READ,
    SEC_WRITE,
    Section,
)
from repro.binfmt.symbols import Relocation, Symbol
from repro.binfmt.binary import BinaryFormatError, SefBinary
from repro.binfmt.image import LoadedImage, link

__all__ = [
    "BinaryFormatError",
    "LoadedImage",
    "Relocation",
    "SEC_ALLOC",
    "SEC_EXEC",
    "SEC_READ",
    "SEC_WRITE",
    "Section",
    "SefBinary",
    "Symbol",
    "link",
]
