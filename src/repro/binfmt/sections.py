"""Sections of a SEF binary."""

from __future__ import annotations

from dataclasses import dataclass, field

SEC_READ = 0x1
SEC_WRITE = 0x2
SEC_EXEC = 0x4
SEC_ALLOC = 0x8

#: Flags for the conventional sections, including those added by the
#: installer (.authstr holds authenticated strings, .authdata holds
#: per-call-site authentication records and call MACs, .polstate holds
#: the writable lastBlock/lbMAC policy state).
DEFAULT_SECTION_FLAGS = {
    ".text": SEC_READ | SEC_EXEC | SEC_ALLOC,
    ".rodata": SEC_READ | SEC_ALLOC,
    ".data": SEC_READ | SEC_WRITE | SEC_ALLOC,
    ".bss": SEC_READ | SEC_WRITE | SEC_ALLOC,
    ".authstr": SEC_READ | SEC_ALLOC,
    ".authdata": SEC_READ | SEC_ALLOC,
    ".polstate": SEC_READ | SEC_WRITE | SEC_ALLOC,
}


@dataclass
class Section:
    """A named chunk of the binary.

    ``nobits`` sections (.bss) occupy address space but no file bytes;
    ``data`` then only records the size via ``reserve``.
    """

    name: str
    flags: int
    data: bytearray = field(default_factory=bytearray)
    nobits: bool = False
    reserve: int = 0  # size of a nobits section
    align: int = 16

    def __post_init__(self) -> None:
        if self.nobits and self.data:
            raise ValueError(f"nobits section {self.name!r} cannot carry data")
        if not isinstance(self.data, bytearray):
            self.data = bytearray(self.data)

    @classmethod
    def named(cls, name: str, **kwargs) -> "Section":
        """Create a section with the conventional flags for its name."""
        try:
            flags = DEFAULT_SECTION_FLAGS[name]
        except KeyError:
            raise ValueError(
                f"no default flags for section {name!r}; pass flags explicitly"
            ) from None
        return cls(name=name, flags=flags, **kwargs)

    @property
    def size(self) -> int:
        return self.reserve if self.nobits else len(self.data)

    @property
    def writable(self) -> bool:
        return bool(self.flags & SEC_WRITE)

    @property
    def executable(self) -> bool:
        return bool(self.flags & SEC_EXEC)

    def append(self, blob: bytes) -> int:
        """Append bytes, returning the offset at which they start."""
        if self.nobits:
            raise ValueError(f"cannot append data to nobits section {self.name!r}")
        offset = len(self.data)
        self.data.extend(blob)
        return offset

    def reserve_bytes(self, count: int) -> int:
        """Grow a nobits section; returns the offset of the reservation."""
        if not self.nobits:
            return self.append(bytes(count))
        offset = self.reserve
        self.reserve += count
        return offset
