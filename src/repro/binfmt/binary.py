"""The SEF container: sections + symbols + relocations + metadata.

Serialization uses a simple length-prefixed binary layout (magic
``SEF1``).  Metadata is a small string-to-string map used to carry the
program name, OS personality, installer program id, and the
``authenticated`` marker that the kernel checks before admitting a
process (unauthenticated binaries may run only when the kernel's
enforcement mode allows them).
"""

from __future__ import annotations

import struct
from dataclasses import dataclass, field

from repro.binfmt.sections import Section
from repro.binfmt.symbols import BIND_GLOBAL, BIND_LOCAL, Relocation, Symbol

MAGIC = b"SEF1"


class BinaryFormatError(ValueError):
    """Raised on malformed SEF bytes or inconsistent binary contents."""


def _pack_str(text: str) -> bytes:
    raw = text.encode("utf-8")
    return struct.pack("<H", len(raw)) + raw


def _unpack_str(data: bytes, offset: int) -> tuple[str, int]:
    if offset + 2 > len(data):
        raise BinaryFormatError("truncated string header")
    (length,) = struct.unpack_from("<H", data, offset)
    offset += 2
    if offset + length > len(data):
        raise BinaryFormatError("truncated string body")
    return data[offset : offset + length].decode("utf-8"), offset + length


@dataclass
class SefBinary:
    """An in-memory SEF object, relocatable until linked."""

    entry: str = "_start"
    sections: dict[str, Section] = field(default_factory=dict)
    symbols: dict[str, Symbol] = field(default_factory=dict)
    relocations: list[Relocation] = field(default_factory=list)
    metadata: dict[str, str] = field(default_factory=dict)

    # -- construction helpers -----------------------------------------

    def add_section(self, section: Section) -> Section:
        if section.name in self.sections:
            raise BinaryFormatError(f"duplicate section {section.name!r}")
        self.sections[section.name] = section
        return section

    def section(self, name: str) -> Section:
        try:
            return self.sections[name]
        except KeyError:
            raise BinaryFormatError(f"no section {name!r}") from None

    def get_or_create_section(self, name: str, **kwargs) -> Section:
        if name in self.sections:
            return self.sections[name]
        return self.add_section(Section.named(name, **kwargs))

    def define_symbol(
        self,
        name: str,
        section: str,
        offset: int,
        binding: str = BIND_LOCAL,
    ) -> Symbol:
        if name in self.symbols:
            raise BinaryFormatError(f"duplicate symbol {name!r}")
        if section not in self.sections:
            raise BinaryFormatError(f"symbol {name!r} in unknown section {section!r}")
        symbol = Symbol(name, section, offset, binding)
        self.symbols[name] = symbol
        return symbol

    def add_relocation(self, relocation: Relocation) -> None:
        if relocation.section not in self.sections:
            raise BinaryFormatError(
                f"relocation against unknown section {relocation.section!r}"
            )
        self.relocations.append(relocation)

    def relocations_for(self, section: str) -> dict[int, Relocation]:
        """Relocations of one section indexed by offset."""
        return {r.offset: r for r in self.relocations if r.section == section}

    def validate(self) -> None:
        """Check internal consistency; raises :class:`BinaryFormatError`."""
        if self.entry not in self.symbols:
            raise BinaryFormatError(f"entry symbol {self.entry!r} undefined")
        for symbol in self.symbols.values():
            section = self.section(symbol.section)
            if symbol.offset > section.size:
                raise BinaryFormatError(
                    f"symbol {symbol.name!r} offset {symbol.offset} outside "
                    f"section {section.name!r} (size {section.size})"
                )
        for reloc in self.relocations:
            if reloc.symbol not in self.symbols:
                raise BinaryFormatError(
                    f"relocation references undefined symbol {reloc.symbol!r}"
                )
            section = self.section(reloc.section)
            if section.nobits:
                raise BinaryFormatError(
                    f"relocation in nobits section {section.name!r}"
                )
            if reloc.offset + 4 > section.size:
                raise BinaryFormatError(
                    f"relocation at {reloc.section}+{reloc.offset} outside section"
                )

    # -- serialization -------------------------------------------------

    def to_bytes(self) -> bytes:
        self.validate()
        out = bytearray()
        out += MAGIC
        out += _pack_str(self.entry)
        out += struct.pack("<H", len(self.metadata))
        for key in sorted(self.metadata):
            out += _pack_str(key)
            out += _pack_str(self.metadata[key])
        out += struct.pack("<H", len(self.sections))
        for section in self.sections.values():
            out += _pack_str(section.name)
            out += struct.pack(
                "<BBII",
                section.flags,
                1 if section.nobits else 0,
                section.reserve,
                len(section.data),
            )
            out += struct.pack("<H", section.align)
            out += bytes(section.data)
        out += struct.pack("<I", len(self.symbols))
        for symbol in self.symbols.values():
            out += _pack_str(symbol.name)
            out += _pack_str(symbol.section)
            out += struct.pack("<IB", symbol.offset, 1 if symbol.binding == BIND_GLOBAL else 0)
        out += struct.pack("<I", len(self.relocations))
        for reloc in self.relocations:
            out += _pack_str(reloc.section)
            out += _pack_str(reloc.symbol)
            out += struct.pack("<Ii", reloc.offset, reloc.addend)
        return bytes(out)

    @classmethod
    def from_bytes(cls, data: bytes) -> "SefBinary":
        if data[:4] != MAGIC:
            raise BinaryFormatError("bad magic: not a SEF binary")
        offset = 4
        entry, offset = _unpack_str(data, offset)
        binary = cls(entry=entry)
        (n_meta,) = struct.unpack_from("<H", data, offset)
        offset += 2
        for _ in range(n_meta):
            key, offset = _unpack_str(data, offset)
            value, offset = _unpack_str(data, offset)
            binary.metadata[key] = value
        (n_sections,) = struct.unpack_from("<H", data, offset)
        offset += 2
        for _ in range(n_sections):
            name, offset = _unpack_str(data, offset)
            flags, nobits, reserve, data_len = struct.unpack_from("<BBII", data, offset)
            offset += 10
            (align,) = struct.unpack_from("<H", data, offset)
            offset += 2
            body = bytearray(data[offset : offset + data_len])
            offset += data_len
            binary.add_section(
                Section(
                    name=name,
                    flags=flags,
                    data=body,
                    nobits=bool(nobits),
                    reserve=reserve,
                    align=align,
                )
            )
        (n_symbols,) = struct.unpack_from("<I", data, offset)
        offset += 4
        for _ in range(n_symbols):
            name, offset = _unpack_str(data, offset)
            section, offset = _unpack_str(data, offset)
            sym_offset, binding = struct.unpack_from("<IB", data, offset)
            offset += 5
            binary.define_symbol(
                name,
                section,
                sym_offset,
                BIND_GLOBAL if binding else BIND_LOCAL,
            )
        (n_relocs,) = struct.unpack_from("<I", data, offset)
        offset += 4
        for _ in range(n_relocs):
            section, offset = _unpack_str(data, offset)
            symbol, offset = _unpack_str(data, offset)
            rel_offset, addend = struct.unpack_from("<Ii", data, offset)
            offset += 8
            binary.relocations.append(
                Relocation(section=section, offset=rel_offset, symbol=symbol, addend=addend)
            )
        binary.validate()
        return binary
