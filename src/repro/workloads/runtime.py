"""The mini-libc: syscall stubs, string helpers, OS personalities.

Every workload program links (textually) against this runtime.  Each
system call gets a straight-line stub::

    sys_open:
        li r0, 5
        sys
        ret

which is exactly the shape the installer's stub inliner recognizes, so
every *call* to a stub becomes its own policy site — reproducing the
paper's observation that "system calls are often made from stubs that
are invoked by many blocks".

Personalities (§4.2):

- ``linux`` -- every call is a direct stub.
- ``openbsd`` -- two deviations the paper reports for its OpenBSD port:

  1. ``mmap`` is invoked through ``__syscall``, the generic indirect
     system call, with the real number as the first argument.  Static
     analysis constrains that argument, so the ASC policy (correctly)
     lists ``__syscall`` while Systrace policies list ``mmap``.
  2. ``close`` loads its syscall number from a data word — the stand-in
     for "an unusual implementation ... that PLTO currently cannot
     disassemble".  Constant propagation cannot see through the load,
     so the call is *reported and omitted* from the ASC policy, which
     is how ``close`` ends up Systrace-only in Table 2.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.kernel.syscalls import SYSCALL_NUMBERS

PERSONALITIES = ("linux", "openbsd")


@dataclass(frozen=True)
class SyscallAbi:
    """How guest code reaches one system call on one personality."""

    name: str
    stub: str  # label of the stub to CALL
    direct: bool  # False when routed through __syscall


def runtime_source(
    personality: str = "linux",
    syscalls: tuple = (),
) -> str:
    """Render the runtime assembly for the requested personality.

    ``syscalls`` limits which stubs are emitted (programs list what
    they use, keeping binaries small); empty means "all".
    """
    if personality not in PERSONALITIES:
        raise ValueError(f"unknown personality {personality!r}")
    wanted = set(syscalls) if syscalls else set(SYSCALL_NUMBERS)
    lines: list[str] = ["; --- mini-libc runtime (%s) ---" % personality]
    lines.append(".section .text")

    for name in sorted(wanted):
        number = SYSCALL_NUMBERS[name]
        stub = stub_label(name)
        if personality == "openbsd" and name == "mmap":
            # mmap via the generic indirect syscall: shift args right,
            # pass the real number as argument 0.
            # Arguments shift right one slot; mmap's trailing offset
            # argument falls off the 6-register window, which the
            # kernel's mmap (like the paper-era one for anonymous maps)
            # ignores.
            lines += [
                f"{stub}:",
                "    mov r6, r5",
                "    mov r5, r4",
                "    mov r4, r3",
                "    mov r3, r2",
                "    mov r2, r1",
                f"    li r1, {SYSCALL_NUMBERS['mmap']}",
                f"    li r0, {SYSCALL_NUMBERS['__syscall']}",
                "    sys",
                "    ret",
            ]
        elif personality == "openbsd" and name == "close":
            # The number comes from memory; constant propagation stops
            # at the load, so the installer cannot identify the call.
            lines += [
                f"{stub}:",
                "    li r9, __close_number",
                "    ld r0, [r9+0]",
                "    sys",
                "    ret",
            ]
        else:
            lines += [
                f"{stub}:",
                f"    li r0, {number}",
                "    sys",
                "    ret",
            ]

    if personality == "openbsd" and "close" in wanted:
        lines += [
            ".section .data",
            "__close_number:",
            f"    .word {SYSCALL_NUMBERS['close']}",
            ".section .text",
        ]

    lines += _HELPERS
    return "\n".join(lines) + "\n"


def stub_label(name: str) -> str:
    return f"sys_{name.lstrip('_')}" if name.startswith("__") else f"sys_{name}"


#: String/memory helpers used by the tools.
#:
#: Register contract: arguments in r1..r3, result in r0; helpers
#: clobber ONLY r0, r9, r10.  Tools keep durable state in r11..r14 (and
#: r4..r6 between calls that do not use them as syscall arguments).
#: r7/r8 are reserved for the installer (auth record and hint pointers)
#: and must never carry program state across a system call.
_HELPERS = [
    "; --- helpers (clobber r0, r9, r10 only) ---",
    # strlen(r1) -> r0
    "rt_strlen:",
    "    li r0, 0",
    ".rt_strlen_loop:",
    "    add r9, r1, r0",
    "    ldb r10, [r9+0]",
    "    cmpi r10, 0",
    "    beq .rt_strlen_done",
    "    addi r0, r0, 1",
    "    jmp .rt_strlen_loop",
    ".rt_strlen_done:",
    "    ret",
    # memcpy(dst=r1, src=r2, n=r3)
    "rt_memcpy:",
    "    li r9, 0",
    ".rt_memcpy_loop:",
    "    cmp r9, r3",
    "    bge .rt_memcpy_done",
    "    add r10, r2, r9",
    "    ldb r0, [r10+0]",
    "    add r10, r1, r9",
    "    stb r0, [r10+0]",
    "    addi r9, r9, 1",
    "    jmp .rt_memcpy_loop",
    ".rt_memcpy_done:",
    "    ret",
    # memset(dst=r1, byte=r2, n=r3)
    "rt_memset:",
    "    li r9, 0",
    ".rt_memset_loop:",
    "    cmp r9, r3",
    "    bge .rt_memset_done",
    "    add r10, r1, r9",
    "    stb r2, [r10+0]",
    "    addi r9, r9, 1",
    "    jmp .rt_memset_loop",
    ".rt_memset_done:",
    "    ret",
    # strcpy(dst=r1, src=r2) -> r0 = length copied (excl. NUL)
    "rt_strcpy:",
    "    li r0, 0",
    ".rt_strcpy_loop:",
    "    add r9, r2, r0",
    "    ldb r10, [r9+0]",
    "    add r9, r1, r0",
    "    stb r10, [r9+0]",
    "    cmpi r10, 0",
    "    beq .rt_strcpy_done",
    "    addi r0, r0, 1",
    "    jmp .rt_strcpy_loop",
    ".rt_strcpy_done:",
    "    ret",
    # strcmp(r1, r2) -> r0 (0 when equal)
    "rt_strcmp:",
    "    li r9, 0",
    ".rt_strcmp_loop:",
    "    add r10, r1, r9",
    "    ldb r0, [r10+0]",
    "    add r10, r2, r9",
    "    ldb r10, [r10+0]",
    "    cmp r0, r10",
    "    bne .rt_strcmp_diff",
    "    cmpi r0, 0",
    "    beq .rt_strcmp_eq",
    "    addi r9, r9, 1",
    "    jmp .rt_strcmp_loop",
    ".rt_strcmp_eq:",
    "    li r0, 0",
    "    ret",
    ".rt_strcmp_diff:",
    "    sub r0, r0, r10",
    "    ret",
]
