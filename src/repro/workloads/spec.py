"""Macro-benchmark programs (Tables 5 and 6).

Each program models its namesake's *dynamic* profile: total baseline
runtime and system-call density.  The loop body does real work — it
checksums a buffer, seeks, writes, and reads back a 1 KiB record
against the simulated VFS — and models its namesake's computational
bulk with a ``CPUWORK`` region (the standard trace-driven-simulation
device for compute phases; see DESIGN.md).

Scaling: one paper-second is modelled as 2.4e6 cycles (the paper's
2.4 GHz testbed scaled by 1/1000 so whole-suite runs stay tractable).
Overhead percentages — the actual claim of Table 6 — are scale-free:
they depend only on the ratio of authentication cycles to baseline
cycles per call, both of which are full-fidelity.

The per-program syscall counts are solved from the paper's published
overhead so that *if* the authentication surcharge per call matches
the microbenchmark (Table 4), the macro overhead lands on Table 6's
column; the benches then measure the real surcharge end-to-end.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.asm import assemble
from repro.binfmt import SefBinary
from repro.kernel.costs import CostModel
from repro.workloads.runtime import runtime_source, stub_label

#: Simulated cycles per (scaled) second: 2.4 GHz / 1000.
CYCLES_PER_SCALED_SECOND = 2_400_000

#: Estimated authentication surcharge per call (cycles), used only to
#: size the workloads; measured values come from the benches.
AUTH_ESTIMATE = 5200

#: Cycle cost of the real per-iteration work outside CPUWORK: the
#: 256-byte checksum loop plus loop control (measured once, stable
#: because the cost model is deterministic).
REAL_WORK_ESTIMATE = 2360

_RECORD = 1024


@dataclass(frozen=True)
class SpecProgram:
    name: str
    kind: str  # "CPU" | "syscall" | "syscall & CPU"
    description: str
    #: Baseline runtime from Table 6, in (scaled) seconds.
    base_seconds: float
    #: Target overhead %, from Table 6 (used to size syscall density).
    paper_overhead: float

    @property
    def base_cycles(self) -> int:
        return int(self.base_seconds * CYCLES_PER_SCALED_SECOND)

    def plan(self) -> tuple[int, int]:
        """Solve (iterations, cpuwork_per_iteration).

        Each iteration performs 4 system calls (lseek, write, lseek,
        read); syscall count is chosen so estimated auth cycles hit the
        paper's overhead against the baseline cycle budget."""
        costs = CostModel()
        mix_cost = (
            2 * costs.syscall_cost("lseek")
            + costs.syscall_cost("write", _RECORD)
            + costs.syscall_cost("read", _RECORD)
        )
        total_syscalls = max(
            4, int(round(self.paper_overhead / 100 * self.base_cycles / AUTH_ESTIMATE))
        )
        iterations = max(1, total_syscalls // 4)
        per_iteration = self.base_cycles // iterations
        cpuwork = max(0, per_iteration - mix_cost - REAL_WORK_ESTIMATE)
        return iterations, cpuwork


SPEC_PROGRAMS: dict[str, SpecProgram] = {
    "gzip-spec": SpecProgram(
        "gzip-spec", "CPU",
        "file compression program from SPEC INT 2000 benchmark", 152.48, 1.41,
    ),
    "crafty": SpecProgram(
        "crafty", "CPU",
        "Game playing (Chess) program from SPEC INT 2000 benchmark", 107.60, 1.40,
    ),
    "mcf": SpecProgram(
        "mcf", "CPU",
        "combinatorial optimization program from SPEC INT 2000", 237.48, 0.73,
    ),
    "vpr": SpecProgram(
        "vpr", "CPU",
        "FPGA circuit and routing placement from SPEC INT 2000", 17.29, 1.16,
    ),
    "twolf": SpecProgram(
        "twolf", "CPU",
        "Place and route simulator from SPEC INT 2000", 391.04, 1.70,
    ),
    "gcc": SpecProgram(
        "gcc", "syscall & CPU",
        "Gnu C compiler from SPEC INT 2000", 93.01, 1.39,
    ),
    "vortex": SpecProgram(
        "vortex", "syscall & CPU",
        "Object oriented database from SPEC INT 2000", 164.15, 0.84,
    ),
    "pyramid": SpecProgram(
        "pyramid", "syscall",
        "Multidimensional database index creation", 1.01, 7.92,
    ),
    "gzip": SpecProgram(
        "gzip", "syscall",
        "file compression program", 2.83, 1.06,
    ),
}


def build_spec_program(
    name: str,
    personality: str = "linux",
    iterations: int = 0,
) -> SefBinary:
    """Assemble one macro-benchmark program.

    ``iterations`` overrides the planned count (for fast unit tests);
    CPUWORK per iteration is unchanged, so overhead ratios survive."""
    program = SPEC_PROGRAMS[name]
    planned_iterations, cpuwork = program.plan()
    if iterations <= 0:
        iterations = planned_iterations

    source = f"""
.section .text
.global _start
_start:
    ; open the scratch record file
    li r1, path
    li r2, 0x242
    li r3, 0x1a4
    call {stub_label('open')}
    cmpi r0, 0
    blt fail
    mov r4, r0           ; fd
    li r14, {iterations} ; remaining iterations
iter_loop:
    cpuwork {cpuwork}
    ; real work: checksum the record buffer
    li r11, 0            ; checksum
    li r12, 0            ; index
sum_loop:
    cmpi r12, 256
    bge sum_done
    li r9, record
    add r9, r9, r12
    ldb r10, [r9+0]
    add r11, r11, r10
    addi r12, r12, 1
    jmp sum_loop
sum_done:
    ; fold the checksum into the record so the work is not dead
    li r9, record
    stb r11, [r9+0]
    ; rewind, write, rewind, read back
    mov r1, r4
    li r2, 0
    li r3, 0
    call {stub_label('lseek')}
    mov r1, r4
    li r2, record
    li r3, {_RECORD}
    call {stub_label('write')}
    mov r1, r4
    li r2, 0
    li r3, 0
    call {stub_label('lseek')}
    mov r1, r4
    li r2, record
    li r3, {_RECORD}
    call {stub_label('read')}
    subi r14, r14, 1
    cmpi r14, 0
    bgt iter_loop
    mov r1, r4
    call {stub_label('close')}
    li r1, 0
    call {stub_label('exit')}
fail:
    li r1, 1
    call {stub_label('exit')}
.section .rodata
path:
    .asciz "/tmp/{name}.dat"
.section .bss
record:
    .space {_RECORD}
"""
    source += runtime_source(
        personality, ("open", "close", "read", "write", "lseek", "exit")
    )
    return assemble(
        source, metadata={"program": name, "personality": personality}
    )
