"""Workload corpus: the programs the evaluation runs.

The paper measures real Unix binaries (bison, calc, screen, tar, the
SPECint-2000 suite, and a toolbox of gzip/rm/mv/... for the Andrew-like
benchmark).  Those binaries cannot run on SVM32, so this package
provides:

- :mod:`repro.workloads.runtime` -- the "mini-libc": syscall stubs and
  string helpers in SVM32 assembly, with per-OS *personalities* that
  reproduce the cross-platform effects of §4.2 (OpenBSD's ``__syscall``
  indirection for mmap; its ``close`` implementation that the
  disassembler cannot decode).
- :mod:`repro.workloads.tools` -- real, runnable mini-tools (cat, cp,
  mv, rm, chmod, mkdir, ls, tar, untar, gzip, gunzip, ...) written in
  the assembly DSL; these do genuine work against the simulated VFS.
- :mod:`repro.workloads.profiles` -- synthesized *profile programs*
  reproducing the published static structure of bison / calc / screen /
  tar (Tables 1-3): the same distinct-syscall inventories, call-site
  counts, and argument-class mix, fed through the real installer.
- :mod:`repro.workloads.spec` -- dynamic-behaviour programs for the
  Table 5/6 macrobenchmarks: each models its namesake's syscall density
  and CPU intensity.
- :mod:`repro.workloads.andrew` -- the multiprogram (Andrew-like)
  benchmark driver of §4.3.
"""

from repro.workloads.runtime import SyscallAbi, runtime_source
from repro.workloads.tools import TOOLS, build_tool
from repro.workloads.profiles import (
    PROFILE_PROGRAMS,
    build_profile_program,
    profile_syscalls,
)
from repro.workloads.spec import SPEC_PROGRAMS, build_spec_program
from repro.workloads.andrew import AndrewBenchmark
from repro.workloads.multiproc import build_server, server_source

__all__ = [
    "AndrewBenchmark",
    "PROFILE_PROGRAMS",
    "SPEC_PROGRAMS",
    "SyscallAbi",
    "TOOLS",
    "build_profile_program",
    "build_server",
    "build_spec_program",
    "build_tool",
    "profile_syscalls",
    "runtime_source",
    "server_source",
]
