"""The multi-process server workload: one master, N pipe-fed workers.

This is the scheduler's acceptance workload.  The master creates one
kernel pipe per worker *before* forking, so the fd numbers — and the
``pipefds`` array the pipe() calls filled in — are identical in every
child's inherited image.  Each worker drains its own pipe of 8-byte
request records, burns a spin loop per record (real instructions, so
the preemptive timeslice fires mid-request), echoes the record to its
own stdout, and exits with its handled count.  The master feeds
``requests`` records round-robin, closes the write ends (delivering
EOF), reaps every child with ``wait4(-1)``, and exits 0 iff the summed
handled counts equal the number of requests fed.

The program only works under the scheduler: ``fork`` returns EAGAIN in
single-process (synchronous) mode and the program exits 1.  That is
deliberate — it is the regression canary that ``run --procs`` actually
engaged multiprogramming.
"""

from __future__ import annotations

from repro.asm import assemble
from repro.binfmt import SefBinary
from repro.workloads.runtime import runtime_source, stub_label

#: Bytes per request record fed through a pipe.
RECORD_SIZE = 8

#: Default spin-loop trip count per record.  Each trip is 3
#: instructions, so the default burns ~1800 instructions per request —
#: comfortably more than the small timeslices the tests schedule with,
#: forcing mid-request preemption.
DEFAULT_SPIN = 600


def server_source(
    workers: int = 4,
    requests: int = 16,
    spin: int = DEFAULT_SPIN,
    personality: str = "linux",
) -> str:
    """Render the master/worker server as assembly source."""
    if workers < 1:
        raise ValueError("need at least one worker")
    if requests < 0:
        raise ValueError("requests must be non-negative")
    if requests > 255 * workers:
        # A worker's handled count rides in the 8-bit exit status.
        raise ValueError("too many requests for 8-bit handled counts")

    source = f"""
.section .text
.global _start
_start:
    ; --- create one pipe per worker, before any fork, so fd numbers
    ;     and the pipefds array agree across every inherited image ---
    li r11, 0
make_pipes:
    cmpi r11, {workers}
    bge pipes_done
    li r9, pipefds
    shli r10, r11, 3
    add r1, r9, r10
    call {stub_label('pipe')}
    cmpi r0, 0
    bne fail
    addi r11, r11, 1
    jmp make_pipes
pipes_done:
    ; --- fork the workers; r11 is the worker index in each child ---
    li r11, 0
fork_loop:
    cmpi r11, {workers}
    bge master
    call {stub_label('fork')}
    cmpi r0, 0
    beq worker
    blt fail
    addi r11, r11, 1
    jmp fork_loop

; ---------------------------------------------------------------- worker
worker:
    ; close every write end, and the read ends of the other workers'
    ; pipes; keeping only our own read end lets writer-close drive EOF
    li r14, 0
worker_close:
    cmpi r14, {workers}
    bge worker_ready
    li r9, pipefds
    shli r10, r14, 3
    add r10, r9, r10
    ld r1, [r10+4]
    call {stub_label('close')}
    cmp r14, r11
    beq worker_close_next
    ld r1, [r10+0]
    call {stub_label('close')}
worker_close_next:
    addi r14, r14, 1
    jmp worker_close
worker_ready:
    li r9, pipefds
    shli r10, r11, 3
    add r10, r9, r10
    ld r12, [r10+0]      ; r12 = our read fd
    li r13, 0            ; r13 = handled count
worker_loop:
    mov r1, r12
    li r2, record
    li r3, {RECORD_SIZE}
    call {stub_label('read')}
    cmpi r0, 0
    beq worker_done      ; EOF: every writer closed
    blt fail
    ; per-request work: real instructions, so the timeslice preempts
    ; the worker mid-request
    li r9, {spin}
worker_spin:
    subi r9, r9, 1
    cmpi r9, 0
    bgt worker_spin
    li r1, 1
    li r2, record
    li r3, {RECORD_SIZE}
    call {stub_label('write')}
    addi r13, r13, 1
    jmp worker_loop
worker_done:
    mov r1, r13
    call {stub_label('exit')}

; ---------------------------------------------------------------- master
master:
    ; drop the read ends; the workers own those
    li r14, 0
master_close_reads:
    cmpi r14, {workers}
    bge feed
    li r9, pipefds
    shli r10, r14, 3
    add r10, r9, r10
    ld r1, [r10+0]
    call {stub_label('close')}
    addi r14, r14, 1
    jmp master_close_reads
feed:
    ; feed request j to worker (j mod {workers})
    li r11, 0
feed_loop:
    cmpi r11, {requests}
    bge feed_done
    li r9, {workers}
    mod r10, r11, r9
    shli r10, r10, 3
    li r9, pipefds
    add r10, r9, r10
    ld r1, [r10+4]
    li r9, record
    st r11, [r9+0]
    li r10, 0x51455221   ; request marker
    st r10, [r9+4]
    li r2, record
    li r3, {RECORD_SIZE}
    call {stub_label('write')}
    cmpi r0, {RECORD_SIZE}
    bne fail
    addi r11, r11, 1
    jmp feed_loop
feed_done:
    ; close the write ends: the workers' next empty read returns EOF
    li r14, 0
master_close_writes:
    cmpi r14, {workers}
    bge reap
    li r9, pipefds
    shli r10, r14, 3
    add r10, r9, r10
    ld r1, [r10+4]
    call {stub_label('close')}
    addi r14, r14, 1
    jmp master_close_writes
reap:
    ; wait4(-1) once per worker, summing the handled counts carried in
    ; the exit statuses
    li r13, 0            ; summed handled counts
    li r14, 0
reap_loop:
    cmpi r14, {workers}
    bge reap_done
    li r1, 0xFFFFFFFF    ; pid -1: any child
    li r2, wstatus
    li r3, 0
    li r4, 0
    call {stub_label('wait4')}
    cmpi r0, 0
    blt fail
    li r9, wstatus
    ld r10, [r9+0]
    shri r10, r10, 8     ; normal exit: code lives in bits 8..15
    add r13, r13, r10
    addi r14, r14, 1
    jmp reap_loop
reap_done:
    cmpi r13, {requests}
    bne fail
    li r1, 0
    call {stub_label('exit')}
fail:
    li r1, 1
    call {stub_label('exit')}
.section .data
pipefds:
    .space {workers * 8}
wstatus:
    .space 4
.section .bss
record:
    .space {RECORD_SIZE}
"""
    source += runtime_source(
        personality,
        ("pipe", "fork", "close", "read", "write", "wait4", "exit"),
    )
    return source


def build_server(
    workers: int = 4,
    requests: int = 16,
    spin: int = DEFAULT_SPIN,
    personality: str = "linux",
) -> SefBinary:
    """Assemble the multi-process server."""
    return assemble(
        server_source(workers, requests, spin, personality),
        metadata={"program": "multiproc-server", "personality": personality},
    )
