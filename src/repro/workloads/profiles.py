"""Profile programs: bison / calc / screen / tar, structurally.

The paper's Tables 1-3 measure the *installer's static analysis* over
four real Unix programs.  Those binaries cannot exist on SVM32, so each
is synthesized from its published static profile: the same number of
call sites, the same count of distinct system calls, and an argument
mix (constants / strings / unknowns / output pointers / fd provenance /
multi-value) planned to land on the published Table 3 row.  The
synthesized program is then fed through the *real* analysis and
installation pipeline — nothing in the measured path is faked.

Each program really runs: sites execute in order against the simulated
VFS (errors from probe calls are tolerated, as real programs tolerate
ENOENT).  A command-line mode gates the rare regions in two levels:
no argument runs only the common paths; ``train`` additionally runs
the rares the *published* trained policies observed; ``full`` runs
everything.  Training never reaches the last tier — which is precisely
why trained Systrace policies miss those calls while conservative
static analysis finds them (§4.2).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.asm import assemble
from repro.binfmt import SefBinary
from repro.installer.signatures import signature_for
from repro.workloads.runtime import runtime_source, stub_label


@dataclass(frozen=True)
class Table3Row:
    sites: int
    calls: int
    args: int
    outputs: int  # "o/p"
    auth: int
    mv: int
    fds: int


@dataclass
class ProgramProfile:
    name: str
    #: Distinct syscalls exercised on common paths (training sees these).
    common_calls: tuple
    #: Distinct syscalls on rare paths (static analysis only).
    rare_calls: tuple
    #: Rare-path syscalls that the *published trained policies* did
    #: observe (their training was broader than ours); executed at
    #: gate level 1 ("train" mode) as well as level 2 ("full").
    trained_rare: tuple = ()
    #: Syscalls present on Linux but not the OpenBSD build, and vice
    #: versa (personality differences beyond the mmap/close mechanics).
    linux_only: tuple = ()
    openbsd_only: tuple = ()
    target: Optional[Table3Row] = None
    #: Relative site-count weights (default 1).
    weights: dict = field(default_factory=dict)


#: Baseline weights: I/O-heavy calls own most sites in real binaries.
_DEFAULT_WEIGHTS = {
    "read": 10, "write": 14, "open": 8, "close": 8, "lseek": 4,
    "stat": 4, "fstat": 3, "brk": 3, "access": 3, "ioctl": 3,
    "fcntl": 3, "writev": 2, "mmap": 2, "getdirentries": 2,
}

# Per-program syscall inventories.  ``common`` and ``rare`` are
# disjoint and personality-independent; ``linux_only``/``openbsd_only``
# are rare-path additions of one personality.  Distinct-call counts are
# arranged so Table 1 is met exactly:
#   linux ASC     = |common| + |rare| + |linux_only|
#   openbsd ASC   = |common| + |rare| + |openbsd_only| - 1   (close is
#                   unidentifiable on OpenBSD, §4.2)

_BISON_COMMON = (
    "exit", "read", "write", "open", "close", "brk", "lseek", "access",
    "stat", "fstat", "dup", "chdir", "ioctl", "umask", "getuid", "mmap",
)
_BISON_RARE = (
    "fcntl", "getdirentries", "getpid", "gettimeofday", "kill",
    "madvise", "nanosleep", "sendto", "sigaction", "socket", "sysconf",
    "uname", "writev", "geteuid", "time",
)

_CALC_COMMON = _BISON_COMMON + ("getgid",)
_CALC_RARE = _BISON_RARE + (
    "getegid", "times", "getcwd", "mprotect", "munmap",
    "alarm", "utime", "sigprocmask", "getrlimit", "getrusage", "truncate",
    "ftruncate", "fchmod", "fsync", "select", "poll", "statfs",
    "rename", "unlink",
)

_SCREEN_COMMON = _CALC_COMMON + (
    "getpgrp", "setsid", "getppid", "link", "symlink", "readlink",
)
_SCREEN_RARE = _CALC_RARE + (
    "setuid", "setgid", "setrlimit", "fchown", "chown", "fchdir",
)

_TAR_COMMON = _BISON_COMMON + (
    "rename", "unlink", "mkdir", "readlink", "link", "utime",
)
_TAR_RARE = _BISON_RARE + (
    "symlink", "rmdir", "fchmod", "chown", "getgid", "getegid",
    "sigprocmask", "getrlimit", "select", "times", "mprotect", "getcwd",
    "getpgrp", "setuid", "setgid", "flock", "fsync", "truncate",
    "ftruncate", "statfs", "poll",
)

PROFILE_PROGRAMS: dict[str, ProgramProfile] = {
    "bison": ProgramProfile(
        name="bison",
        common_calls=_BISON_COMMON,           # 16
        rare_calls=_BISON_RARE,               # 15 -> base 31
        openbsd_only=("fstatfs",),
        target=Table3Row(sites=158, calls=31, args=321, outputs=31, auth=90, mv=2, fds=69),
    ),
    "calc": ProgramProfile(
        name="calc",
        common_calls=_CALC_COMMON,            # 22
        rare_calls=_CALC_RARE,                # 29 -> base 51
        linux_only=("readv", "sched_yield", "getgroups"),
        openbsd_only=("fstatfs",),
        target=Table3Row(sites=275, calls=54, args=544, outputs=78, auth=183, mv=2, fds=109),
    ),
    "screen": ProgramProfile(
        name="screen",
        common_calls=_SCREEN_COMMON,
        rare_calls=_SCREEN_RARE,
        trained_rare=(
            "fcntl", "getdirentries", "getpid", "gettimeofday", "sigaction",
            "socket", "uname", "writev", "geteuid", "time", "getegid",
            "times", "getcwd", "mprotect", "munmap", "alarm", "sigprocmask",
            "getrlimit", "getrusage", "select", "statfs", "rename", "unlink",
            "setuid", "setgid", "setrlimit", "fchown", "chown",
        ),
        linux_only=("pipe", "dup2", "chmod", "flock"),
        openbsd_only=("fstatfs",),
        target=Table3Row(sites=639, calls=67, args=1164, outputs=133, auth=363, mv=7, fds=297),
    ),
    "tar": ProgramProfile(
        name="tar",
        common_calls=_TAR_COMMON,             # 22
        rare_calls=_TAR_RARE,                 # 36 -> base 58
        openbsd_only=("fstatfs",),
        target=Table3Row(sites=381, calls=58, args=750, outputs=105, auth=238, mv=3, fds=152),
    ),
}


def profile_syscalls(name: str, personality: str = "linux") -> list[str]:
    """The distinct syscalls the ``personality`` build of ``name`` uses."""
    profile = PROFILE_PROGRAMS[name]
    calls = list(profile.common_calls) + list(profile.rare_calls)
    extras = profile.linux_only if personality == "linux" else profile.openbsd_only
    calls += [c for c in extras if c not in calls]
    return calls


# ---------------------------------------------------------------------------
# site planning
# ---------------------------------------------------------------------------


@dataclass
class SitePlan:
    syscall: str
    #: per-argument plan: "out" | "const" | "str" | "fd" | "mv" | "unk"
    args: list
    rare: bool = False
    #: Producer sites open the scratch file / directory / socket whose
    #: descriptors feed the "fd" arguments of later sites.
    producer: str = ""


def _allocate_sites(
    calls: list[str], profile: ProgramProfile
) -> dict[str, int]:
    """Distribute the target site count across the distinct calls."""
    target = profile.target
    counts = {name: 1 for name in calls}
    weights = {
        name: profile.weights.get(name, _DEFAULT_WEIGHTS.get(name, 1))
        for name in calls
    }
    remaining = target.sites - len(calls)
    if remaining < 0:
        raise ValueError(
            f"{profile.name}: more distinct calls than sites ({len(calls)} "
            f"> {target.sites})"
        )
    total_weight = sum(weights.values())
    fractions = []
    for name in calls:
        share = remaining * weights[name] / total_weight
        counts[name] += int(share)
        fractions.append((share - int(share), name))
    leftover = target.sites - sum(counts.values())
    for _, name in sorted(fractions, reverse=True)[:leftover]:
        counts[name] += 1

    # Local search: nudge counts so total args, output-args, and the
    # fd-argument capacity approach the published row (moving a site
    # between calls keeps `sites` constant while shifting the sums by
    # the signature differences).  Sums are maintained incrementally so
    # each candidate move is O(1).
    arity = {n: signature_for(n).nargs for n in calls}
    outs_of = {n: len(signature_for(n).outputs) for n in calls}
    fds_of = {n: len(signature_for(n).fd_args) for n in calls}
    args_sum = sum(arity[n] * c for n, c in counts.items())
    outs_sum = sum(outs_of[n] * c for n, c in counts.items())
    fd_slots = sum(fds_of[n] * c for n, c in counts.items())

    def score(args, outs, slots) -> int:
        shortfall = max(0, target.fds - slots)
        return (
            abs(args - target.args)
            + 2 * abs(outs - target.outputs)
            + 2 * shortfall
        )

    for _ in range(800):
        best = score(args_sum, outs_sum, fd_slots)
        best_move = None
        for donor in calls:
            if counts[donor] <= 1:
                continue
            for receiver in calls:
                if receiver == donor:
                    continue
                candidate = score(
                    args_sum - arity[donor] + arity[receiver],
                    outs_sum - outs_of[donor] + outs_of[receiver],
                    fd_slots - fds_of[donor] + fds_of[receiver],
                )
                if candidate < best:
                    best = candidate
                    best_move = (donor, receiver)
        if best_move is None:
            break
        donor, receiver = best_move
        counts[donor] -= 1
        counts[receiver] += 1
        args_sum += arity[receiver] - arity[donor]
        outs_sum += outs_of[receiver] - outs_of[donor]
        fd_slots += fds_of[receiver] - fds_of[donor]
    return counts


def plan_sites(profile: ProgramProfile, personality: str) -> list[SitePlan]:
    """Produce per-site argument plans hitting the Table 3 budgets."""
    calls = profile_syscalls(profile.name, personality)
    counts = _allocate_sites(calls, profile)
    rare = set(profile.rare_calls) | set(profile.linux_only) | set(profile.openbsd_only)
    target = profile.target

    plans: list[SitePlan] = []
    for name in calls:
        signature = signature_for(name)
        for _ in range(counts[name]):
            plans.append(
                SitePlan(syscall=name, args=[None] * signature.nargs, rare=name in rare)
            )

    # Producer sites: the first two open sites and the first socket site
    # have fixed, fully-constant arguments (they must really succeed so
    # later fd arguments have live descriptors to carry).
    producers_needed = ["file", "dir"]
    for plan in plans:
        if plan.syscall == "open" and producers_needed:
            plan.producer = producers_needed.pop(0)
            plan.args = ["str", "const", "const"]
            plan.rare = False
    # (sendto sites borrow the file descriptor, so no socket producer
    # is needed; socket sites stay ordinary — and rare — sites.)
    # The one live exit site always passes a constant status.
    for plan in plans:
        if plan.syscall == "exit":
            plan.producer = "exit"
            plan.args = ["const"]
            plan.rare = False
            break

    # Pass 1: outputs are fixed; fd arguments claim the fd budget.
    fd_budget = target.fds
    mv_budget = target.mv
    for plan in plans:
        signature = signature_for(plan.syscall)
        for index in range(signature.nargs):
            if index in signature.outputs:
                plan.args[index] = "out"
            elif index in signature.fd_args:
                if fd_budget > 0:
                    plan.args[index] = "fd"
                    fd_budget -= 1
                else:
                    plan.args[index] = "unk"

    # Pass 2: constants claim the auth budget (string args become AS
    # strings, others immediates); a few become multi-value; the rest
    # are unknown.  Producer sites' fixed constants are pre-charged.
    auth_budget = target.auth - sum(
        1
        for plan in plans
        if plan.producer
        for kind in plan.args
        if kind in ("str", "const")
    )
    for plan in plans:
        signature = signature_for(plan.syscall)
        for index in range(signature.nargs):
            if plan.args[index] is not None:
                continue
            if (
                mv_budget > 0
                and index not in signature.string_args
                and plan.syscall != "exit"
            ):
                plan.args[index] = "mv"
                mv_budget -= 1
            elif auth_budget > 0:
                plan.args[index] = "str" if index in signature.string_args else "const"
                auth_budget -= 1
            else:
                plan.args[index] = "unk"
    return plans


# ---------------------------------------------------------------------------
# program emission
# ---------------------------------------------------------------------------

_SAFE_CONSTS = {  # innocuous constant per (syscall, arg) where it matters
    ("kill", 1): 0,  # signal 0: existence probe, never lethal
    ("exit", 0): 0,
    ("open", 1): 0,  # O_RDONLY
    ("setuid", 0): 1000,
    ("setgid", 0): 1000,
}

_PATHS = ["/tmp/prof.dat", "/tmp", "/etc/motd", "/tmp/prof2.dat", "/dev/console"]


def build_profile_program(name: str, personality: str = "linux") -> SefBinary:
    """Synthesize and assemble one profile program."""
    profile = PROFILE_PROGRAMS[name]
    plans = plan_sites(profile, personality)
    lines: list[str] = [
        ".section .text",
        ".global _start",
        "_start:",
        "    mov r12, r1",  # argc (also the dynamic seed for mv branches)
        # gate level: 0 = common only, 1 = +trained rares ("train"),
        # 2 = everything ("full" - any argv[1] starting with 'f')
        "    li r11, 0",
        "    cmpi r12, 2",
        "    blt .mode_done",
        "    li r11, 1",
        "    ld r9, [r2+4]",   # argv[1]
        "    ldb r9, [r9+0]",
        "    cmpi r9, 'f'",
        "    bne .mode_done",
        "    li r11, 2",
        ".mode_done:",
    ]

    # fd producers: scratch file (r4), directory (r5), socket (r6).
    for plan in plans:
        if plan.producer == "file":
            lines += [
                "    li r1, path_scratch",
                "    li r2, 0x242",  # O_RDWR|O_CREAT|O_TRUNC
                "    li r3, 0x1a4",
                f"    call {stub_label('open')}",
                "    mov r13, r0",
            ]
        elif plan.producer == "dir":
            lines += [
                "    li r1, path_dir",
                "    li r2, 0",
                "    li r3, 0",
                f"    call {stub_label('open')}",
                "    mov r14, r0",
            ]


    label_counter = [0]

    def fresh(stem: str) -> str:
        label_counter[0] += 1
        return f".{stem}{label_counter[0]}"

    strings: dict[str, str] = {}

    def string_label(text: str) -> str:
        if text not in strings:
            strings[text] = f"pstr_{len(strings)}"
        return strings[text]

    # Pre-claim producer/path labels.
    string_label("/tmp/prof.dat")
    string_label("/tmp")

    def emit_site(plan: SitePlan, site_index: int) -> None:
        signature = signature_for(plan.syscall)
        for index, kind in enumerate(plan.args):
            reg = f"r{1 + index}"
            if kind == "out":
                lines.append(f"    li {reg}, scratch")
            elif kind == "fd":
                source = "r14" if plan.syscall == "getdirentries" else "r13"
                lines.append(f"    mov {reg}, {source}")
            elif kind == "const":
                value = _SAFE_CONSTS.get((plan.syscall, index), (site_index + index) % 7)
                lines.append(f"    li {reg}, {value}")
            elif kind == "str":
                path = _PATHS[(site_index + index) % len(_PATHS)]
                lines.append(f"    li {reg}, {string_label(path)}")
            elif kind == "mv":
                a, b = fresh("mva"), fresh("mvb")
                lines.extend([
                    "    andi r9, r12, 1",
                    "    cmpi r9, 0",
                    f"    beq {a}",
                    f"    li {reg}, {2 + index}",
                    f"    jmp {b}",
                    f"{a}:",
                    f"    li {reg}, {4 + index}",
                    f"{b}:",
                ])
            else:  # unknown
                lines.extend([
                    "    li r10, scratch",
                    f"    ld {reg}, [r10+0]",
                ])
        lines.append(f"    call {stub_label(plan.syscall)}")

    # kill sites need the current pid in arg 0 to be a harmless probe;
    # override: arg0 dynamic (unknown), arg1 constant 0 is handled by
    # _SAFE_CONSTS.  exit sites other than the last must never run.
    exit_plans = [p for p in plans if p.syscall == "exit"]
    common = [p for p in plans if not p.rare and p.syscall != "exit" and not p.producer]
    trained = set(profile.trained_rare)
    rare_trained = [
        p for p in plans if p.rare and p.syscall != "exit" and p.syscall in trained
    ]
    rare_untrained = [
        p for p in plans
        if p.rare and p.syscall != "exit" and p.syscall not in trained
    ]

    site_index = 0
    for plan in common:
        emit_site(plan, site_index)
        site_index += 1

    skip_trained = fresh("skiptrained")
    lines += ["    cmpi r11, 1", f"    blt {skip_trained}"]
    for plan in rare_trained:
        emit_site(plan, site_index)
        site_index += 1
    lines.append(f"{skip_trained}:")

    skip_rare = fresh("skiprare")
    lines += ["    cmpi r11, 2", f"    blt {skip_rare}"]
    for plan in rare_untrained:
        emit_site(plan, site_index)
        site_index += 1
    lines.append(f"{skip_rare}:")

    # Dead exit sites (statically present, dynamically unreachable:
    # argc is never 0, so the branch is never taken at runtime).
    for plan in exit_plans[1:]:
        taken = fresh("deadexit")
        cont = fresh("cont")
        lines += [
            "    cmpi r12, 0",
            f"    beq {taken}",
            f"    jmp {cont}",
            f"{taken}:",
        ]
        emit_site(plan, site_index)
        lines.append(f"{cont}:")
        site_index += 1

    # The one live exit.
    final = exit_plans[0] if exit_plans else SitePlan("exit", ["const"])
    if final.args and final.args[0] != "const":
        final.args[0] = "const"
    emit_site(final, site_index)

    # Data sections.
    lines.append(".section .rodata")
    lines.append("path_scratch:")
    lines.append('    .asciz "/tmp/prof.dat"')
    lines.append("path_dir:")
    lines.append('    .asciz "/tmp"')
    for text, label in strings.items():
        lines.append(f"{label}:")
        escaped = text.replace("\\", "\\\\").replace('"', '\\"')
        lines.append(f'    .asciz "{escaped}"')
    lines.append(".section .bss")
    lines.append("scratch:")
    lines.append("    .space 8192")

    used = sorted({p.syscall for p in plans} | {"open", "exit"})
    source = "\n".join(lines) + "\n" + runtime_source(personality, tuple(used))
    return assemble(
        source,
        metadata={"program": name, "personality": personality},
    )
