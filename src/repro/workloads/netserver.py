"""The network server workload: one listener, N forked client processes.

This is the loopback stack's acceptance workload (the networking
analogue of :mod:`repro.workloads.multiproc`).  The master creates a
stream socket, binds it to the constant service name — which the
installer authenticates as a string parameter of the ``bind`` site —
and listens with a backlog sized for every client, *before* forking, so
clients never race the listener into ``ECONNREFUSED``.  Each forked
client dials the same constant name, sends ``requests`` fixed-size
request records, checks each echoed response, then shuts down its write
side and waits for the server's EOF.  The master accepts and serves the
connections sequentially (client order is the deterministic accept-queue
order), echoing records and burning a spin loop per request so the
preemptive timeslice fires mid-request, then reaps every child with
``wait4`` and exits 0 iff every count agrees.

All transfers are 8-byte records and the per-direction stream buffer is
a multiple of 8, so sends and receives never split a record: a client
``recv`` either blocks or returns one whole response.  Every socket
call site passes its buffer pointer and length as ``li`` constants —
the installer derives Immediate constraints for them, which is what the
tampered-send attack and the ``sock-reg-tamper`` fault kind rely on.

Like multiproc, the program requires a scheduler: ``fork`` fails
synchronously and the program exits 1, the canary that ``run --net``
actually engaged multiprogramming.
"""

from __future__ import annotations

from repro.asm import assemble
from repro.binfmt import SefBinary
from repro.workloads.runtime import runtime_source, stub_label

#: Bytes per request/response record.
RECORD_SIZE = 8

#: Marker word carried in every request (and echoed back).
REQUEST_MARKER = 0x4E455121  # "NEQ!"

#: Default spin-loop trip count per served request.
DEFAULT_SPIN = 300

#: The service name clients dial.  A constant in ``.rodata``, so the
#: bind and connect sites carry it as an authenticated string parameter.
SERVICE_NAME = "svc:echo"


def netserver_source(
    clients: int = 4,
    requests: int = 8,
    spin: int = DEFAULT_SPIN,
    personality: str = "linux",
) -> str:
    """Render the echo server and its forked clients as assembly."""
    if clients < 1:
        raise ValueError("need at least one client")
    if not 0 < requests <= 255:
        # A client's completed count rides in the 8-bit exit status.
        raise ValueError("requests per client must fit an exit status")
    if clients > 64:
        raise ValueError("backlog (and listen queue) caps at 64 clients")
    total = clients * requests

    source = f"""
.section .text
.global _start
_start:
    ; --- listener first: socket/bind/listen before any fork, so every
    ;     client finds the service registered when it dials ---
    li r1, 2             ; AF_INET
    li r2, 1             ; SOCK_STREAM
    li r3, 0
    call {stub_label('socket')}
    cmpi r0, 0
    blt fail
    mov r12, r0          ; r12 = listen fd
    mov r1, r12
    li r2, service_name
    li r3, 0
    call {stub_label('bind')}
    cmpi r0, 0
    bne fail
    mov r1, r12
    li r2, {clients}
    call {stub_label('listen')}
    cmpi r0, 0
    bne fail
    ; --- fork the clients; r11 is the client index in each child ---
    li r11, 0
fork_loop:
    cmpi r11, {clients}
    bge server
    call {stub_label('fork')}
    cmpi r0, 0
    beq client
    blt fail
    addi r11, r11, 1
    jmp fork_loop

; ---------------------------------------------------------------- client
client:
    ; the listen fd is the parent's business
    mov r1, r12
    call {stub_label('close')}
    li r1, 2
    li r2, 1
    li r3, 0
    call {stub_label('socket')}
    cmpi r0, 0
    blt fail
    mov r12, r0          ; r12 = connection fd
    mov r1, r12
    li r2, service_name
    li r3, 0
    call {stub_label('connect')}
    cmpi r0, 0
    bne fail
    li r13, 0            ; r13 = completed request count
client_loop:
    cmpi r13, {requests}
    bge client_done
    ; request record: [client_index<<8 | seq, marker]
    li r9, request
    shli r10, r11, 8
    add r10, r10, r13
    st r10, [r9+0]
    li r10, {REQUEST_MARKER}
    st r10, [r9+4]
    mov r1, r12
    li r2, request
    li r3, {RECORD_SIZE}
    li r4, 0
    call {stub_label('send')}
    cmpi r0, {RECORD_SIZE}
    bne fail
    mov r1, r12
    li r2, reply
    li r3, {RECORD_SIZE}
    li r4, 0
    call {stub_label('recv')}
    cmpi r0, {RECORD_SIZE}
    bne fail
    ; the echo must carry our own request word back
    li r9, request
    ld r10, [r9+0]
    li r9, reply
    ld r9, [r9+0]
    cmp r9, r10
    bne fail
    addi r13, r13, 1
    jmp client_loop
client_done:
    ; half-close our side; the server's next recv sees EOF and it
    ; closes the connection, which our final recv observes as EOF too
    mov r1, r12
    li r2, 1             ; SHUT_WR
    call {stub_label('shutdown')}
    cmpi r0, 0
    bne fail
    mov r1, r12
    li r2, reply
    li r3, {RECORD_SIZE}
    li r4, 0
    call {stub_label('recv')}
    cmpi r0, 0
    bne fail
    mov r1, r12
    call {stub_label('close')}
    mov r1, r13
    call {stub_label('exit')}

; ---------------------------------------------------------------- server
server:
    li r11, 0            ; r11 = connections served
    li r14, 0            ; r14 = total records echoed
accept_loop:
    cmpi r11, {clients}
    bge serving_done
    mov r1, r12
    li r2, 0
    li r3, 0
    call {stub_label('accept')}
    cmpi r0, 0
    blt fail
    mov r13, r0          ; r13 = connection fd
echo_loop:
    mov r1, r13
    li r2, record
    li r3, {RECORD_SIZE}
    li r4, 0
    call {stub_label('recv')}
    cmpi r0, 0
    beq conn_done        ; EOF: client shut down its write side
    cmpi r0, {RECORD_SIZE}
    bne fail
    ; per-request work: real instructions, so the timeslice preempts
    ; the server mid-request
    li r9, {spin}
server_spin:
    subi r9, r9, 1
    cmpi r9, 0
    bgt server_spin
    mov r1, r13
    li r2, record
    li r3, {RECORD_SIZE}
    li r4, 0
    call {stub_label('send')}
    cmpi r0, {RECORD_SIZE}
    bne fail
    addi r14, r14, 1
    jmp echo_loop
conn_done:
    mov r1, r13
    call {stub_label('close')}
    addi r11, r11, 1
    jmp accept_loop
serving_done:
    mov r1, r12
    call {stub_label('close')}
    ; reap every client, summing the completed counts from the exit
    ; statuses (normal exit: code in bits 8..15)
    li r13, 0            ; summed client counts
    li r11, 0
reap_loop:
    cmpi r11, {clients}
    bge reap_done
    li r1, 0xFFFFFFFF    ; pid -1: any child
    li r2, wstatus
    li r3, 0
    li r4, 0
    call {stub_label('wait4')}
    cmpi r0, 0
    blt fail
    li r9, wstatus
    ld r10, [r9+0]
    shri r10, r10, 8
    add r13, r13, r10
    addi r11, r11, 1
    jmp reap_loop
reap_done:
    cmpi r13, {total}
    bne fail
    cmpi r14, {total}
    bne fail
    li r1, 0
    call {stub_label('exit')}
fail:
    li r1, 1
    call {stub_label('exit')}
.section .rodata
service_name:
    .asciz "{SERVICE_NAME}"
.section .data
wstatus:
    .space 4
.section .bss
request:
    .space {RECORD_SIZE}
reply:
    .space {RECORD_SIZE}
record:
    .space {RECORD_SIZE}
"""
    source += runtime_source(
        personality,
        (
            "socket", "bind", "listen", "accept", "connect",
            "send", "recv", "shutdown", "close", "fork", "wait4", "exit",
        ),
    )
    return source


def build_netserver(
    clients: int = 4,
    requests: int = 8,
    spin: int = DEFAULT_SPIN,
    personality: str = "linux",
) -> SefBinary:
    """Assemble the network echo server."""
    return assemble(
        netserver_source(clients, requests, spin, personality),
        metadata={"program": "netserver", "personality": personality},
    )
