"""Runnable mini-tools: the §4.3 multiprogram-benchmark toolbox.

Each tool is a genuine SVM32 assembly program doing real work against
the simulated VFS — cat copies bytes, gzip actually run-length
compresses, tar actually packs archives — so an authenticated build
exercises the full checking machinery on every call.

Register conventions (see :mod:`repro.workloads.runtime`): durable
state in r11..r14; helpers clobber r0/r9/r10; r7/r8 are reserved for
the installer.
"""

from __future__ import annotations

from repro.asm import assemble
from repro.binfmt import SefBinary
from repro.workloads.runtime import runtime_source

IOBUF = 16384

_PROLOGUE = """
.section .text
.global _start
_start:
    mov r12, r1          ; argc
    mov r13, r2          ; argv
"""

#: Shared data/bss epilogue: an I/O buffer and a name scratch buffer.
_BSS = f"""
.section .bss
iobuf:
    .space {IOBUF}
obuf:
    .space {IOBUF}
namebuf:
    .space 256
ptrbuf:
    .space 2048
"""


def _arg(reg: str, index_reg: str) -> str:
    """Load argv[index_reg] into ``reg`` (clobbers r9)."""
    return f"""
    shli r9, {index_reg}, 2
    add r9, r13, r9
    ld {reg}, [r9+0]
"""


_FAIL = """
fail:
    li r1, 1
    call sys_exit
"""

_OK = """
done:
    li r1, 0
    call sys_exit
"""


def _tool_cat() -> str:
    return (
        _PROLOGUE
        + """
    li r11, 1            ; arg index
next_file:
    cmp r11, r12
    bge done
"""
        + _arg("r1", "r11")
        + """
    li r2, 0             ; O_RDONLY
    call sys_open
    cmpi r0, 0
    blt fail
    mov r14, r0          ; fd
read_loop:
    mov r1, r14
    li r2, iobuf
    li r3, 4096
    call sys_read
    cmpi r0, 0
    ble close_file
    mov r3, r0
    li r1, 1
    li r2, iobuf
    call sys_write
    jmp read_loop
close_file:
    mov r1, r14
    call sys_close
    addi r11, r11, 1
    jmp next_file
"""
        + _OK
        + _FAIL
        + _BSS
    )


def _tool_cp() -> str:
    return (
        _PROLOGUE
        + """
    cmpi r12, 3
    blt fail
    li r11, 1
"""
        + _arg("r1", "r11")
        + """
    li r2, 0
    call sys_open
    cmpi r0, 0
    blt fail
    mov r14, r0          ; src fd
    li r11, 2
"""
        + _arg("r1", "r11")
        + """
    li r2, 0x241         ; O_WRONLY|O_CREAT|O_TRUNC
    li r3, 0x1a4         ; 0644
    call sys_open
    cmpi r0, 0
    blt fail
    mov r13, r0          ; dst fd (argv no longer needed)
copy_loop:
    mov r1, r14
    li r2, iobuf
    li r3, 4096
    call sys_read
    cmpi r0, 0
    ble copy_done
    mov r3, r0
    mov r1, r13
    li r2, iobuf
    call sys_write
    jmp copy_loop
copy_done:
    mov r1, r14
    call sys_close
    mov r1, r13
    call sys_close
"""
        + _OK
        + _FAIL
        + _BSS
    )


def _tool_mv() -> str:
    return (
        _PROLOGUE
        + """
    cmpi r12, 3
    blt fail
    li r11, 1
"""
        + _arg("r1", "r11")
        + """
    li r11, 2
"""
        + _arg("r2", "r11")
        + """
    call sys_rename
    cmpi r0, 0
    blt fail
"""
        + _OK
        + _FAIL
        + _BSS
    )


def _tool_rm() -> str:
    return (
        _PROLOGUE
        + """
    li r11, 1
next_file:
    cmp r11, r12
    bge done
"""
        + _arg("r1", "r11")
        + """
    call sys_unlink
    cmpi r0, 0
    blt fail
    addi r11, r11, 1
    jmp next_file
"""
        + _OK
        + _FAIL
        + _BSS
    )


def _tool_mkdir() -> str:
    return (
        _PROLOGUE
        + """
    li r11, 1
next_dir:
    cmp r11, r12
    bge done
"""
        + _arg("r1", "r11")
        + """
    li r2, 0x1ed         ; 0755
    call sys_mkdir
    cmpi r0, 0
    blt fail
    addi r11, r11, 1
    jmp next_dir
"""
        + _OK
        + _FAIL
        + _BSS
    )


def _tool_chmod() -> str:
    # chmod <octal-mode> file...: parses the mode string in guest code.
    return (
        _PROLOGUE
        + """
    cmpi r12, 3
    blt fail
    li r11, 1
"""
        + _arg("r14", "r11")
        + """
    li r10, 0            ; mode accumulator
parse_loop:
    ldb r9, [r14+0]
    cmpi r9, 0
    beq parse_done
    subi r9, r9, 48      ; '0'
    cmpi r9, 7
    bgt fail
    shli r10, r10, 3
    add r10, r10, r9
    addi r14, r14, 1
    jmp parse_loop
parse_done:
    mov r14, r10         ; mode
    li r11, 2
next_file:
    cmp r11, r12
    bge done
"""
        + _arg("r1", "r11")
        + """
    mov r2, r14
    call sys_chmod
    cmpi r0, 0
    blt fail
    addi r11, r11, 1
    jmp next_file
"""
        + _OK
        + _FAIL
        + _BSS
    )


def _tool_chdir() -> str:
    return (
        _PROLOGUE
        + """
    cmpi r12, 2
    blt fail
    li r11, 1
"""
        + _arg("r1", "r11")
        + """
    call sys_chdir
    cmpi r0, 0
    blt fail
    li r1, namebuf
    li r2, 256
    call sys_getcwd
    cmpi r0, 0
    blt fail
    subi r3, r0, 1       ; drop the NUL
    li r1, 1
    li r2, namebuf
    call sys_write
"""
        + _OK
        + _FAIL
        + _BSS
    )


def _tool_ls() -> str:
    return (
        _PROLOGUE
        + """
    cmpi r12, 2
    blt use_dot
    li r11, 1
"""
        + _arg("r1", "r11")
        + """
    jmp open_dir
use_dot:
    li r1, dot
open_dir:
    li r2, 0
    call sys_open
    cmpi r0, 0
    blt fail
    mov r14, r0
dents_loop:
    mov r1, r14
    li r2, iobuf
    li r3, 4096
    li r4, 0
    call sys_getdirentries
    cmpi r0, 0
    ble ls_done
    mov r11, r0          ; bytes in buffer
    li r12, 0            ; cursor
entry_loop:
    cmp r12, r11
    bge dents_loop
    ; record: ino u32, namelen u16, name...
    li r9, iobuf
    add r9, r9, r12
    ldb r10, [r9+4]      ; namelen low byte (names < 256)
    addi r12, r12, 6     ; header size
    li r9, iobuf
    add r2, r9, r12      ; name pointer
    subi r3, r10, 1      ; exclude NUL
    li r1, 1
    call sys_write
    li r1, 1
    li r2, newline
    li r3, 1
    call sys_write
    add r12, r12, r10
    jmp entry_loop
ls_done:
    mov r1, r14
    call sys_close
"""
        + _OK
        + _FAIL
        + """
.section .rodata
dot:
    .asciz "."
newline:
    .asciz "\\n"
"""
        + _BSS
    )


def _tool_tar() -> str:
    """tar <archive> <member>...: pack files into a simple archive.

    Record: [namelen u32][size u32][name][data]; a zero namelen ends
    the archive."""
    return (
        _PROLOGUE
        + """
    cmpi r12, 3
    blt fail
    li r11, 1
"""
        + _arg("r1", "r11")
        + """
    li r2, 0x241
    li r3, 0x1a4
    call sys_open
    cmpi r0, 0
    blt fail
    mov r14, r0          ; archive fd
    li r11, 2
member_loop:
    cmp r11, r12
    bge finish
"""
        + _arg("r1", "r11")
        + """
    mov r4, r1           ; member name
    li r2, 0
    call sys_open
    cmpi r0, 0
    blt fail
    mov r5, r0           ; member fd
    ; read member into iobuf
    mov r1, r5
    li r2, iobuf
    li r3, 16384
    call sys_read
    cmpi r0, 0
    blt fail
    mov r6, r0           ; size
    mov r1, r5
    call sys_close
    ; name length
    mov r1, r4
    call rt_strlen
    mov r10, r0          ; namelen
    ; header into obuf
    li r9, obuf
    st r10, [r9+0]
    st r6, [r9+4]
    ; write header
    mov r1, r14
    li r2, obuf
    li r3, 8
    call sys_write
    ; write name
    mov r1, r14
    mov r2, r4
    mov r3, r10
    call sys_write
    ; write data
    mov r1, r14
    li r2, iobuf
    mov r3, r6
    call sys_write
    addi r11, r11, 1
    jmp member_loop
finish:
    li r9, obuf
    li r10, 0
    st r10, [r9+0]
    mov r1, r14
    li r2, obuf
    li r3, 4
    call sys_write
    mov r1, r14
    call sys_close
"""
        + _OK
        + _FAIL
        + _BSS
    )


def _tool_untar() -> str:
    """untar <archive>: unpack into the current directory."""
    return (
        _PROLOGUE
        + """
    cmpi r12, 2
    blt fail
    li r11, 1
"""
        + _arg("r1", "r11")
        + """
    li r2, 0
    call sys_open
    cmpi r0, 0
    blt fail
    mov r14, r0          ; archive fd
record_loop:
    ; read namelen
    mov r1, r14
    li r2, obuf
    li r3, 4
    call sys_read
    cmpi r0, 4
    blt done
    li r9, obuf
    ld r11, [r9+0]       ; namelen
    cmpi r11, 0
    beq done
    cmpi r11, 255
    bgt fail
    ; read size
    mov r1, r14
    li r2, obuf
    li r3, 4
    call sys_read
    li r9, obuf
    ld r12, [r9+0]       ; size
    ; read name into namebuf
    mov r1, r14
    li r2, namebuf
    mov r3, r11
    call sys_read
    li r9, namebuf
    add r9, r9, r11
    li r10, 0
    stb r10, [r9+0]
    ; read data into iobuf
    mov r1, r14
    li r2, iobuf
    mov r3, r12
    call sys_read
    ; create the file
    li r1, namebuf
    li r2, 0x241
    li r3, 0x1a4
    call sys_open
    cmpi r0, 0
    blt fail
    mov r4, r0
    mov r1, r4
    li r2, iobuf
    mov r3, r12
    call sys_write
    mov r1, r4
    call sys_close
    jmp record_loop
"""
        + _OK
        + _FAIL
        + _BSS
    )


_GZ_SUFFIX = """
.section .rodata
gz_suffix:
    .asciz ".gz"
"""


def _tool_gzip() -> str:
    """gzip <file>: RLE-compress to <file>.gz and unlink the original.

    Output format: pairs of [count byte][value byte]."""
    return (
        _PROLOGUE
        + """
    cmpi r12, 2
    blt fail
    li r11, 1
"""
        + _arg("r14", "r11")
        + """
    mov r1, r14
    li r2, 0
    call sys_open
    cmpi r0, 0
    blt fail
    mov r11, r0
    mov r1, r11
    li r2, iobuf
    li r3, 16384
    call sys_read
    cmpi r0, 0
    blt fail
    mov r12, r0          ; input size
    mov r1, r11
    call sys_close
    ; compress iobuf[0..r12) into obuf, cursor r5 in, r6 out
    li r5, 0
    li r6, 0
rle_loop:
    cmp r5, r12
    bge rle_done
    li r9, iobuf
    add r9, r9, r5
    ldb r4, [r9+0]       ; current byte
    li r3, 1             ; run length
run_scan:
    add r9, r5, r3
    cmp r9, r12
    bge run_emit
    cmpi r3, 255
    bge run_emit
    li r10, iobuf
    add r10, r10, r9
    ldb r9, [r10+0]
    cmp r9, r4
    bne run_emit
    addi r3, r3, 1
    jmp run_scan
run_emit:
    li r9, obuf
    add r9, r9, r6
    stb r3, [r9+0]
    stb r4, [r9+1]
    addi r6, r6, 2
    add r5, r5, r3
    jmp rle_loop
rle_done:
    ; build output name: namebuf = argv[1] + ".gz"
    li r1, namebuf
    mov r2, r14
    call rt_strcpy
    li r9, namebuf
    add r1, r9, r0
    li r2, gz_suffix
    call rt_strcpy
    ; write the compressed file
    li r1, namebuf
    li r2, 0x241
    li r3, 0x1a4
    call sys_open
    cmpi r0, 0
    blt fail
    mov r4, r0
    mov r1, r4
    li r2, obuf
    mov r3, r6
    call sys_write
    mov r1, r4
    call sys_close
    ; remove the original
    mov r1, r14
    call sys_unlink
"""
        + _OK
        + _FAIL
        + _GZ_SUFFIX
        + _BSS
    )


def _tool_gunzip() -> str:
    """gunzip <file.gz>: expand RLE pairs; writes <file.gz>.out.

    (A real gunzip strips the suffix; keeping the name computation
    simple keeps the guest code focused on the I/O behaviour.)"""
    return (
        _PROLOGUE
        + """
    cmpi r12, 2
    blt fail
    li r11, 1
"""
        + _arg("r14", "r11")
        + """
    mov r1, r14
    li r2, 0
    call sys_open
    cmpi r0, 0
    blt fail
    mov r11, r0
    mov r1, r11
    li r2, iobuf
    li r3, 16384
    call sys_read
    cmpi r0, 0
    blt fail
    mov r12, r0
    mov r1, r11
    call sys_close
    ; expand pairs
    li r5, 0             ; in cursor
    li r6, 0             ; out cursor
expand_loop:
    cmp r5, r12
    bge expand_done
    li r9, iobuf
    add r9, r9, r5
    ldb r3, [r9+0]       ; count
    ldb r4, [r9+1]       ; value
    addi r5, r5, 2
fill_loop:
    cmpi r3, 0
    beq expand_loop
    li r9, obuf
    add r9, r9, r6
    stb r4, [r9+0]
    addi r6, r6, 1
    subi r3, r3, 1
    jmp fill_loop
expand_done:
    ; namebuf = argv[1] + ".out"
    li r1, namebuf
    mov r2, r14
    call rt_strcpy
    li r9, namebuf
    add r1, r9, r0
    li r2, out_suffix
    call rt_strcpy
    li r1, namebuf
    li r2, 0x241
    li r3, 0x1a4
    call sys_open
    cmpi r0, 0
    blt fail
    mov r4, r0
    mov r1, r4
    li r2, obuf
    mov r3, r6
    call sys_write
    mov r1, r4
    call sys_close
    ; remove the compressed file
    mov r1, r14
    call sys_unlink
"""
        + _OK
        + _FAIL
        + """
.section .rodata
out_suffix:
    .asciz ".out"
"""
        + _BSS
    )


def _tool_sort() -> str:
    """sort <file>: sort lines to stdout (selection sort on pointers)."""
    return (
        _PROLOGUE
        + """
    cmpi r12, 2
    blt fail
    li r11, 1
"""
        + _arg("r1", "r11")
        + """
    li r2, 0
    call sys_open
    cmpi r0, 0
    blt fail
    mov r11, r0
    mov r1, r11
    li r2, iobuf
    li r3, 16384
    call sys_read
    cmpi r0, 0
    blt fail
    mov r12, r0          ; size
    mov r1, r11
    call sys_close
    ; split into NUL-terminated lines; ptrbuf holds line pointers
    li r14, 0            ; line count
    li r5, 0             ; cursor
    li r6, iobuf         ; current line start
split_loop:
    cmp r5, r12
    bge split_done
    li r9, iobuf
    add r9, r9, r5
    ldb r10, [r9+0]
    cmpi r10, 10         ; '\\n'
    bne split_next
    li r10, 0
    stb r10, [r9+0]
    shli r9, r14, 2
    li r10, ptrbuf
    add r9, r9, r10
    st r6, [r9+0]
    addi r14, r14, 1
    li r9, iobuf
    add r6, r9, r5
    addi r6, r6, 1
split_next:
    addi r5, r5, 1
    jmp split_loop
split_done:
    ; selection sort ptrbuf[0..r14)
    li r11, 0            ; i
sort_outer:
    addi r9, r11, 1
    cmp r9, r14
    bge sort_done
    mov r12, r9          ; j = i+1
sort_inner:
    cmp r12, r14
    bge sort_next
    shli r9, r11, 2
    li r10, ptrbuf
    add r9, r9, r10
    ld r1, [r9+0]
    shli r9, r12, 2
    add r9, r9, r10
    ld r2, [r9+0]
    call rt_strcmp
    cmpi r0, 0
    ble no_swap
    ; swap pointers i and j
    shli r9, r11, 2
    li r10, ptrbuf
    add r9, r9, r10
    ld r4, [r9+0]
    shli r10, r12, 2
    li r5, ptrbuf
    add r10, r10, r5
    ld r5, [r10+0]
    st r5, [r9+0]
    st r4, [r10+0]
no_swap:
    addi r12, r12, 1
    jmp sort_inner
sort_next:
    addi r11, r11, 1
    jmp sort_outer
sort_done:
    ; write lines out
    li r11, 0
emit_loop:
    cmp r11, r14
    bge done
    shli r9, r11, 2
    li r10, ptrbuf
    add r9, r9, r10
    ld r4, [r9+0]
    mov r1, r4
    call rt_strlen
    mov r3, r0
    li r1, 1
    mov r2, r4
    call sys_write
    li r1, 1
    li r2, nl
    li r3, 1
    call sys_write
    addi r11, r11, 1
    jmp emit_loop
"""
        + _OK
        + _FAIL
        + """
.section .rodata
nl:
    .asciz "\\n"
"""
        + _BSS
    )


def _tool_wc() -> str:
    """wc <file>: count bytes and lines, print as two u32-rendered
    decimal numbers."""
    return (
        _PROLOGUE
        + """
    cmpi r12, 2
    blt fail
    li r11, 1
"""
        + _arg("r1", "r11")
        + """
    li r2, 0
    call sys_open
    cmpi r0, 0
    blt fail
    mov r11, r0
    li r13, 0            ; total bytes
    li r14, 0            ; newlines
count_loop:
    mov r1, r11
    li r2, iobuf
    li r3, 4096
    call sys_read
    cmpi r0, 0
    ble counted
    mov r12, r0
    add r13, r13, r12
    li r5, 0
scan:
    cmp r5, r12
    bge count_loop
    li r9, iobuf
    add r9, r9, r5
    ldb r10, [r9+0]
    cmpi r10, 10
    bne scan_next
    addi r14, r14, 1
scan_next:
    addi r5, r5, 1
    jmp scan
counted:
    mov r1, r11
    call sys_close
    ; print "<lines> <bytes>\\n"
    mov r1, r14
    call print_u32
    li r1, 1
    li r2, space
    li r3, 1
    call sys_write
    mov r1, r13
    call print_u32
    li r1, 1
    li r2, nl
    li r3, 1
    call sys_write
    jmp done
; print_u32(r1): decimal to stdout (clobbers r0..r6, r9, r10)
print_u32:
    li r9, namebuf
    addi r9, r9, 31
    li r10, 0
    stb r10, [r9+0]
    cmpi r1, 0
    bne pu_loop
    subi r9, r9, 1
    li r10, 48
    stb r10, [r9+0]
    jmp pu_emit
pu_loop:
    cmpi r1, 0
    beq pu_emit
    li r4, 10
    mod r5, r1, r4
    div r1, r1, r4
    addi r5, r5, 48
    subi r9, r9, 1
    stb r5, [r9+0]
    jmp pu_loop
pu_emit:
    mov r2, r9
    mov r1, r2
    call rt_strlen
    mov r3, r0
    li r1, 1
    call sys_write
    ret
"""
        + _OK
        + _FAIL
        + """
.section .rodata
space:
    .asciz " "
nl:
    .asciz "\\n"
"""
        + _BSS
    )




def _tool_sh() -> str:
    """sh: a tiny non-interactive shell.

    Reads a script from stdin (one command per line, words separated by
    single spaces; the first word is the program path), spawns each
    command synchronously, and reports ``ok``/``ERR`` per line.  With a
    fully installed toolchain this is the paper's "system as a whole is
    protected" configuration: the shell and everything it launches are
    authenticated binaries."""
    return (
        _PROLOGUE
        + """
    ; read the whole script
    li r1, 0
    li r2, iobuf
    li r3, 16384
    call sys_read
    cmpi r0, 0
    ble done
    mov r13, r0          ; script length
    li r14, 0            ; cursor
line_loop:
    cmp r14, r13
    bge done
    li r11, 0            ; words on this line
    li r12, 0            ; in-word flag
scan_char:
    cmp r14, r13
    bge line_end
    li r9, iobuf
    add r9, r9, r14
    ldb r10, [r9+0]
    cmpi r10, 10         ; newline
    beq line_break
    cmpi r10, 32         ; space
    bne word_char
    li r10, 0
    stb r10, [r9+0]
    li r12, 0
    addi r14, r14, 1
    jmp scan_char
word_char:
    cmpi r12, 1
    beq next_char
    ; record the word start
    li r12, 1
    cmpi r11, 15
    bge next_char        ; too many words: ignore extras
    shli r10, r11, 2
    li r4, ptrbuf
    add r10, r10, r4
    st r9, [r10+0]
    addi r11, r11, 1
next_char:
    addi r14, r14, 1
    jmp scan_char
line_break:
    li r10, 0
    stb r10, [r9+0]
    addi r14, r14, 1
line_end:
    cmpi r11, 0
    beq line_loop        ; blank line
    ; NULL-terminate the argv array and spawn
    shli r10, r11, 2
    li r9, ptrbuf
    add r10, r10, r9
    li r4, 0
    st r4, [r10+0]
    ld r1, [r9+0]        ; argv[0]
    mov r2, r9
    call sys_spawn
    cmpi r0, 0
    bne report_err
    li r1, 1
    li r2, msg_ok
    li r3, 3
    call sys_write
    jmp line_loop
report_err:
    li r1, 1
    li r2, msg_err
    li r3, 4
    call sys_write
    jmp line_loop
"""
        + _OK
        + _FAIL
        + """
.section .rodata
msg_ok:
    .asciz "ok\\n"
msg_err:
    .asciz "ERR\\n"
"""
        + _BSS
    )



def _tool_head() -> str:
    """head <file>: print the first 5 lines."""
    return (
        _PROLOGUE
        + """
    cmpi r12, 2
    blt fail
    li r11, 1
"""
        + _arg("r1", "r11")
        + """
    li r2, 0
    call sys_open
    cmpi r0, 0
    blt fail
    mov r14, r0
    mov r1, r14
    li r2, iobuf
    li r3, 16384
    call sys_read
    cmpi r0, 0
    blt fail
    mov r12, r0          ; size
    mov r1, r14
    call sys_close
    ; find the end of line 5 (or EOF)
    li r11, 0            ; lines seen
    li r13, 0            ; cursor
scan:
    cmp r13, r12
    bge emit
    li r9, iobuf
    add r9, r9, r13
    ldb r10, [r9+0]
    addi r13, r13, 1
    cmpi r10, 10
    bne scan
    addi r11, r11, 1
    cmpi r11, 5
    blt scan
emit:
    li r1, 1
    li r2, iobuf
    mov r3, r13
    call sys_write
"""
        + _OK
        + _FAIL
        + _BSS
    )


def _tool_grep() -> str:
    """grep <needle> <file>: print lines containing the needle."""
    return (
        _PROLOGUE
        + """
    cmpi r12, 3
    blt fail
    li r11, 1
"""
        + _arg("r14", "r11")
        + """
    li r11, 2
"""
        + _arg("r1", "r11")
        + """
    li r2, 0
    call sys_open
    cmpi r0, 0
    blt fail
    mov r11, r0
    mov r1, r11
    li r2, iobuf
    li r3, 16384
    call sys_read
    cmpi r0, 0
    blt fail
    mov r12, r0          ; size
    mov r1, r11
    call sys_close
    ; needle length -> r13
    mov r1, r14
    call rt_strlen
    mov r13, r0
    cmpi r13, 0
    beq done
    li r5, 0             ; line start
line_scan:
    cmp r5, r12
    bge done
    ; find line end -> r6
    mov r6, r5
find_eol:
    cmp r6, r12
    bge have_eol
    li r9, iobuf
    add r9, r9, r6
    ldb r10, [r9+0]
    cmpi r10, 10
    beq have_eol
    addi r6, r6, 1
    jmp find_eol
have_eol:
    ; search needle in [r5, r6)
    mov r4, r5           ; candidate start
try_pos:
    add r9, r4, r13
    cmp r9, r6
    bgt next_line        ; needle no longer fits
    ; compare needle at r4
    li r3, 0             ; index into needle
cmp_loop:
    cmp r3, r13
    bge match
    li r9, iobuf
    add r9, r9, r4
    add r9, r9, r3
    ldb r10, [r9+0]
    add r9, r14, r3
    ldb r9, [r9+0]
    cmp r10, r9
    bne no_match
    addi r3, r3, 1
    jmp cmp_loop
no_match:
    addi r4, r4, 1
    jmp try_pos
match:
    ; print the line (including the newline when present)
    sub r3, r6, r5
    addi r3, r3, 1
    add r9, r5, r3
    cmp r9, r12
    ble len_ok
    sub r3, r12, r5
len_ok:
    li r9, iobuf
    add r2, r9, r5
    li r1, 1
    call sys_write
next_line:
    addi r5, r6, 1
    jmp line_scan
"""
        + _OK
        + _FAIL
        + _BSS
    )

_BUILDERS = {
    "cat": (_tool_cat, ("open", "read", "write", "close", "exit")),
    "cp": (_tool_cp, ("open", "read", "write", "close", "exit")),
    "mv": (_tool_mv, ("rename", "exit")),
    "rm": (_tool_rm, ("unlink", "exit")),
    "mkdir": (_tool_mkdir, ("mkdir", "exit")),
    "chmod": (_tool_chmod, ("chmod", "exit")),
    "chdir": (_tool_chdir, ("chdir", "getcwd", "write", "exit")),
    "ls": (_tool_ls, ("open", "getdirentries", "write", "close", "exit")),
    "tar": (_tool_tar, ("open", "read", "write", "close", "exit")),
    "untar": (_tool_untar, ("open", "read", "write", "close", "exit")),
    "gzip": (_tool_gzip, ("open", "read", "write", "close", "unlink", "exit")),
    "gunzip": (_tool_gunzip, ("open", "read", "write", "close", "unlink", "exit")),
    "sort": (_tool_sort, ("open", "read", "write", "close", "exit")),
    "wc": (_tool_wc, ("open", "read", "write", "close", "exit")),
    "sh": (_tool_sh, ("read", "write", "spawn", "exit")),
    "head": (_tool_head, ("open", "read", "write", "close", "exit")),
    "grep": (_tool_grep, ("open", "read", "write", "close", "exit")),
}

TOOLS = tuple(sorted(_BUILDERS))


def tool_source(
    name: str, personality: str = "linux", startup_work: int = 0
) -> str:
    try:
        builder, syscalls = _BUILDERS[name]
    except KeyError:
        raise KeyError(f"no tool named {name!r}; have {', '.join(TOOLS)}") from None
    source = builder()
    if startup_work:
        # Model real process startup (loader, ld.so, libc init) that the
        # three-instruction _start elides; used by the Andrew benchmark
        # so the CPU/syscall balance matches a real tool invocation.
        source = source.replace(
            "_start:\n", f"_start:\n    cpuwork {startup_work}\n", 1
        )
    return source + "\n" + runtime_source(personality, syscalls)


def build_tool(
    name: str, personality: str = "linux", startup_work: int = 0
) -> SefBinary:
    """Assemble one tool for the given OS personality."""
    return assemble(
        tool_source(name, personality, startup_work),
        metadata={"program": name, "personality": personality},
    )
