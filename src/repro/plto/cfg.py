"""Basic blocks and the control flow graph.

Leaders are: the first instruction, every labeled instruction (any
label may be a branch target), and every instruction following a
terminator.  Terminators are control transfers (branches, jumps,
calls, returns, halt) and — by design — the trap instructions: ending
a block at each ``SYS`` gives every system call its own basic block,
which is the identity the paper's policies use ("we approximate system
call locations by the basic block that contains the system call").
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.isa import Instruction, SymbolRef
from repro.isa.opcodes import Op
from repro.plto.ir import IrUnit


class CfgError(ValueError):
    """Raised when control flow cannot be resolved statically."""


_TERMINATORS = {
    Op.BEQ, Op.BNE, Op.BLT, Op.BGE, Op.BLE, Op.BGT,
    Op.JMP, Op.JR, Op.CALL, Op.CALLR, Op.RET, Op.HALT,
    Op.SYS, Op.ASYS,
}

_CONDITIONAL = {Op.BEQ, Op.BNE, Op.BLT, Op.BGE, Op.BLE, Op.BGT}


@dataclass
class BasicBlock:
    """Half-open instruction range [start, end) plus CFG edges."""

    index: int
    start: int
    end: int
    #: Intra-procedural successor block indices (fallthrough/branches).
    successors: list[int] = field(default_factory=list)
    predecessors: list[int] = field(default_factory=list)

    def terminator(self, unit: IrUnit) -> Instruction:
        return unit.insns[self.end - 1].instruction

    def __contains__(self, insn_index: int) -> bool:
        return self.start <= insn_index < self.end


@dataclass
class ControlFlowGraph:
    unit: IrUnit
    blocks: list[BasicBlock]
    #: insn index -> block index
    block_of: list[int]
    entry_block: int

    def syscall_blocks(self) -> list[int]:
        """Blocks whose terminator is a trap instruction."""
        found = []
        for block in self.blocks:
            op = block.terminator(self.unit).op
            if op in (Op.SYS, Op.ASYS):
                found.append(block.index)
        return found

    def block_of_label(self, label: str) -> int:
        return self.block_of[self.unit.find_label(label)]


def _branch_target(unit: IrUnit, instruction: Instruction, labels: dict) -> int:
    ref = instruction.imm
    if not isinstance(ref, SymbolRef):
        raise CfgError(
            f"branch with non-symbolic target: {instruction} "
            "(rewriting requires label-based control flow)"
        )
    if ref.addend:
        raise CfgError(f"branch target with addend: {instruction}")
    if ref.symbol not in labels:
        raise CfgError(f"branch to non-code symbol {ref.symbol!r}")
    return labels[ref.symbol]


def build_cfg(unit: IrUnit) -> ControlFlowGraph:
    """Partition the IR into basic blocks and wire intra-proc edges."""
    if not unit.insns:
        raise CfgError("empty program")
    labels = unit.label_index()

    leaders = {0}
    for position, insn in enumerate(unit.insns):
        if insn.labels:
            leaders.add(position)
        op = insn.instruction.op
        if op in _TERMINATORS and position + 1 < len(unit.insns):
            leaders.add(position + 1)
        if op in _CONDITIONAL or op == Op.JMP:
            leaders.add(_branch_target(unit, insn.instruction, labels))
        elif op == Op.CALL:
            leaders.add(_branch_target(unit, insn.instruction, labels))

    ordered = sorted(leaders)
    blocks: list[BasicBlock] = []
    block_of = [0] * len(unit.insns)
    for index, start in enumerate(ordered):
        end = ordered[index + 1] if index + 1 < len(ordered) else len(unit.insns)
        blocks.append(BasicBlock(index=index, start=start, end=end))
        for position in range(start, end):
            block_of[position] = index

    # Intra-procedural edges.
    for block in blocks:
        terminator = block.terminator(unit)
        op = terminator.op
        fallthrough = block.index + 1 if block.end < len(unit.insns) else None
        if op in _CONDITIONAL:
            target = block_of[_branch_target(unit, terminator, labels)]
            block.successors.append(target)
            if fallthrough is not None:
                block.successors.append(fallthrough)
        elif op == Op.JMP:
            block.successors.append(block_of[_branch_target(unit, terminator, labels)])
        elif op in (Op.RET, Op.HALT, Op.JR):
            pass  # no intra-proc successors (JR is treated as a return)
        elif op in (Op.CALL, Op.CALLR, Op.SYS, Op.ASYS):
            if fallthrough is not None:
                block.successors.append(fallthrough)
        else:  # plain fallthrough into the next leader
            if fallthrough is not None:
                block.successors.append(fallthrough)
        # Deduplicate while preserving order.
        seen: set[int] = set()
        block.successors = [
            s for s in block.successors if not (s in seen or seen.add(s))
        ]

    for block in blocks:
        for successor in block.successors:
            blocks[successor].predecessors.append(block.index)

    entry_symbol = unit.binary.entry
    if entry_symbol not in labels:
        raise CfgError(f"entry symbol {entry_symbol!r} is not in .text")
    entry_block = block_of[labels[entry_symbol]]

    return ControlFlowGraph(
        unit=unit, blocks=blocks, block_of=block_of, entry_block=entry_block
    )
