"""System-call stub inlining (§4.1).

"Since system calls are often made from stubs that are invoked by many
blocks, the next step is to analyze the call graph to identify blocks
that invoke these stubs and inline the stubs.  This inlining allows a
different system call policy to be used for each inlined site, rather
than having just one policy for the system call in the stub itself."

A *stub* here is a straight-line function (no internal control flow)
that contains at least one trap and ends in RET — the shape of every
libc syscall wrapper in :mod:`repro.workloads.runtime`.  Each CALL to a
stub is replaced by the stub body (sans RET); the stub itself is kept
only if something still references it (e.g. an indirect call).
"""

from __future__ import annotations

import copy
from dataclasses import dataclass

from repro.isa import Instruction, SymbolRef
from repro.isa.opcodes import Op
from repro.plto.cfg import build_cfg
from repro.plto.callgraph import build_call_graph
from repro.plto.ir import IrInsn, IrUnit

#: Stubs larger than this are not inlined (mirrors compiler practice;
#: keeps pathological code from exploding the binary).
MAX_STUB_INSNS = 16

_CONTROL = {
    Op.BEQ, Op.BNE, Op.BLT, Op.BGE, Op.BLE, Op.BGT,
    Op.JMP, Op.JR, Op.CALL, Op.CALLR, Op.HALT,
}


@dataclass
class InlineReport:
    """What happened, for logs and tests."""

    stubs: list[str]
    sites_inlined: int
    stubs_removed: list[str]


def _stub_body(unit: IrUnit, entry_label: str) -> list[Instruction]:
    """Return the stub's instructions (without the trailing RET), or
    raise ValueError if the function is not a straight-line stub."""
    start = unit.find_label(entry_label)
    body: list[Instruction] = []
    has_trap = False
    for position in range(start, min(start + MAX_STUB_INSNS + 1, len(unit.insns))):
        insn = unit.insns[position]
        if position != start and insn.labels:
            raise ValueError(f"{entry_label}: label inside stub body")
        op = insn.instruction.op
        if op == Op.RET:
            if not has_trap:
                raise ValueError(f"{entry_label}: no trap before RET")
            return body
        if op in _CONTROL:
            raise ValueError(f"{entry_label}: control flow inside stub")
        if op in (Op.SYS, Op.ASYS):
            has_trap = True
        body.append(insn.instruction)
    raise ValueError(f"{entry_label}: stub too long or missing RET")


def inline_syscall_stubs(unit: IrUnit) -> InlineReport:
    """Inline every direct call to a syscall stub, in place."""
    cfg = build_cfg(unit)
    graph = build_call_graph(cfg)

    stubs: dict[str, list[Instruction]] = {}
    for label in graph.functions:
        if label == unit.binary.entry:
            continue
        try:
            stubs[label] = _stub_body(unit, label)
        except ValueError:
            continue

    sites = 0
    position = 0
    while position < len(unit.insns):
        insn = unit.insns[position]
        ref = insn.instruction.imm
        if (
            insn.instruction.op == Op.CALL
            and isinstance(ref, SymbolRef)
            and ref.symbol in stubs
        ):
            replacement = [
                IrInsn(instruction=copy.copy(instruction))
                for instruction in stubs[ref.symbol]
            ]
            unit.replace(position, replacement)
            sites += 1
            position += len(replacement)
        else:
            position += 1

    # Drop stubs nothing references any more (only if no indirect calls
    # exist, which could still reach them).
    removed: list[str] = []
    if not graph.indirect_call_blocks:
        removed = _remove_dead_stubs(unit, set(stubs))
    return InlineReport(
        stubs=sorted(stubs), sites_inlined=sites, stubs_removed=removed
    )


def _referenced_symbols(unit: IrUnit) -> set[str]:
    refs = {
        insn.instruction.imm.symbol
        for insn in unit.insns
        if isinstance(insn.instruction.imm, SymbolRef)
    }
    refs.update(
        reloc.symbol
        for reloc in unit.binary.relocations
        if reloc.section != ".text"
    )
    refs.add(unit.binary.entry)
    return refs


def _remove_dead_stubs(unit: IrUnit, stub_labels: set[str]) -> list[str]:
    removed: list[str] = []
    for label in sorted(stub_labels):
        if label in _referenced_symbols(unit):
            continue
        try:
            start = unit.find_label(label)
        except KeyError:
            continue
        end = start
        while end < len(unit.insns):
            op = unit.insns[end].instruction.op
            end += 1
            if op == Op.RET:
                break
        if any(position > start and unit.insns[position].labels
               for position in range(start, end)):
            continue  # something branches into the middle; keep it
        del unit.insns[start:end]
        if label in unit.binary.symbols:
            del unit.binary.symbols[label]
        removed.append(label)
    return removed
