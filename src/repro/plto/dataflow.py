"""Register constant propagation and syscall-argument classification.

This is the analysis §4.1 describes: "each system call site is
analyzed to determine the arguments of the call ... applying a
standard reaching definitions analysis from PLTO", classifying each
argument as **String** (address of a known string), **Immediate** (some
other known constant), or **Unknown**.

Two refinements feed Table 3's extension columns:

- *multi-value* (``mv``): an argument whose reaching constants form a
  small finite set (>1 element) rather than a single value;
- *fd provenance* (``fds``): an argument that is the preserved return
  value of an earlier fd-producing call (open/socket/dup/...), the §5.3
  capability-tracking candidates.

The lattice per register: ``BOTTOM`` (no path reaches here yet), a set
of up to :data:`MAX_VALUE_SET` known values (ints or symbol
references), ``FdFrom`` (return value of named syscall blocks), and
``TOP`` (unknown).  Calls clobber everything (callee-save conventions
are a compiler fiction our runtime does not promise); the kernel writes
only ``r0``, so a trap clobbers just the result register.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum, unique
from typing import Optional, Union

from repro.isa import SymbolRef
from repro.isa.opcodes import Op
from repro.plto.callgraph import CallGraph

MAX_VALUE_SET = 4

#: Syscall numbers whose result is a file descriptor.
FD_PRODUCER_NUMBERS = frozenset({5, 41, 42, 63, 97})  # open, dup, pipe, dup2, socket


@unique
class ArgClass(Enum):
    STRING = "string"
    IMMEDIATE = "immediate"
    UNKNOWN = "unknown"


@dataclass(frozen=True)
class ArgValue:
    """Lattice value for one register at one program point."""

    kind: str  # "bottom" | "values" | "fd" | "top"
    values: frozenset = frozenset()  # ints and/or SymbolRefs
    fd_sites: frozenset = frozenset()  # producing block ids

    @classmethod
    def bottom(cls) -> "ArgValue":
        return _BOTTOM

    @classmethod
    def top(cls) -> "ArgValue":
        return _TOP

    @classmethod
    def const(cls, value: Union[int, SymbolRef]) -> "ArgValue":
        return cls(kind="values", values=frozenset({value}))

    @classmethod
    def fd_from(cls, block_id: int) -> "ArgValue":
        return cls(kind="fd", fd_sites=frozenset({block_id}))

    @property
    def is_single(self) -> bool:
        return self.kind == "values" and len(self.values) == 1

    @property
    def single(self) -> Union[int, SymbolRef]:
        (value,) = self.values
        return value

    @property
    def is_multi(self) -> bool:
        return self.kind == "values" and len(self.values) > 1

    @property
    def is_fd(self) -> bool:
        return self.kind == "fd"

    def join(self, other: "ArgValue") -> "ArgValue":
        if self.kind == "bottom":
            return other
        if other.kind == "bottom":
            return self
        if self.kind == "top" or other.kind == "top":
            return _TOP
        if self.kind == "fd" and other.kind == "fd":
            return ArgValue(kind="fd", fd_sites=self.fd_sites | other.fd_sites)
        if self.kind == "values" and other.kind == "values":
            merged = self.values | other.values
            if len(merged) <= MAX_VALUE_SET:
                return ArgValue(kind="values", values=merged)
            return _TOP
        return _TOP


_BOTTOM = ArgValue(kind="bottom")
_TOP = ArgValue(kind="top")

_State = tuple  # tuple of 16 ArgValues


def _initial_state(top: bool) -> _State:
    fill = _TOP if top else _BOTTOM
    return tuple([fill] * 16)


def _join_states(a: _State, b: _State) -> _State:
    return tuple(x.join(y) for x, y in zip(a, b))


def _eval_binop(op: Op, a: ArgValue, b: ArgValue) -> ArgValue:
    """Constant-fold when both sides are single known values."""
    if not (a.is_single and b.is_single):
        return _TOP
    left, right = a.single, b.single
    if isinstance(left, SymbolRef) and isinstance(right, int):
        if op == Op.ADD:
            return ArgValue.const(SymbolRef(left.symbol, left.addend + right))
        if op == Op.SUB:
            return ArgValue.const(SymbolRef(left.symbol, left.addend - right))
        return _TOP
    if isinstance(left, int) and isinstance(right, SymbolRef) and op == Op.ADD:
        return ArgValue.const(SymbolRef(right.symbol, right.addend + left))
    if not (isinstance(left, int) and isinstance(right, int)):
        return _TOP
    mask = 0xFFFFFFFF
    try:
        result = {
            Op.ADD: lambda: (left + right) & mask,
            Op.SUB: lambda: (left - right) & mask,
            Op.MUL: lambda: (left * right) & mask,
            Op.DIV: lambda: (left // right) & mask,
            Op.MOD: lambda: (left % right) & mask,
            Op.AND: lambda: left & right,
            Op.OR: lambda: left | right,
            Op.XOR: lambda: left ^ right,
            Op.SHL: lambda: (left << (right & 31)) & mask,
            Op.SHR: lambda: (left >> (right & 31)) & mask,
        }[op]()
    except (ZeroDivisionError, KeyError):
        return _TOP
    return ArgValue.const(result)


_IMM_OPS = {
    Op.ADDI: Op.ADD, Op.SUBI: Op.SUB, Op.MULI: Op.MUL, Op.DIVI: Op.DIV,
    Op.ANDI: Op.AND, Op.ORI: Op.OR, Op.XORI: Op.XOR,
    Op.SHLI: Op.SHL, Op.SHRI: Op.SHR,
}

_REG_OPS = {Op.ADD, Op.SUB, Op.MUL, Op.DIV, Op.MOD, Op.AND, Op.OR,
            Op.XOR, Op.SHL, Op.SHR}


@dataclass
class SyscallSite:
    """Analysis result for one trap site (keyed by CFG block index)."""

    block_index: int
    insn_index: int
    number: Optional[int]  # syscall number when statically known
    args: tuple[ArgValue, ...]  # r1..r6 at the trap


def _transfer(state: _State, instruction, block_id: int) -> _State:
    regs = list(state)
    op = instruction.op
    if op == Op.LI:
        imm = instruction.imm
        regs[instruction.regs[0]] = ArgValue.const(
            imm if isinstance(imm, SymbolRef) else imm & 0xFFFFFFFF
        )
    elif op == Op.MOV:
        regs[instruction.regs[0]] = regs[instruction.regs[1]]
    elif op in _REG_OPS:
        regs[instruction.regs[0]] = _eval_binop(
            op, regs[instruction.regs[1]], regs[instruction.regs[2]]
        )
    elif op in _IMM_OPS:
        imm = instruction.imm
        rhs = (
            ArgValue.const(imm if isinstance(imm, SymbolRef) else imm & 0xFFFFFFFF)
        )
        regs[instruction.regs[0]] = _eval_binop(
            _IMM_OPS[op], regs[instruction.regs[1]], rhs
        )
    elif op in (Op.LD, Op.LDB, Op.POP, Op.RDTSC, Op.RDTSCH):
        regs[instruction.regs[0]] = _TOP
    elif op in (Op.CALL, Op.CALLR):
        # Callee may clobber any register.
        return _initial_state(top=True)
    elif op in (Op.SYS, Op.ASYS):
        number = regs[0]
        if number.is_single and isinstance(number.single, int) and (
            number.single in FD_PRODUCER_NUMBERS
        ):
            regs[0] = ArgValue.fd_from(block_id)
        else:
            regs[0] = _TOP
    # Stores, pushes, compares, and branches do not change registers.
    return tuple(regs)


def classify_syscall_args(graph: CallGraph) -> dict[int, SyscallSite]:
    """Run the analysis; returns {CFG block index -> SyscallSite}."""
    cfg = graph.cfg
    unit = cfg.unit

    in_states: dict[int, _State] = {
        block.index: _initial_state(top=False) for block in cfg.blocks
    }
    # Program entry and every function entry start fully unknown.
    in_states[cfg.entry_block] = _initial_state(top=True)
    worklist = [cfg.entry_block]
    for info in graph.functions.values():
        in_states[info.entry_block] = _initial_state(top=True)
        worklist.append(info.entry_block)

    sites: dict[int, SyscallSite] = {}
    iterations = 0
    limit = 50 * max(1, len(cfg.blocks))
    while worklist:
        iterations += 1
        if iterations > limit:
            raise RuntimeError("constant propagation failed to converge")
        current = worklist.pop()
        state = in_states[current]
        block = cfg.blocks[current]
        block_id = current + 1
        for position in range(block.start, block.end):
            instruction = unit.insns[position].instruction
            if instruction.op in (Op.SYS, Op.ASYS):
                number = state[0]
                sites[current] = SyscallSite(
                    block_index=current,
                    insn_index=position,
                    number=(
                        number.single
                        if number.is_single and isinstance(number.single, int)
                        else None
                    ),
                    args=tuple(state[1:7]),
                )
            state = _transfer(state, instruction, block_id)
        for successor in block.successors:
            joined = _join_states(in_states[successor], state)
            if joined != in_states[successor]:
                in_states[successor] = joined
                worklist.append(successor)
    return sites
