"""Functions, the call graph, and the system call ordering graph.

§3.3: "the installer then determines the application's system call
graph ... computed from the standard call graph of the program by
keeping only those nodes that correspond to system calls and adjusting
the edges appropriately."

The derivation here is the standard context-insensitive one:

1. Function entries are the program entry plus every direct call
   target; a function's body is everything reachable from its entry by
   intra-procedural edges.
2. A *supergraph* is formed by replacing each call's fallthrough edge
   with a call edge (caller block -> callee entry) and return edges
   (each returning block of the callee -> the call's fallthrough).
   Indirect calls conservatively target every known function entry.
3. The "last system call before here" sets are solved by forward
   dataflow over the supergraph; the predecessor set of a syscall
   block is then exactly the §3.3 policy content.  Block id 0 is the
   pseudo-block for "program start".
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.isa import SymbolRef
from repro.isa.opcodes import Op
from repro.plto.cfg import CfgError, ControlFlowGraph

#: The pseudo block id representing "no system call has run yet".
ENTRY_BLOCK_ID = 0


@dataclass
class FunctionInfo:
    entry_label: str
    entry_block: int
    blocks: set[int] = field(default_factory=set)
    #: blocks inside this function that end in RET (or JR-as-return)
    return_blocks: set[int] = field(default_factory=set)


@dataclass
class CallGraph:
    cfg: ControlFlowGraph
    functions: dict[str, FunctionInfo]
    #: (caller block, callee entry label) for each direct call site
    calls: list[tuple[int, str]]
    #: blocks containing indirect calls
    indirect_call_blocks: list[int]

    def function_of_block(self, block: int) -> Optional[FunctionInfo]:
        for info in self.functions.values():
            if block in info.blocks:
                return info
        return None


def build_call_graph(cfg: ControlFlowGraph) -> CallGraph:
    unit = cfg.unit
    labels = unit.label_index()

    entries: dict[str, int] = {unit.binary.entry: cfg.entry_block}
    calls: list[tuple[int, str]] = []
    indirect: list[int] = []
    for block in cfg.blocks:
        terminator = block.terminator(unit)
        if terminator.op == Op.CALL:
            ref = terminator.imm
            if not isinstance(ref, SymbolRef) or ref.symbol not in labels:
                raise CfgError(f"unresolvable call target: {terminator}")
            entries.setdefault(ref.symbol, cfg.block_of[labels[ref.symbol]])
            calls.append((block.index, ref.symbol))
        elif terminator.op == Op.CALLR:
            indirect.append(block.index)

    functions: dict[str, FunctionInfo] = {}
    for label, entry_block in entries.items():
        info = FunctionInfo(entry_label=label, entry_block=entry_block)
        worklist = [entry_block]
        while worklist:
            current = worklist.pop()
            if current in info.blocks:
                continue
            info.blocks.add(current)
            terminator = cfg.blocks[current].terminator(unit)
            if terminator.op in (Op.RET, Op.JR):
                info.return_blocks.add(current)
            worklist.extend(cfg.blocks[current].successors)
        functions[label] = info

    return CallGraph(
        cfg=cfg, functions=functions, calls=calls, indirect_call_blocks=indirect
    )


def _supergraph_edges(graph: CallGraph) -> dict[int, set[int]]:
    """Interprocedural successor sets over CFG block indices."""
    cfg = graph.cfg
    unit = cfg.unit
    edges: dict[int, set[int]] = {
        block.index: set(block.successors) for block in cfg.blocks
    }

    def call_targets(block_index: int) -> list[str]:
        terminator = cfg.blocks[block_index].terminator(unit)
        if terminator.op == Op.CALL:
            assert isinstance(terminator.imm, SymbolRef)
            return [terminator.imm.symbol]
        # Indirect: conservatively, any function may be the target.
        return list(graph.functions)

    call_blocks = [block for block, _ in graph.calls] + graph.indirect_call_blocks
    for block_index in call_blocks:
        fallthrough = set(edges[block_index])
        edges[block_index] = set()
        for callee_label in call_targets(block_index):
            callee = graph.functions[callee_label]
            edges[block_index].add(callee.entry_block)
            for return_block in callee.return_blocks:
                edges.setdefault(return_block, set()).update(fallthrough)
    return edges


def syscall_ordering(graph: CallGraph) -> dict[int, frozenset[int]]:
    """Predecessor sets for every syscall block.

    Returns ``{syscall block index -> set of syscall block indices (or
    ENTRY_BLOCK_ID) that may immediately precede it}``.  Keys and set
    members are CFG block indices offset by +1 (0 is reserved for the
    entry pseudo-block), i.e. already in "block id" form.
    """
    cfg = graph.cfg
    edges = _supergraph_edges(graph)
    syscall_blocks = set(cfg.syscall_blocks())

    def block_id(index: int) -> int:
        return index + 1

    # Forward dataflow: in[b] = union(out[p]); out[b] = {b} if syscall.
    in_sets: dict[int, set[int]] = {b.index: set() for b in cfg.blocks}
    in_sets[cfg.entry_block].add(ENTRY_BLOCK_ID)

    def out_set(index: int) -> set[int]:
        if index in syscall_blocks:
            return {block_id(index)}
        return in_sets[index]

    worklist = [cfg.entry_block]
    while worklist:
        current = worklist.pop()
        flowing = out_set(current)
        for successor in edges.get(current, ()):
            before = len(in_sets[successor])
            in_sets[successor] |= flowing
            if len(in_sets[successor]) != before:
                worklist.append(successor)

    return {
        block_id(index): frozenset(in_sets[index])
        for index in sorted(syscall_blocks)
    }
