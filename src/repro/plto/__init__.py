"""PLTO-style binary rewriting toolkit.

The paper builds its trusted installer on PLTO [Schwarz, Debray &
Andrews 2001], a link-time optimizer that disassembles a relocatable
binary into an intermediate representation, runs static analyses
(basic blocks, call graph, reaching definitions, constant propagation,
stub inlining), and writes the binary back out.  This package is the
SVM32 equivalent:

- :mod:`repro.plto.ir` / :mod:`repro.plto.disasm` -- lift a SEF binary
  to a symbolic instruction list (immediates restored to symbol+addend
  form from the relocation table) and write it back out.
- :mod:`repro.plto.cfg` -- leaders, basic blocks, intra- and
  inter-procedural edges, function discovery.
- :mod:`repro.plto.callgraph` -- functions and the call graph; the
  system call ordering graph is derived from it exactly as §3.3
  describes ("computed from the standard call graph of the program by
  keeping only those nodes that correspond to system calls").
- :mod:`repro.plto.dataflow` -- flow-sensitive constant propagation
  over the register file, classifying each syscall argument as
  String / Immediate / Unknown (§4.1), plus the multi-value and
  fd-provenance refinements behind Table 3's *mv* and *fds* columns.
- :mod:`repro.plto.inline` -- syscall-stub inlining, so each original
  call site gets its own policy rather than sharing the stub's.
- :mod:`repro.plto.passes` -- the baseline optimization passes applied
  to *both* the unauthenticated and authenticated binaries, mirroring
  the paper's use of PLTO-processed binaries as the fair baseline.
"""

from repro.plto.ir import IrInsn, IrUnit, DisassemblyError
from repro.plto.disasm import disassemble, reassemble
from repro.plto.cfg import BasicBlock, ControlFlowGraph, build_cfg
from repro.plto.callgraph import CallGraph, build_call_graph, syscall_ordering
from repro.plto.dataflow import ArgClass, ArgValue, classify_syscall_args
from repro.plto.inline import inline_syscall_stubs
from repro.plto.passes import remove_nops, run_baseline_passes

__all__ = [
    "ArgClass",
    "ArgValue",
    "BasicBlock",
    "CallGraph",
    "ControlFlowGraph",
    "DisassemblyError",
    "IrInsn",
    "IrUnit",
    "build_call_graph",
    "build_cfg",
    "classify_syscall_args",
    "disassemble",
    "inline_syscall_stubs",
    "reassemble",
    "remove_nops",
    "run_baseline_passes",
    "syscall_ordering",
]
