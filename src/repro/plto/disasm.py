"""Lifting binaries to IR and writing IR back to binaries.

``disassemble`` inverts the assembler: fixed-width decoding plus the
relocation table reconstruct a fully symbolic instruction list.  The
binary must be relocatable — a stripped binary (no relocations) raises
:class:`DisassemblyError`, inheriting PLTO's documented requirement.

``reassemble`` is the layout engine: it assigns fresh offsets, rebuilds
``.text`` bytes, re-derives every code symbol and relocation, and
copies the data sections and metadata into a new SEF binary.
"""

from __future__ import annotations

from repro.binfmt import Relocation, SefBinary, Section
from repro.binfmt.symbols import Symbol
from repro.isa import (
    INSTRUCTION_SIZE,
    SymbolRef,
    decode_instruction,
    encode_instruction,
)
from repro.isa.encoding import EncodingError, IMM_OFFSET
from repro.plto.ir import DisassemblyError, IrInsn, IrUnit


def disassemble(binary: SefBinary) -> IrUnit:
    """Lift ``binary``'s ``.text`` into an :class:`IrUnit`."""
    binary.validate()
    text = binary.section(".text")
    if text.size % INSTRUCTION_SIZE:
        raise DisassemblyError(
            f".text size {text.size} is not a whole number of instructions"
        )
    if binary.metadata.get("undisassemblable"):
        # The OpenBSD personality plants this marker on functions PLTO
        # cannot decode (the paper's `close` case, §4.2).
        raise DisassemblyError(
            "binary contains constructs the disassembler cannot decode: "
            + binary.metadata["undisassemblable"]
        )

    relocations = binary.relocations_for(".text")
    labels_by_offset: dict[int, list[str]] = {}
    for name, symbol in binary.symbols.items():
        if symbol.section == ".text":
            labels_by_offset.setdefault(symbol.offset, []).append(name)

    insns: list[IrInsn] = []
    data = bytes(text.data)
    for offset in range(0, text.size, INSTRUCTION_SIZE):
        try:
            instruction = decode_instruction(data, offset)
        except EncodingError as err:
            raise DisassemblyError(str(err)) from err
        reloc = relocations.get(offset + IMM_OFFSET)
        if reloc is not None:
            instruction.imm = SymbolRef(reloc.symbol, reloc.addend)
        labels = sorted(labels_by_offset.get(offset, []))
        insns.append(
            IrInsn(instruction=instruction, labels=labels, original_offset=offset)
        )
    # Symbols at unaligned .text offsets would be lost; refuse them.
    for offset in labels_by_offset:
        if offset % INSTRUCTION_SIZE and offset != text.size:
            raise DisassemblyError(
                f"symbol at unaligned .text offset {offset:#x}"
            )
    return IrUnit(insns=insns, binary=binary)


def reassemble(unit: IrUnit) -> SefBinary:
    """Lay the IR back out into a fresh SEF binary."""
    source = unit.binary
    out = SefBinary(entry=source.entry)
    out.metadata = dict(source.metadata)

    text = out.add_section(Section.named(".text"))
    label_offsets: dict[str, int] = {}
    encoded = bytearray()
    new_relocations: list[Relocation] = []

    for index, insn in enumerate(unit.insns):
        offset = index * INSTRUCTION_SIZE
        for label in insn.labels:
            if label in label_offsets:
                raise DisassemblyError(f"duplicate label {label!r} in IR")
            label_offsets[label] = offset
        instruction = insn.instruction
        if instruction.is_symbolic:
            ref = instruction.imm
            assert isinstance(ref, SymbolRef)
            new_relocations.append(
                Relocation(".text", offset + IMM_OFFSET, ref.symbol, ref.addend)
            )
            encoded += encode_instruction(instruction.resolved(0))
        else:
            encoded += encode_instruction(instruction)
    text.data = encoded

    # Copy non-text sections verbatim (same object identity is avoided
    # so further edits to the source binary do not alias).
    for name, section in source.sections.items():
        if name == ".text":
            continue
        out.add_section(
            Section(
                name=name,
                flags=section.flags,
                data=bytearray(section.data),
                nobits=section.nobits,
                reserve=section.reserve,
                align=section.align,
            )
        )

    # Symbols: .text symbols get their new offsets; others copy through.
    for name, symbol in source.symbols.items():
        if symbol.section == ".text":
            if name not in label_offsets:
                raise DisassemblyError(
                    f"symbol {name!r} lost during rewriting (no label)"
                )
            out.symbols[name] = Symbol(
                name, ".text", label_offsets[name], symbol.binding
            )
        else:
            out.symbols[name] = symbol
    # Labels created during rewriting that were not original symbols.
    for label, offset in label_offsets.items():
        if label not in out.symbols:
            out.symbols[label] = Symbol(label, ".text", offset)

    for reloc in new_relocations:
        out.add_relocation(reloc)
    for reloc in source.relocations:
        if reloc.section != ".text":
            out.add_relocation(reloc)

    out.validate()
    return out
