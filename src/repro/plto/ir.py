"""The intermediate representation shared by all PLTO passes.

An :class:`IrUnit` is a mutable, symbolic view of one binary's code:
instruction immediates that carried relocations are restored to
:class:`repro.isa.SymbolRef` form, and label names are attached to the
instructions they address.  Because nothing in the IR is an absolute
offset, passes may insert or delete instructions freely; the layout
step (:func:`repro.plto.disasm.reassemble`) re-derives offsets,
symbols, and relocations.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Iterator, Optional

from repro.binfmt import SefBinary
from repro.isa import Instruction


class DisassemblyError(ValueError):
    """The binary cannot be lifted (PLTO's 'cannot disassemble' case).

    PLTO "always reports when it cannot completely disassemble a
    binary, so that the administrator would always be aware of such a
    problem" (§4.2) — hence an exception, never a silent skip."""


@dataclass
class IrInsn:
    """One instruction plus the labels that point at it."""

    instruction: Instruction
    labels: list[str] = field(default_factory=list)
    #: Offset in the *original* binary; None for inserted instructions.
    original_offset: Optional[int] = None

    def __str__(self) -> str:
        prefix = "".join(f"{label}: " for label in self.labels)
        return f"{prefix}{self.instruction}"


@dataclass
class IrUnit:
    """A whole program lifted to IR.

    ``binary`` retains the original SEF object for access to data
    sections, non-code symbols, and metadata; the ``.text`` contents of
    ``binary`` are considered stale while the IR exists."""

    insns: list[IrInsn]
    binary: SefBinary
    _fresh_labels: Iterator[int] = field(
        default_factory=lambda: itertools.count(), repr=False
    )

    def label_index(self) -> dict[str, int]:
        """Label name -> instruction index (recomputed on demand)."""
        index: dict[str, int] = {}
        for position, insn in enumerate(self.insns):
            for label in insn.labels:
                index[label] = position
        return index

    def fresh_label(self, stem: str = "ir") -> str:
        existing = {
            label for insn in self.insns for label in insn.labels
        } | set(self.binary.symbols)
        while True:
            candidate = f".{stem}{next(self._fresh_labels)}"
            if candidate not in existing:
                return candidate

    def find_label(self, name: str) -> int:
        try:
            return self.label_index()[name]
        except KeyError:
            raise KeyError(f"no label {name!r} in IR") from None

    def insert(self, position: int, insns: list[IrInsn]) -> None:
        """Insert instructions *before* ``position``, moving any labels
        of the displaced instruction onto the first inserted one so
        branches to that point still reach the inserted sequence."""
        if not insns:
            return
        if position < len(self.insns):
            displaced = self.insns[position]
            insns[0].labels = displaced.labels + insns[0].labels
            displaced.labels = []
        self.insns[position:position] = insns

    def replace(self, position: int, insns: list[IrInsn]) -> None:
        """Replace the instruction at ``position`` with a sequence,
        keeping its labels on the first replacement instruction."""
        if not insns:
            raise ValueError("cannot replace an instruction with nothing")
        insns[0].labels = self.insns[position].labels + insns[0].labels
        self.insns[position : position + 1] = insns

    def __len__(self) -> int:
        return len(self.insns)
