"""Textual disassembly: render binaries and IR back to readable form.

The output of :func:`render_unit` is valid assembler input (it
round-trips through :func:`repro.asm.assemble`), which makes it useful
both as an ``objdump``-style inspection tool and as a debugging aid for
rewriting passes.  :func:`render_disassembly` adds addresses and raw
bytes, ``objdump -d`` style, for linked images.
"""

from __future__ import annotations

from repro.binfmt import SefBinary, link
from repro.isa import INSTRUCTION_SIZE, decode_instruction
from repro.plto.disasm import disassemble
from repro.plto.ir import IrUnit


def render_unit(unit: IrUnit) -> str:
    """Render IR as re-assemblable source text."""
    lines = [".section .text"]
    globals_needed = [
        name
        for name, symbol in unit.binary.symbols.items()
        if symbol.binding == "global" and symbol.section == ".text"
    ]
    for name in sorted(globals_needed):
        lines.append(f".global {name}")
    for insn in unit.insns:
        for label in insn.labels:
            lines.append(f"{label}:")
        lines.append(f"    {insn.instruction}")

    for name, section in unit.binary.sections.items():
        if name == ".text":
            continue
        lines.append(f".section {name}")
        section_symbols = sorted(
            (
                (symbol.offset, symbol_name)
                for symbol_name, symbol in unit.binary.symbols.items()
                if symbol.section == name
            ),
        )
        if section.nobits:
            cursor = 0
            for offset, symbol_name in section_symbols:
                if offset > cursor:
                    lines.append(f"    .space {offset - cursor}")
                    cursor = offset
                lines.append(f"{symbol_name}:")
            if section.reserve > cursor:
                lines.append(f"    .space {section.reserve - cursor}")
            continue
        relocs = unit.binary.relocations_for(name)
        labels_at = {offset: label for offset, label in section_symbols}
        data = bytes(section.data)
        boundaries = sorted(set(labels_at) | set(relocs) | {len(data)})
        cursor = 0
        while cursor <= len(data):
            if cursor in labels_at:
                lines.append(f"{labels_at[cursor]}:")
            if cursor == len(data):
                break
            if cursor in relocs:
                reloc = relocs[cursor]
                suffix = f"+{reloc.addend}" if reloc.addend else ""
                lines.append(f"    .word {reloc.symbol}{suffix}")
                cursor += 4
                continue
            stop = min(b for b in boundaries if b > cursor)
            while cursor < stop:
                chunk = data[cursor : min(stop, cursor + 12)]
                rendered = ", ".join(str(b) for b in chunk)
                lines.append(f"    .byte {rendered}")
                cursor += len(chunk)
    return "\n".join(lines) + "\n"


def render_disassembly(binary: SefBinary, base: int = 0x08048000) -> str:
    """objdump-style listing of the linked image: address, bytes, text."""
    image = link(binary, base=base)
    unit = disassemble(binary)
    text = image.segment(".text")
    names_by_address = {
        address: name
        for name, address in image.symbol_addresses.items()
        if text.vaddr <= address < text.vaddr + len(text.data)
    }
    lines = [f"{binary.metadata.get('program', '?')}:  entry {image.entry:#010x}", ""]
    for index, insn in enumerate(unit.insns):
        address = text.vaddr + index * INSTRUCTION_SIZE
        if address in names_by_address:
            lines.append(f"{address:#010x} <{names_by_address[address]}>:")
        raw = text.data[index * INSTRUCTION_SIZE : (index + 1) * INSTRUCTION_SIZE]
        concrete = decode_instruction(raw)
        rendered = str(insn.instruction)  # symbolic form when available
        lines.append(f"  {address:#010x}:  {raw.hex()}  {rendered}")
    for segment in image.segments:
        if segment.name == ".text":
            continue
        lines.append("")
        lines.append(
            f"section {segment.name}: {segment.vaddr:#010x} "
            f"size {segment.size}"
        )
    return "\n".join(lines) + "\n"


def render_policy(policy) -> str:
    """Human-readable dump of a ProgramPolicy (the §3.1 textual form)."""
    lines = [
        f"program: {policy.program} (personality {policy.personality}, "
        f"program id {policy.program_id})",
        f"sites: {policy.site_count()}   distinct syscalls: "
        f"{len(policy.distinct_syscalls())}",
    ]
    if policy.unidentified_sites:
        lines.append(
            f"WARNING: {len(policy.unidentified_sites)} call site(s) could "
            "not be identified (see §4.2 on disassembly limits)"
        )
    lines.append("")
    for site in sorted(policy.sites):
        lines.append(policy.sites[site].render())
        lines.append("")
    return "\n".join(lines)
