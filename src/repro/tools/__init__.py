"""Command-line tools: the administrator-facing surface.

``python -m repro.tools <command>`` exposes the workflow the paper's
security administrator would run:

- ``assemble``  — SVM32 assembly source -> relocatable ``.sef`` binary
- ``install``   — run the trusted installer over a ``.sef`` binary
- ``objdump``   — disassemble a binary (symbolic listing)
- ``policy``    — print the generated policies for a binary
- ``run``       — execute a binary under the checking kernel
- ``attacks``   — run the §4.1/§5.5 attack battery

Keys are derived from a passphrase (``--key``) so the installer and the
kernel invocation can share one; in production they would come from a
key store (see :class:`repro.crypto.KeyRing`).
"""

from repro.tools.cli import main

__all__ = ["main"]
