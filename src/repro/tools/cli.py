"""The ``repro.tools`` command-line interface."""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import Optional

from repro.asm import assemble
from repro.binfmt import SefBinary
from repro.cpu import ENGINES
from repro.crypto import Key
from repro.installer import InstallerOptions, install
from repro.kernel import EnforcementMode, Kernel
from repro.plto import disassemble
from repro.plto.printer import render_disassembly, render_policy, render_unit


def _key_from(args) -> Key:
    provider = "fast-hmac" if args.fast_mac else "aes-cmac"
    return Key.from_passphrase(args.key, provider=provider)


def _load_binary(path: str) -> SefBinary:
    return SefBinary.from_bytes(Path(path).read_bytes())


def _cmd_assemble(args) -> int:
    source = Path(args.source).read_text()
    program = args.program or Path(args.source).stem
    binary = assemble(source, metadata={"program": program})
    out = args.output or str(Path(args.source).with_suffix(".sef"))
    Path(out).write_bytes(binary.to_bytes())
    print(f"assembled {program}: {binary.sections['.text'].size} text bytes -> {out}")
    return 0


def _cmd_install(args) -> int:
    binary = _load_binary(args.binary)
    options = InstallerOptions(
        control_flow=not args.no_control_flow,
        program_id=args.program_id,
        capability_tracking=args.capability_tracking,
    )
    installed = install(binary, _key_from(args), options)
    out = args.output or args.binary.replace(".sef", "") + ".asc.sef"
    Path(out).write_bytes(installed.binary.to_bytes())
    print(
        f"installed {installed.policy.program}: "
        f"{installed.sites_rewritten} call sites rewritten, "
        f"{len(installed.policy.distinct_syscalls())} distinct syscalls -> {out}"
    )
    if installed.policy.unidentified_sites:
        print(
            f"WARNING: {len(installed.policy.unidentified_sites)} sites "
            "could not be identified",
            file=sys.stderr,
        )
    return 0


def _cmd_objdump(args) -> int:
    binary = _load_binary(args.binary)
    if args.source_form:
        print(render_unit(disassemble(binary)), end="")
    else:
        print(render_disassembly(binary), end="")
    return 0


def _cmd_policy(args) -> int:
    binary = _load_binary(args.binary)
    if binary.metadata.get("authenticated") == "yes":
        print(
            "note: binary is already installed; regenerating policies "
            "from its (rewritten) code",
            file=sys.stderr,
        )
    from repro.installer import generate_policy_only

    policy = generate_policy_only(binary)
    if args.json:
        from repro.policy.serialize import policy_to_json

        print(policy_to_json(policy), end="")
    else:
        print(render_policy(policy), end="")
    return 0


def _cmd_policy_diff(args) -> int:
    from repro.policy.serialize import diff_policies, policy_from_json

    old = policy_from_json(Path(args.old).read_text())
    new = policy_from_json(Path(args.new).read_text())
    lines = diff_policies(old, new)
    for line in lines:
        print(line)
    if not lines:
        print("policies are equivalent")
    return 1 if lines else 0


def _run_under_kernel(args, trace_path: Optional[str] = None):
    """Shared run/metrics machinery: build the kernel (optionally with
    a trace recorder attached), execute the binary, relay its output.
    Returns the (kernel, recorder, result) triple."""
    from repro.obs import TraceRecorder

    binary = _load_binary(args.binary)
    recorder = TraceRecorder() if trace_path else None
    kernel = Kernel(
        key=_key_from(args),
        mode=EnforcementMode.ENFORCE if args.enforce else EnforcementMode.PERMISSIVE,
        fastpath=not args.no_fastpath,
        engine=args.engine,
        chain=not args.no_chain,
        verifier_jit=not args.no_verifier_jit,
        recorder=recorder,
    )
    for spec in args.file or []:
        path, _, content = spec.partition("=")
        kernel.vfs.write_file(path, content.encode())
    stdin = args.stdin.encode() if args.stdin else b""
    argv = [binary.metadata.get("program", "a.out")] + (args.args or [])
    procs = getattr(args, "procs", 0) or 0
    if procs > 0:
        multi = kernel.run_many(
            [(binary, argv, stdin)] * procs,
            timeslice=getattr(args, "timeslice", 5000) or 5000,
        )
        for index, instance in enumerate(multi.results):
            prefix = f"[pid {instance.process.pid}] " if procs > 1 else ""
            for line in instance.stdout.decode("utf-8", "replace").splitlines():
                sys.stdout.write(f"{prefix}{line}\n")
            sys.stderr.write(instance.stderr.decode("utf-8", "replace"))
            if instance.killed:
                print(
                    f"[killed] pid {instance.process.pid}: "
                    f"{instance.kill_reason}",
                    file=sys.stderr,
                )
        if any(instance.killed for instance in multi.results):
            for event in kernel.audit.alerts():
                print(f"[audit] {event.render()}", file=sys.stderr)
        print(
            f"[sched] {procs} processes, "
            f"{len(multi.scheduler.tasks)} tasks total, "
            f"{kernel.metrics.get('sched.context_switches')} context switches, "
            f"{kernel.metrics.get('sched.preemptions')} preemptions, "
            f"{kernel.metrics.get('sched.blocks')} blocks",
            file=sys.stderr,
        )
        result = multi.results[0]
    else:
        result = kernel.run(binary, argv=argv, stdin=stdin)
        sys.stdout.write(result.stdout.decode("utf-8", "replace"))
        sys.stderr.write(result.stderr.decode("utf-8", "replace"))
        if result.killed:
            print(f"[killed] {result.kill_reason}", file=sys.stderr)
            for event in kernel.audit.alerts():
                print(f"[audit] {event.render()}", file=sys.stderr)
    if trace_path:
        recorder.write_chrome_trace(trace_path)
        totals = recorder.stage_totals()
        traced_ms = recorder.total_traced_ns() / 1e6
        print(
            f"[trace] {trace_path}: {len(recorder.spans)} spans, "
            f"{traced_ms:.2f}ms traced",
            file=sys.stderr,
        )
        for name, entry in sorted(
            totals.items(), key=lambda item: -item[1]["self_ns"]
        ):
            print(
                f"[trace]   {name:16s} x{entry['count']:<6d} "
                f"self={entry['self_ns'] / 1e6:8.3f}ms "
                f"total={entry['total_ns'] / 1e6:8.3f}ms",
                file=sys.stderr,
            )
    return kernel, recorder, result


def _cmd_run_net(args) -> int:
    """``run --net``: install the netserver workload and run it under
    the preemptive scheduler, then print the loopback stack's view of
    the exchange."""
    from repro.workloads.netserver import build_netserver

    installed = install(
        build_netserver(clients=args.clients, requests=args.requests),
        _key_from(args),
        InstallerOptions(),
    )
    kernel = Kernel(
        key=_key_from(args),
        mode=EnforcementMode.ENFORCE if args.enforce else EnforcementMode.PERMISSIVE,
        fastpath=not args.no_fastpath,
        engine=args.engine,
        chain=not args.no_chain,
        verifier_jit=not args.no_verifier_jit,
    )
    multi = kernel.run_many(
        [installed.binary], timeslice=getattr(args, "timeslice", 5000) or 5000
    )
    server_pid = multi.results[0].process.pid
    failures = 0
    for pid in sorted(multi.scheduler.tasks):
        task = multi.scheduler.tasks[pid]
        label = "server" if pid == server_pid else "client"
        line = f"[net] pid {pid} ({label}): "
        if task.killed:
            line += f"killed: {task.kill_reason}"
            failures += 1
        else:
            line += f"exit {task.exit_status}"
            if task.exit_status != (0 if label == "server" else args.requests):
                failures += 1
        print(line)
    stats = ", ".join(
        f"{name.split('.', 1)[1]}={kernel.metrics.get(name)}"
        for name in (
            "net.connections", "net.accepts",
            "net.bytes_sent", "net.bytes_received",
        )
    )
    print(f"[net] {args.clients} clients x {args.requests} requests: {stats}")
    return 1 if failures else 0


def _cmd_run(args) -> int:
    if args.net:
        return _cmd_run_net(args)
    if not args.binary:
        print("run: a binary is required unless --net is given", file=sys.stderr)
        return 2
    kernel, _, result = _run_under_kernel(args, trace_path=args.trace)
    if args.stats:
        print(
            f"[stats] cycles={result.cycles} instructions={result.instructions} "
            f"syscalls={result.syscalls}",
            file=sys.stderr,
        )
        print(f"[stats] {kernel.audit.fastpath.render()}", file=sys.stderr)
    return result.exit_status


def _cmd_metrics(args) -> int:
    """Run a binary and dump the kernel's counter registry in
    Prometheus exposition format (program output goes to stderr so the
    metrics text is pipeable)."""
    if not args.binary:
        print("metrics: a binary is required", file=sys.stderr)
        return 2
    stdout = sys.stdout
    sys.stdout = sys.stderr
    try:
        kernel, _, result = _run_under_kernel(args, trace_path=None)
    finally:
        sys.stdout = stdout
    text = kernel.metrics.render_prometheus()
    if args.output:
        Path(args.output).write_text(text)
        print(f"metrics written to {args.output}", file=sys.stderr)
    else:
        sys.stdout.write(text)
    return 1 if result.killed else 0


def _cmd_attacks(args) -> int:
    from repro.attacks import (
        run_all_attacks,
        run_cross_process_attacks,
        run_net_attacks,
    )

    # The battery runs under every execution-engine configuration
    # (interp, threaded with and without block chaining, threaded with
    # the verifier JIT disabled): the verdicts are a security property
    # and must not depend on how the CPU is emulated or how the
    # verification path is specialized.
    configs = [
        ("interp", True, True),
        ("threaded", True, True),
        ("threaded", False, True),
        ("threaded", True, False),
    ]

    def _label(engine: str, chain: bool, verifier_jit: bool) -> str:
        label = engine
        if not chain:
            label += " (no chain)"
        if not verifier_jit:
            label += " (no verifier jit)"
        return label

    failures = 0
    for engine, chain, verifier_jit in configs:
        results = run_all_attacks(
            _key_from(args), engine=engine, chain=chain, verifier_jit=verifier_jit
        )
        width = max(len(r.name) for r in results)
        print(f"-- engine: {_label(engine, chain, verifier_jit)}")
        for result in results:
            expected_block = result.name != "frankenstein/undefended"
            status = "BLOCKED" if result.blocked else "succeeded"
            marker = "ok" if result.blocked == expected_block else "UNEXPECTED"
            print(f"{result.name.ljust(width)}  {status:10s} [{marker}]")
            if result.blocked != expected_block:
                failures += 1
    # Multiprogramming battery: cross-process attacks under the
    # preemptive scheduler.  Every one of these must be blocked.
    for engine, chain, verifier_jit in configs:
        results = run_cross_process_attacks(
            _key_from(args), engine=engine, chain=chain, verifier_jit=verifier_jit
        )
        width = max(len(r.name) for r in results)
        print(
            f"-- engine: {_label(engine, chain, verifier_jit)} (cross-process)"
        )
        for result in results:
            status = "BLOCKED" if result.blocked else "succeeded"
            marker = "ok" if result.blocked else "UNEXPECTED"
            print(f"{result.name.ljust(width)}  {status:10s} [{marker}]")
            if not result.blocked:
                failures += 1
    # Networking battery: attacks against the loopback socket stack's
    # echo server.  Every one of these must be blocked too.
    for engine, chain, verifier_jit in configs:
        results = run_net_attacks(
            _key_from(args), engine=engine, chain=chain, verifier_jit=verifier_jit
        )
        width = max(len(r.name) for r in results)
        print(f"-- engine: {_label(engine, chain, verifier_jit)} (network)")
        for result in results:
            status = "BLOCKED" if result.blocked else "succeeded"
            marker = "ok" if result.blocked else "UNEXPECTED"
            print(f"{result.name.ljust(width)}  {status:10s} [{marker}]")
            if not result.blocked:
                failures += 1
    return 1 if failures else 0


def _cmd_report(args) -> int:
    """Print the archived benchmark reports in paper order."""
    results = Path(args.results_dir)
    order = [
        ("table1_policy_sizes", "Table 1"),
        ("table2_bison_diff", "Table 2"),
        ("table3_arg_coverage", "Table 3"),
        ("table4_microbench", "Table 4"),
        ("table5_table6_macro", "Tables 5 & 6"),
        ("andrew_multiprogram", "Andrew-like benchmark"),
        ("attack_battery", "Attack experiments"),
        ("false_alarms", "False alarms"),
        ("installer_cost", "Installation cost"),
        ("extensions_ablations", "Ablations & extensions"),
    ]
    missing = []
    for stem, title in order:
        path = results / f"{stem}.txt"
        if not path.exists():
            missing.append(stem)
            continue
        print("=" * 72)
        print(path.read_text().rstrip())
        print()
    if missing:
        print(
            "missing reports (run `pytest benchmarks/ --benchmark-only`): "
            + ", ".join(missing),
            file=sys.stderr,
        )
        return 1
    return 0


def _cmd_faults(args) -> int:
    from repro.faults import run_sweep
    from repro.obs import MetricsRegistry

    metrics = MetricsRegistry()
    report = run_sweep(
        key=_key_from(args),
        seed=args.seed,
        count=args.count,
        config_names=args.config or None,
        kinds=args.kind or None,
        metrics=metrics,
    )
    print(report.summary())
    if args.json:
        Path(args.json).write_text(report.to_json())
        print(f"coverage report written to {args.json}", file=sys.stderr)
    if args.metrics:
        Path(args.metrics).write_text(metrics.render_prometheus())
    return 0 if report.ok else 1


def _cmd_conform(args) -> int:
    from repro.conformance import run_conformance
    from repro.obs import MetricsRegistry

    metrics = MetricsRegistry()
    report = run_conformance(
        key=_key_from(args),
        seed=args.seed,
        count=args.count,
        config_names=args.config or None,
        timeslice=args.timeslice,
        metrics=metrics,
        corpus_dir=args.corpus_dir,
    )
    print(report.summary())
    if args.json:
        Path(args.json).write_text(report.to_json())
        print(f"conformance report written to {args.json}", file=sys.stderr)
    if args.metrics:
        Path(args.metrics).write_text(metrics.render_prometheus())
    return 0 if report.ok else 1


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro.tools",
        description="Authenticated system calls: administrator tools",
    )
    parser.add_argument(
        "--key", default="machine-key",
        help="key passphrase shared by installer and kernel",
    )
    parser.add_argument(
        "--fast-mac", action="store_true",
        help="use the HMAC-based MAC provider (faster host runs; "
             "identical simulated costs)",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    cmd = commands.add_parser("assemble", help="assemble SVM32 source")
    cmd.add_argument("source")
    cmd.add_argument("-o", "--output")
    cmd.add_argument("--program", help="program name metadata")
    cmd.set_defaults(handler=_cmd_assemble)

    cmd = commands.add_parser("install", help="run the trusted installer")
    cmd.add_argument("binary")
    cmd.add_argument("-o", "--output")
    cmd.add_argument("--no-control-flow", action="store_true")
    cmd.add_argument("--program-id", type=int, default=0,
                     help="unique program id (Frankenstein defense)")
    cmd.add_argument("--capability-tracking", action="store_true")
    cmd.set_defaults(handler=_cmd_install)

    cmd = commands.add_parser("objdump", help="disassemble a binary")
    cmd.add_argument("binary")
    cmd.add_argument("--source-form", action="store_true",
                     help="emit re-assemblable source instead of a listing")
    cmd.set_defaults(handler=_cmd_objdump)

    cmd = commands.add_parser("policy", help="print generated policies")
    cmd.add_argument("binary")
    cmd.add_argument("--json", action="store_true",
                     help="emit the canonical policy-file form")
    cmd.set_defaults(handler=_cmd_policy)

    cmd = commands.add_parser(
        "policy-diff", help="audit diff between two exported policy files"
    )
    cmd.add_argument("old")
    cmd.add_argument("new")
    cmd.set_defaults(handler=_cmd_policy_diff)

    def _add_run_arguments(cmd):
        cmd.add_argument("binary", nargs="?")
        cmd.add_argument("args", nargs="*")
        cmd.add_argument("--enforce", action="store_true",
                         help="refuse unauthenticated binaries")
        cmd.add_argument("--stdin", help="bytes fed to the program's stdin")
        cmd.add_argument("--file", action="append",
                         help="pre-populate the VFS: --file /path=content")
        cmd.add_argument("--no-fastpath", action="store_true",
                         help="disable the per-site verification cache "
                              "(every trap pays the full CMAC)")
        cmd.add_argument("--engine", choices=ENGINES, default="threaded",
                         help="CPU execution engine: the basic-block "
                              "translation cache (threaded, default) or the "
                              "reference interpreter (interp)")
        cmd.add_argument("--no-chain", action="store_true",
                         help="disable direct block chaining and superblock "
                              "fusion in the threaded engine (plain "
                              "per-block dispatch)")
        cmd.add_argument("--no-verifier-jit", action="store_true",
                         help="disable per-site verifier specialization "
                              "(every trap runs the generic staged checker)")

    cmd = commands.add_parser("run", help="run under the checking kernel")
    _add_run_arguments(cmd)
    cmd.add_argument("--net", action="store_true",
                     help="run the built-in netserver workload (one "
                          "listener plus forked clients over the loopback "
                          "socket stack) instead of a binary")
    cmd.add_argument("--clients", type=int, default=4,
                     help="forked clients for --net (default 4)")
    cmd.add_argument("--requests", type=int, default=8,
                     help="requests per client for --net (default 8)")
    cmd.add_argument("--procs", type=int, default=0, metavar="N",
                     help="run N instances concurrently under the "
                          "preemptive scheduler (enables fork/wait/pipes)")
    cmd.add_argument("--timeslice", type=int, default=5000,
                     help="instructions per scheduler timeslice "
                          "(with --procs; default 5000)")
    cmd.add_argument("--stats", action="store_true")
    cmd.add_argument("--trace", metavar="OUT.json",
                     help="record verification-stage and engine spans; "
                          "write a Chrome trace-event JSON (load at "
                          "chrome://tracing or ui.perfetto.dev) and print "
                          "the per-stage breakdown to stderr")
    cmd.set_defaults(handler=_cmd_run)

    cmd = commands.add_parser(
        "metrics",
        help="run a binary and dump runtime counters "
             "(Prometheus exposition format)",
    )
    _add_run_arguments(cmd)
    cmd.add_argument("-o", "--output",
                     help="write the metrics dump to a file instead of stdout")
    cmd.set_defaults(handler=_cmd_metrics)

    cmd = commands.add_parser("attacks", help="run the attack battery")
    cmd.set_defaults(handler=_cmd_attacks)

    cmd = commands.add_parser(
        "faults",
        help="run the seeded fault-injection coverage sweep",
    )
    cmd.add_argument(
        "--seed", type=int, default=20050926,
        help="sweep seed (same seed + key -> byte-identical report)",
    )
    cmd.add_argument(
        "--count", type=int, default=200,
        help="number of fault plans (each runs on every selected config)",
    )
    cmd.add_argument(
        "--config", action="append", metavar="NAME",
        help="engine config to sweep (repeatable; default: all five)",
    )
    cmd.add_argument(
        "--kind", action="append", metavar="KIND",
        help="fault kind to inject (repeatable; default: all)",
    )
    cmd.add_argument(
        "--json", metavar="OUT.json",
        help="write the machine-readable coverage report here",
    )
    cmd.add_argument(
        "--metrics", metavar="OUT.prom",
        help="write faults.* counters (Prometheus exposition format)",
    )
    cmd.set_defaults(handler=_cmd_faults)

    cmd = commands.add_parser(
        "conform",
        help="run the cross-config conformance fuzzing sweep",
    )
    cmd.add_argument(
        "--seed", type=int, default=0,
        help="generator seed (same seed + key -> byte-identical report)",
    )
    cmd.add_argument(
        "--count", type=int, default=50,
        help="generated programs (each runs on every selected config)",
    )
    cmd.add_argument(
        "--config", action="append", metavar="NAME",
        help="engine config to compare (repeatable; default: all five)",
    )
    cmd.add_argument(
        "--timeslice", type=int, default=200,
        help="scheduler timeslice per conformance run (default 200)",
    )
    cmd.add_argument(
        "--json", metavar="OUT.json",
        help="write the machine-readable conformance report here",
    )
    cmd.add_argument(
        "--metrics", metavar="OUT.prom",
        help="write conform.* counters (Prometheus exposition format)",
    )
    cmd.add_argument(
        "--corpus-dir", metavar="DIR",
        help="write minimized reproducers for any divergence here",
    )
    cmd.set_defaults(handler=_cmd_conform)

    cmd = commands.add_parser(
        "report", help="print archived benchmark reports in paper order"
    )
    cmd.add_argument(
        "--results-dir", default="benchmarks/results",
        help="directory produced by the benchmark suite",
    )
    cmd.set_defaults(handler=_cmd_report)

    return parser


def main(argv: Optional[list] = None) -> int:
    args = build_parser().parse_args(argv)
    return args.handler(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
