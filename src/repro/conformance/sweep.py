"""The conformance sweep: N generated programs × every engine config.

The contract the CI gate enforces:

1. **Zero divergences.**  Every generated program must produce a
   bit-identical portable conformance signature (per-process results,
   syscall trace, kill families, final memory digests) on all five
   engine configurations.  One divergence fails the sweep.
2. **Determinism.**  Same seed + same key -> byte-identical report
   JSON, run to run and machine to machine.  Nothing time- or
   path-dependent goes into the report.
3. **Actionable failures.**  A diverging program is handed to the
   shrinker and the minimized reproducer is written into the corpus
   directory, ready to be checked in as a pinned regression test.

``conform.*`` counters and per-run spans flow through the obs layer
(:class:`~repro.obs.MetricsRegistry` / recorder protocol), mirroring
the fault sweep's ``faults.*`` instrumentation.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field

from repro.crypto import Key
from repro.faults.plan import configs_named

from repro.conformance.corpus import make_entry, write_entry
from repro.conformance.grammar import DEFAULT_TIMESLICE, generate_specs
from repro.conformance.oracle import (
    divergences,
    install_spec,
    run_all_configs,
    spec_diverges,
)
from repro.conformance.shrink import shrink_spec


@dataclass
class ConformanceReport:
    """Everything one sweep produced, JSON-serializable and stable."""

    seed: int
    count: int
    configs: tuple
    timeslice: int
    programs: list = field(default_factory=list)
    divergent: list = field(default_factory=list)
    reproducers: list = field(default_factory=list)
    totals: dict = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        return not self.divergent

    def to_json(self) -> str:
        payload = {
            "seed": self.seed,
            "count": self.count,
            "configs": list(self.configs),
            "timeslice": self.timeslice,
            "totals": self.totals,
            "divergent": self.divergent,
            "reproducers": self.reproducers,
            "programs": self.programs,
        }
        return json.dumps(payload, indent=2, sort_keys=True) + "\n"

    def summary(self) -> str:
        totals = self.totals
        lines = [
            f"conformance sweep: seed={self.seed} programs={self.count} "
            f"configs={len(self.configs)} runs={totals.get('runs', 0)}",
            "",
            f"{'family':<10} {'programs':>9}",
        ]
        for family, count in sorted(totals.get("families", {}).items()):
            lines.append(f"{family:<10} {count:>9}")
        lines.append("")
        lines.append(
            f"  clean={totals.get('clean', 0)} "
            f"killed={totals.get('killed', 0)} "
            f"divergent={len(self.divergent)}"
        )
        for entry in self.divergent:
            lines.append(
                f"  DIVERGED program {entry['program_id']}: "
                f"{', '.join(entry['configs'])}"
            )
        for name in self.reproducers:
            lines.append(f"  reproducer written: {name}")
        verdict = (
            "OK: 0 divergences"
            if self.ok
            else f"FAIL: {len(self.divergent)} DIVERGED"
        )
        lines += ["", verdict]
        return "\n".join(lines)


def run_conformance(
    key: Key = None,
    seed: int = 0,
    count: int = 50,
    config_names=None,
    timeslice: int = DEFAULT_TIMESLICE,
    metrics=None,
    recorder=None,
    corpus_dir=None,
    shrink_budget: int = 200,
) -> ConformanceReport:
    """Generate ``count`` programs from ``seed``, run each on every
    selected engine config, and compare signatures (see module
    docstring for the contract).

    With ``corpus_dir`` set, each diverging program is minimized and
    written there as a reproducer entry.  ``metrics`` and ``recorder``
    receive ``conform.*`` counters and per-config spans; both are
    host-side observability and never feed back into outcomes."""
    key = key or Key.generate()
    configs = configs_named(config_names)
    names = tuple(config.name for config in configs)
    report = ConformanceReport(
        seed=seed, count=count, configs=names, timeslice=timeslice
    )
    family_totals: dict = {}
    totals = {"runs": 0, "clean": 0, "killed": 0, "shrink_evaluations": 0}

    for spec in generate_specs(seed, count):
        if recorder is not None and recorder.enabled:
            recorder.begin(f"conform:program:{spec.program_id}", "conform")
        installed = install_spec(spec, key)
        outcomes = run_all_configs(
            key, installed, config_names=config_names,
            timeslice=timeslice, recorder=recorder,
        )
        diverged = divergences(outcomes)
        if recorder is not None and recorder.enabled:
            recorder.end()
        reference = outcomes[names[0]]
        totals["runs"] += len(outcomes)
        totals["clean" if reference.clean else "killed"] += 1
        for family in spec.families():
            family_totals[family] = family_totals.get(family, 0) + 1
        _count(metrics, recorder, "conform.programs")
        _count(metrics, recorder, "conform.runs", len(outcomes))
        report.programs.append(
            {
                "program_id": spec.program_id,
                "ops": [op.to_json() for op in spec.ops],
                "families": list(spec.families()),
                "fingerprint": reference.fingerprint(),
                "clean": reference.clean,
                "divergent_configs": diverged,
            }
        )
        if not diverged:
            continue

        _count(metrics, recorder, "conform.divergences")
        entry = {
            "program_id": spec.program_id,
            "configs": diverged,
            "fingerprints": {
                name: out.fingerprint() for name, out in outcomes.items()
            },
        }
        result = shrink_spec(
            spec,
            lambda candidate: spec_diverges(
                candidate, key, config_names=config_names,
                timeslice=timeslice,
            ),
            max_evaluations=shrink_budget,
        )
        totals["shrink_evaluations"] += result.evaluations
        _count(
            metrics, recorder, "conform.shrink_evaluations",
            result.evaluations,
        )
        entry["minimized_ops"] = [op.to_json() for op in result.spec.ops]
        if corpus_dir is not None:
            reproducer = make_entry(
                name=f"diverge-seed{seed}-p{spec.program_id}",
                description=(
                    f"minimized divergence from sweep seed={seed} "
                    f"program={spec.program_id} "
                    f"(configs: {', '.join(diverged)})"
                ),
                spec=result.spec,
            )
            write_entry(corpus_dir, reproducer)
            report.reproducers.append(reproducer.name)
            entry["reproducer"] = reproducer.name
        report.divergent.append(entry)

    totals["families"] = dict(sorted(family_totals.items()))
    report.totals = totals
    return report


def _count(metrics, recorder, name: str, delta: int = 1) -> None:
    if metrics is not None:
        metrics.inc(name, delta)
    if recorder is not None:
        recorder.inc(name, delta)
