"""Differential conformance fuzzing across engine configurations.

Seeded generator (:mod:`.grammar`) -> five-config oracle
(:mod:`.oracle`) -> minimizing shrinker (:mod:`.shrink`) -> pinned
reproducer corpus (:mod:`.corpus`), orchestrated by the sweep
(:mod:`.sweep`) behind ``repro conform``.
"""

from repro.conformance.corpus import (
    CorpusEntry,
    DEFAULT_CORPUS_DIR,
    load_entries,
    make_entry,
    seed_corpus,
    write_entry,
)
from repro.conformance.grammar import (
    DEFAULT_TIMESLICE,
    GenOp,
    ProgramSpec,
    build,
    generate_specs,
    render,
)
from repro.conformance.oracle import (
    ENGINE_CONFIGS,
    ProgramOutcome,
    divergences,
    install_spec,
    run_all_configs,
    run_program,
    spec_diverges,
)
from repro.conformance.shrink import ShrinkResult, shrink_spec
from repro.conformance.sweep import ConformanceReport, run_conformance

__all__ = [
    "ConformanceReport",
    "CorpusEntry",
    "DEFAULT_CORPUS_DIR",
    "DEFAULT_TIMESLICE",
    "ENGINE_CONFIGS",
    "GenOp",
    "ProgramOutcome",
    "ProgramSpec",
    "ShrinkResult",
    "build",
    "divergences",
    "generate_specs",
    "install_spec",
    "load_entries",
    "make_entry",
    "render",
    "run_all_configs",
    "run_conformance",
    "run_program",
    "seed_corpus",
    "shrink_spec",
    "spec_diverges",
    "write_entry",
]
