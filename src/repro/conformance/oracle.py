"""The conformance oracle: one program, every engine configuration.

A program is installed once and executed under each of the five
:data:`repro.faults.plan.CONFIGS` (interp / chained / no-chain /
no-verifier-jit / no-fastpath).  Each run is reduced to a *portable
conformance signature*:

- the per-process result tuples of :func:`repro.faults.harness.process_signature`
  with the config-dependent cycle slot stripped by
  :func:`repro.faults.harness.portable_signature` (exit status, crash,
  kill flag, kill reason, both output streams, instruction count);
- the dispatched **syscall trace** — ``(pid, name)`` in dispatch
  order, captured through the kernel's ``tracer`` hook (retried
  blocking calls are not double-counted);
- the per-process **kill family** (:func:`repro.kernel.auth.violation_family`);
- the per-process **final memory digest** over every mapped region.

The enforced property is the paper's: every engine configuration
implements the *same* authenticated-syscall semantics, so the
signature must be bit-identical across all of them.  Any mismatch is a
divergence, which the sweep hands to the shrinker.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass

from repro.crypto import Key
from repro.faults.harness import RunOutcome, portable_signature, process_signature
from repro.faults.plan import CONFIGS, configs_named
from repro.installer import InstalledProgram, InstallerOptions, install
from repro.kernel import EnforcementMode, Kernel
from repro.kernel.auth import violation_family

from repro.conformance.grammar import DEFAULT_TIMESLICE, PATHS, ProgramSpec, build

#: Instruction ceiling per conformance run; generated programs finish
#: in a few thousand instructions, so this only bounds generator bugs.
MAX_INSTRUCTIONS = 5_000_000

#: Files the oracle's kernels pre-create (the openclose op's targets).
VFS_FILES = {path: b"conformance\n" for path in PATHS}


class SyscallTraceRecorder:
    """The kernel ``tracer`` hook: records every dispatched call as
    ``(pid, name)``.  Dispatch order is deterministic under the
    instruction-budget scheduler, and identical across engine configs
    by the equivalence contract this oracle enforces."""

    def __init__(self) -> None:
        self.calls: list[tuple] = []

    def record(self, ctx) -> None:
        self.calls.append((ctx.process.pid, ctx.name))


@dataclass(frozen=True)
class ProgramOutcome:
    """One config's run of one program, reduced to comparables."""

    #: Per-process portable signatures (cycle slot stripped), pid order.
    per_task: tuple
    #: Dispatched syscall trace: ((pid, name), ...).
    trace: tuple
    #: Per-process final-memory sha256 hex digests, pid order.
    digests: tuple
    #: Per-process kill families ("" when not killed), pid order.
    families: tuple
    killed: bool
    kill_reasons: str
    exit_status: int

    def comparable(self) -> tuple:
        """Everything the cross-config equality check compares."""
        return (self.per_task, self.trace, self.digests, self.families)

    def fingerprint(self) -> str:
        """A stable short hash of the comparable (for reports)."""
        digest = hashlib.sha256(repr(self.comparable()).encode())
        return digest.hexdigest()[:16]

    @property
    def clean(self) -> bool:
        return not self.killed and self.exit_status == 0


def install_spec(spec: ProgramSpec, key: Key) -> InstalledProgram:
    """Assemble and install a generated program (once per program; the
    same installed image is replayed on every config)."""
    return install(build(spec), key, InstallerOptions())


def make_kernel(key: Key, config, recorder=None) -> Kernel:
    """A fresh machine for one conformance run."""
    kernel = Kernel(
        key=key,
        mode=EnforcementMode.PERMISSIVE,
        recorder=recorder,
        **config.kernel_kwargs(),
    )
    for path, content in VFS_FILES.items():
        kernel.vfs.write_file(path, content)
    return kernel


def run_program(
    key: Key,
    config,
    installed: InstalledProgram,
    timeslice: int = DEFAULT_TIMESLICE,
    recorder=None,
) -> ProgramOutcome:
    """Execute one installed program under one config, scheduled (fork
    and blocking I/O need the preemptive scheduler even for
    single-process programs, and a fixed timeslice makes preemption
    points part of the compared semantics)."""
    kernel = make_kernel(key, config, recorder=recorder)
    tracer = SyscallTraceRecorder()
    kernel.tracer = tracer
    multi = kernel.run_many(
        [installed.binary],
        timeslice=timeslice,
        max_instructions=MAX_INSTRUCTIONS,
    )
    tasks = [multi.scheduler.tasks[pid] for pid in sorted(multi.scheduler.tasks)]
    per_task = []
    digests = []
    families = []
    for task in tasks:
        entry = process_signature(
            task.exit_status, "", task.killed, task.kill_reason,
            bytes(task.process.stdout), bytes(task.process.stderr),
            task.vm.cycles, task.vm.instructions_executed,
        )
        per_task.append(entry)
        digests.append(_memory_digest(task.vm))
        families.append(
            (violation_family(task.kill_reason) or "") if task.killed else ""
        )
    outcome = RunOutcome(
        signature=tuple(per_task),
        killed=any(task.killed for task in tasks),
        kill_reason="; ".join(
            task.kill_reason for task in tasks if task.killed
        ),
    )
    return ProgramOutcome(
        per_task=portable_signature(outcome),
        trace=tuple(tracer.calls),
        digests=tuple(digests),
        families=tuple(families),
        killed=outcome.killed,
        kill_reasons=outcome.kill_reason,
        exit_status=multi.results[0].exit_status,
    )


def _memory_digest(vm) -> str:
    """sha256 over every mapped region's name and final contents."""
    digest = hashlib.sha256()
    for region in vm.memory.regions():
        digest.update(region.name.encode())
        digest.update(bytes(region.data))
    return digest.hexdigest()


def run_all_configs(
    key: Key,
    installed: InstalledProgram,
    config_names=None,
    timeslice: int = DEFAULT_TIMESLICE,
    recorder=None,
) -> dict[str, ProgramOutcome]:
    """Run one installed program on every selected config."""
    outcomes: dict[str, ProgramOutcome] = {}
    for config in configs_named(config_names):
        if recorder is not None and recorder.enabled:
            recorder.begin(f"conform:run:{config.name}", "conform")
        outcomes[config.name] = run_program(
            key, config, installed, timeslice=timeslice
        )
        if recorder is not None and recorder.enabled:
            recorder.end()
    return outcomes


def divergences(outcomes: dict[str, ProgramOutcome]) -> list[str]:
    """Names of configs whose comparable differs from the first
    config's (empty list == conformant)."""
    names = list(outcomes)
    reference = outcomes[names[0]].comparable()
    return [
        name for name in names[1:]
        if outcomes[name].comparable() != reference
    ]


def spec_diverges(
    spec: ProgramSpec,
    key: Key,
    config_names=None,
    timeslice: int = DEFAULT_TIMESLICE,
) -> bool:
    """The shrinker's predicate: does this spec still diverge?"""
    installed = install_spec(spec, key)
    return bool(divergences(run_all_configs(
        key, installed, config_names=config_names, timeslice=timeslice
    )))


#: Re-exported so callers can enumerate the roster without importing
#: the faults package themselves.
ENGINE_CONFIGS = CONFIGS
