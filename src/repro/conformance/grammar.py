"""The conformance generator: seeded, valid-but-adversarial guest programs.

A generated program is a :class:`ProgramSpec` — a flat sequence of
*ops* drawn from a small grammar, each rendering to a self-contained
assembly fragment.  The grammar is chosen to stress exactly the places
where the five engine configurations could diverge:

- ``write`` / ``openclose`` / ``getpid`` — straight-line syscall
  chains through the mini-libc stubs (file-family traps, warm sites).
- ``spin`` — near-budget ALU loops whose trip counts are seeded around
  multiples of the sweep timeslice, so preemption points land on block
  boundaries, mid-block, and mid-superblock.
- ``smc`` — a callable instruction slot in ``.data`` (writable, and
  executable because the paper's 2005-era testbed has no NX bit) that
  the program executes, patches with stores, and executes again: the
  self-modifying-store path that the threaded engine's write-version
  guards and chain-severing must get right.
- ``forkpipe`` — fork a child that feeds 8-byte records through a
  kernel pipe, with EOF, blocking, and ``wait4`` reconciliation.
- ``socket`` — a one-client echo exchange over the loopback socket
  stack (bind/listen/accept/connect/send/recv/shutdown), the
  socket-family trap set with authenticated string addresses.

Every op verifies its own results and branches to a shared ``fail:``
exit(1) on any mismatch, so a clean run exiting 0 really did observe
the semantics it was generated to observe.  Specs are pure data
(JSON-able), which is what lets the shrinker drop and simplify ops and
the corpus replay exact pinned sources.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.asm import assemble
from repro.binfmt import SefBinary
from repro.isa import Instruction, encode_instruction
from repro.isa.opcodes import Op
from repro.workloads.runtime import runtime_source, stub_label

#: Timeslice the oracle schedules every conformance run with.  Small on
#: purpose: many preemption boundaries per program, and the ``spin``
#: op seeds its trip counts around multiples of it.
DEFAULT_TIMESLICE = 200

#: Marker word carried in every pipe/socket record (and checked on the
#: other side).
RECORD_MARKER = 0x43464D4B  # "CFMK"

#: Bytes per pipe/socket record.
RECORD_SIZE = 8

#: Constant messages the ``write`` op prints (lengths differ so seeded
#: partial writes exercise distinct Immediate length constraints).
MESSAGES = ("conform\n", "ok\n", "abcdefghijklmnop")

#: Paths the ``openclose`` op opens; the oracle's kernel pre-creates
#: every one of them.
PATHS = ("/etc/motd", "/tmp/conform.dat")

#: Op kinds in grammar order.
OP_KINDS = ("write", "openclose", "getpid", "spin", "smc", "forkpipe", "socket")

#: kind -> syscall family it exercises (corpus coverage tags).
FAMILIES = {
    "write": "file",
    "openclose": "file",
    "getpid": "process",
    "spin": "loop",
    "smc": "smc",
    "forkpipe": "pipe",
    "socket": "socket",
}


@dataclass(frozen=True)
class GenOp:
    """One grammar op: a kind plus its seeded parameters."""

    kind: str
    #: write: message index / openclose: path index / smc: first
    #: immediate / forkpipe, socket: record count / spin: unused.
    value: int = 0
    #: spin: trip count / smc: second immediate / write: byte length.
    extra: int = 0

    def to_json(self) -> list:
        return [self.kind, self.value, self.extra]

    @classmethod
    def from_json(cls, row: list) -> "GenOp":
        return cls(kind=row[0], value=int(row[1]), extra=int(row[2]))


@dataclass(frozen=True)
class ProgramSpec:
    """One generated program: an id and its op sequence."""

    program_id: int
    ops: tuple

    def to_json(self) -> dict:
        return {
            "program_id": self.program_id,
            "ops": [op.to_json() for op in self.ops],
        }

    @classmethod
    def from_json(cls, payload: dict) -> "ProgramSpec":
        return cls(
            program_id=int(payload["program_id"]),
            ops=tuple(GenOp.from_json(row) for row in payload["ops"]),
        )

    def families(self) -> tuple:
        return tuple(dict.fromkeys(FAMILIES[op.kind] for op in self.ops))


def generate_specs(seed: int, count: int) -> list[ProgramSpec]:
    """Derive ``count`` program specs from ``seed`` (same arguments ->
    identical spec list, the determinism the report contract needs)."""
    rng = random.Random(seed)
    return [_one_spec(rng, index) for index in range(count)]


def _one_spec(rng: random.Random, program_id: int) -> ProgramSpec:
    ops = [_one_op(rng) for _ in range(rng.randrange(1, 6))]
    return ProgramSpec(program_id=program_id, ops=tuple(ops))


def _one_op(rng: random.Random) -> GenOp:
    # Straight-line syscall ops dominate; the heavier multi-process ops
    # appear often enough that a 50-program sweep covers every family.
    kind = rng.choices(
        OP_KINDS, weights=(5, 4, 3, 4, 3, 2, 2), k=1
    )[0]
    if kind == "write":
        message = rng.randrange(len(MESSAGES))
        return GenOp(kind, message, rng.randrange(1, len(MESSAGES[message]) + 1))
    if kind == "openclose":
        return GenOp(kind, rng.randrange(len(PATHS)))
    if kind == "getpid":
        return GenOp(kind)
    if kind == "spin":
        return GenOp(kind, extra=_near_budget_trips(rng))
    if kind == "smc":
        first = rng.randrange(1, 1 << 16)
        second = rng.randrange(1, 1 << 16)
        return GenOp(kind, first, second if second != first else second + 1)
    # forkpipe / socket: a few records each; blocking and EOF matter,
    # volume does not.
    return GenOp(kind, rng.randrange(1, 5))


def _near_budget_trips(rng: random.Random) -> int:
    """Trip counts clustered around timeslice multiples: each trip is 3
    instructions, so ``timeslice * k / 3 ± delta`` lands the loop's
    preemption point just before, on, and just after block boundaries."""
    if rng.random() < 0.7:
        k = rng.randrange(1, 4)
        delta = rng.randrange(-2, 3)
        return max(1, (DEFAULT_TIMESLICE * k) // 3 + delta)
    return rng.randrange(1, 64)


# -- rendering --------------------------------------------------------------


def render(spec: ProgramSpec) -> str:
    """Render a spec to assembly source (deterministic)."""
    text: list[str] = [
        ".section .text",
        ".global _start",
        "_start:",
    ]
    data: list[str] = []
    bss_needed = False
    syscalls = {"exit"}
    for index, op in enumerate(spec.ops):
        renderer = _RENDERERS[op.kind]
        fragment, data_fragment, used, scratch = renderer(index, op)
        text += fragment
        data += data_fragment
        syscalls |= used
        bss_needed = bss_needed or scratch
    text += [
        "    li r1, 0",
        f"    call {stub_label('exit')}",
        "fail:",
        "    li r1, 1",
        f"    call {stub_label('exit')}",
    ]
    source = "\n".join(text) + "\n"
    source += _rodata(spec)
    if data:
        source += ".section .data\n" + "\n".join(data) + "\n"
    if bss_needed:
        source += (
            ".section .bss\n"
            "cf_iobuf:\n"
            f"    .space {RECORD_SIZE}\n"
            "cf_wstatus:\n"
            "    .space 4\n"
        )
    source += runtime_source("linux", tuple(sorted(syscalls)))
    return source


def build(spec: ProgramSpec) -> SefBinary:
    """Assemble a spec into an (uninstalled) binary."""
    return assemble(
        render(spec), metadata={"program": f"conform-{spec.program_id}"}
    )


def _rodata(spec: ProgramSpec) -> str:
    lines = [".section .rodata"]
    for index, message in enumerate(MESSAGES):
        escaped = message.replace("\n", "\\n")
        lines.append(f"cf_msg{index}:")
        lines.append(f'    .ascii "{escaped}"')
    for index, path in enumerate(PATHS):
        lines.append(f"cf_path{index}:")
        lines.append(f'    .asciz "{path}"')
    for index, op in enumerate(spec.ops):
        if op.kind == "socket":
            lines.append(f"cf_svc{index}:")
            lines.append(f'    .asciz "svc:cf{index}"')
    return "\n".join(lines) + "\n"


def _render_write(index: int, op: GenOp):
    length = min(op.extra, len(MESSAGES[op.value]))
    fragment = [
        f"    ; op {index}: write {length} bytes of msg{op.value}",
        "    li r1, 1",
        f"    li r2, cf_msg{op.value}",
        f"    li r3, {length}",
        f"    call {stub_label('write')}",
        f"    cmpi r0, {length}",
        "    bne fail",
    ]
    return fragment, [], {"write"}, False


def _render_openclose(index: int, op: GenOp):
    fragment = [
        f"    ; op {index}: open+close path{op.value}",
        f"    li r1, cf_path{op.value}",
        "    li r2, 0",
        f"    call {stub_label('open')}",
        "    cmpi r0, 0",
        "    blt fail",
        "    mov r1, r0",
        f"    call {stub_label('close')}",
        "    cmpi r0, 0",
        "    bne fail",
    ]
    return fragment, [], {"open", "close"}, False


def _render_getpid(index: int, op: GenOp):
    fragment = [
        f"    ; op {index}: getpid",
        f"    call {stub_label('getpid')}",
        "    cmpi r0, 0",
        "    ble fail",
    ]
    return fragment, [], {"getpid"}, False


def _render_spin(index: int, op: GenOp):
    fragment = [
        f"    ; op {index}: near-budget spin ({op.extra} trips)",
        f"    li r9, {op.extra}",
        f"cf_spin{index}:",
        "    subi r9, r9, 1",
        "    cmpi r9, 0",
        f"    bgt cf_spin{index}",
    ]
    return fragment, [], set(), False


def _encode_words(instruction: Instruction) -> tuple:
    blob = encode_instruction(instruction)
    return tuple(
        int.from_bytes(blob[offset:offset + 4], "little")
        for offset in range(0, len(blob), 4)
    )


def _render_smc(index: int, op: GenOp):
    """A callable two-instruction slot in .data (``li r0, A; ret``)
    executed, patched in place to ``li r0, B``, and executed again.
    Stores go through the canonical write path, so the threaded
    engine's block cache must invalidate the compiled slot."""
    before = _encode_words(Instruction(Op.LI, regs=(0,), imm=op.value))
    after = _encode_words(Instruction(Op.LI, regs=(0,), imm=op.extra))
    ret = _encode_words(Instruction(Op.RET))
    data = [f"cf_slot{index}:"]
    for word in before + ret:
        data.append(f"    .word 0x{word:08X}")
    fragment = [
        f"    ; op {index}: self-modifying slot ({op.value} -> {op.extra})",
        # Indirect calls: the installer's CFG (correctly) refuses a
        # direct branch to a data symbol, but a register-indirect call
        # into the writable slot is exactly the shape real JIT/SMC
        # code takes.  The ordering analysis models CALLR as "any
        # known function"; calling the syscall-free rt_strlen helper
        # directly keeps a syscall-free static path through the
        # indirect call, so the data-slot detour stays admissible
        # under the control-flow policy.
        "    li r1, cf_path0",
        "    call rt_strlen",
        f"    li r9, cf_slot{index}",
        "    callr r9",
        f"    cmpi r0, {op.value}",
        "    bne fail",
        f"    li r9, cf_slot{index}",
        f"    li r10, 0x{after[0]:08X}",
        "    st r10, [r9+0]",
        f"    li r10, 0x{after[1]:08X}",
        "    st r10, [r9+4]",
        f"    li r9, cf_slot{index}",
        "    callr r9",
        f"    cmpi r0, {op.extra}",
        "    bne fail",
    ]
    return fragment, data, set(), False


def _render_forkpipe(index: int, op: GenOp):
    """Fork a child that feeds ``value`` marked records through a pipe;
    the parent drains to EOF, reaps, and reconciles every count."""
    records = op.value
    data = [f"cf_pipefds{index}:", "    .space 8"]
    fragment = [
        f"    ; op {index}: fork + pipe, {records} records",
        f"    li r1, cf_pipefds{index}",
        f"    call {stub_label('pipe')}",
        "    cmpi r0, 0",
        "    bne fail",
        f"    call {stub_label('fork')}",
        "    cmpi r0, 0",
        f"    beq cf_fp_child{index}",
        "    blt fail",
        # parent: close the write end, drain records to EOF
        f"    li r9, cf_pipefds{index}",
        "    ld r1, [r9+4]",
        f"    call {stub_label('close')}",
        "    li r13, 0",
        f"cf_fp_read{index}:",
        f"    li r9, cf_pipefds{index}",
        "    ld r1, [r9+0]",
        "    li r2, cf_iobuf",
        f"    li r3, {RECORD_SIZE}",
        f"    call {stub_label('read')}",
        "    cmpi r0, 0",
        f"    beq cf_fp_eof{index}",
        f"    cmpi r0, {RECORD_SIZE}",
        "    bne fail",
        "    li r9, cf_iobuf",
        "    ld r10, [r9+4]",
        f"    cmpi r10, {RECORD_MARKER}",
        "    bne fail",
        "    addi r13, r13, 1",
        f"    jmp cf_fp_read{index}",
        f"cf_fp_eof{index}:",
        f"    li r9, cf_pipefds{index}",
        "    ld r1, [r9+0]",
        f"    call {stub_label('close')}",
        f"    cmpi r13, {records}",
        "    bne fail",
        # reap the child; its exit status carries its sent count
        "    li r1, 0xFFFFFFFF",
        "    li r2, cf_wstatus",
        "    li r3, 0",
        "    li r4, 0",
        f"    call {stub_label('wait4')}",
        "    cmpi r0, 0",
        "    blt fail",
        "    li r9, cf_wstatus",
        "    ld r10, [r9+0]",
        "    shri r10, r10, 8",
        f"    cmpi r10, {records}",
        "    bne fail",
        f"    jmp cf_fp_done{index}",
        # child: close the read end, send marked records, exit(count)
        f"cf_fp_child{index}:",
        f"    li r9, cf_pipefds{index}",
        "    ld r1, [r9+0]",
        f"    call {stub_label('close')}",
        "    li r13, 0",
        f"cf_fp_send{index}:",
        f"    cmpi r13, {records}",
        f"    bge cf_fp_childdone{index}",
        "    li r9, cf_iobuf",
        "    st r13, [r9+0]",
        f"    li r10, {RECORD_MARKER}",
        "    st r10, [r9+4]",
        f"    li r9, cf_pipefds{index}",
        "    ld r1, [r9+4]",
        "    li r2, cf_iobuf",
        f"    li r3, {RECORD_SIZE}",
        f"    call {stub_label('write')}",
        f"    cmpi r0, {RECORD_SIZE}",
        "    bne fail",
        "    addi r13, r13, 1",
        f"    jmp cf_fp_send{index}",
        f"cf_fp_childdone{index}:",
        f"    li r9, cf_pipefds{index}",
        "    ld r1, [r9+4]",
        f"    call {stub_label('close')}",
        "    mov r1, r13",
        f"    call {stub_label('exit')}",
        f"cf_fp_done{index}:",
    ]
    used = {"pipe", "fork", "read", "write", "close", "wait4", "exit"}
    return fragment, data, used, True


def _render_socket(index: int, op: GenOp):
    """A one-client echo exchange over the loopback stack: the parent
    listens on this op's constant service name, the forked child dials
    it and round-trips ``value`` marked records."""
    requests = op.value
    fragment = [
        f"    ; op {index}: socket echo, {requests} requests",
        "    li r1, 2",
        "    li r2, 1",
        "    li r3, 0",
        f"    call {stub_label('socket')}",
        "    cmpi r0, 0",
        "    blt fail",
        "    mov r12, r0",
        "    mov r1, r12",
        f"    li r2, cf_svc{index}",
        "    li r3, 0",
        f"    call {stub_label('bind')}",
        "    cmpi r0, 0",
        "    bne fail",
        "    mov r1, r12",
        "    li r2, 1",
        f"    call {stub_label('listen')}",
        "    cmpi r0, 0",
        "    bne fail",
        f"    call {stub_label('fork')}",
        "    cmpi r0, 0",
        f"    beq cf_sk_child{index}",
        "    blt fail",
        # parent: accept, echo to EOF, close, reap
        "    mov r1, r12",
        "    li r2, 0",
        "    li r3, 0",
        f"    call {stub_label('accept')}",
        "    cmpi r0, 0",
        "    blt fail",
        "    mov r13, r0",
        "    li r14, 0",
        f"cf_sk_echo{index}:",
        "    mov r1, r13",
        "    li r2, cf_iobuf",
        f"    li r3, {RECORD_SIZE}",
        "    li r4, 0",
        f"    call {stub_label('recv')}",
        "    cmpi r0, 0",
        f"    beq cf_sk_eof{index}",
        f"    cmpi r0, {RECORD_SIZE}",
        "    bne fail",
        "    mov r1, r13",
        "    li r2, cf_iobuf",
        f"    li r3, {RECORD_SIZE}",
        "    li r4, 0",
        f"    call {stub_label('send')}",
        f"    cmpi r0, {RECORD_SIZE}",
        "    bne fail",
        "    addi r14, r14, 1",
        f"    jmp cf_sk_echo{index}",
        f"cf_sk_eof{index}:",
        "    mov r1, r13",
        f"    call {stub_label('close')}",
        "    mov r1, r12",
        f"    call {stub_label('close')}",
        f"    cmpi r14, {requests}",
        "    bne fail",
        "    li r1, 0xFFFFFFFF",
        "    li r2, cf_wstatus",
        "    li r3, 0",
        "    li r4, 0",
        f"    call {stub_label('wait4')}",
        "    cmpi r0, 0",
        "    blt fail",
        "    li r9, cf_wstatus",
        "    ld r10, [r9+0]",
        "    shri r10, r10, 8",
        f"    cmpi r10, {requests}",
        "    bne fail",
        f"    jmp cf_sk_done{index}",
        # child: dial, round-trip records, half-close, observe EOF
        f"cf_sk_child{index}:",
        "    mov r1, r12",
        f"    call {stub_label('close')}",
        "    li r1, 2",
        "    li r2, 1",
        "    li r3, 0",
        f"    call {stub_label('socket')}",
        "    cmpi r0, 0",
        "    blt fail",
        "    mov r12, r0",
        "    mov r1, r12",
        f"    li r2, cf_svc{index}",
        "    li r3, 0",
        f"    call {stub_label('connect')}",
        "    cmpi r0, 0",
        "    bne fail",
        "    li r13, 0",
        f"cf_sk_loop{index}:",
        f"    cmpi r13, {requests}",
        f"    bge cf_sk_childdone{index}",
        "    li r9, cf_iobuf",
        "    st r13, [r9+0]",
        f"    li r10, {RECORD_MARKER}",
        "    st r10, [r9+4]",
        "    mov r1, r12",
        "    li r2, cf_iobuf",
        f"    li r3, {RECORD_SIZE}",
        "    li r4, 0",
        f"    call {stub_label('send')}",
        f"    cmpi r0, {RECORD_SIZE}",
        "    bne fail",
        "    mov r1, r12",
        "    li r2, cf_iobuf",
        f"    li r3, {RECORD_SIZE}",
        "    li r4, 0",
        f"    call {stub_label('recv')}",
        f"    cmpi r0, {RECORD_SIZE}",
        "    bne fail",
        "    li r9, cf_iobuf",
        "    ld r10, [r9+4]",
        f"    cmpi r10, {RECORD_MARKER}",
        "    bne fail",
        "    addi r13, r13, 1",
        f"    jmp cf_sk_loop{index}",
        f"cf_sk_childdone{index}:",
        "    mov r1, r12",
        "    li r2, 1",
        f"    call {stub_label('shutdown')}",
        "    cmpi r0, 0",
        "    bne fail",
        "    mov r1, r12",
        "    li r2, cf_iobuf",
        f"    li r3, {RECORD_SIZE}",
        "    li r4, 0",
        f"    call {stub_label('recv')}",
        "    cmpi r0, 0",
        "    bne fail",
        "    mov r1, r12",
        f"    call {stub_label('close')}",
        "    mov r1, r13",
        f"    call {stub_label('exit')}",
        f"cf_sk_done{index}:",
    ]
    used = {
        "socket", "bind", "listen", "accept", "connect",
        "send", "recv", "shutdown", "close", "fork", "wait4", "exit",
    }
    return fragment, [], used, True


_RENDERERS = {
    "write": _render_write,
    "openclose": _render_openclose,
    "getpid": _render_getpid,
    "spin": _render_spin,
    "smc": _render_smc,
    "forkpipe": _render_forkpipe,
    "socket": _render_socket,
}
