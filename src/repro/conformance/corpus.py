"""The checked-in reproducer corpus.

Every divergence the conformance sweep ever finds is minimized and
frozen here as a small JSON entry, then replayed forever as a pinned
regression test.  An entry stores both the op list (so the provenance
is readable) and the **rendered assembly source** at the time of
capture — replay assembles the pinned source, not a re-render, so a
later generator change can neither mask nor mutate an old reproducer.

The corpus also carries *seed* entries: one minimized clean program per
syscall family (file, pipe, socket), produced by
:func:`seed_corpus` from the generator's own output stream.  Those pin
the conformance property itself — each family's minimal program must
keep running bit-identically on every engine config.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path

from repro.conformance.grammar import ProgramSpec, render

#: Corpus entries live under the repo's test tree by default.
DEFAULT_CORPUS_DIR = "tests/conformance/corpus"


@dataclass(frozen=True)
class CorpusEntry:
    """One pinned reproducer."""

    name: str
    description: str
    spec: ProgramSpec
    #: Rendered assembly frozen at capture time; replay assembles this.
    source: str
    families: tuple

    def to_json(self) -> str:
        payload = {
            "name": self.name,
            "description": self.description,
            "spec": self.spec.to_json(),
            "families": list(self.families),
            "source": self.source,
        }
        return json.dumps(payload, indent=2, sort_keys=True) + "\n"

    @classmethod
    def from_json(cls, text: str) -> "CorpusEntry":
        payload = json.loads(text)
        spec = ProgramSpec.from_json(payload["spec"])
        return cls(
            name=payload["name"],
            description=payload["description"],
            spec=spec,
            source=payload["source"],
            families=tuple(payload["families"]),
        )


def make_entry(name: str, description: str, spec: ProgramSpec) -> CorpusEntry:
    """Freeze ``spec`` (rendering its source now) under ``name``."""
    return CorpusEntry(
        name=name,
        description=description,
        spec=spec,
        source=render(spec),
        families=spec.families(),
    )


def write_entry(directory, entry: CorpusEntry) -> Path:
    """Write one entry as ``<name>.json``; returns the path."""
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    path = directory / f"{entry.name}.json"
    path.write_text(entry.to_json())
    return path


def load_entries(directory) -> list[CorpusEntry]:
    """Every entry in ``directory``, sorted by file name."""
    directory = Path(directory)
    if not directory.is_dir():
        return []
    return [
        CorpusEntry.from_json(path.read_text())
        for path in sorted(directory.glob("*.json"))
    ]


#: The syscall families every seeded corpus must represent, with the
#: description template their entries carry.
SEED_FAMILIES = ("file", "pipe", "socket")


def seed_corpus(key, seed: int = 0, scan: int = 200) -> list[CorpusEntry]:
    """Produce one minimized clean entry per family in
    :data:`SEED_FAMILIES` from the generator's seeded stream.

    For each family, the first generated spec covering it is shrunk
    under "still covers the family and still replays clean and
    conformant on every config", so the checked-in program is the
    smallest the shrinker can reach — typically a single op."""
    from repro.conformance.grammar import generate_specs
    from repro.conformance.oracle import (
        divergences,
        install_spec,
        run_all_configs,
    )
    from repro.conformance.shrink import shrink_spec

    def clean_and_covers(family):
        def predicate(spec: ProgramSpec) -> bool:
            if family not in spec.families():
                return False
            outcomes = run_all_configs(key, install_spec(spec, key))
            if divergences(outcomes):
                return False
            return all(out.clean for out in outcomes.values())

        return predicate

    specs = generate_specs(seed, scan)
    entries = []
    for family in SEED_FAMILIES:
        candidate = next(
            (spec for spec in specs if family in spec.families()), None
        )
        if candidate is None:
            raise RuntimeError(
                f"no generated spec covers family {family!r} "
                f"in {scan} programs from seed {seed}"
            )
        predicate = clean_and_covers(family)
        if not predicate(candidate):
            raise RuntimeError(
                f"family {family!r} candidate {candidate.program_id} "
                "does not replay clean before shrinking"
            )
        result = shrink_spec(candidate, predicate)
        entries.append(
            make_entry(
                name=f"seed-{family}",
                description=(
                    f"minimal clean {family}-family program from "
                    f"generator seed {seed}"
                ),
                spec=result.spec,
            )
        )
    return entries
