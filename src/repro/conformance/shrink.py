"""The shrinker: minimize a program spec while preserving a property.

Divergences come out of the oracle attached to multi-op generated
programs; checking a 5-op program into the corpus as a regression test
would pin noise, not cause.  :func:`shrink_spec` reduces a spec to a
(local) minimum under any caller-supplied predicate — "still diverges"
for the sweep, "still covers family F and still replays clean" for
corpus seeding — using two deterministic phases run to fixpoint:

1. **op removal** (ddmin-style): try dropping contiguous chunks of
   ops, halving the chunk size down to single ops;
2. **param reduction**: for every surviving op, try a ladder of
   smaller parameter values (fewer records, fewer trips, shorter
   writes, smaller immediates).

Each candidate is evaluated through the predicate, which is the only
thing that runs programs; the shrinker itself is pure spec surgery.
Evaluations are capped so a pathological predicate cannot stall a
sweep, and every step is counted for the ``conform.shrink_*`` metrics.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.conformance.grammar import GenOp, ProgramSpec


@dataclass
class ShrinkResult:
    """What one shrink produced."""

    spec: ProgramSpec
    #: Predicate evaluations spent (including failed candidates).
    evaluations: int
    #: Candidates that kept the property (i.e. actual reductions).
    reductions: int


def shrink_spec(
    spec: ProgramSpec,
    predicate,
    max_evaluations: int = 200,
) -> ShrinkResult:
    """Minimize ``spec`` under ``predicate`` (see module docstring).

    ``predicate(spec) -> bool`` must be True for the input spec; the
    result is the smallest spec found for which it stayed True."""
    state = _ShrinkState(predicate, max_evaluations)
    current = spec
    changed = True
    while changed and not state.exhausted:
        changed = False
        reduced = _remove_ops(current, state)
        if reduced is not None:
            current = reduced
            changed = True
        reduced = _reduce_params(current, state)
        if reduced is not None:
            current = reduced
            changed = True
    return ShrinkResult(
        spec=current,
        evaluations=state.evaluations,
        reductions=state.reductions,
    )


class _ShrinkState:
    def __init__(self, predicate, max_evaluations: int):
        self.predicate = predicate
        self.max_evaluations = max_evaluations
        self.evaluations = 0
        self.reductions = 0

    @property
    def exhausted(self) -> bool:
        return self.evaluations >= self.max_evaluations

    def keeps_property(self, spec: ProgramSpec) -> bool:
        if self.exhausted:
            return False
        self.evaluations += 1
        if self.predicate(spec):
            self.reductions += 1
            return True
        return False


def _with_ops(spec: ProgramSpec, ops) -> ProgramSpec:
    return ProgramSpec(program_id=spec.program_id, ops=tuple(ops))


def _remove_ops(spec: ProgramSpec, state: _ShrinkState):
    """One ddmin sweep: drop chunks, halving size; first success wins
    (the caller loops us to fixpoint)."""
    ops = list(spec.ops)
    if len(ops) <= 1:
        return None
    chunk = len(ops) // 2
    while chunk >= 1:
        start = 0
        while start < len(ops):
            candidate = ops[:start] + ops[start + chunk:]
            if candidate and state.keeps_property(_with_ops(spec, candidate)):
                return _with_ops(spec, candidate)
            if state.exhausted:
                return None
            start += chunk
        chunk //= 2
    return None


#: Parameter-reduction ladders per op kind: candidate replacement
#: values tried smallest-first for (value, extra).
def _param_candidates(op: GenOp):
    if op.kind == "write":
        for length in (1,):
            if op.extra > length:
                yield GenOp(op.kind, op.value, length)
        if op.value > 0:
            yield GenOp(op.kind, 0, op.extra)
    elif op.kind == "openclose":
        if op.value > 0:
            yield GenOp(op.kind, 0)
    elif op.kind == "spin":
        for trips in (1, 8):
            if op.extra > trips:
                yield GenOp(op.kind, extra=trips)
    elif op.kind == "smc":
        if (op.value, op.extra) != (1, 2):
            yield GenOp(op.kind, 1, 2)
    elif op.kind in ("forkpipe", "socket"):
        if op.value > 1:
            yield GenOp(op.kind, 1)


def _reduce_params(spec: ProgramSpec, state: _ShrinkState):
    """Try each op's reduction ladder; first success wins."""
    for index, op in enumerate(spec.ops):
        for candidate_op in _param_candidates(op):
            ops = list(spec.ops)
            ops[index] = candidate_op
            candidate = _with_ops(spec, ops)
            if state.keeps_property(candidate):
                return candidate
            if state.exhausted:
                return None
    return None
