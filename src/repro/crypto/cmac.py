"""OMAC1 (CMAC) over AES-128.

The paper uses "AES-CBC-OMAC" [Iwata & Kurosawa 2002], which produces a
128-bit message authentication code; OMAC1 was later standardised as
CMAC (RFC 4493, NIST SP 800-38B).  The unit tests check the RFC 4493
vectors, so this implementation is interoperable with any standard CMAC.

Two ways to MAC:

- :meth:`AesCmac.tag` is the one-shot reference path.
- :class:`CmacState` (via :meth:`AesCmac.prefix`) is the incremental
  API: absorb a message prefix once, then finalize it many times with
  different suffixes.  Repeated MACs over the same leading bytes skip
  re-encrypting those blocks, which is what the installer and the
  kernel fast path exploit for policy-section strings whose encoded
  prefixes are immutable.
"""

from __future__ import annotations

from typing import Optional

from repro.crypto.aes import AES, BLOCK_SIZE, TableAES

MAC_SIZE = 16

_R128 = 0x87  # the constant for doubling in GF(2^128)


def _dbl(block: bytes) -> bytes:
    """Double a 128-bit value in GF(2^128) (left shift, conditional xor)."""
    value = int.from_bytes(block, "big")
    value <<= 1
    if value >> 128:
        value = (value & ((1 << 128) - 1)) ^ _R128
    return value.to_bytes(16, "big")


def _xor(a: bytes, b: bytes) -> bytes:
    return bytes(x ^ y for x, y in zip(a, b))


class AesCmac:
    """Stateless CMAC tag generation and verification.

    >>> mac = AesCmac(bytes(16))
    >>> tag = mac.tag(b"hello")
    >>> mac.verify(b"hello", tag)
    True
    >>> mac.verify(b"hellp", tag)
    False

    The block cipher defaults to the table-driven :class:`TableAES`;
    pass ``cipher=AES(key)`` to run over the byte-cell reference
    implementation instead (the equivalence tests do exactly that).
    """

    name = "aes-cmac"

    def __init__(self, key: bytes, cipher: Optional[AES] = None):
        self._aes = cipher if cipher is not None else TableAES(key)
        zero = self._aes.encrypt_block(bytes(BLOCK_SIZE))
        self._k1 = _dbl(zero)
        self._k2 = _dbl(self._k1)

    def tag(self, message: bytes) -> bytes:
        """Compute the 16-byte CMAC tag of ``message``."""
        n_blocks = max(1, (len(message) + BLOCK_SIZE - 1) // BLOCK_SIZE)
        complete = len(message) > 0 and len(message) % BLOCK_SIZE == 0
        last_start = (n_blocks - 1) * BLOCK_SIZE
        if complete:
            last = _xor(message[last_start:], self._k1)
        else:
            padded = message[last_start:] + b"\x80"
            padded += bytes(BLOCK_SIZE - len(padded))
            last = _xor(padded, self._k2)
        state = bytes(BLOCK_SIZE)
        for i in range(n_blocks - 1):
            block = message[i * BLOCK_SIZE : (i + 1) * BLOCK_SIZE]
            state = self._aes.encrypt_block(_xor(state, block))
        return self._aes.encrypt_block(_xor(state, last))

    def verify(self, message: bytes, tag: bytes) -> bool:
        """Constant-time-style comparison of the expected tag."""
        expected = self.tag(message)
        if len(tag) != MAC_SIZE:
            return False
        diff = 0
        for x, y in zip(expected, tag):
            diff |= x ^ y
        return diff == 0

    def prefix(self, prefix: bytes = b"") -> "CmacState":
        """Absorb ``prefix`` into a reusable incremental state."""
        return CmacState(self).update(prefix)


class CmacState:
    """Incremental CMAC state: update with chunks, finalize many times.

    The trailing 1..16 bytes are buffered rather than compressed, since
    OMAC1 masks the *final* block with K1/K2 and which block is final is
    unknown until finalization.  ``tag`` therefore never consumes the
    state: one absorbed prefix can be finalized against any number of
    suffixes, each costing only the suffix's blocks plus one final
    encryption.
    """

    __slots__ = ("_mac", "_state", "_buffer")

    def __init__(self, mac: AesCmac, state: bytes = b"", buffer: bytes = b""):
        self._mac = mac
        self._state = state or bytes(BLOCK_SIZE)
        self._buffer = buffer

    def update(self, data: bytes) -> "CmacState":
        """Absorb ``data``; compresses every block that is certain not
        to be the message's last.  Returns ``self`` for chaining."""
        if not data:
            return self
        buf = self._buffer + data
        keep = len(buf) % BLOCK_SIZE or BLOCK_SIZE
        state = self._state
        encrypt = self._mac._aes.encrypt_block
        for i in range(0, len(buf) - keep, BLOCK_SIZE):
            state = encrypt(_xor(state, buf[i : i + BLOCK_SIZE]))
        self._state = state
        self._buffer = buf[len(buf) - keep :]
        return self

    def copy(self) -> "CmacState":
        return CmacState(self._mac, self._state, self._buffer)

    def tag(self, suffix: bytes = b"") -> bytes:
        """Tag of everything absorbed so far plus ``suffix``, without
        mutating this state."""
        if suffix:
            return self.copy().update(suffix).tag()
        mac = self._mac
        buf = self._buffer
        if len(buf) == BLOCK_SIZE:
            last = _xor(buf, mac._k1)
        else:
            padded = buf + b"\x80" + bytes(BLOCK_SIZE - len(buf) - 1)
            last = _xor(padded, mac._k2)
        return mac._aes.encrypt_block(_xor(self._state, last))

    def verify(self, tag: bytes, suffix: bytes = b"") -> bool:
        expected = self.tag(suffix)
        if len(tag) != MAC_SIZE:
            return False
        diff = 0
        for x, y in zip(expected, tag):
            diff |= x ^ y
        return diff == 0
