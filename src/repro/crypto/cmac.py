"""OMAC1 (CMAC) over AES-128.

The paper uses "AES-CBC-OMAC" [Iwata & Kurosawa 2002], which produces a
128-bit message authentication code; OMAC1 was later standardised as
CMAC (RFC 4493, NIST SP 800-38B).  The unit tests check the RFC 4493
vectors, so this implementation is interoperable with any standard CMAC.
"""

from __future__ import annotations

from repro.crypto.aes import AES, BLOCK_SIZE

MAC_SIZE = 16

_R128 = 0x87  # the constant for doubling in GF(2^128)


def _dbl(block: bytes) -> bytes:
    """Double a 128-bit value in GF(2^128) (left shift, conditional xor)."""
    value = int.from_bytes(block, "big")
    value <<= 1
    if value >> 128:
        value = (value & ((1 << 128) - 1)) ^ _R128
    return value.to_bytes(16, "big")


def _xor(a: bytes, b: bytes) -> bytes:
    return bytes(x ^ y for x, y in zip(a, b))


class AesCmac:
    """Stateless CMAC tag generation and verification.

    >>> mac = AesCmac(bytes(16))
    >>> tag = mac.tag(b"hello")
    >>> mac.verify(b"hello", tag)
    True
    >>> mac.verify(b"hellp", tag)
    False
    """

    name = "aes-cmac"

    def __init__(self, key: bytes):
        self._aes = AES(key)
        zero = self._aes.encrypt_block(bytes(BLOCK_SIZE))
        self._k1 = _dbl(zero)
        self._k2 = _dbl(self._k1)

    def tag(self, message: bytes) -> bytes:
        """Compute the 16-byte CMAC tag of ``message``."""
        n_blocks = max(1, (len(message) + BLOCK_SIZE - 1) // BLOCK_SIZE)
        complete = len(message) > 0 and len(message) % BLOCK_SIZE == 0
        last_start = (n_blocks - 1) * BLOCK_SIZE
        if complete:
            last = _xor(message[last_start:], self._k1)
        else:
            padded = message[last_start:] + b"\x80"
            padded += bytes(BLOCK_SIZE - len(padded))
            last = _xor(padded, self._k2)
        state = bytes(BLOCK_SIZE)
        for i in range(n_blocks - 1):
            block = message[i * BLOCK_SIZE : (i + 1) * BLOCK_SIZE]
            state = self._aes.encrypt_block(_xor(state, block))
        return self._aes.encrypt_block(_xor(state, last))

    def verify(self, message: bytes, tag: bytes) -> bool:
        """Constant-time-style comparison of the expected tag."""
        expected = self.tag(message)
        if len(tag) != MAC_SIZE:
            return False
        diff = 0
        for x, y in zip(expected, tag):
            diff |= x ^ y
        return diff == 0
