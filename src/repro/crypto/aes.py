"""Pure-Python AES-128 block cipher (FIPS-197).

Two implementations share one interface:

- :class:`AES` is the straightforward table-free *reference* version:
  the S-box is precomputed, and MixColumns uses xtime (multiplication
  by 2 in GF(2^8)).  Clarity is preferred over raw speed.
- :class:`TableAES` is the table-driven version the paper's prototype
  would have linked (Gladman-style): SubBytes, ShiftRows, and
  MixColumns are fused into four precomputed 256-entry 32-bit T-tables
  and the round loop works on four column words instead of sixteen
  byte cells.  It is the default block cipher behind
  :class:`repro.crypto.cmac.AesCmac` and is cross-checked against the
  reference implementation by the property tests in ``tests/crypto``.
"""

from __future__ import annotations

BLOCK_SIZE = 16

_SBOX = [0] * 256
_INV_SBOX = [0] * 256


def _initialise_sboxes() -> None:
    """Build the AES S-box from the multiplicative inverse in GF(2^8).

    Computing the table (rather than embedding 256 literals) keeps the
    derivation auditable and doubles as a self-check: the affine
    transform and inverse must agree with the published fixed points
    (``SBOX[0x00] == 0x63``), which the unit tests assert.
    """
    p = q = 1
    # 3 is a generator of GF(2^8)*; walk the log/antilog cycle.
    while True:
        # p := p * 3
        p = p ^ ((p << 1) & 0xFF) ^ (0x1B if p & 0x80 else 0)
        # q := q / 3
        q ^= q << 1
        q ^= q << 2
        q ^= q << 4
        q &= 0xFF
        if q & 0x80:
            q ^= 0x09
        s = q ^ _rotl8(q, 1) ^ _rotl8(q, 2) ^ _rotl8(q, 3) ^ _rotl8(q, 4) ^ 0x63
        _SBOX[p] = s
        _INV_SBOX[s] = p
        if p == 1:
            break
    _SBOX[0] = 0x63
    _INV_SBOX[0x63] = 0


def _rotl8(x: int, shift: int) -> int:
    return ((x << shift) | (x >> (8 - shift))) & 0xFF


_initialise_sboxes()

_RCON = [0x01, 0x02, 0x04, 0x08, 0x10, 0x20, 0x40, 0x80, 0x1B, 0x36]


def _xtime(a: int) -> int:
    """Multiply by x (i.e. 2) in GF(2^8) modulo the AES polynomial."""
    a <<= 1
    if a & 0x100:
        a ^= 0x11B
    return a & 0xFF


def _gmul(a: int, b: int) -> int:
    """General multiplication in GF(2^8); used only by decryption."""
    result = 0
    while b:
        if b & 1:
            result ^= a
        a = _xtime(a)
        b >>= 1
    return result


class AES:
    """AES-128 over 16-byte blocks.

    >>> key = bytes(range(16))
    >>> cipher = AES(key)
    >>> block = b"authenticated!!!"
    >>> cipher.decrypt_block(cipher.encrypt_block(block)) == block
    True
    """

    rounds = 10

    def __init__(self, key: bytes):
        if len(key) != 16:
            raise ValueError(f"AES-128 requires a 16-byte key, got {len(key)}")
        self._round_keys = self._expand_key(key)

    @staticmethod
    def _expand_key(key: bytes) -> list[list[int]]:
        """Expand a 16-byte key into 11 round keys of 16 bytes each."""
        words = [list(key[i : i + 4]) for i in range(0, 16, 4)]
        for i in range(4, 4 * (AES.rounds + 1)):
            word = list(words[i - 1])
            if i % 4 == 0:
                word = word[1:] + word[:1]
                word = [_SBOX[b] for b in word]
                word[0] ^= _RCON[i // 4 - 1]
            words.append([w ^ p for w, p in zip(word, words[i - 4])])
        round_keys = []
        for r in range(AES.rounds + 1):
            rk: list[int] = []
            for w in words[4 * r : 4 * r + 4]:
                rk.extend(w)
            round_keys.append(rk)
        return round_keys

    # -- state helpers -------------------------------------------------
    #
    # The state is kept as a flat list of 16 bytes in column-major order
    # (byte i of the input maps to row i%4, column i//4), matching the
    # FIPS-197 layout so ShiftRows indices below are the standard ones.

    @staticmethod
    def _add_round_key(state: list[int], rk: list[int]) -> None:
        for i in range(16):
            state[i] ^= rk[i]

    @staticmethod
    def _sub_bytes(state: list[int]) -> None:
        for i in range(16):
            state[i] = _SBOX[state[i]]

    @staticmethod
    def _inv_sub_bytes(state: list[int]) -> None:
        for i in range(16):
            state[i] = _INV_SBOX[state[i]]

    # Row r of the state lives at indices r, r+4, r+8, r+12.
    _SHIFT_ROWS = [0, 5, 10, 15, 4, 9, 14, 3, 8, 13, 2, 7, 12, 1, 6, 11]
    _INV_SHIFT_ROWS = [0, 13, 10, 7, 4, 1, 14, 11, 8, 5, 2, 15, 12, 9, 6, 3]

    @classmethod
    def _shift_rows(cls, state: list[int]) -> list[int]:
        return [state[i] for i in cls._SHIFT_ROWS]

    @classmethod
    def _inv_shift_rows(cls, state: list[int]) -> list[int]:
        return [state[i] for i in cls._INV_SHIFT_ROWS]

    @staticmethod
    def _mix_columns(state: list[int]) -> None:
        for c in range(0, 16, 4):
            a0, a1, a2, a3 = state[c : c + 4]
            t = a0 ^ a1 ^ a2 ^ a3
            state[c + 0] = a0 ^ t ^ _xtime(a0 ^ a1)
            state[c + 1] = a1 ^ t ^ _xtime(a1 ^ a2)
            state[c + 2] = a2 ^ t ^ _xtime(a2 ^ a3)
            state[c + 3] = a3 ^ t ^ _xtime(a3 ^ a0)

    @staticmethod
    def _inv_mix_columns(state: list[int]) -> None:
        for c in range(0, 16, 4):
            a0, a1, a2, a3 = state[c : c + 4]
            state[c + 0] = _gmul(a0, 14) ^ _gmul(a1, 11) ^ _gmul(a2, 13) ^ _gmul(a3, 9)
            state[c + 1] = _gmul(a0, 9) ^ _gmul(a1, 14) ^ _gmul(a2, 11) ^ _gmul(a3, 13)
            state[c + 2] = _gmul(a0, 13) ^ _gmul(a1, 9) ^ _gmul(a2, 14) ^ _gmul(a3, 11)
            state[c + 3] = _gmul(a0, 11) ^ _gmul(a1, 13) ^ _gmul(a2, 9) ^ _gmul(a3, 14)

    # -- public API ----------------------------------------------------

    def encrypt_block(self, block: bytes) -> bytes:
        if len(block) != BLOCK_SIZE:
            raise ValueError(f"block must be {BLOCK_SIZE} bytes, got {len(block)}")
        state = list(block)
        self._add_round_key(state, self._round_keys[0])
        for r in range(1, self.rounds):
            self._sub_bytes(state)
            state = self._shift_rows(state)
            self._mix_columns(state)
            self._add_round_key(state, self._round_keys[r])
        self._sub_bytes(state)
        state = self._shift_rows(state)
        self._add_round_key(state, self._round_keys[self.rounds])
        return bytes(state)

    def decrypt_block(self, block: bytes) -> bytes:
        if len(block) != BLOCK_SIZE:
            raise ValueError(f"block must be {BLOCK_SIZE} bytes, got {len(block)}")
        state = list(block)
        self._add_round_key(state, self._round_keys[self.rounds])
        state = self._inv_shift_rows(state)
        self._inv_sub_bytes(state)
        for r in range(self.rounds - 1, 0, -1):
            self._add_round_key(state, self._round_keys[r])
            self._inv_mix_columns(state)
            state = self._inv_shift_rows(state)
            self._inv_sub_bytes(state)
        self._add_round_key(state, self._round_keys[0])
        return bytes(state)


# -- table-driven variant ----------------------------------------------
#
# The four encryption T-tables.  With the state held as four big-endian
# column words (row 0 in the most significant byte), one AES round is
#
#   t[j] = Te0[s[j] >> 24] ^ Te1[(s[j+1] >> 16) & 0xFF]
#        ^ Te2[(s[j+2] >> 8) & 0xFF] ^ Te3[s[j+3] & 0xFF] ^ rk[j]
#
# (column indices mod 4): each table bakes SubBytes plus one column of
# the MixColumns matrix, and the staggered byte selection is ShiftRows.

_TE0: list[int] = []
_TE1: list[int] = []
_TE2: list[int] = []
_TE3: list[int] = []


def _initialise_ttables() -> None:
    for x in range(256):
        s = _SBOX[x]
        m2 = _xtime(s)
        m3 = m2 ^ s
        _TE0.append((m2 << 24) | (s << 16) | (s << 8) | m3)
        _TE1.append((m3 << 24) | (m2 << 16) | (s << 8) | s)
        _TE2.append((s << 24) | (m3 << 16) | (m2 << 8) | s)
        _TE3.append((s << 24) | (s << 16) | (m3 << 8) | m2)


_initialise_ttables()


class TableAES(AES):
    """Table-driven AES-128 encryption behind the :class:`AES` interface.

    Key expansion and decryption reuse the reference implementation
    (the CMAC construction never decrypts); ``encrypt_block`` is
    flattened into word operations over the precomputed T-tables, which
    is what makes it several times faster than the byte-cell reference.
    """

    def __init__(self, key: bytes):
        super().__init__(key)
        self._rk_words = [
            [int.from_bytes(bytes(rk[4 * c : 4 * c + 4]), "big") for c in range(4)]
            for rk in self._round_keys
        ]

    def encrypt_block(self, block: bytes) -> bytes:
        if len(block) != BLOCK_SIZE:
            raise ValueError(f"block must be {BLOCK_SIZE} bytes, got {len(block)}")
        te0, te1, te2, te3 = _TE0, _TE1, _TE2, _TE3
        rks = self._rk_words
        rk = rks[0]
        s0 = int.from_bytes(block[0:4], "big") ^ rk[0]
        s1 = int.from_bytes(block[4:8], "big") ^ rk[1]
        s2 = int.from_bytes(block[8:12], "big") ^ rk[2]
        s3 = int.from_bytes(block[12:16], "big") ^ rk[3]
        for r in range(1, 10):
            rk = rks[r]
            t0 = (te0[s0 >> 24] ^ te1[(s1 >> 16) & 0xFF]
                  ^ te2[(s2 >> 8) & 0xFF] ^ te3[s3 & 0xFF] ^ rk[0])
            t1 = (te0[s1 >> 24] ^ te1[(s2 >> 16) & 0xFF]
                  ^ te2[(s3 >> 8) & 0xFF] ^ te3[s0 & 0xFF] ^ rk[1])
            t2 = (te0[s2 >> 24] ^ te1[(s3 >> 16) & 0xFF]
                  ^ te2[(s0 >> 8) & 0xFF] ^ te3[s1 & 0xFF] ^ rk[2])
            t3 = (te0[s3 >> 24] ^ te1[(s0 >> 16) & 0xFF]
                  ^ te2[(s1 >> 8) & 0xFF] ^ te3[s2 & 0xFF] ^ rk[3])
            s0, s1, s2, s3 = t0, t1, t2, t3
        sbox = _SBOX
        rk = rks[10]
        o0 = ((sbox[s0 >> 24] << 24) | (sbox[(s1 >> 16) & 0xFF] << 16)
              | (sbox[(s2 >> 8) & 0xFF] << 8) | sbox[s3 & 0xFF]) ^ rk[0]
        o1 = ((sbox[s1 >> 24] << 24) | (sbox[(s2 >> 16) & 0xFF] << 16)
              | (sbox[(s3 >> 8) & 0xFF] << 8) | sbox[s0 & 0xFF]) ^ rk[1]
        o2 = ((sbox[s2 >> 24] << 24) | (sbox[(s3 >> 16) & 0xFF] << 16)
              | (sbox[(s0 >> 8) & 0xFF] << 8) | sbox[s1 & 0xFF]) ^ rk[2]
        o3 = ((sbox[s3 >> 24] << 24) | (sbox[(s0 >> 16) & 0xFF] << 16)
              | (sbox[(s1 >> 8) & 0xFF] << 8) | sbox[s2 & 0xFF]) ^ rk[3]
        out = bytearray(16)
        out[0:4] = o0.to_bytes(4, "big")
        out[4:8] = o1.to_bytes(4, "big")
        out[8:12] = o2.to_bytes(4, "big")
        out[12:16] = o3.to_bytes(4, "big")
        return bytes(out)
