"""HMAC-SHA256-based MAC truncated to 128 bits.

A drop-in alternative to :class:`repro.crypto.cmac.AesCmac` for large
test and benchmark sweeps.  The kernel's *simulated cycle model* charges
identical costs for both providers (costs are a function of the number
of 16-byte MAC blocks, see :mod:`repro.kernel.costs`), so swapping
providers changes only host wall-clock time, never a reported number.
"""

from __future__ import annotations

import hashlib
import hmac

from repro.crypto.cmac import MAC_SIZE


class FastMac:
    """128-bit truncated HMAC-SHA256 with the AesCmac interface."""

    name = "fast-hmac"

    def __init__(self, key: bytes):
        if len(key) != 16:
            raise ValueError(f"FastMac requires a 16-byte key, got {len(key)}")
        self._key = key

    def tag(self, message: bytes) -> bytes:
        return hmac.new(self._key, message, hashlib.sha256).digest()[:MAC_SIZE]

    def verify(self, message: bytes, tag: bytes) -> bool:
        return hmac.compare_digest(self.tag(message), tag)
