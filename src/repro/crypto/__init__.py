"""Cryptographic substrate for authenticated system calls.

The paper's prototype links Brian Gladman's combined AES
encryption/authentication library into the kernel and uses the
AES-CBC-OMAC (OMAC1, a.k.a. CMAC) message authentication code, which
produces 128-bit tags.  This package provides a from-scratch,
pure-Python equivalent:

- :mod:`repro.crypto.aes` -- AES-128 block cipher (FIPS-197).
- :mod:`repro.crypto.cmac` -- OMAC1/CMAC over AES (RFC 4493 compatible).
- :mod:`repro.crypto.fastmac` -- a drop-in HMAC-SHA256-based MAC,
  truncated to 128 bits, for tests and large benchmark sweeps where the
  pure-Python AES would dominate wall-clock time.  The *simulated cycle
  cost* charged by the kernel is identical for both providers, so
  benchmark tables are unaffected by the choice.
- :mod:`repro.crypto.keyring` -- key generation and the installer/kernel
  key-sharing model (the key is available only to the installer and the
  kernel, never to applications).
"""

from repro.crypto.aes import AES, TableAES
from repro.crypto.cmac import AesCmac, CmacState, MAC_SIZE
from repro.crypto.fastmac import FastMac
from repro.crypto.keyring import Key, KeyRing, MacProvider, mac_provider_for_key

__all__ = [
    "AES",
    "AesCmac",
    "CmacState",
    "FastMac",
    "Key",
    "KeyRing",
    "MAC_SIZE",
    "MacProvider",
    "TableAES",
    "mac_provider_for_key",
]
