"""Key management for the installer/kernel trust model.

The paper's threat model (§3.1): the MAC key is specified at
installation time, is accessible *only* to the trusted installer and to
the kernel, and it is computationally infeasible for an attacker to
forge a tag without it.  Applications carry policies and MACs in plain
text but never the key.

:class:`KeyRing` models a machine's key store: the security
administrator provisions a key, the installer borrows it while signing
binaries, and the simulated kernel holds it for verification.  Nothing
in :mod:`repro.cpu` or the application address space can reach it.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Protocol, Union

from repro.crypto.cmac import AesCmac
from repro.crypto.fastmac import FastMac

KEY_SIZE = 16


class MacProvider(Protocol):
    """Anything that can tag and verify byte strings with 128-bit MACs."""

    name: str

    def tag(self, message: bytes) -> bytes: ...

    def verify(self, message: bytes, tag: bytes) -> bool: ...


@dataclass(frozen=True)
class Key:
    """An opaque 16-byte MAC key.

    ``repr`` deliberately omits the material so keys never leak into
    logs or audit records.
    """

    material: bytes = field(repr=False)
    provider: str = "aes-cmac"

    def __post_init__(self) -> None:
        if len(self.material) != KEY_SIZE:
            raise ValueError(f"key must be {KEY_SIZE} bytes, got {len(self.material)}")
        if self.provider not in ("aes-cmac", "fast-hmac"):
            raise ValueError(f"unknown MAC provider {self.provider!r}")

    @classmethod
    def generate(cls, provider: str = "aes-cmac") -> "Key":
        return cls(material=os.urandom(KEY_SIZE), provider=provider)

    @classmethod
    def from_passphrase(cls, passphrase: str, provider: str = "aes-cmac") -> "Key":
        """Deterministic key derivation for reproducible experiments."""
        import hashlib

        digest = hashlib.sha256(passphrase.encode("utf-8")).digest()
        return cls(material=digest[:KEY_SIZE], provider=provider)


def mac_provider_for_key(key: Key) -> MacProvider:
    """Instantiate the MAC implementation a key was provisioned for."""
    if key.provider == "fast-hmac":
        return FastMac(key.material)
    return AesCmac(key.material)


class KeyRing:
    """The machine key store shared by the installer and the kernel.

    Keys are referenced by name so that an administrator can rotate the
    installation key without touching installer or kernel code.
    """

    def __init__(self) -> None:
        self._keys: dict[str, Key] = {}

    def provision(self, name: str, key: Union[Key, None] = None) -> Key:
        """Store (or generate) a key under ``name``; returns the key."""
        if name in self._keys:
            raise KeyError(f"key {name!r} already provisioned")
        key = key if key is not None else Key.generate()
        self._keys[name] = key
        return key

    def get(self, name: str) -> Key:
        try:
            return self._keys[name]
        except KeyError:
            raise KeyError(f"no key provisioned under {name!r}") from None

    def mac(self, name: str) -> MacProvider:
        return mac_provider_for_key(self.get(name))

    def rotate(self, name: str) -> Key:
        """Replace the key under ``name``; previously signed binaries
        will fail verification against the new key (fail-stop)."""
        if name not in self._keys:
            raise KeyError(f"no key provisioned under {name!r}")
        old = self._keys[name]
        self._keys[name] = Key.generate(provider=old.provider)
        return self._keys[name]

    def __contains__(self, name: str) -> bool:
        return name in self._keys
