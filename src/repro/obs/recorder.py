"""Span recorders: the tracing half of the observability layer.

A *span* is one timed interval with a name and a category — one
syscall-verification stage, one basic-block compilation, one engine
execution loop.  Spans nest strictly (``begin``/``end`` pairs on a
stack, single-threaded like the simulator itself), and the recorder
tracks both inclusive duration and *self time* (inclusive minus
children), so per-stage totals partition the traced wall clock exactly:
the sum of every span's self time equals the sum of the root spans'
inclusive times by construction.

Two implementations:

- :class:`NullRecorder` — ``enabled`` is ``False``; instrumentation
  points check that flag and skip the call, so the off state costs one
  attribute load + branch and allocates nothing.  Its methods are
  no-ops so even an unguarded call is harmless.
- :class:`TraceRecorder` — records spans with ``perf_counter_ns`` (or
  an injected clock for deterministic tests) and exports Chrome
  ``trace_event`` JSON (load it at ``chrome://tracing`` or
  https://ui.perfetto.dev) plus per-stage aggregates.
"""

from __future__ import annotations

import json
from time import perf_counter_ns
from typing import Callable, Optional, Protocol, runtime_checkable


@runtime_checkable
class Recorder(Protocol):
    """What instrumented code sees.

    The contract every instrumentation point follows::

        rec = self._recorder
        if rec.enabled:          # False for NullRecorder: skip entirely
            rec.begin("mac-check", "verify")
        ...hot work...
        if rec.enabled:
            rec.end()

    ``close_to`` exists so exception paths (an
    :class:`~repro.kernel.auth.AuthViolation` mid-check) can unwind the
    span stack to a known depth in one ``finally``.
    """

    enabled: bool

    def begin(self, name: str, cat: str) -> None: ...

    def end(self) -> None: ...

    def inc(self, name: str, delta: int = 1) -> None: ...

    @property
    def open_spans(self) -> int: ...

    def close_to(self, depth: int) -> None: ...


class NullRecorder:
    """The default recorder: off, free, allocation-free."""

    enabled = False

    def begin(self, name: str, cat: str) -> None:
        return None

    def end(self) -> None:
        return None

    def inc(self, name: str, delta: int = 1) -> None:
        return None

    @property
    def open_spans(self) -> int:
        return 0

    def close_to(self, depth: int) -> None:
        return None


#: Shared default instance — holding a singleton means "no recorder"
#: costs no per-kernel or per-VM allocation either.
NULL_RECORDER = NullRecorder()


class SpanRecord:
    """One completed span."""

    __slots__ = ("name", "cat", "start_ns", "dur_ns", "self_ns", "depth")

    def __init__(self, name, cat, start_ns, dur_ns, self_ns, depth):
        self.name = name
        self.cat = cat
        self.start_ns = start_ns
        self.dur_ns = dur_ns
        self.self_ns = self_ns
        self.depth = depth

    def __repr__(self):  # pragma: no cover - debugging aid
        return (
            f"SpanRecord({self.name!r}, cat={self.cat!r}, depth={self.depth}, "
            f"dur={self.dur_ns}ns, self={self.self_ns}ns)"
        )


class TraceRecorder:
    """Captures spans and counters for one (or several) kernel runs.

    ``clock`` must be a zero-argument callable returning integer
    nanoseconds; tests inject a fake for determinism.
    """

    enabled = True

    def __init__(self, clock: Optional[Callable[[], int]] = None):
        self._clock = clock or perf_counter_ns
        #: Open-span stack: [name, cat, start_ns, child_ns] frames.
        self._stack: list[list] = []
        self.spans: list[SpanRecord] = []
        self.counters: dict[str, int] = {}

    # -- span API --------------------------------------------------------

    def begin(self, name: str, cat: str) -> None:
        self._stack.append([name, cat, self._clock(), 0])

    def end(self) -> None:
        now = self._clock()
        name, cat, start, child = self._stack.pop()
        dur = now - start
        if self._stack:
            self._stack[-1][3] += dur
        self.spans.append(
            SpanRecord(name, cat, start, dur, dur - child, len(self._stack))
        )

    @property
    def open_spans(self) -> int:
        return len(self._stack)

    def close_to(self, depth: int) -> None:
        """Close every span opened above ``depth`` (exception unwind)."""
        while len(self._stack) > depth:
            self.end()

    # -- counter API -----------------------------------------------------

    def inc(self, name: str, delta: int = 1) -> None:
        self.counters[name] = self.counters.get(name, 0) + delta

    def merge_counters(self, counters: dict) -> None:
        for name, value in counters.items():
            self.inc(name, value)

    # -- aggregates ------------------------------------------------------

    def stage_totals(self) -> dict[str, dict]:
        """Per-span-name aggregates: inclusive total, self time, count.

        Self times partition the trace: summing ``self_ns`` over every
        stage reproduces the inclusive time of the root spans exactly.
        """
        totals: dict[str, dict] = {}
        for span in self.spans:
            entry = totals.setdefault(
                span.name,
                {"cat": span.cat, "count": 0, "total_ns": 0, "self_ns": 0},
            )
            entry["count"] += 1
            entry["total_ns"] += span.dur_ns
            entry["self_ns"] += span.self_ns
        return totals

    def total_traced_ns(self) -> int:
        """Inclusive nanoseconds under root (depth-0) spans."""
        return sum(s.dur_ns for s in self.spans if s.depth == 0)

    # -- export ----------------------------------------------------------

    def chrome_trace(self) -> dict:
        """The capture as a Chrome ``trace_event`` JSON object.

        Spans become complete ("X") events with microsecond timestamps;
        counters ride along both as a final counter ("C") event and as a
        top-level ``counters`` key (tooling-friendly; trace viewers
        ignore unknown top-level keys).
        """
        events = []
        for span in sorted(self.spans, key=lambda s: (s.start_ns, -s.dur_ns)):
            events.append(
                {
                    "name": span.name,
                    "cat": span.cat,
                    "ph": "X",
                    "ts": span.start_ns / 1000.0,
                    "dur": span.dur_ns / 1000.0,
                    "pid": 1,
                    "tid": 1,
                }
            )
        if self.counters:
            end_ts = max(
                (s.start_ns + s.dur_ns for s in self.spans), default=0
            ) / 1000.0
            events.append(
                {
                    "name": "counters",
                    "ph": "C",
                    "ts": end_ts,
                    "pid": 1,
                    "tid": 1,
                    "args": dict(sorted(self.counters.items())),
                }
            )
        return {
            "traceEvents": events,
            "displayTimeUnit": "ms",
            "counters": dict(sorted(self.counters.items())),
        }

    def write_chrome_trace(self, path) -> None:
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(self.chrome_trace(), handle, indent=1)
            handle.write("\n")
