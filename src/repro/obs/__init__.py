"""Observability: verification-stage tracing and runtime metrics.

The paper's evaluation (Tables 4–6) is an argument about *where*
verification time goes — call-MAC check, string-argument MACs, the
online memory checker, policy decoding — so the repro needs the same
decomposition to be measurable, not just assertable.  This package is
the cross-cutting layer that provides it:

- :class:`Recorder` — the protocol the kernel, both CPU engines, and
  the auth checker are instrumented against.
- :class:`NullRecorder` / :data:`NULL_RECORDER` — the default.  The
  contract is *zero overhead when off*: every instrumentation point
  first reads ``recorder.enabled`` (a plain class attribute, ``False``)
  and skips the call entirely, so the hot syscall path pays one
  attribute load + branch per stage and performs no allocations.
- :class:`TraceRecorder` — captures nested spans (per-syscall
  verification stages, engine block-compile/block-chain/execute) with exact
  self-time accounting, exportable as Chrome ``trace_event`` JSON.
- :class:`MetricsRegistry` — the machine-wide counter registry
  (fast-path hits, decode-cache invalidations, blocks compiled and
  evicted, chain links formed and severed, superblocks fused and
  killed, guest instructions retired, ...), exportable as a
  Prometheus-style text dump.  :class:`repro.kernel.audit.FastPathStats`
  is a view over this registry.

See DESIGN.md "Observability" for the architecture and the overhead
contract.
"""

from repro.obs.metrics import MetricsRegistry
from repro.obs.recorder import (
    NULL_RECORDER,
    NullRecorder,
    Recorder,
    SpanRecord,
    TraceRecorder,
)

__all__ = [
    "MetricsRegistry",
    "NULL_RECORDER",
    "NullRecorder",
    "Recorder",
    "SpanRecord",
    "TraceRecorder",
]
