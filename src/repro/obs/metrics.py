"""The machine-wide counter registry.

One :class:`MetricsRegistry` per :class:`~repro.kernel.kernel.Kernel`
holds every runtime counter as a named integer: fast-path cache
traffic, decode-cache invalidations, translation-cache compiles and
evictions, guest instructions retired.  Counters are plain dict slots
— maintaining them costs an integer add, so unlike spans they are
always on.

Names are dotted (``fastpath.hits``, ``engine.blocks_compiled``); the
Prometheus dump mangles them into the conventional
``repro_fastpath_hits`` form.
"""

from __future__ import annotations

from typing import Iterator, Optional

#: Documentation strings for the well-known counters; used as HELP
#: lines in the Prometheus dump.  Counters not listed here still render
#: (with no HELP line) — the registry is open.
COUNTER_HELP = {
    "fastpath.hits": "call-MAC checks satisfied by the per-site verification cache",
    "fastpath.misses": "call-MAC checks that paid the full CMAC",
    "fastpath.invalidations": "verified-site cache entries dropped at process exit/exec",
    "verifier.thunks_compiled": "call sites specialized into pre-bound verifier thunks",
    "verifier.thunks_invalidated": "verifier thunks dropped by write-version guards or exit/exec",
    "verifier.thunk_hits": "ASYS traps verified entirely by a compiled thunk",
    "decode.invalidations": "interpreter decode-cache entries dropped by write-version guards",
    "engine.blocks_compiled": "basic blocks translated by the threaded engine",
    "engine.blocks_evicted": "cached translations invalidated by stores or stale guards",
    "engine.instructions_retired": "guest instructions executed",
    "engine.syscalls": "traps serviced by the kernel",
    "sched.context_switches": "times the scheduler switched to a different pid",
    "sched.preemptions": "timeslices ended by budget exhaustion",
    "sched.blocks": "dispatches parked on a wait condition",
    "sched.wakeups": "blocked dispatches completed by the wake poll",
    "sched.yields": "sched_yield calls that requeued the caller",
    "sched.forks": "processes created by fork",
    "sched.spawns": "processes created by asynchronous spawn",
    "sched.execs": "in-place image replacements by execve",
    "sched.exits": "scheduled processes that terminated",
    "sched.zombies": "exited processes held for a parent's wait4",
    "sched.zombies_reaped": "zombies collected by wait4 or orphan auto-reap",
    "sched.signal_kills": "processes terminated by a cross-process signal",
    "sched.deadlock_kills": "blocked processes fail-stopped by the deadlock breaker",
    "sched.runq_peak": "largest observed run-queue length",
    "faults.injected": "seeded fault runs executed by the injection sweep",
    "faults.detected": "injected faults killed with a correctly attributed violation",
    "faults.benign": "injected faults that landed on dead state (run bit-identical)",
    "faults.missed": "injected faults that diverged undetected (hard failure)",
    "conform.programs": "generated programs executed by the conformance sweep",
    "conform.runs": "per-config conformance runs (programs x configs)",
    "conform.divergences": "programs whose signature differed across configs (hard failure)",
    "conform.shrink_evaluations": "candidate programs executed while minimizing a divergence",
}


class MetricsRegistry:
    """A flat name -> integer counter store."""

    def __init__(self) -> None:
        self._counters: dict[str, int] = {}

    # -- mutation --------------------------------------------------------

    def inc(self, name: str, delta: int = 1) -> None:
        """Add ``delta`` to counter ``name`` (creating it at 0)."""
        counters = self._counters
        counters[name] = counters.get(name, 0) + delta

    def set(self, name: str, value: int) -> None:
        self._counters[name] = value

    def reset(self) -> dict[str, int]:
        """Zero every counter; returns the pre-reset snapshot."""
        snapshot = dict(self._counters)
        self._counters.clear()
        return snapshot

    # -- reading ---------------------------------------------------------

    def get(self, name: str) -> int:
        return self._counters.get(name, 0)

    def snapshot(self) -> dict[str, int]:
        return dict(self._counters)

    def __iter__(self) -> Iterator[tuple[str, int]]:
        return iter(sorted(self._counters.items()))

    def __len__(self) -> int:
        return len(self._counters)

    # -- export ----------------------------------------------------------

    def render_prometheus(self, prefix: str = "repro") -> str:
        """The counters as Prometheus exposition text (one
        ``# HELP``/``# TYPE``/value triple per counter)."""
        lines = []
        for name, value in self:
            metric = f"{prefix}_{name.replace('.', '_').replace('-', '_')}"
            help_text = COUNTER_HELP.get(name)
            if help_text:
                lines.append(f"# HELP {metric} {help_text}")
            lines.append(f"# TYPE {metric} counter")
            lines.append(f"{metric} {value}")
        return "\n".join(lines) + ("\n" if lines else "")


def merge_counters(
    registry: MetricsRegistry, counters: dict, prefix: Optional[str] = None
) -> None:
    """Fold a plain dict of counters into ``registry`` (used to sync
    engine-local tallies after a run)."""
    for name, value in counters.items():
        registry.inc(f"{prefix}.{name}" if prefix else name, value)
