"""Reporting helpers: render paper-style tables and comparisons."""

from repro.analysis.tables import (
    Cell,
    format_table,
    paper_vs_measured,
    percent_delta,
)
from repro.analysis.stats import (
    geometric_mean,
    overhead_percent,
    paper_table4_aggregate,
    sample_stddev,
    trimmed_mean,
)

__all__ = [
    "Cell",
    "format_table",
    "geometric_mean",
    "overhead_percent",
    "paper_table4_aggregate",
    "paper_vs_measured",
    "percent_delta",
    "sample_stddev",
    "trimmed_mean",
]
