"""Plain-text table rendering for the benchmark harnesses.

Every bench prints the rows the paper's corresponding table reports,
side by side with the paper's published values, so a reader can check
the *shape* claims (who wins, by what factor) at a glance.
"""

from __future__ import annotations

from typing import Optional, Sequence, Union

Cell = Union[str, int, float, None]


def _render(cell: Cell) -> str:
    if cell is None:
        return "-"
    if isinstance(cell, float):
        return f"{cell:.2f}"
    return str(cell)


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[Cell]],
    title: str = "",
) -> str:
    """Render an aligned ASCII table."""
    rendered = [[_render(cell) for cell in row] for row in rows]
    widths = [
        max(len(headers[col]), *(len(row[col]) for row in rendered)) if rendered
        else len(headers[col])
        for col in range(len(headers))
    ]
    lines = []
    if title:
        lines.append(title)
    header_line = "  ".join(h.ljust(w) for h, w in zip(headers, widths))
    lines.append(header_line)
    lines.append("-" * len(header_line))
    for row in rendered:
        lines.append("  ".join(cell.ljust(w) for cell, w in zip(row, widths)))
    return "\n".join(lines)


def percent_delta(measured: float, paper: float) -> Optional[float]:
    """Relative deviation of measured from paper, in percent."""
    if paper == 0:
        return None
    return 100.0 * (measured - paper) / paper


def paper_vs_measured(
    title: str,
    headers: Sequence[str],
    rows: Sequence[tuple],
) -> str:
    """Render rows of (label, paper value, measured value) triples."""
    table_rows = []
    for label, paper, measured in rows:
        delta = (
            percent_delta(measured, paper)
            if isinstance(paper, (int, float)) and isinstance(measured, (int, float))
            else None
        )
        table_rows.append(
            [label, paper, measured, f"{delta:+.1f}%" if delta is not None else "-"]
        )
    return format_table(
        [headers[0], "paper", "measured", "delta"], table_rows, title=title
    )
