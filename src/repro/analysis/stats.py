"""Statistical helpers matching the paper's aggregation methodology.

§4.3: "Each experiment was repeated 12 times; the highest and lowest
readings were discarded, and the average of the remaining 10 readings
is used in the table" — i.e. a 1-element-per-tail trimmed mean.  Our
substrate is deterministic (12 reps are identical), but the helpers
exist so the harness methodology is explicit and reusable, and so
non-deterministic forks of the simulator aggregate the same way the
paper did.
"""

from __future__ import annotations

import math
from typing import Sequence


def trimmed_mean(samples: Sequence[float], trim: int = 1) -> float:
    """Mean after discarding the ``trim`` highest and lowest samples."""
    if trim < 0:
        raise ValueError("trim must be non-negative")
    if len(samples) <= 2 * trim:
        raise ValueError(
            f"need more than {2 * trim} samples to trim {trim} per tail"
        )
    kept = sorted(samples)[trim : len(samples) - trim] if trim else sorted(samples)
    return sum(kept) / len(kept)


def paper_table4_aggregate(samples: Sequence[float]) -> float:
    """The exact Table 4 procedure: 12 reps, drop high and low, mean."""
    if len(samples) != 12:
        raise ValueError(f"Table 4 methodology uses 12 reps, got {len(samples)}")
    return trimmed_mean(samples, trim=1)


def sample_stddev(samples: Sequence[float]) -> float:
    """Sample standard deviation (n-1), as Tables 6's Std. Dev. columns."""
    if len(samples) < 2:
        return 0.0
    mean = sum(samples) / len(samples)
    return math.sqrt(sum((s - mean) ** 2 for s in samples) / (len(samples) - 1))


def overhead_percent(baseline: float, measured: float) -> float:
    """The overhead columns: 100 * (measured - baseline) / baseline."""
    if baseline <= 0:
        raise ValueError("baseline must be positive")
    return 100.0 * (measured - baseline) / baseline


def geometric_mean(values: Sequence[float]) -> float:
    """Geometric mean, the conventional SPEC aggregate."""
    if not values:
        raise ValueError("no values")
    if any(v <= 0 for v in values):
        raise ValueError("geometric mean requires positive values")
    return math.exp(sum(math.log(v) for v in values) / len(values))
