"""The SVM32 interpreter.

Executes one process image with deterministic cycle accounting.  Trap
instructions (``SYS``/``ASYS``) suspend the guest and invoke a
:class:`TrapHandler` — the simulated kernel — which reads the register
file, performs the call (including all authenticated-system-call
checks), deposits the result in ``r0``, and reports the kernel cycles
consumed.

The 2005 x86 machines the paper measured had no NX protection, so by
default the VM will execute from any *readable* page ("nx=False");
enabling ``nx=True`` is available for the ablation that shows the §4.1
shellcode attack being stopped by page protection instead of by
authentication.

Two execution engines share the architectural state:

- ``interp`` — the reference interpreter: fetch, decode (through a
  write-version-gated decode cache), dispatch, one instruction at a
  time.
- ``threaded`` — a basic-block translation cache
  (:mod:`repro.cpu.threaded`): straight-line runs are compiled once
  into lists of pre-bound thunks and re-executed with one dispatch and
  batched cycle accounting.

Both engines are required to produce bit-identical architectural state
(registers, flags, memory, cycle counts, syscall counts, fault
PCs/messages, fail-stop reasons) on every program; the differential
fuzz suite enforces this.
"""

from __future__ import annotations

from typing import Callable, Optional, Protocol

from repro.cpu.memory import Memory, MemoryFault, PROT_READ, PROT_WRITE, Region
from repro.isa import INSTRUCTION_SIZE, Instruction, decode_instruction
from repro.isa.encoding import EncodingError
from repro.isa.opcodes import Op
from repro.isa.registers import NUM_REGS, SP
from repro.obs import NULL_RECORDER, Recorder

_MASK = 0xFFFFFFFF

ENGINES = ("interp", "threaded")


def _signed(value: int) -> int:
    return value - 0x1_0000_0000 if value & 0x8000_0000 else value


class ExecutionFault(Exception):
    """CPU-level faults: bad opcode, divide by zero, NX violation..."""

    def __init__(self, pc: int, message: str):
        super().__init__(f"execution fault at {pc:#010x}: {message}")
        self.pc = pc


class ProcessExit(Exception):
    """Raised by the trap handler to terminate the guest.

    ``killed`` distinguishes a voluntary ``exit`` from a security
    termination (the fail-stop of a rejected system call)."""

    def __init__(self, status: int, killed: bool = False, reason: str = ""):
        super().__init__(reason or f"exit({status})")
        self.status = status
        self.killed = killed
        self.reason = reason


class TrapHandler(Protocol):
    """The kernel interface seen by the CPU."""

    def handle_trap(self, vm: "VM", authenticated: bool) -> int:
        """Service the trap; returns kernel cycles consumed.

        The handler reads arguments from ``vm.regs`` and writes the
        syscall result into ``vm.regs[0]``.  It may raise
        :class:`ProcessExit` to terminate the guest."""
        ...


class VM:
    """One guest CPU context."""

    def __init__(
        self,
        memory: Memory,
        entry: int,
        trap_handler: Optional[TrapHandler] = None,
        stack_top: int = 0x0C000000,
        stack_size: int = 0x40000,
        nx: bool = False,
        engine: str = "interp",
        chain: bool = True,
        recorder: Recorder = NULL_RECORDER,
        map_stack: bool = True,
    ):
        if engine not in ENGINES:
            raise ValueError(f"unknown execution engine {engine!r}")
        self.engine = engine
        #: Direct block chaining + superblock fusion in the threaded
        #: engine (no effect under interp).  The --no-chain escape
        #: hatch flips this off, restoring plain per-block dispatch.
        self.chain = chain
        #: Observability hook shared with the kernel; the default
        #: NullRecorder singleton keeps guest execution span-free.
        self.recorder = recorder
        self.memory = memory
        self.regs = [0] * NUM_REGS
        self.pc = entry
        self.flag_zero = False
        self.flag_neg = False
        self.cycles = 0
        self.instructions_executed = 0
        self.syscall_count = 0
        self.trap_handler = trap_handler
        self.nx = nx
        self.exit_status: Optional[int] = None
        self.killed = False
        self.kill_reason = ""

        self.stack_top = stack_top
        if map_stack:
            # A forked VM adopts a memory image whose stack (copied
            # from the parent) is already mapped; it passes
            # map_stack=False and inherits SP with the register file.
            memory.map_region(
                stack_top - stack_size,
                stack_size,
                PROT_READ | PROT_WRITE,
                name="[stack]",
            )
            self.regs[SP] = stack_top

        #: Decode cache: pc -> (region, region.version at decode time,
        #: decoded instruction).  Entries self-invalidate when the
        #: containing region's write-version counter advances, so a
        #: store never pays more than the write itself — the old
        #: per-store invalidation loop iterated every byte written.
        self._decode_cache: dict[int, tuple[Region, int, Instruction]] = {}
        #: Decode-cache entries dropped by a write-version guard miss;
        #: folded into the kernel's metrics registry after the run.
        self.decode_invalidations = 0
        #: Lazily built basic-block translation cache (threaded engine).
        self._block_cache = None

    # -- memory helpers --------------------------------------------------

    def store(self, address: int, data: bytes) -> None:
        """Guest-visible store.  Decode/translation caches are gated on
        ``Region.version`` (bumped by ``Memory.write``), so no explicit
        invalidation pass is needed."""
        self.memory.write(address, data)

    # -- fetch/decode ----------------------------------------------------

    def _fetch(self, pc: int) -> Instruction:
        cached = self._decode_cache.get(pc)
        if cached is not None:
            region, version, instruction = cached
            if region.version == version:
                return instruction
            self.decode_invalidations += 1
        if self.nx and not self.memory.executable(pc):
            raise ExecutionFault(pc, "NX violation: page not executable")
        try:
            raw = self.memory.read(pc, INSTRUCTION_SIZE)
        except MemoryFault as fault:
            raise ExecutionFault(pc, f"instruction fetch: {fault}") from fault
        try:
            instruction = decode_instruction(raw)
        except EncodingError as err:
            raise ExecutionFault(pc, f"illegal instruction: {err}") from err
        instruction.address = pc
        region = self.memory.region_at(pc)
        self._decode_cache[pc] = (region, region.version, instruction)
        return instruction

    # -- stack helpers ----------------------------------------------------

    def push(self, value: int) -> None:
        self.regs[SP] = (self.regs[SP] - 4) & _MASK
        self.memory.write_u32(self.regs[SP], value)

    def pop(self) -> int:
        value = self.memory.read_u32(self.regs[SP])
        self.regs[SP] = (self.regs[SP] + 4) & _MASK
        return value

    # -- execution ---------------------------------------------------------

    def step(self) -> bool:
        """Execute one instruction; returns False when halted."""
        pc = self.pc
        instr = self._fetch(pc)
        op = instr.op
        regs = self.regs
        info = instr.info
        self.cycles += info.cycles
        self.instructions_executed += 1
        next_pc = pc + INSTRUCTION_SIZE

        if op == Op.NOP:
            pass
        elif op == Op.HALT:
            self.exit_status = regs[1] & _MASK
            return False
        elif op == Op.LI:
            regs[instr.regs[0]] = instr.imm & _MASK
        elif op == Op.MOV:
            regs[instr.regs[0]] = regs[instr.regs[1]]
        elif op in (Op.ADD, Op.SUB, Op.MUL, Op.DIV, Op.MOD, Op.AND, Op.OR,
                    Op.XOR, Op.SHL, Op.SHR):
            a = regs[instr.regs[1]]
            b = regs[instr.regs[2]]
            regs[instr.regs[0]] = self._alu(op, a, b, pc)
        elif op in (Op.ADDI, Op.SUBI, Op.MULI, Op.DIVI, Op.ANDI, Op.ORI,
                    Op.XORI, Op.SHLI, Op.SHRI):
            a = regs[instr.regs[1]]
            regs[instr.regs[0]] = self._alu(_IMM_TO_REG_OP[op], a, instr.imm & _MASK, pc)
        elif op == Op.LD:
            address = (regs[instr.regs[1]] + instr.imm) & _MASK
            regs[instr.regs[0]] = self._read_u32(address, pc)
        elif op == Op.ST:
            address = (regs[instr.regs[1]] + instr.imm) & _MASK
            self._write_u32(address, regs[instr.regs[0]], pc)
        elif op == Op.LDB:
            address = (regs[instr.regs[1]] + instr.imm) & _MASK
            regs[instr.regs[0]] = self._read_u8(address, pc)
        elif op == Op.STB:
            address = (regs[instr.regs[1]] + instr.imm) & _MASK
            self._write_u8(address, regs[instr.regs[0]], pc)
        elif op == Op.PUSH:
            self._push_checked(regs[instr.regs[0]], pc)
        elif op == Op.POP:
            regs[instr.regs[0]] = self._pop_checked(pc)
        elif op == Op.CMP:
            self._set_flags(regs[instr.regs[0]], regs[instr.regs[1]])
        elif op == Op.CMPI:
            self._set_flags(regs[instr.regs[0]], instr.imm & _MASK)
        elif op in _CONDITIONS:
            if _CONDITIONS[op](self):
                next_pc = instr.imm & _MASK
        elif op == Op.JMP:
            next_pc = instr.imm & _MASK
        elif op == Op.JR:
            next_pc = regs[instr.regs[0]]
        elif op == Op.CALL:
            self._push_checked(next_pc, pc)
            next_pc = instr.imm & _MASK
        elif op == Op.CALLR:
            self._push_checked(next_pc, pc)
            next_pc = regs[instr.regs[0]]
        elif op == Op.RET:
            next_pc = self._pop_checked(pc)
        elif op in (Op.SYS, Op.ASYS):
            if self.trap_handler is None:
                raise ExecutionFault(pc, "trap with no kernel attached")
            self.syscall_count += 1
            kernel_cycles = self.trap_handler.handle_trap(self, op == Op.ASYS)
            self.cycles += kernel_cycles
        elif op == Op.RDTSC:
            regs[instr.regs[0]] = self.cycles & _MASK
        elif op == Op.RDTSCH:
            regs[instr.regs[0]] = (self.cycles >> 32) & _MASK
        elif op == Op.CPUWORK:
            self.cycles += instr.imm
        else:  # pragma: no cover - opcode table is exhaustive
            raise ExecutionFault(pc, f"unimplemented opcode {op!r}")

        self.pc = next_pc
        return True

    def run(self, max_instructions: int = 50_000_000) -> int:
        """Run to completion; returns the exit status.

        :class:`ProcessExit` raised by the kernel is absorbed here: a
        voluntary exit sets ``exit_status``; a security kill sets
        ``killed``/``kill_reason`` as well (fail-stop semantics)."""
        rec = self.recorder
        traced = rec.enabled
        if traced:
            # The root engine span: every verification span nests under
            # it, so its inclusive duration is the traced wall clock of
            # the run and the per-stage self times partition it.
            span_depth = rec.open_spans
            rec.begin("execute", "engine")
        try:
            if self.engine == "threaded":
                self._run_threaded(max_instructions)
            else:
                self._run_interp(max_instructions)
        except ProcessExit as exit_info:
            self.exit_status = exit_info.status
            self.killed = exit_info.killed
            self.kill_reason = exit_info.reason
        finally:
            if traced:
                rec.close_to(span_depth)
        if self.exit_status is None:
            raise ExecutionFault(self.pc, "process stopped without exiting")
        return self.exit_status

    def run_slice(self, max_instructions: int) -> None:
        """Run for at most ``max_instructions``, returning on timeslice
        exhaustion (preemption) or process end — the scheduler's entry
        point.  Unlike :meth:`run`, budget exhaustion is not a fault.

        :class:`ProcessExit` is absorbed into the exit fields exactly
        as in :meth:`run`; the multiprogramming control transfers
        (``ProcessBlocked``, ``ImageReplaced``) propagate to the
        scheduler with the span stack rebalanced."""
        rec = self.recorder
        traced = rec.enabled
        if traced:
            span_depth = rec.open_spans
            rec.begin("execute", "engine")
        try:
            if self.engine == "threaded":
                from repro.cpu.threaded import BlockCache

                cache = self._block_cache
                if cache is None:
                    cache = self._block_cache = BlockCache(self, chain=self.chain)
                cache.run(max_instructions, preempt=True)
            else:
                budget = max_instructions
                while budget > 0:
                    if not self.step():
                        return
                    budget -= 1
        except ProcessExit as exit_info:
            self.exit_status = exit_info.status
            self.killed = exit_info.killed
            self.kill_reason = exit_info.reason
        finally:
            if traced:
                rec.close_to(span_depth)

    def _run_interp(self, max_instructions: int) -> None:
        budget = max_instructions
        while budget > 0:
            if not self.step():
                return
            budget -= 1
        raise ExecutionFault(self.pc, "instruction budget exhausted")

    def _run_threaded(self, max_instructions: int) -> None:
        from repro.cpu.threaded import BlockCache

        cache = self._block_cache
        if cache is None:
            cache = self._block_cache = BlockCache(self, chain=self.chain)
        cache.run(max_instructions)

    # -- internals -------------------------------------------------------

    def _alu(self, op: Op, a: int, b: int, pc: int) -> int:
        if op == Op.ADD:
            return (a + b) & _MASK
        if op == Op.SUB:
            return (a - b) & _MASK
        if op == Op.MUL:
            return (a * b) & _MASK
        if op in (Op.DIV, Op.MOD):
            if b == 0:
                raise ExecutionFault(pc, "division by zero")
            return (a // b if op == Op.DIV else a % b) & _MASK
        if op == Op.AND:
            return a & b
        if op == Op.OR:
            return a | b
        if op == Op.XOR:
            return a ^ b
        if op == Op.SHL:
            return (a << (b & 31)) & _MASK
        if op == Op.SHR:
            return (a >> (b & 31)) & _MASK
        raise ExecutionFault(pc, f"bad ALU op {op!r}")  # pragma: no cover

    def _set_flags(self, a: int, b: int) -> None:
        self.flag_zero = a == b
        self.flag_neg = _signed(a) < _signed(b)

    def _read_u32(self, address: int, pc: int) -> int:
        try:
            return self.memory.read_u32(address)
        except MemoryFault as fault:
            raise ExecutionFault(pc, str(fault)) from fault

    def _write_u32(self, address: int, value: int, pc: int) -> None:
        try:
            self.memory.write_u32(address, value)
        except MemoryFault as fault:
            raise ExecutionFault(pc, str(fault)) from fault

    def _read_u8(self, address: int, pc: int) -> int:
        try:
            return self.memory.read_u8(address)
        except MemoryFault as fault:
            raise ExecutionFault(pc, str(fault)) from fault

    def _write_u8(self, address: int, value: int, pc: int) -> None:
        try:
            self.memory.write_u8(address, value)
        except MemoryFault as fault:
            raise ExecutionFault(pc, str(fault)) from fault

    def _push_checked(self, value: int, pc: int) -> None:
        try:
            self.push(value)
        except MemoryFault as fault:
            raise ExecutionFault(pc, f"stack overflow: {fault}") from fault

    def _pop_checked(self, pc: int) -> int:
        try:
            return self.pop()
        except MemoryFault as fault:
            raise ExecutionFault(pc, f"stack underflow: {fault}") from fault


_IMM_TO_REG_OP = {
    Op.ADDI: Op.ADD,
    Op.SUBI: Op.SUB,
    Op.MULI: Op.MUL,
    Op.DIVI: Op.DIV,
    Op.ANDI: Op.AND,
    Op.ORI: Op.OR,
    Op.XORI: Op.XOR,
    Op.SHLI: Op.SHL,
    Op.SHRI: Op.SHR,
}

_CONDITIONS: dict[Op, Callable[["VM"], bool]] = {
    Op.BEQ: lambda vm: vm.flag_zero,
    Op.BNE: lambda vm: not vm.flag_zero,
    Op.BLT: lambda vm: vm.flag_neg,
    Op.BGE: lambda vm: not vm.flag_neg,
    Op.BLE: lambda vm: vm.flag_neg or vm.flag_zero,
    Op.BGT: lambda vm: not (vm.flag_neg or vm.flag_zero),
}
