"""Threaded-code execution engine: a basic-block translation cache.

On first entry to a block the engine decodes the straight-line run of
instructions up to the next control transfer, trap, or ``HALT`` and
compiles it into a list of pre-bound thunks — one closure per
instruction with register indices, immediates, and cycle-accounting
corrections baked in at compile time.  Subsequent executions of the
block pay one dictionary probe, one guard comparison, and one batched
cycle/instruction update instead of per-instruction fetch, decode, and
dispatch.

Bit-identity with the reference interpreter is the contract, not a
goal: registers, flags, memory, cycle counts (including the values
``RDTSC`` observes mid-block and the kernel observes at trap time),
instruction counts, fault PCs and messages, and fail-stop reasons must
all be indistinguishable.  The pieces that make that work:

- **Batched accounting with per-thunk corrections.**  A block's total
  cycles and instruction count are added on entry.  Thunks that can
  observe or abort mid-block (``RDTSC``, faults, self-modifying
  stores) carry pre-computed corrections (``total - prefix[i]``) so
  the architectural counters are exact at every observation point.
- **Traps end blocks.**  ``SYS``/``ASYS`` only ever appear as a block
  terminator, so ``vm.cycles`` is exact when the kernel's
  :class:`~repro.cpu.vm.TrapHandler` runs, ``vm.pc`` names the call
  site (the authenticated-call checker and audit log depend on it),
  and :class:`~repro.cpu.vm.ProcessExit` propagates with the same
  state the interpreter would leave.
- **Write-version guards.**  Each block records the
  :class:`~repro.cpu.memory.Region` objects its code spans and their
  ``version`` counters at compile time; a block whose guard fails is
  recompiled on next entry.  Stores additionally consult a
  page->blocks index for eager invalidation, and a store that clobbers
  the *remainder of the currently running block* rolls the batched
  accounting back and aborts to the dispatch loop, so self-modifying
  code (including the §4.1 stack shellcode) re-decodes exactly like
  the interpreter.
- **Compile faults are deferred.**  If instruction ``k > 0`` of a
  block cannot be fetched or decoded, the block is truncated before it
  with a fall-through terminator; the fault is then raised on the next
  dispatch at exactly the PC, accounting, and message the interpreter
  produces.

Loads and stores go through a one-entry data-region cache (a tiny data
TLB): a hit performs the access directly against the region bytearray
(bumping ``Region.version`` on writes, exactly like
``Memory.write``); any miss — wrong region, out of bounds, protection
— falls back to the canonical :class:`~repro.cpu.memory.Memory` path
so every fault is produced by the same code that produces it under the
interpreter.
"""

from __future__ import annotations

from struct import pack_into, unpack_from
from typing import TYPE_CHECKING, Callable, Optional

from repro.cpu.memory import MemoryFault, PAGE_SHIFT, Region
from repro.cpu.vm import ExecutionFault
from repro.isa.encoding import INSTRUCTION_SIZE, EncodingError, decode_fields
from repro.isa.opcodes import OPCODE_INFO, Op

if TYPE_CHECKING:  # pragma: no cover
    from repro.cpu.vm import VM

_MASK = 0xFFFFFFFF
_SIGN = 0x8000_0000
_WRAP = 0x1_0000_0000

#: Maximum instructions per block.  Blocks are straight-line, so this
#: only bounds pathological NOP sleds; real blocks end at a branch.
MAX_BLOCK = 64


class BlockAbort(Exception):
    """Internal control flow: a store clobbered the remainder of the
    running block.  ``consumed`` is how many instructions completed."""

    def __init__(self, consumed: int):
        self.consumed = consumed


class Block:
    """One compiled basic block."""

    __slots__ = (
        "entry", "end", "count", "total_cycles", "thunks",
        "guard_region", "guard_version", "extra_guards", "stop", "pages",
    )

    def __init__(self, entry, end, count, total_cycles, thunks, guards, stop):
        self.entry = entry
        self.end = end
        self.count = count
        self.total_cycles = total_cycles
        self.thunks = thunks
        self.guard_region = guards[0][0]
        self.guard_version = guards[0][1]
        self.extra_guards = guards[1:] or None
        self.stop = stop
        self.pages = tuple(
            range(entry >> PAGE_SHIFT, ((end - 1) >> PAGE_SHIFT) + 1)
        )


def _signed(value: int) -> int:
    return value - _WRAP if value & _SIGN else value


class BlockCache:
    """The per-VM translation cache and its dispatch loop."""

    def __init__(self, vm: "VM"):
        self.vm = vm
        self._blocks: dict[int, Block] = {}
        #: page number -> set of block entry PCs whose code touches it.
        #: Lets stores invalidate cached translations in O(1) in the
        #: common no-code-on-this-page case.
        self._page_index: dict[int, set] = {}
        #: One-entry data TLB (see module docstring).  Starts with an
        #: empty dummy region so the first access always misses.
        self._dregion: Region = Region(start=0, data=bytearray(), prot=0)
        self.compiles = 0
        self.invalidations = 0

    # -- dispatch ------------------------------------------------------

    def run(self, max_instructions: int, preempt: bool = False) -> None:
        """Execute until HALT/exit; mirrors the interpreter's budget
        semantics exactly (a block longer than the remaining budget is
        single-stepped so exhaustion faults at the same PC).

        With ``preempt=True`` an exhausted budget is a timeslice end,
        not a fault: the engine returns with the architectural state
        exactly as the interpreter leaves it after the same number of
        instructions, which is what makes scheduler interleavings
        engine-independent."""
        vm = self.vm
        lookup = self.lookup
        step = vm.step
        budget = max_instructions
        while budget > 0:
            block = lookup(vm.pc)
            count = block.count
            if count > budget:
                if not step():
                    return
                budget -= 1
                continue
            vm.cycles += block.total_cycles
            vm.instructions_executed += count
            try:
                for thunk in block.thunks:
                    thunk(vm)
            except BlockAbort as abort:
                budget -= abort.consumed
                continue
            if block.stop:
                return
            budget -= count
        if preempt:
            return
        raise ExecutionFault(vm.pc, "instruction budget exhausted")

    # -- cache management ----------------------------------------------

    def lookup(self, pc: int) -> Block:
        block = self._blocks.get(pc)
        if block is not None:
            if block.guard_region.version == block.guard_version:
                extra = block.extra_guards
                if extra is None:
                    return block
                for region, version in extra:
                    if region.version != version:
                        break
                else:
                    return block
            self._drop(block)
            self.invalidations += 1
        return self._compile(pc)

    def _drop(self, block: Block) -> None:
        self._blocks.pop(block.entry, None)
        for page in block.pages:
            entries = self._page_index.get(page)
            if entries is not None:
                entries.discard(block.entry)
                if not entries:
                    del self._page_index[page]

    def note_write(self, address: int, size: int) -> None:
        """Eagerly drop cached blocks whose code a write overlaps.
        Correctness does not depend on this (the version guards catch
        staleness at next entry); it keeps the cache from accumulating
        dead translations."""
        index = self._page_index
        lo = address >> PAGE_SHIFT
        hi = (address + size - 1) >> PAGE_SHIFT
        end = address + size
        for page in ((lo,) if hi == lo else (lo, hi)):
            entries = index.get(page)
            if not entries:
                continue
            for entry in list(entries):
                block = self._blocks.get(entry)
                if block is None:
                    entries.discard(entry)
                    continue
                if address < block.end and end > block.entry:
                    self._drop(block)
                    self.invalidations += 1

    # -- compilation ---------------------------------------------------

    def _compile(self, entry: int) -> Block:
        recorder = self.vm.recorder
        if not recorder.enabled:
            return self._translate(entry)
        # Tracing: attribute translation time to its own engine stage
        # even when the first instruction faults out of _translate.
        recorder.begin("block-compile", "engine")
        try:
            return self._translate(entry)
        finally:
            recorder.end()

    def _translate(self, entry: int) -> Block:
        vm = self.vm
        memory = vm.memory
        nx = vm.nx
        fetched = []  # (pc, op, reg fields, imm)
        guards: list[tuple[Region, int]] = []
        seen_regions: set[int] = set()
        pc = entry
        terminated = False
        while True:
            # Mirrors VM._fetch: NX check, read, decode — but a failure
            # past the first instruction truncates the block instead of
            # raising, deferring the fault to the dispatch that actually
            # reaches it (identical accounting and message).
            if nx and not memory.executable(pc):
                if not fetched:
                    raise ExecutionFault(pc, "NX violation: page not executable")
                break
            try:
                raw = memory.read(pc, INSTRUCTION_SIZE)
            except MemoryFault as fault:
                if not fetched:
                    raise ExecutionFault(
                        pc, f"instruction fetch: {fault}"
                    ) from fault
                break
            try:
                op, regs, imm = decode_fields(raw)
            except EncodingError as err:
                if not fetched:
                    raise ExecutionFault(
                        pc, f"illegal instruction: {err}"
                    ) from err
                break
            region = memory.region_at(pc)
            if id(region) not in seen_regions:
                seen_regions.add(id(region))
                guards.append((region, region.version))
            fetched.append((pc, op, regs, imm))
            info = OPCODE_INFO[op]
            if info.is_branch or info.is_trap or op is Op.HALT:
                terminated = True
                break
            pc += INSTRUCTION_SIZE
            if len(fetched) >= MAX_BLOCK:
                break

        count = len(fetched)
        end = fetched[-1][0] + INSTRUCTION_SIZE
        # Cycle prefix sums: prefix[i] covers instructions 0..i
        # inclusive (the interpreter charges cycles *before* executing
        # an instruction, so a fault at i has paid for i).
        prefix = []
        total = 0
        for _, op, _, imm in fetched:
            total += OPCODE_INFO[op].cycles
            if op is Op.CPUWORK:
                total += imm
            prefix.append(total)

        thunks: list[Callable] = []
        stop = False
        for i, (ipc, op, regs, imm) in enumerate(fetched):
            thunk = self._make_thunk(
                i, ipc, op, regs, imm,
                cyc_corr=total - prefix[i],
                icnt_corr=count - (i + 1),
                block_end=end,
            )
            if thunk is not None:
                thunks.append(thunk)
            if op is Op.HALT:
                stop = True
        if not terminated:
            # Truncated block: fall through to the next PC; the next
            # dispatch re-enters the cache (or raises the deferred
            # fetch fault).
            nxt = end

            def fallthrough(vm, _nxt=nxt):
                vm.pc = _nxt

            thunks.append(fallthrough)

        block = Block(entry, end, count, total, thunks, guards, stop)
        self._blocks[entry] = block
        for page in block.pages:
            self._page_index.setdefault(page, set()).add(entry)
        self.compiles += 1
        return block

    # -- thunk factories -----------------------------------------------

    def _make_thunk(
        self, i, pc, op, regs_f, imm, cyc_corr, icnt_corr, block_end
    ) -> Optional[Callable]:
        """Compile one instruction into a pre-bound closure.

        Returns ``None`` for instructions whose entire effect lives in
        the batched accounting (``NOP``, ``CPUWORK``)."""
        vm = self.vm
        regs = vm.regs  # the register file list is never reassigned
        memory = vm.memory
        cache = self
        nxt = pc + INSTRUCTION_SIZE
        consumed = i + 1

        def fault(vm, message, cause=None):
            """Roll the batched accounting back to 'instruction i
            faulted' and raise, mirroring interpreter state exactly."""
            vm.cycles -= cyc_corr
            vm.instructions_executed -= icnt_corr
            vm.pc = pc
            raise ExecutionFault(pc, message) from cause

        def store_hooks(vm, address, size):
            """Post-write invalidation: eager page-index drop plus the
            self-modification abort for the running block."""
            if (address >> PAGE_SHIFT) in cache._page_index or (
                (address + size - 1) >> PAGE_SHIFT
            ) in cache._page_index:
                cache.note_write(address, size)
            if address < block_end and address + size > nxt:
                # The write clobbered instructions this block has not
                # executed yet: unwind the batched accounting past
                # instruction i and return to the dispatch loop, which
                # re-decodes the modified code.
                vm.cycles -= cyc_corr
                vm.instructions_executed -= icnt_corr
                vm.pc = nxt
                raise BlockAbort(consumed)

        def read_u32(vm, address, message_prefix=""):
            region = cache._dregion
            offset = address - region.start
            if 0 <= offset and offset + 4 <= len(region.data) and region.prot & 1:
                return unpack_from("<I", region.data, offset)[0]
            try:
                value = memory.read_u32(address)
            except MemoryFault as err:
                fault(vm, message_prefix + str(err), err)
            cache._dregion = memory.region_at(address)
            return value

        def write_u32(vm, address, value, message_prefix=""):
            region = cache._dregion
            offset = address - region.start
            if 0 <= offset and offset + 4 <= len(region.data) and region.prot & 2:
                pack_into("<I", region.data, offset, value & _MASK)
                region.version += 1
            else:
                try:
                    memory.write_u32(address, value)
                except MemoryFault as err:
                    fault(vm, message_prefix + str(err), err)
                cache._dregion = memory.region_at(address)
            store_hooks(vm, address, 4)

        # -- straight-line operations ---------------------------------

        if op is Op.NOP or op is Op.CPUWORK:
            return None  # effect folded into the batched cycle total

        if op is Op.LI:
            d = regs_f[0]
            value = imm & _MASK

            def thunk(vm):
                regs[d] = value

        elif op is Op.MOV:
            d, s = regs_f

            def thunk(vm):
                regs[d] = regs[s]

        elif op is Op.ADD:
            d, a, b = regs_f

            def thunk(vm):
                regs[d] = (regs[a] + regs[b]) & _MASK

        elif op is Op.SUB:
            d, a, b = regs_f

            def thunk(vm):
                regs[d] = (regs[a] - regs[b]) & _MASK

        elif op is Op.MUL:
            d, a, b = regs_f

            def thunk(vm):
                regs[d] = (regs[a] * regs[b]) & _MASK

        elif op is Op.DIV or op is Op.MOD:
            d, a, b = regs_f
            is_div = op is Op.DIV

            def thunk(vm):
                divisor = regs[b]
                if divisor == 0:
                    fault(vm, "division by zero")
                regs[d] = (
                    regs[a] // divisor if is_div else regs[a] % divisor
                ) & _MASK

        elif op is Op.AND:
            d, a, b = regs_f

            def thunk(vm):
                regs[d] = regs[a] & regs[b]

        elif op is Op.OR:
            d, a, b = regs_f

            def thunk(vm):
                regs[d] = regs[a] | regs[b]

        elif op is Op.XOR:
            d, a, b = regs_f

            def thunk(vm):
                regs[d] = regs[a] ^ regs[b]

        elif op is Op.SHL:
            d, a, b = regs_f

            def thunk(vm):
                regs[d] = (regs[a] << (regs[b] & 31)) & _MASK

        elif op is Op.SHR:
            d, a, b = regs_f

            def thunk(vm):
                regs[d] = regs[a] >> (regs[b] & 31)

        elif op is Op.ADDI:
            d, a = regs_f
            value = imm & _MASK

            def thunk(vm):
                regs[d] = (regs[a] + value) & _MASK

        elif op is Op.SUBI:
            d, a = regs_f
            value = imm & _MASK

            def thunk(vm):
                regs[d] = (regs[a] - value) & _MASK

        elif op is Op.MULI:
            d, a = regs_f
            value = imm & _MASK

            def thunk(vm):
                regs[d] = (regs[a] * value) & _MASK

        elif op is Op.DIVI:
            d, a = regs_f
            value = imm & _MASK
            if value == 0:

                def thunk(vm):
                    fault(vm, "division by zero")

            else:

                def thunk(vm):
                    regs[d] = (regs[a] // value) & _MASK

        elif op is Op.ANDI:
            d, a = regs_f
            value = imm & _MASK

            def thunk(vm):
                regs[d] = regs[a] & value

        elif op is Op.ORI:
            d, a = regs_f
            value = imm & _MASK

            def thunk(vm):
                regs[d] = regs[a] | value

        elif op is Op.XORI:
            d, a = regs_f
            value = imm & _MASK

            def thunk(vm):
                regs[d] = regs[a] ^ value

        elif op is Op.SHLI:
            d, a = regs_f
            shift = imm & 31

            def thunk(vm):
                regs[d] = (regs[a] << shift) & _MASK

        elif op is Op.SHRI:
            d, a = regs_f
            shift = imm & 31

            def thunk(vm):
                regs[d] = regs[a] >> shift

        elif op is Op.LD:
            d, base = regs_f
            disp = imm

            def thunk(vm):
                regs[d] = read_u32(vm, (regs[base] + disp) & _MASK)

        elif op is Op.ST:
            s, base = regs_f
            disp = imm

            def thunk(vm):
                write_u32(vm, (regs[base] + disp) & _MASK, regs[s])

        elif op is Op.LDB:
            d, base = regs_f
            disp = imm

            def thunk(vm):
                address = (regs[base] + disp) & _MASK
                region = cache._dregion
                offset = address - region.start
                if 0 <= offset < len(region.data) and region.prot & 1:
                    regs[d] = region.data[offset]
                    return
                try:
                    value = memory.read_u8(address)
                except MemoryFault as err:
                    fault(vm, str(err), err)
                cache._dregion = memory.region_at(address)
                regs[d] = value

        elif op is Op.STB:
            s, base = regs_f
            disp = imm

            def thunk(vm):
                address = (regs[base] + disp) & _MASK
                region = cache._dregion
                offset = address - region.start
                if 0 <= offset < len(region.data) and region.prot & 2:
                    region.data[offset] = regs[s] & 0xFF
                    region.version += 1
                else:
                    try:
                        memory.write_u8(address, regs[s])
                    except MemoryFault as err:
                        fault(vm, str(err), err)
                    cache._dregion = memory.region_at(address)
                store_hooks(vm, address, 1)

        elif op is Op.PUSH:
            s = regs_f[0]

            def thunk(vm):
                value = regs[s]
                sp = (regs[15] - 4) & _MASK
                regs[15] = sp
                write_u32(vm, sp, value, "stack overflow: ")

        elif op is Op.POP:
            d = regs_f[0]

            def thunk(vm):
                value = read_u32(vm, regs[15], "stack underflow: ")
                regs[15] = (regs[15] + 4) & _MASK
                regs[d] = value

        elif op is Op.CMP:
            a, b = regs_f

            def thunk(vm):
                x = regs[a]
                y = regs[b]
                vm.flag_zero = x == y
                vm.flag_neg = (x - _WRAP if x & _SIGN else x) < (
                    y - _WRAP if y & _SIGN else y
                )

        elif op is Op.CMPI:
            a = regs_f[0]
            value = imm & _MASK
            signed_value = _signed(value)

            def thunk(vm):
                x = regs[a]
                vm.flag_zero = x == value
                vm.flag_neg = (x - _WRAP if x & _SIGN else x) < signed_value

        elif op is Op.RDTSC or op is Op.RDTSCH:
            # The batched cycle total was added at block entry; subtract
            # the pre-computed suffix so the guest observes exactly the
            # interpreter's mid-block counter value.
            d = regs_f[0]
            high = op is Op.RDTSCH

            def thunk(vm):
                cycles = vm.cycles - cyc_corr
                regs[d] = ((cycles >> 32) if high else cycles) & _MASK

        # -- terminators ----------------------------------------------

        elif op in _CONDITION_FLAGS:
            target = imm & _MASK
            want_zero, want_neg, want_either, invert = _CONDITION_FLAGS[op]

            if op is Op.BEQ:

                def thunk(vm):
                    vm.pc = target if vm.flag_zero else nxt

            elif op is Op.BNE:

                def thunk(vm):
                    vm.pc = nxt if vm.flag_zero else target

            elif op is Op.BLT:

                def thunk(vm):
                    vm.pc = target if vm.flag_neg else nxt

            elif op is Op.BGE:

                def thunk(vm):
                    vm.pc = nxt if vm.flag_neg else target

            elif op is Op.BLE:

                def thunk(vm):
                    vm.pc = target if (vm.flag_neg or vm.flag_zero) else nxt

            else:  # BGT

                def thunk(vm):
                    vm.pc = nxt if (vm.flag_neg or vm.flag_zero) else target

        elif op is Op.JMP:
            target = imm & _MASK

            def thunk(vm):
                vm.pc = target

        elif op is Op.JR:
            r = regs_f[0]

            def thunk(vm):
                vm.pc = regs[r]

        elif op is Op.CALL:
            target = imm & _MASK

            def thunk(vm):
                sp = (regs[15] - 4) & _MASK
                regs[15] = sp
                write_u32(vm, sp, nxt, "stack overflow: ")
                vm.pc = target

        elif op is Op.CALLR:
            r = regs_f[0]

            def thunk(vm):
                sp = (regs[15] - 4) & _MASK
                regs[15] = sp
                write_u32(vm, sp, nxt, "stack overflow: ")
                vm.pc = regs[r]  # read after the push, like the interpreter

        elif op is Op.RET:

            def thunk(vm):
                value = read_u32(vm, regs[15], "stack underflow: ")
                regs[15] = (regs[15] + 4) & _MASK
                vm.pc = value

        elif op is Op.SYS or op is Op.ASYS:
            authenticated = op is Op.ASYS

            def thunk(vm):
                # The kernel reads vm.pc (call site), vm.regs, and
                # vm.cycles (trap-time clock); all are exact here
                # because traps always terminate a block.
                vm.pc = pc
                handler = vm.trap_handler
                if handler is None:
                    raise ExecutionFault(pc, "trap with no kernel attached")
                vm.syscall_count += 1
                vm.cycles += handler.handle_trap(vm, authenticated)
                vm.pc = nxt

        elif op is Op.HALT:

            def thunk(vm):
                vm.exit_status = regs[1] & _MASK
                vm.pc = pc  # the interpreter leaves pc at the HALT

        else:  # pragma: no cover - opcode table is exhaustive
            def thunk(vm):
                fault(vm, f"unimplemented opcode {op!r}")

        return thunk


#: Marker table for the conditional branches (the tuple payload is
#: unused — membership drives the dispatch above, mirroring the
#: interpreter's _CONDITIONS table).
_CONDITION_FLAGS = {
    Op.BEQ: (True, False, False, False),
    Op.BNE: (True, False, False, True),
    Op.BLT: (False, True, False, False),
    Op.BGE: (False, True, False, True),
    Op.BLE: (False, False, True, False),
    Op.BGT: (False, False, True, True),
}
