"""Threaded-code execution engine: a basic-block translation cache.

On first entry to a block the engine decodes the straight-line run of
instructions up to the next control transfer, trap, or ``HALT`` and
compiles it into a list of pre-bound thunks — one closure per
instruction with register indices, immediates, and cycle-accounting
corrections baked in at compile time.  Subsequent executions of the
block pay one dictionary probe, one guard comparison, and one batched
cycle/instruction update instead of per-instruction fetch, decode, and
dispatch.

On top of the translation cache sit two dispatch-elimination layers
(both default-on; ``BlockCache(vm, chain=False)`` restores the plain
per-block dispatch loop, surfaced as ``--no-chain`` in the CLI):

- **Direct block chaining.**  A block whose terminator has a static
  successor (fall-through, direct branch, ``CALL``, or the return path
  of a trap) records the successor PC(s) at compile time; the first
  execution that takes such an exit links the successor block into the
  predecessor (two-way for conditional branches), and later
  executions invoke the successor directly, skipping the dispatch
  loop's dict probe and guard re-check.  Chained entry is only taken
  when the remaining instruction budget covers the successor, so
  scheduler preemption points are bit-identical with the unchained
  engine and the interpreter.
- **Superblocks.**  When a chain closes a hot cycle (per-block
  execution counter), the member blocks are fused into a single
  unrolled thunk list with one merged version-guard vector and one
  batched cycle/budget decrement per pass.  Fused code is specialized:
  adjacent compare+conditional-branch pairs become one thunk,
  intra-cycle ``JMP``s are elided, and loads/stores run the one-entry
  data-TLB fast path inline.  Off-cycle branch exits roll the batched
  accounting back to the exact architectural state and return to the
  dispatch loop, so every observable value (``RDTSC``, fault PCs,
  preemption points) matches the interpreter.

The invalidation invariant that makes chaining sound: **a chained or
fused entry never re-validates its target's guards, so any write that
could stale a translation must eagerly drop it** (dropping severs the
inbound links via the block's ``preds`` list and kills any superblock
it belongs to).  Three mechanisms cooperate:

- Engine fast-path stores call :meth:`BlockCache.note_write` *before*
  the bytes land (pre-image invalidation), then perform the store,
  then abort the running block/superblock if its own span was hit.
- Canonical stores (``Memory.write`` — guest slow path, kernel
  syscalls writing guest buffers, ``brk`` growth) notify pre-mutation
  watchers that each cache registers on every region it compiles code
  from; fork-shared regions carry both processes' watchers, so a
  forced write invalidates parent and child coherently.
- ``lookup`` still re-validates write-version guards, which covers
  uncached entry paths exactly as before.

Bit-identity with the reference interpreter is the contract, not a
goal: registers, flags, memory, cycle counts (including the values
``RDTSC`` observes mid-block and the kernel observes at trap time),
instruction counts, fault PCs and messages, and fail-stop reasons must
all be indistinguishable.  The pieces that make that work:

- **Batched accounting with per-thunk corrections.**  A block's (or
  superblock's) total cycles and instruction count are added on entry.
  Thunks that can observe or abort mid-block (``RDTSC``, faults,
  self-modifying stores, off-cycle branch exits) carry pre-computed
  corrections (``total - prefix[i]``) so the architectural counters
  are exact at every observation point.
- **Traps end blocks.**  ``SYS``/``ASYS`` only ever appear as a block
  terminator, so ``vm.cycles`` is exact when the kernel's
  :class:`~repro.cpu.vm.TrapHandler` runs, ``vm.pc`` names the call
  site (the authenticated-call checker and audit log depend on it),
  and :class:`~repro.cpu.vm.ProcessExit` propagates with the same
  state the interpreter would leave.  Traps are never fused into
  superblocks.
- **Write-version guards.**  Each block records the
  :class:`~repro.cpu.memory.Region` objects its code spans and their
  ``version`` counters at compile time; a block whose guard fails is
  recompiled on next entry.  Stores additionally consult a
  page->blocks index for eager invalidation, and a store that clobbers
  the *remainder of the currently running block* (or anywhere in a
  running superblock's span — conservative, but exact after rollback)
  rolls the batched accounting back and aborts to the dispatch loop,
  so self-modifying code (including the §4.1 stack shellcode)
  re-decodes exactly like the interpreter.
- **Compile faults are deferred.**  If instruction ``k > 0`` of a
  block cannot be fetched or decoded, the block is truncated before it
  with a fall-through terminator; the fault is then raised on the next
  dispatch at exactly the PC, accounting, and message the interpreter
  produces.  Chain-following re-enters ``lookup`` for unlinked exits,
  so deferred faults fire identically under chaining.

Loads and stores go through a one-entry data-region cache (a tiny data
TLB): a hit performs the access directly against the region bytearray
(bumping ``Region.version`` on writes, exactly like
``Memory.write``); any miss — wrong region, out of bounds, protection
— falls back to the canonical :class:`~repro.cpu.memory.Memory` path
so every fault is produced by the same code that produces it under the
interpreter.
"""

from __future__ import annotations

from struct import pack_into, unpack_from
from typing import TYPE_CHECKING, Callable, Optional

from repro.cpu.memory import MemoryFault, PAGE_SHIFT, Region
from repro.cpu.vm import ExecutionFault
from repro.isa.encoding import INSTRUCTION_SIZE, EncodingError, decode_fields
from repro.isa.opcodes import OPCODE_INFO, Op

if TYPE_CHECKING:  # pragma: no cover
    from repro.cpu.vm import VM

_MASK = 0xFFFFFFFF
_SIGN = 0x8000_0000
_WRAP = 0x1_0000_0000

#: Maximum instructions per block.  Blocks are straight-line, so this
#: only bounds pathological NOP sleds; real blocks end at a branch.
MAX_BLOCK = 64

#: A block becomes a superblock-fusion candidate every time its
#: execution count crosses a multiple of ``_HOT_MASK + 1``.
_HOT_MASK = 0xFF
#: Superblock shape limits: at most this many member blocks / cycle
#: instructions, unrolled toward ``_SB_TARGET_INSNS`` per pass.
_SB_MAX_BLOCKS = 8
_SB_MAX_INSNS = 64
_SB_TARGET_INSNS = 128
_SB_MAX_UNROLL = 16
#: A superblock that keeps aborting on stores into its own span (a
#: loop that writes its own code region every pass) is torn down after
#: this many SMC aborts; each abort is exact, just slow.
_SB_SMC_LIMIT = 4


class BlockAbort(Exception):
    """Internal control flow: the running block/superblock must stop
    early with the architectural state already settled by the raiser.
    ``consumed`` is how many instructions completed; ``smc`` marks
    aborts caused by a store into the running translation's own span
    (used to tear down pathologically self-modifying superblocks)."""

    def __init__(self, consumed: int, smc: bool = False):
        self.consumed = consumed
        self.smc = smc


class Block:
    """One compiled basic block plus its chain-link state."""

    __slots__ = (
        "entry", "end", "count", "total_cycles", "thunks",
        "guard_region", "guard_version", "extra_guards", "stop", "pages",
        "code", "s1_pc", "s2_pc", "s1", "s2", "preds",
        "exec_count", "fusable", "sb", "sbs",
    )

    def __init__(
        self, entry, end, count, total_cycles, thunks, guards, stop,
        code, s1_pc, s2_pc, fusable,
    ):
        self.entry = entry
        self.end = end
        self.count = count
        self.total_cycles = total_cycles
        self.thunks = thunks
        self.guard_region = guards[0][0]
        self.guard_version = guards[0][1]
        self.extra_guards = guards[1:] or None
        self.stop = stop
        self.pages = tuple(
            range(entry >> PAGE_SHIFT, ((end - 1) >> PAGE_SHIFT) + 1)
        )
        #: Decoded instruction stream ``(pc, op, reg fields, imm)`` —
        #: kept so superblock fusion can re-specialize without
        #: re-fetching (the guards vouch for it staying current).
        self.code = code
        #: Static successor PCs (-1 when the exit is dynamic).  For a
        #: conditional branch s1 is the taken target and s2 the
        #: fall-through; JMP/CALL use s1 for the target; SYS/ASYS use
        #: s1 for the return path.
        self.s1_pc = s1_pc
        self.s2_pc = s2_pc
        #: Lazily linked successor blocks (direct chaining).
        self.s1: Optional[Block] = None
        self.s2: Optional[Block] = None
        #: Blocks whose s1/s2 point at this block — severed on drop.
        self.preds: list = []
        self.exec_count = 0
        #: Eligible for superblock membership (conditional/JMP
        #: terminator, fully decoded).
        self.fusable = fusable
        #: Superblock headed by this block, if any.
        self.sb: Optional["Superblock"] = None
        #: Every superblock this block is a member of (for teardown).
        self.sbs: list = []


class Superblock:
    """A fused, unrolled hot cycle: one guard vector, one batched
    accounting update and budget decrement per pass."""

    __slots__ = (
        "entry", "count", "total_cycles", "thunks", "guards", "blocks",
        "dead", "smc_aborts",
    )

    def __init__(self, entry, count, total_cycles, thunks, guards, blocks):
        self.entry = entry
        self.count = count
        self.total_cycles = total_cycles
        self.thunks = thunks
        self.guards = guards
        self.blocks = blocks
        self.dead = False
        self.smc_aborts = 0


def _signed(value: int) -> int:
    return value - _WRAP if value & _SIGN else value


class BlockCache:
    """The per-VM translation cache and its dispatch loop."""

    def __init__(self, vm: "VM", chain: bool = True):
        self.vm = vm
        self.chain = chain
        self._blocks: dict[int, Block] = {}
        #: page number -> set of block entry PCs whose code touches it.
        #: Lets stores invalidate cached translations in O(1) in the
        #: common no-code-on-this-page case.
        self._page_index: dict[int, set] = {}
        #: One-entry data TLB (see module docstring).  Starts with an
        #: empty dummy region so the first access always misses.
        self._dregion: Region = Region(start=0, data=bytearray(), prot=0)
        #: Regions (by id) this cache has registered a pre-mutation
        #: watcher on, so canonical writes invalidate eagerly too.
        self._watched: set[int] = set()
        self.compiles = 0
        self.invalidations = 0
        self.chains_linked = 0
        self.chains_severed = 0
        self.superblocks_fused = 0
        self.superblocks_killed = 0

    # -- dispatch ------------------------------------------------------

    def run(self, max_instructions: int, preempt: bool = False) -> None:
        """Execute until HALT/exit; mirrors the interpreter's budget
        semantics exactly (a block longer than the remaining budget is
        single-stepped so exhaustion faults at the same PC).

        With ``preempt=True`` an exhausted budget is a timeslice end,
        not a fault: the engine returns with the architectural state
        exactly as the interpreter leaves it after the same number of
        instructions, which is what makes scheduler interleavings
        engine-independent.  Chained successors and superblocks are
        only entered when the remaining budget covers them, so the
        preemption point always lands on a block boundary the
        interpreter would also stop at."""
        vm = self.vm
        lookup = self.lookup
        step = vm.step
        budget = max_instructions

        if not self.chain:
            # Plain per-block dispatch: one dict probe + guard check
            # per block execution (the pre-chaining engine, kept as
            # the `--no-chain` escape hatch and bench baseline).
            while budget > 0:
                block = lookup(vm.pc)
                count = block.count
                if count > budget:
                    if not step():
                        return
                    budget -= 1
                    continue
                vm.cycles += block.total_cycles
                vm.instructions_executed += count
                try:
                    for thunk in block.thunks:
                        thunk(vm)
                except BlockAbort as abort:
                    budget -= abort.consumed
                    continue
                if block.stop:
                    return
                budget -= count
            if preempt:
                return
            raise ExecutionFault(vm.pc, "instruction budget exhausted")

        while budget > 0:
            block = lookup(vm.pc)
            # Chain-following inner loop: after executing `block`,
            # hop straight to a linked successor without re-entering
            # the dispatch loop (no dict probe, no guard re-check —
            # eager invalidation severs links before they can stale).
            while True:
                count = block.count
                if count > budget:
                    # Slice shorter than the block: single-step the
                    # tail so budget exhaustion lands at exactly the
                    # interpreter's PC.
                    if not step():
                        return
                    budget -= 1
                    break
                sb = block.sb
                if sb is not None and sb.count <= budget:
                    entered, budget = self._run_superblock(sb, budget)
                    if entered:
                        break
                vm.cycles += block.total_cycles
                vm.instructions_executed += count
                try:
                    for thunk in block.thunks:
                        thunk(vm)
                except BlockAbort as abort:
                    budget -= abort.consumed
                    break
                if block.stop:
                    return
                budget -= count
                n = block.exec_count + 1
                block.exec_count = n
                if block.fusable and block.sb is None and not (n & _HOT_MASK):
                    self._maybe_fuse(block)
                if budget <= 0:
                    break
                pc = vm.pc
                if pc == block.s1_pc:
                    succ = block.s1
                    if succ is None:
                        succ = self._link(block, pc, 1)
                elif pc == block.s2_pc:
                    succ = block.s2
                    if succ is None:
                        succ = self._link(block, pc, 2)
                else:
                    break  # dynamic exit (JR/RET/...): full dispatch
                block = succ
        if preempt:
            return
        raise ExecutionFault(vm.pc, "instruction budget exhausted")

    def _run_superblock(self, sb: Superblock, budget: int):
        """Execute passes of a fused cycle while the budget covers a
        full pass.  Returns ``(entered, budget)``; ``entered`` is
        False when the guard vector was stale (the superblock is then
        killed and the caller falls back to per-block execution)."""
        for region, version in sb.guards:
            if region.version != version:
                self._kill_superblock(sb)
                return False, budget
        vm = self.vm
        entry = sb.entry
        count = sb.count
        cycles = sb.total_cycles
        thunks = sb.thunks
        while count <= budget:
            vm.cycles += cycles
            vm.instructions_executed += count
            try:
                for thunk in thunks:
                    thunk(vm)
            except BlockAbort as abort:
                # The raiser already rolled the batched accounting
                # back and set vm.pc; only the budget needs settling.
                budget -= abort.consumed
                if abort.smc and not sb.dead:
                    sb.smc_aborts += 1
                    if sb.smc_aborts >= _SB_SMC_LIMIT:
                        sb.blocks[0].fusable = False
                        self._kill_superblock(sb)
                break
            budget -= count
            if vm.pc != entry:
                break
        return True, budget

    # -- cache management ----------------------------------------------

    def lookup(self, pc: int) -> Block:
        block = self._blocks.get(pc)
        if block is not None:
            if block.guard_region.version == block.guard_version:
                extra = block.extra_guards
                if extra is None:
                    return block
                for region, version in extra:
                    if region.version != version:
                        break
                else:
                    return block
            self._drop(block)
            self.invalidations += 1
        return self._compile(pc)

    def _link(self, block: Block, pc: int, slot: int) -> Block:
        """Form a chain link from ``block`` to the block at ``pc``
        (which may compile it, or raise its deferred fault exactly as
        the dispatch loop would)."""
        succ = self.lookup(pc)
        if slot == 1:
            block.s1 = succ
        else:
            block.s2 = succ
        succ.preds.append(block)
        self.chains_linked += 1
        return succ

    def _drop(self, block: Block) -> None:
        self._blocks.pop(block.entry, None)
        for page in block.pages:
            entries = self._page_index.get(page)
            if entries is not None:
                entries.discard(block.entry)
                if not entries:
                    del self._page_index[page]
        # Sever inbound chain links: a chained predecessor must never
        # invoke a dropped (possibly stale) translation.
        preds = block.preds
        if preds:
            for pred in preds:
                if pred.s1 is block:
                    pred.s1 = None
                    self.chains_severed += 1
                if pred.s2 is block:
                    pred.s2 = None
                    self.chains_severed += 1
            block.preds = []
        # ...and outbound ones, so the successors' pred lists do not
        # accumulate dead entries across SMC recompile churn.
        s1 = block.s1
        if s1 is not None:
            s1.preds = [p for p in s1.preds if p is not block]
            block.s1 = None
        s2 = block.s2
        if s2 is not None:
            s2.preds = [p for p in s2.preds if p is not block]
            block.s2 = None
        # Any superblock containing this block is now stale.
        if block.sbs:
            for sb in block.sbs[:]:
                self._kill_superblock(sb)

    def _kill_superblock(self, sb: Superblock) -> None:
        if sb.dead:
            return
        sb.dead = True
        self.superblocks_killed += 1
        head = sb.blocks[0]
        if head.sb is sb:
            head.sb = None
        for member in sb.blocks:
            try:
                member.sbs.remove(sb)
            except ValueError:
                pass

    def note_write(self, address: int, size: int) -> None:
        """Drop cached blocks whose code a write overlaps — called
        *before* the store lands (pre-image invalidation), both from
        the engine's fast-path stores and, via ``Region.watchers``,
        from every canonical ``Memory`` mutation.  With chaining this
        is load-bearing, not just hygiene: a chained predecessor
        invokes its successor without re-checking guards, so the
        successor must be dropped (severing the link) the moment its
        code is overwritten."""
        index = self._page_index
        if not index:
            return
        lo = address >> PAGE_SHIFT
        hi = (address + size - 1) >> PAGE_SHIFT
        end = address + size
        for page in range(lo, hi + 1):
            entries = index.get(page)
            if not entries:
                continue
            for entry in list(entries):
                block = self._blocks.get(entry)
                if block is None:
                    entries.discard(entry)
                    continue
                if address < block.end and end > block.entry:
                    self._drop(block)
                    self.invalidations += 1

    # -- compilation ---------------------------------------------------

    def _compile(self, entry: int) -> Block:
        recorder = self.vm.recorder
        if not recorder.enabled:
            return self._translate(entry)
        # Tracing: attribute translation time to its own engine stage
        # even when the first instruction faults out of _translate.
        recorder.begin("block-compile", "engine")
        try:
            return self._translate(entry)
        finally:
            recorder.end()

    def _translate(self, entry: int) -> Block:
        vm = self.vm
        memory = vm.memory
        nx = vm.nx
        fetched = []  # (pc, op, reg fields, imm)
        guards: list[tuple[Region, int]] = []
        seen_regions: set[int] = set()
        pc = entry
        terminated = False
        while True:
            # Mirrors VM._fetch: NX check, read, decode — but a failure
            # past the first instruction truncates the block instead of
            # raising, deferring the fault to the dispatch that actually
            # reaches it (identical accounting and message).
            if nx and not memory.executable(pc):
                if not fetched:
                    raise ExecutionFault(pc, "NX violation: page not executable")
                break
            try:
                raw = memory.read(pc, INSTRUCTION_SIZE)
            except MemoryFault as fault:
                if not fetched:
                    raise ExecutionFault(
                        pc, f"instruction fetch: {fault}"
                    ) from fault
                break
            try:
                op, regs, imm = decode_fields(raw)
            except EncodingError as err:
                if not fetched:
                    raise ExecutionFault(
                        pc, f"illegal instruction: {err}"
                    ) from err
                break
            region = memory.region_at(pc)
            if id(region) not in seen_regions:
                seen_regions.add(id(region))
                guards.append((region, region.version))
            fetched.append((pc, op, regs, imm))
            info = OPCODE_INFO[op]
            if info.is_branch or info.is_trap or op is Op.HALT:
                terminated = True
                break
            pc += INSTRUCTION_SIZE
            if len(fetched) >= MAX_BLOCK:
                break

        count = len(fetched)
        end = fetched[-1][0] + INSTRUCTION_SIZE
        # Cycle prefix sums: prefix[i] covers instructions 0..i
        # inclusive (the interpreter charges cycles *before* executing
        # an instruction, so a fault at i has paid for i).
        prefix = []
        total = 0
        for _, op, _, imm in fetched:
            total += OPCODE_INFO[op].cycles
            if op is Op.CPUWORK:
                total += imm
            prefix.append(total)

        thunks: list[Callable] = []
        stop = False
        for i, (ipc, op, regs, imm) in enumerate(fetched):
            thunk = self._make_thunk(
                ipc, op, regs, imm,
                cyc_corr=total - prefix[i],
                icnt_corr=count - (i + 1),
                consumed=i + 1,
                # Per-block SMC window: the not-yet-executed remainder
                # [next pc, block end).  Empty for the terminator.
                smc_lo=ipc + INSTRUCTION_SIZE,
                smc_hi=end,
            )
            if thunk is not None:
                thunks.append(thunk)
            if op is Op.HALT:
                stop = True

        # Static successor PCs for direct chaining, and superblock
        # eligibility.  Dynamic exits (JR/CALLR/RET) and stops get the
        # -1 sentinel and always return to the dispatch loop.
        s1_pc = -1
        s2_pc = -1
        fusable = False
        if terminated:
            tpc, top, _, timm = fetched[-1]
            tnxt = tpc + INSTRUCTION_SIZE
            if top in _CONDITION_FLAGS:
                s1_pc = timm & _MASK
                s2_pc = tnxt
                fusable = True
            elif top is Op.JMP:
                s1_pc = timm & _MASK
                fusable = True
            elif top is Op.CALL:
                s1_pc = timm & _MASK
            elif top is Op.SYS or top is Op.ASYS:
                s1_pc = tnxt
        else:
            # Truncated block: fall through to the next PC; the next
            # dispatch re-enters the cache (or raises the deferred
            # fetch fault).
            nxt = end

            def fallthrough(vm, _nxt=nxt):
                vm.pc = _nxt

            thunks.append(fallthrough)
            s1_pc = end

        block = Block(
            entry, end, count, total, thunks, guards, stop,
            tuple(fetched), s1_pc, s2_pc, fusable,
        )
        self._blocks[entry] = block
        for page in block.pages:
            self._page_index.setdefault(page, set()).add(entry)
        # Register pre-mutation watchers so canonical writes (kernel
        # buffer fills, brk growth, forced attack writes) invalidate
        # before the bytes land — see the module docstring.
        for region, _ in guards:
            rid = id(region)
            if rid not in self._watched:
                self._watched.add(rid)
                region.watchers.append(self.note_write)
        self.compiles += 1
        return block

    # -- superblock fusion ---------------------------------------------

    def _maybe_fuse(self, head: Block) -> None:
        """If the chain out of ``head`` closes a cycle back to it,
        fuse the member blocks into a superblock.  Called every
        ``_HOT_MASK + 1`` executions of a fusable, unfused block."""
        path = [head]
        seen = {id(head)}
        insns = head.count
        block = head
        while True:
            s1 = block.s1
            s2 = block.s2
            if s1 is not None and s2 is not None:
                nxt = s1 if s1.exec_count >= s2.exec_count else s2
            elif s1 is not None:
                nxt = s1
            else:
                nxt = s2
            if nxt is head:
                break  # cycle found
            if (
                nxt is None
                or not nxt.fusable
                or id(nxt) in seen
                or len(path) >= _SB_MAX_BLOCKS
                or insns + nxt.count > _SB_MAX_INSNS
            ):
                return
            seen.add(id(nxt))
            path.append(nxt)
            insns += nxt.count
            block = nxt
        recorder = self.vm.recorder
        if not recorder.enabled:
            self._fuse(path, insns)
            return
        recorder.begin("block-chain", "engine")
        try:
            self._fuse(path, insns)
        finally:
            recorder.end()

    def _fuse(self, path: list, cycle_insns: int) -> None:
        head = path[0]
        unroll = max(1, min(_SB_MAX_UNROLL, _SB_TARGET_INSNS // cycle_insns))
        span_lo = min(b.entry for b in path)
        span_hi = max(b.end for b in path)

        # Merged guard vector (deduped by region): one validation per
        # superblock entry instead of one per member per pass.
        guards: list[tuple[Region, int]] = []
        seen_regions: set[int] = set()
        for member in path:
            member_guards = [(member.guard_region, member.guard_version)]
            if member.extra_guards:
                member_guards.extend(member.extra_guards)
            for region, version in member_guards:
                if id(region) not in seen_regions:
                    seen_regions.add(id(region))
                    guards.append((region, version))

        # Flatten `unroll` copies of the cycle.  Unrolled copies share
        # the same guest PCs, so every pre-bound PC/fault value stays
        # architecturally correct in any copy.
        flat = []  # (pc, op, reg fields, imm, is_terminator, on_taken, block)
        npath = len(path)
        for _ in range(unroll):
            for bi, member in enumerate(path):
                chosen = path[bi + 1] if bi + 1 < npath else head
                code = member.code
                last = len(code) - 1
                for k, (ipc, op, regs_f, imm) in enumerate(code):
                    on_taken = k == last and chosen.entry == member.s1_pc
                    flat.append((ipc, op, regs_f, imm, k == last, on_taken, member))

        n = len(flat)
        prefix = []
        total = 0
        for _, op, _, imm, _, _, _ in flat:
            total += OPCODE_INFO[op].cycles
            if op is Op.CPUWORK:
                total += imm
            prefix.append(total)

        thunks: list[Callable] = []
        j = 0
        while j < n:
            ipc, op, regs_f, imm, is_term, on_taken, member = flat[j]
            final = j == n - 1
            if is_term:
                if final:
                    # The pass-closing terminator runs unspecialized
                    # with zero corrections: it sets vm.pc on both
                    # paths and the pass loop checks it against the
                    # superblock entry.
                    thunks.append(self._make_thunk(
                        ipc, op, regs_f, imm,
                        cyc_corr=0, icnt_corr=0, consumed=n,
                        smc_lo=span_lo, smc_hi=span_hi,
                    ))
                elif op is Op.JMP or member.s1_pc == member.s2_pc:
                    pass  # intra-cycle jump: control simply continues
                else:
                    off_pc = member.s2_pc if on_taken else member.s1_pc
                    thunks.append(self._branch_exit(
                        op, on_taken, off_pc,
                        cyc_corr=total - prefix[j],
                        icnt_corr=n - (j + 1),
                        consumed=j + 1,
                    ))
                j += 1
                continue
            if (op is Op.CMP or op is Op.CMPI) and j + 1 < n - 1:
                (nipc, nop, nregs, nimm, nterm, non_taken, nmember) = flat[j + 1]
                if nterm and nop in _CONDITION_FLAGS and nmember.s1_pc != nmember.s2_pc:
                    # Fused compare+branch: one thunk sets the
                    # architectural flags and takes the exit decision.
                    thunks.append(self._fused_compare_branch(
                        op, regs_f, imm, nop, non_taken,
                        nmember.s2_pc if non_taken else nmember.s1_pc,
                        cyc_corr=total - prefix[j + 1],
                        icnt_corr=n - (j + 2),
                        consumed=j + 2,
                    ))
                    j += 2
                    continue
            thunk = self._make_thunk(
                ipc, op, regs_f, imm,
                cyc_corr=total - prefix[j],
                icnt_corr=n - (j + 1),
                consumed=j + 1,
                smc_lo=span_lo, smc_hi=span_hi,
            )
            if thunk is not None:
                thunks.append(thunk)
            j += 1

        sb = Superblock(head.entry, n, total, thunks, tuple(guards), tuple(path))
        head.sb = sb
        for member in path:
            member.sbs.append(sb)
        self.superblocks_fused += 1

    # -- thunk factories -----------------------------------------------

    def _branch_exit(
        self, op, on_taken, off_pc, cyc_corr, icnt_corr, consumed
    ) -> Callable:
        """A mid-superblock conditional branch whose flags were set by
        an earlier (non-adjacent) compare: continue on the fused path,
        or roll back the batched accounting and exit."""
        family, invert = _BRANCH_FAMILY[op]
        want = on_taken ^ invert

        if family == "z":

            def thunk(vm):
                if vm.flag_zero != want:
                    vm.cycles -= cyc_corr
                    vm.instructions_executed -= icnt_corr
                    vm.pc = off_pc
                    raise BlockAbort(consumed)

        elif family == "n":

            def thunk(vm):
                if vm.flag_neg != want:
                    vm.cycles -= cyc_corr
                    vm.instructions_executed -= icnt_corr
                    vm.pc = off_pc
                    raise BlockAbort(consumed)

        else:  # "nz"

            def thunk(vm):
                if (vm.flag_neg or vm.flag_zero) != want:
                    vm.cycles -= cyc_corr
                    vm.instructions_executed -= icnt_corr
                    vm.pc = off_pc
                    raise BlockAbort(consumed)

        return thunk

    def _fused_compare_branch(
        self, cmp_op, cmp_regs, cmp_imm, br_op, on_taken, off_pc,
        cyc_corr, icnt_corr, consumed,
    ) -> Callable:
        """One thunk for an adjacent CMP/CMPI + conditional branch
        pair inside a superblock.  The architectural flags are always
        set (a later exit must observe them exactly as the interpreter
        would); corrections are the *branch's*, since both
        instructions have executed when the exit is taken."""
        regs = self.vm.regs
        family, invert = _BRANCH_FAMILY[br_op]
        want = on_taken ^ invert

        if cmp_op is Op.CMPI:
            a = cmp_regs[0]
            value = cmp_imm & _MASK
            signed_value = _signed(value)

            if family == "z":

                def thunk(vm):
                    x = regs[a]
                    z = x == value
                    vm.flag_zero = z
                    vm.flag_neg = (x - _WRAP if x & _SIGN else x) < signed_value
                    if z != want:
                        vm.cycles -= cyc_corr
                        vm.instructions_executed -= icnt_corr
                        vm.pc = off_pc
                        raise BlockAbort(consumed)

            elif family == "n":

                def thunk(vm):
                    x = regs[a]
                    neg = (x - _WRAP if x & _SIGN else x) < signed_value
                    vm.flag_zero = x == value
                    vm.flag_neg = neg
                    if neg != want:
                        vm.cycles -= cyc_corr
                        vm.instructions_executed -= icnt_corr
                        vm.pc = off_pc
                        raise BlockAbort(consumed)

            else:  # "nz"

                def thunk(vm):
                    x = regs[a]
                    z = x == value
                    neg = (x - _WRAP if x & _SIGN else x) < signed_value
                    vm.flag_zero = z
                    vm.flag_neg = neg
                    if (neg or z) != want:
                        vm.cycles -= cyc_corr
                        vm.instructions_executed -= icnt_corr
                        vm.pc = off_pc
                        raise BlockAbort(consumed)

        else:  # CMP ra, rb
            a, b = cmp_regs

            if family == "z":

                def thunk(vm):
                    x = regs[a]
                    y = regs[b]
                    z = x == y
                    vm.flag_zero = z
                    vm.flag_neg = (x - _WRAP if x & _SIGN else x) < (
                        y - _WRAP if y & _SIGN else y
                    )
                    if z != want:
                        vm.cycles -= cyc_corr
                        vm.instructions_executed -= icnt_corr
                        vm.pc = off_pc
                        raise BlockAbort(consumed)

            elif family == "n":

                def thunk(vm):
                    x = regs[a]
                    y = regs[b]
                    neg = (x - _WRAP if x & _SIGN else x) < (
                        y - _WRAP if y & _SIGN else y
                    )
                    vm.flag_zero = x == y
                    vm.flag_neg = neg
                    if neg != want:
                        vm.cycles -= cyc_corr
                        vm.instructions_executed -= icnt_corr
                        vm.pc = off_pc
                        raise BlockAbort(consumed)

            else:  # "nz"

                def thunk(vm):
                    x = regs[a]
                    y = regs[b]
                    z = x == y
                    neg = (x - _WRAP if x & _SIGN else x) < (
                        y - _WRAP if y & _SIGN else y
                    )
                    vm.flag_zero = z
                    vm.flag_neg = neg
                    if (neg or z) != want:
                        vm.cycles -= cyc_corr
                        vm.instructions_executed -= icnt_corr
                        vm.pc = off_pc
                        raise BlockAbort(consumed)

        return thunk

    def _make_thunk(
        self, pc, op, regs_f, imm, cyc_corr, icnt_corr, consumed,
        smc_lo, smc_hi,
    ) -> Optional[Callable]:
        """Compile one instruction into a pre-bound closure.

        ``[smc_lo, smc_hi)`` is the self-modification window: a store
        landing in it aborts the running translation after the write.
        For a plain block that is the unexecuted remainder; for a
        superblock it is the whole member span (conservative: every PC
        in a cycle is "not yet executed" from the next pass's point of
        view).  Returns ``None`` for instructions whose entire effect
        lives in the batched accounting (``NOP``, ``CPUWORK``)."""
        vm = self.vm
        regs = vm.regs  # the register file list is never reassigned
        memory = vm.memory
        cache = self
        nxt = pc + INSTRUCTION_SIZE

        def fault(vm, message, cause=None):
            """Roll the batched accounting back to 'this instruction
            faulted' and raise, mirroring interpreter state exactly."""
            vm.cycles -= cyc_corr
            vm.instructions_executed -= icnt_corr
            vm.pc = pc
            raise ExecutionFault(pc, message) from cause

        def pre_store(address, size):
            """Pre-image invalidation: drop overlapped translations
            (severing their chain links) before the bytes change."""
            index = cache._page_index
            if (address >> PAGE_SHIFT) in index or (
                (address + size - 1) >> PAGE_SHIFT
            ) in index:
                cache.note_write(address, size)

        if smc_lo < smc_hi:

            def post_store(vm, address, size):
                """Self-modification abort: the store clobbered code
                this translation would still execute.  Unwind the
                batched accounting past this instruction and return to
                the dispatch loop, which re-decodes the new bytes."""
                if address < smc_hi and address + size > smc_lo:
                    vm.cycles -= cyc_corr
                    vm.instructions_executed -= icnt_corr
                    vm.pc = nxt
                    raise BlockAbort(consumed, smc=True)

        else:  # empty window (a terminator's own store can't SMC-abort)

            def post_store(vm, address, size):
                return

        def read_u32(vm, address, message_prefix=""):
            region = cache._dregion
            offset = address - region.start
            if 0 <= offset and offset + 4 <= len(region.data) and region.prot & 1:
                return unpack_from("<I", region.data, offset)[0]
            try:
                value = memory.read_u32(address)
            except MemoryFault as err:
                fault(vm, message_prefix + str(err), err)
            cache._dregion = memory.region_at(address)
            return value

        def write_u32(vm, address, value, message_prefix=""):
            region = cache._dregion
            offset = address - region.start
            if 0 <= offset and offset + 4 <= len(region.data) and region.prot & 2:
                pre_store(address, 4)
                pack_into("<I", region.data, offset, value & _MASK)
                region.version += 1
            else:
                # The canonical path notifies this cache's region
                # watcher before mutating, so invalidation ordering is
                # identical to the fast path.
                try:
                    memory.write_u32(address, value)
                except MemoryFault as err:
                    fault(vm, message_prefix + str(err), err)
                cache._dregion = memory.region_at(address)
            post_store(vm, address, 4)

        # -- straight-line operations ---------------------------------

        if op is Op.NOP or op is Op.CPUWORK:
            return None  # effect folded into the batched cycle total

        if op is Op.LI:
            d = regs_f[0]
            value = imm & _MASK

            def thunk(vm):
                regs[d] = value

        elif op is Op.MOV:
            d, s = regs_f

            def thunk(vm):
                regs[d] = regs[s]

        elif op is Op.ADD:
            d, a, b = regs_f

            def thunk(vm):
                regs[d] = (regs[a] + regs[b]) & _MASK

        elif op is Op.SUB:
            d, a, b = regs_f

            def thunk(vm):
                regs[d] = (regs[a] - regs[b]) & _MASK

        elif op is Op.MUL:
            d, a, b = regs_f

            def thunk(vm):
                regs[d] = (regs[a] * regs[b]) & _MASK

        elif op is Op.DIV or op is Op.MOD:
            d, a, b = regs_f
            is_div = op is Op.DIV

            def thunk(vm):
                divisor = regs[b]
                if divisor == 0:
                    fault(vm, "division by zero")
                regs[d] = (
                    regs[a] // divisor if is_div else regs[a] % divisor
                ) & _MASK

        elif op is Op.AND:
            d, a, b = regs_f

            def thunk(vm):
                regs[d] = regs[a] & regs[b]

        elif op is Op.OR:
            d, a, b = regs_f

            def thunk(vm):
                regs[d] = regs[a] | regs[b]

        elif op is Op.XOR:
            d, a, b = regs_f

            def thunk(vm):
                regs[d] = regs[a] ^ regs[b]

        elif op is Op.SHL:
            d, a, b = regs_f

            def thunk(vm):
                regs[d] = (regs[a] << (regs[b] & 31)) & _MASK

        elif op is Op.SHR:
            d, a, b = regs_f

            def thunk(vm):
                regs[d] = regs[a] >> (regs[b] & 31)

        elif op is Op.ADDI:
            d, a = regs_f
            value = imm & _MASK

            def thunk(vm):
                regs[d] = (regs[a] + value) & _MASK

        elif op is Op.SUBI:
            d, a = regs_f
            value = imm & _MASK

            def thunk(vm):
                regs[d] = (regs[a] - value) & _MASK

        elif op is Op.MULI:
            d, a = regs_f
            value = imm & _MASK

            def thunk(vm):
                regs[d] = (regs[a] * value) & _MASK

        elif op is Op.DIVI:
            d, a = regs_f
            value = imm & _MASK
            if value == 0:

                def thunk(vm):
                    fault(vm, "division by zero")

            else:

                def thunk(vm):
                    regs[d] = (regs[a] // value) & _MASK

        elif op is Op.ANDI:
            d, a = regs_f
            value = imm & _MASK

            def thunk(vm):
                regs[d] = regs[a] & value

        elif op is Op.ORI:
            d, a = regs_f
            value = imm & _MASK

            def thunk(vm):
                regs[d] = regs[a] | value

        elif op is Op.XORI:
            d, a = regs_f
            value = imm & _MASK

            def thunk(vm):
                regs[d] = regs[a] ^ value

        elif op is Op.SHLI:
            d, a = regs_f
            shift = imm & 31

            def thunk(vm):
                regs[d] = (regs[a] << shift) & _MASK

        elif op is Op.SHRI:
            d, a = regs_f
            shift = imm & 31

            def thunk(vm):
                regs[d] = regs[a] >> shift

        elif op is Op.LD:
            d, base = regs_f
            disp = imm

            def thunk(vm):
                # Data-TLB fast path inlined (no nested call on hit).
                address = (regs[base] + disp) & _MASK
                region = cache._dregion
                offset = address - region.start
                if 0 <= offset and offset + 4 <= len(region.data) and region.prot & 1:
                    regs[d] = unpack_from("<I", region.data, offset)[0]
                else:
                    regs[d] = read_u32(vm, address)

        elif op is Op.ST:
            s, base = regs_f
            disp = imm

            def thunk(vm):
                address = (regs[base] + disp) & _MASK
                region = cache._dregion
                offset = address - region.start
                if 0 <= offset and offset + 4 <= len(region.data) and region.prot & 2:
                    pre_store(address, 4)
                    pack_into("<I", region.data, offset, regs[s] & _MASK)
                    region.version += 1
                    post_store(vm, address, 4)
                else:
                    write_u32(vm, address, regs[s])

        elif op is Op.LDB:
            d, base = regs_f
            disp = imm

            def thunk(vm):
                address = (regs[base] + disp) & _MASK
                region = cache._dregion
                offset = address - region.start
                if 0 <= offset < len(region.data) and region.prot & 1:
                    regs[d] = region.data[offset]
                    return
                try:
                    value = memory.read_u8(address)
                except MemoryFault as err:
                    fault(vm, str(err), err)
                cache._dregion = memory.region_at(address)
                regs[d] = value

        elif op is Op.STB:
            s, base = regs_f
            disp = imm

            def thunk(vm):
                address = (regs[base] + disp) & _MASK
                region = cache._dregion
                offset = address - region.start
                if 0 <= offset < len(region.data) and region.prot & 2:
                    pre_store(address, 1)
                    region.data[offset] = regs[s] & 0xFF
                    region.version += 1
                else:
                    try:
                        memory.write_u8(address, regs[s])
                    except MemoryFault as err:
                        fault(vm, str(err), err)
                    cache._dregion = memory.region_at(address)
                post_store(vm, address, 1)

        elif op is Op.PUSH:
            s = regs_f[0]

            def thunk(vm):
                value = regs[s]
                sp = (regs[15] - 4) & _MASK
                regs[15] = sp
                write_u32(vm, sp, value, "stack overflow: ")

        elif op is Op.POP:
            d = regs_f[0]

            def thunk(vm):
                value = read_u32(vm, regs[15], "stack underflow: ")
                regs[15] = (regs[15] + 4) & _MASK
                regs[d] = value

        elif op is Op.CMP:
            a, b = regs_f

            def thunk(vm):
                x = regs[a]
                y = regs[b]
                vm.flag_zero = x == y
                vm.flag_neg = (x - _WRAP if x & _SIGN else x) < (
                    y - _WRAP if y & _SIGN else y
                )

        elif op is Op.CMPI:
            a = regs_f[0]
            value = imm & _MASK
            signed_value = _signed(value)

            def thunk(vm):
                x = regs[a]
                vm.flag_zero = x == value
                vm.flag_neg = (x - _WRAP if x & _SIGN else x) < signed_value

        elif op is Op.RDTSC or op is Op.RDTSCH:
            # The batched cycle total was added at block entry; subtract
            # the pre-computed suffix so the guest observes exactly the
            # interpreter's mid-block counter value.
            d = regs_f[0]
            high = op is Op.RDTSCH

            def thunk(vm):
                cycles = vm.cycles - cyc_corr
                regs[d] = ((cycles >> 32) if high else cycles) & _MASK

        # -- terminators ----------------------------------------------

        elif op in _CONDITION_FLAGS:
            target = imm & _MASK

            if op is Op.BEQ:

                def thunk(vm):
                    vm.pc = target if vm.flag_zero else nxt

            elif op is Op.BNE:

                def thunk(vm):
                    vm.pc = nxt if vm.flag_zero else target

            elif op is Op.BLT:

                def thunk(vm):
                    vm.pc = target if vm.flag_neg else nxt

            elif op is Op.BGE:

                def thunk(vm):
                    vm.pc = nxt if vm.flag_neg else target

            elif op is Op.BLE:

                def thunk(vm):
                    vm.pc = target if (vm.flag_neg or vm.flag_zero) else nxt

            else:  # BGT

                def thunk(vm):
                    vm.pc = nxt if (vm.flag_neg or vm.flag_zero) else target

        elif op is Op.JMP:
            target = imm & _MASK

            def thunk(vm):
                vm.pc = target

        elif op is Op.JR:
            r = regs_f[0]

            def thunk(vm):
                vm.pc = regs[r]

        elif op is Op.CALL:
            target = imm & _MASK

            def thunk(vm):
                sp = (regs[15] - 4) & _MASK
                regs[15] = sp
                write_u32(vm, sp, nxt, "stack overflow: ")
                vm.pc = target

        elif op is Op.CALLR:
            r = regs_f[0]

            def thunk(vm):
                sp = (regs[15] - 4) & _MASK
                regs[15] = sp
                write_u32(vm, sp, nxt, "stack overflow: ")
                vm.pc = regs[r]  # read after the push, like the interpreter

        elif op is Op.RET:

            def thunk(vm):
                value = read_u32(vm, regs[15], "stack underflow: ")
                regs[15] = (regs[15] + 4) & _MASK
                vm.pc = value

        elif op is Op.SYS or op is Op.ASYS:
            authenticated = op is Op.ASYS

            def thunk(vm):
                # The kernel reads vm.pc (call site), vm.regs, and
                # vm.cycles (trap-time clock); all are exact here
                # because traps always terminate a block.
                vm.pc = pc
                handler = vm.trap_handler
                if handler is None:
                    raise ExecutionFault(pc, "trap with no kernel attached")
                vm.syscall_count += 1
                vm.cycles += handler.handle_trap(vm, authenticated)
                vm.pc = nxt

        elif op is Op.HALT:

            def thunk(vm):
                vm.exit_status = regs[1] & _MASK
                vm.pc = pc  # the interpreter leaves pc at the HALT

        else:  # pragma: no cover - opcode table is exhaustive
            def thunk(vm):
                fault(vm, f"unimplemented opcode {op!r}")

        return thunk


#: Marker table for the conditional branches (the tuple payload is
#: unused — membership drives the dispatch above, mirroring the
#: interpreter's _CONDITIONS table).
_CONDITION_FLAGS = {
    Op.BEQ: (True, False, False, False),
    Op.BNE: (True, False, False, True),
    Op.BLT: (False, True, False, False),
    Op.BGE: (False, True, False, True),
    Op.BLE: (False, False, True, False),
    Op.BGT: (False, False, True, True),
}

#: Conditional-branch decomposition for superblock specialization:
#: which flag family the predicate reads ("z" = zero, "n" = negative,
#: "nz" = negative-or-zero) and whether the branch takes on the
#: *false* value of that family.
_BRANCH_FAMILY = {
    Op.BEQ: ("z", False),
    Op.BNE: ("z", True),
    Op.BLT: ("n", False),
    Op.BGE: ("n", True),
    Op.BLE: ("nz", False),
    Op.BGT: ("nz", True),
}
