"""Process memory: a sparse set of protected regions.

Regions are mapped with read/write/execute protections derived from the
binary's section flags.  User-mode accesses are permission-checked; the
kernel (and the attack harness, which models memory corruption already
achieved through an application bug) can bypass checks with
``force=True`` — precisely mirroring the paper's threat model, where
the attacker controls application memory but not kernel state.
"""

from __future__ import annotations

import struct
from bisect import bisect_right
from dataclasses import dataclass, field

PROT_READ = 0x1
PROT_WRITE = 0x2
PROT_EXEC = 0x4

#: Granularity of the execution engines' code-invalidation indexes
#: (the translation cache's page->blocks map keys addresses by
#: ``address >> PAGE_SHIFT``).  Purely a cache granularity: regions
#: themselves need not be page-aligned.
PAGE_SHIFT = 12


class MemoryFault(Exception):
    """An access violation: unmapped address or protection mismatch."""

    def __init__(self, address: int, kind: str):
        super().__init__(f"memory fault: {kind} at {address:#010x}")
        self.address = address
        self.kind = kind


@dataclass
class Region:
    start: int
    data: bytearray
    prot: int
    name: str = ""
    #: Monotonic write counter.  Every mutation of ``data`` (stores,
    #: forced kernel writes, brk growth) bumps it, which lets callers
    #: memoize *reads* of this region and detect staleness exactly —
    #: the kernel's authenticated-string parse cache, the VM's decode
    #: cache, and the threaded engine's basic-block translation cache
    #: all rely on this.
    version: int = 0
    #: Pre-mutation observers: callables ``(address, size)`` invoked
    #: *before* a canonical write or resize changes ``data``.  The
    #: threaded engine's translation caches register themselves here so
    #: chained/fused code is dropped while the old bytes are still
    #: readable (pre-image invalidation).  A fork-shared region carries
    #: the watchers of every process that compiled code from it, which
    #: is what keeps cross-process invalidation coherent.
    watchers: list = field(default_factory=list)

    @property
    def end(self) -> int:
        return self.start + len(self.data)


class Memory:
    """Sparse 32-bit address space."""

    def __init__(self) -> None:
        self._regions: list[Region] = []  # sorted by start
        self._starts: list[int] = []

    # -- mapping -------------------------------------------------------

    def map_region(
        self, start: int, size: int, prot: int, name: str = "", data: bytes = b""
    ) -> Region:
        if size <= 0:
            raise ValueError(f"cannot map empty region {name!r}")
        if len(data) > size:
            raise ValueError(f"region {name!r}: data larger than size")
        end = start + size
        if start < 0 or end > 0x1_0000_0000:
            raise ValueError(f"region {name!r} outside 32-bit address space")
        for region in self._regions:
            if start < region.end and region.start < end:
                raise ValueError(
                    f"region {name!r} [{start:#x},{end:#x}) overlaps "
                    f"{region.name!r} [{region.start:#x},{region.end:#x})"
                )
        body = bytearray(size)
        body[: len(data)] = data
        region = Region(start=start, data=body, prot=prot, name=name)
        index = bisect_right(self._starts, start)
        self._regions.insert(index, region)
        self._starts.insert(index, start)
        return region

    def adopt_region(self, region: Region) -> Region:
        """Insert an existing :class:`Region` *by reference* — fork's
        copy-on-reference sharing for read-only segments.  Parent and
        child address spaces alias the same object; this is sound for
        non-writable regions because guest stores are permission-checked
        and any forced kernel write would bump ``version`` and so
        invalidate both processes' caches coherently."""
        end = region.end
        for existing in self._regions:
            if region.start < existing.end and existing.start < end:
                raise ValueError(
                    f"adopted region {region.name!r} overlaps {existing.name!r}"
                )
        index = bisect_right(self._starts, region.start)
        self._regions.insert(index, region)
        self._starts.insert(index, region.start)
        return region

    def regions(self) -> list[Region]:
        return list(self._regions)

    def region_at(self, address: int) -> Region:
        index = bisect_right(self._starts, address) - 1
        if index >= 0:
            region = self._regions[index]
            if region.start <= address < region.end:
                return region
        raise MemoryFault(address, "unmapped")

    def find_region(self, name: str) -> Region:
        for region in self._regions:
            if region.name == name:
                return region
        raise KeyError(f"no region named {name!r}")

    def protect(self, start: int, prot: int) -> None:
        """Change protection of the region containing ``start``."""
        self.region_at(start).prot = prot

    def grow_region(self, name: str, new_size: int) -> None:
        """Extend a region in place (used by ``brk``)."""
        region = self.find_region(name)
        if region.watchers:
            # Conservative: treat a resize as touching the whole old
            # extent (brk is rare; shrink can truncate cached code).
            for watcher in region.watchers:
                watcher(region.start, len(region.data))
        region.version += 1
        if new_size < len(region.data):
            del region.data[new_size:]
            return
        index = self._starts.index(region.start)
        if index + 1 < len(self._regions):
            limit = self._regions[index + 1].start - region.start
            if new_size > limit:
                raise MemoryFault(region.start + new_size, "brk collision")
        region.data.extend(bytes(new_size - len(region.data)))

    # -- access --------------------------------------------------------

    def _check(self, region: Region, prot: int, address: int) -> None:
        if region.prot & prot != prot:
            kinds = {PROT_READ: "read", PROT_WRITE: "write", PROT_EXEC: "exec"}
            raise MemoryFault(address, f"protection ({kinds.get(prot, prot)})")

    def read(self, address: int, size: int, force: bool = False) -> bytes:
        region = self.region_at(address)
        if address + size > region.end:
            raise MemoryFault(region.end, "unmapped")
        if not force:
            self._check(region, PROT_READ, address)
        offset = address - region.start
        return bytes(region.data[offset : offset + size])

    def write(self, address: int, data: bytes, force: bool = False) -> None:
        region = self.region_at(address)
        if address + len(data) > region.end:
            raise MemoryFault(region.end, "unmapped")
        if not force:
            self._check(region, PROT_WRITE, address)
        if region.watchers:
            for watcher in region.watchers:
                watcher(address, len(data))
        offset = address - region.start
        region.data[offset : offset + len(data)] = data
        region.version += 1

    def flip_bit(self, address: int, bit: int, force: bool = False) -> None:
        """Flip one bit of the byte at ``address`` (the fault-injection
        battery's single-event-upset model).  Routed through ``write``
        so region watchers and the write-version counter fire exactly
        as they would for any other store — a flipped bit must never be
        able to sneak past the caches' staleness guards."""
        value = self.read(address, 1, force)[0]
        self.write(address, bytes([value ^ (1 << (bit & 7))]), force)

    def read_u32(self, address: int, force: bool = False) -> int:
        return struct.unpack("<I", self.read(address, 4, force))[0]

    def write_u32(self, address: int, value: int, force: bool = False) -> None:
        self.write(address, struct.pack("<I", value & 0xFFFFFFFF), force)

    def read_u8(self, address: int, force: bool = False) -> int:
        return self.read(address, 1, force)[0]

    def write_u8(self, address: int, value: int, force: bool = False) -> None:
        self.write(address, bytes([value & 0xFF]), force)

    def read_cstring(self, address: int, max_len: int = 4096, force: bool = False) -> bytes:
        """Read a NUL-terminated string; raises MemoryFault if it runs
        off the end of mapped memory or exceeds ``max_len``."""
        out = bytearray()
        cursor = address
        while len(out) < max_len:
            byte = self.read(cursor, 1, force)[0]
            if byte == 0:
                return bytes(out)
            out.append(byte)
            cursor += 1
        raise MemoryFault(address, f"unterminated string (>{max_len} bytes)")

    def executable(self, address: int) -> bool:
        try:
            region = self.region_at(address)
        except MemoryFault:
            return False
        return bool(region.prot & PROT_EXEC)
