"""SVM32 virtual machine with deterministic cycle accounting.

Replaces the Pentium testbed of §4.3.  The VM executes one process
image, charges each instruction its documented cycle cost, and traps
``SYS``/``ASYS`` into a kernel handler supplied by
:mod:`repro.kernel`.  ``RDTSC`` exposes the cycle counter to guest
code exactly the way the paper's microbenchmarks use the hardware
timestamp counter.

Era fidelity: like the 2005-vintage x86/Linux the paper targets, there
is no NX bit by default — readable memory is executable, which is what
makes the §4.1 code-injection attacks expressible.
"""

from repro.cpu.memory import (
    MemoryFault,
    Memory,
    PROT_EXEC,
    PROT_READ,
    PROT_WRITE,
)
from repro.cpu.vm import ENGINES, ExecutionFault, ProcessExit, TrapHandler, VM

__all__ = [
    "ENGINES",
    "ExecutionFault",
    "Memory",
    "MemoryFault",
    "PROT_EXEC",
    "PROT_READ",
    "PROT_WRITE",
    "ProcessExit",
    "TrapHandler",
    "VM",
]
