"""Register file definition for SVM32.

Sixteen 32-bit general-purpose registers.  ``r0`` carries the system
call number at trap time (the EAX analogue), ``r1..r6`` carry syscall
arguments, and ``r7`` carries the authentication-record pointer for
``ASYS`` traps.  By software convention ``r13`` is the frame pointer,
``r14`` the link scratch register, and ``r15`` the stack pointer.
"""

from __future__ import annotations

NUM_REGS = 16

FP = 13
LR = 14
SP = 15

_ALIASES = {FP: "fp", LR: "lr", SP: "sp"}
_ALIAS_NUMBERS = {name: num for num, name in _ALIASES.items()}


def register_name(number: int) -> str:
    """Render a register number in assembly syntax (``r4``, ``sp``...)."""
    if not 0 <= number < NUM_REGS:
        raise ValueError(f"register number out of range: {number}")
    return _ALIASES.get(number, f"r{number}")


def register_number(name: str) -> int:
    """Parse an assembly register name, accepting aliases."""
    name = name.lower().strip()
    if name in _ALIAS_NUMBERS:
        return _ALIAS_NUMBERS[name]
    if name.startswith("r"):
        try:
            number = int(name[1:])
        except ValueError:
            raise ValueError(f"bad register name: {name!r}") from None
        if 0 <= number < NUM_REGS:
            return number
    raise ValueError(f"bad register name: {name!r}")
