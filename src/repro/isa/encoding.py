"""Binary encoding of SVM32 instructions.

Every instruction is exactly 8 bytes::

    byte 0      opcode
    byte 1..3   register fields (ra, rb, rc; unused fields are zero)
    byte 4..7   32-bit little-endian immediate (zero when unused)

The immediate lives at a fixed offset (+4), which is where relocation
entries point.  A fixed-width encoding keeps disassembly total (PLTO's
"cannot disassemble" case is modelled separately by the OpenBSD
personality, see :mod:`repro.workloads.personalities`).
"""

from __future__ import annotations

import struct

from repro.isa.instruction import Instruction
from repro.isa.opcodes import OPCODE_INFO, Op, OperandKind

INSTRUCTION_SIZE = 8
IMM_OFFSET = 4  # byte offset of the immediate field within an instruction

_VALID_OPCODES = {int(op) for op in Op}

#: Per-opcode operand shape, precomputed once so the decoders do not
#: re-derive it from the operand-kind tuples on every instruction.
_N_REGS = {
    op: sum(
        1 for kind in info.operands if kind in (OperandKind.REG, OperandKind.MEM)
    )
    for op, info in OPCODE_INFO.items()
}
_HAS_IMM = {
    op: any(kind in (OperandKind.IMM, OperandKind.MEM) for kind in info.operands)
    for op, info in OPCODE_INFO.items()
}


class EncodingError(ValueError):
    """Raised for malformed instruction bytes or unencodable operands."""


def encode_instruction(instruction: Instruction) -> bytes:
    """Encode one instruction; the immediate must be concrete by now."""
    if instruction.is_symbolic:
        raise EncodingError(
            f"cannot encode unresolved symbolic immediate: {instruction}"
        )
    regs = list(instruction.regs) + [0] * (3 - len(instruction.regs))
    for reg in regs:
        if not 0 <= reg <= 0xFF:
            raise EncodingError(f"register field out of range: {reg}")
    imm = instruction.imm or 0
    imm &= 0xFFFFFFFF
    return struct.pack("<BBBBI", int(instruction.op), *regs, imm)


def decode_fields(data: bytes, offset: int = 0):
    """Decode 8 bytes at ``offset`` into raw ``(op, regs, imm)`` fields.

    This is the validation core shared by :func:`decode_instruction` and
    the threaded execution engine's block compiler, which pre-extracts
    register indices and immediates without allocating
    :class:`Instruction` objects.  ``imm`` is ``None`` when the opcode
    takes no immediate operand.
    """
    if len(data) - offset < INSTRUCTION_SIZE:
        raise EncodingError(
            f"truncated instruction at offset {offset}: "
            f"{len(data) - offset} bytes remain"
        )
    opcode, ra, rb, rc, imm = struct.unpack_from("<BBBBI", data, offset)
    if opcode not in _VALID_OPCODES:
        raise EncodingError(f"unknown opcode 0x{opcode:02x} at offset {offset}")
    op = Op(opcode)
    regs = (ra, rb, rc)[: _N_REGS[op]]
    # Register fields above the architectural register count are
    # illegal encodings (a fuzzed or corrupted instruction stream must
    # fault, not index past the register file).
    for reg in regs:
        if reg >= 16:
            raise EncodingError(
                f"register field {reg} out of range at offset {offset}"
            )
    return op, regs, imm if _HAS_IMM[op] else None


def decode_instruction(data: bytes, offset: int = 0) -> Instruction:
    """Decode 8 bytes at ``offset`` into an :class:`Instruction`."""
    op, regs, imm = decode_fields(data, offset)
    return Instruction(op, regs, imm)
