"""Instruction objects: the unit shared by assembler, VM, and rewriter.

An :class:`Instruction` stores its register fields and a single
immediate operand.  The immediate may be a concrete 32-bit value or a
:class:`SymbolRef` (symbol plus addend).  Keeping immediates symbolic
until final layout is what makes PLTO-style rewriting possible: the
installer can insert instructions into a basic block and the layout
engine re-resolves every address afterwards, exactly as PLTO relies on
relocatable binaries to do.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Union

from repro.isa.opcodes import OPCODE_INFO, Op, OperandKind
from repro.isa.registers import register_name


@dataclass(frozen=True)
class SymbolRef:
    """A symbolic immediate: the address of ``symbol`` plus ``addend``."""

    symbol: str
    addend: int = 0

    def __str__(self) -> str:
        if self.addend:
            sign = "+" if self.addend > 0 else "-"
            return f"{self.symbol}{sign}{abs(self.addend)}"
        return self.symbol


Immediate = Union[int, SymbolRef]


@dataclass
class Instruction:
    """One SVM32 instruction.

    ``regs`` holds the register fields in operand order (for a ``MEM``
    operand, the base register occupies one entry and the displacement
    shares the ``imm`` field).  ``imm`` is ``None`` when the opcode has
    no immediate operand.
    """

    op: Op
    regs: tuple[int, ...] = ()
    imm: Optional[Immediate] = None
    # Populated by the disassembler / layout engine; not part of equality.
    address: Optional[int] = field(default=None, compare=False)

    def __post_init__(self) -> None:
        info = OPCODE_INFO[self.op]
        expected_regs = sum(
            1 for kind in info.operands if kind in (OperandKind.REG, OperandKind.MEM)
        )
        has_imm = any(
            kind in (OperandKind.IMM, OperandKind.MEM) for kind in info.operands
        )
        if len(self.regs) != expected_regs:
            raise ValueError(
                f"{info.mnemonic} expects {expected_regs} register fields, "
                f"got {len(self.regs)}"
            )
        if has_imm and self.imm is None:
            raise ValueError(f"{info.mnemonic} requires an immediate operand")
        if not has_imm and self.imm is not None:
            raise ValueError(f"{info.mnemonic} takes no immediate operand")

    @property
    def info(self):
        return OPCODE_INFO[self.op]

    @property
    def is_symbolic(self) -> bool:
        return isinstance(self.imm, SymbolRef)

    def resolved(self, value: int) -> "Instruction":
        """Return a copy with the symbolic immediate replaced by ``value``."""
        return Instruction(self.op, self.regs, value & 0xFFFFFFFF, address=self.address)

    def __str__(self) -> str:
        info = self.info
        parts = []
        reg_index = 0
        for kind in info.operands:
            if kind is OperandKind.REG:
                parts.append(register_name(self.regs[reg_index]))
                reg_index += 1
            elif kind is OperandKind.IMM:
                parts.append(str(self.imm))
            else:  # MEM
                base = register_name(self.regs[reg_index])
                reg_index += 1
                parts.append(f"[{base}+{self.imm}]")
        operand_text = ", ".join(parts)
        return f"{info.mnemonic} {operand_text}".strip()
