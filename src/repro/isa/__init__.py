"""SVM32: the simulated 32-bit ISA used in place of IA-32.

The paper's installer works on x86 binaries where system calls are the
``int 0x80`` instruction with the system call number in ``EAX``.  SVM32
preserves every property the installer's analyses rely on:

- a trap instruction (``SYS``) with the syscall number in ``r0`` and
  arguments in ``r1..r6``;
- an *authenticated* trap instruction (``ASYS``) added by the installer,
  which additionally carries a pointer to the in-binary authentication
  record in ``r7``;
- fixed-width (8-byte) instructions so call sites are stable,
  disassembly is total, and binary rewriting is tractable;
- stack-based return addresses (``CALL`` pushes the return PC), so the
  classic stack-smashing attacks of §4.1 are expressible;
- a cycle counter readable via ``RDTSC``, mirroring the Pentium
  timestamp counter used for Table 4.
"""

from repro.isa.registers import (
    FP,
    LR,
    NUM_REGS,
    SP,
    register_name,
    register_number,
)
from repro.isa.opcodes import Op, OPCODE_INFO, OperandKind
from repro.isa.instruction import Instruction, SymbolRef
from repro.isa.encoding import (
    INSTRUCTION_SIZE,
    decode_fields,
    decode_instruction,
    encode_instruction,
)

__all__ = [
    "FP",
    "INSTRUCTION_SIZE",
    "Instruction",
    "LR",
    "NUM_REGS",
    "Op",
    "OPCODE_INFO",
    "OperandKind",
    "SP",
    "SymbolRef",
    "decode_fields",
    "decode_instruction",
    "encode_instruction",
    "register_name",
    "register_number",
]
