"""Opcode table for SVM32.

Each opcode declares its operand signature (used by the assembler,
disassembler, and encoder) and its base cycle cost (used by the VM's
deterministic cycle accounting).  Two rows of Table 4 pin the
measurement-infrastructure costs: the ``rdtsc`` instruction costs 84
cycles and the benchmark loop body (ADDI + CMPI + BNE) costs 4 cycles,
both matching the paper.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum, IntEnum, unique


@unique
class OperandKind(Enum):
    REG = "reg"  # a register operand
    IMM = "imm"  # a 32-bit immediate; may be a symbolic address
    MEM = "mem"  # a register-plus-offset memory operand


@unique
class Op(IntEnum):
    NOP = 0x00
    HALT = 0x01
    LI = 0x02
    MOV = 0x03
    ADD = 0x10
    SUB = 0x11
    MUL = 0x12
    DIV = 0x13
    MOD = 0x14
    AND = 0x15
    OR = 0x16
    XOR = 0x17
    SHL = 0x18
    SHR = 0x19
    ADDI = 0x20
    SUBI = 0x21
    MULI = 0x22
    DIVI = 0x23
    ANDI = 0x25
    ORI = 0x26
    XORI = 0x27
    SHLI = 0x28
    SHRI = 0x29
    LD = 0x30
    ST = 0x31
    LDB = 0x32
    STB = 0x33
    PUSH = 0x34
    POP = 0x35
    CMP = 0x40
    CMPI = 0x41
    BEQ = 0x50
    BNE = 0x51
    BLT = 0x52
    BGE = 0x53
    BLE = 0x54
    BGT = 0x55
    JMP = 0x56
    JR = 0x57
    CALL = 0x58
    CALLR = 0x59
    RET = 0x5A
    SYS = 0x60
    ASYS = 0x61
    RDTSC = 0x70
    RDTSCH = 0x71
    CPUWORK = 0x72


@dataclass(frozen=True)
class OpcodeInfo:
    """Static description of one opcode."""

    mnemonic: str
    operands: tuple[OperandKind, ...]
    cycles: int
    is_branch: bool = False  # any control transfer (cond, jmp, call, ret)
    is_call: bool = False
    is_conditional: bool = False
    is_trap: bool = False


_R = OperandKind.REG
_I = OperandKind.IMM
_M = OperandKind.MEM

OPCODE_INFO: dict[Op, OpcodeInfo] = {
    Op.NOP: OpcodeInfo("nop", (), 1),
    Op.HALT: OpcodeInfo("halt", (), 1),
    Op.LI: OpcodeInfo("li", (_R, _I), 1),
    Op.MOV: OpcodeInfo("mov", (_R, _R), 1),
    Op.ADD: OpcodeInfo("add", (_R, _R, _R), 1),
    Op.SUB: OpcodeInfo("sub", (_R, _R, _R), 1),
    Op.MUL: OpcodeInfo("mul", (_R, _R, _R), 4),
    Op.DIV: OpcodeInfo("div", (_R, _R, _R), 20),
    Op.MOD: OpcodeInfo("mod", (_R, _R, _R), 20),
    Op.AND: OpcodeInfo("and", (_R, _R, _R), 1),
    Op.OR: OpcodeInfo("or", (_R, _R, _R), 1),
    Op.XOR: OpcodeInfo("xor", (_R, _R, _R), 1),
    Op.SHL: OpcodeInfo("shl", (_R, _R, _R), 1),
    Op.SHR: OpcodeInfo("shr", (_R, _R, _R), 1),
    Op.ADDI: OpcodeInfo("addi", (_R, _R, _I), 1),
    Op.SUBI: OpcodeInfo("subi", (_R, _R, _I), 1),
    Op.MULI: OpcodeInfo("muli", (_R, _R, _I), 4),
    Op.DIVI: OpcodeInfo("divi", (_R, _R, _I), 20),
    Op.ANDI: OpcodeInfo("andi", (_R, _R, _I), 1),
    Op.ORI: OpcodeInfo("ori", (_R, _R, _I), 1),
    Op.XORI: OpcodeInfo("xori", (_R, _R, _I), 1),
    Op.SHLI: OpcodeInfo("shli", (_R, _R, _I), 1),
    Op.SHRI: OpcodeInfo("shri", (_R, _R, _I), 1),
    Op.LD: OpcodeInfo("ld", (_R, _M), 3),
    Op.ST: OpcodeInfo("st", (_R, _M), 3),
    Op.LDB: OpcodeInfo("ldb", (_R, _M), 3),
    Op.STB: OpcodeInfo("stb", (_R, _M), 3),
    Op.PUSH: OpcodeInfo("push", (_R,), 3),
    Op.POP: OpcodeInfo("pop", (_R,), 3),
    Op.CMP: OpcodeInfo("cmp", (_R, _R), 1),
    Op.CMPI: OpcodeInfo("cmpi", (_R, _I), 1),
    Op.BEQ: OpcodeInfo("beq", (_I,), 2, is_branch=True, is_conditional=True),
    Op.BNE: OpcodeInfo("bne", (_I,), 2, is_branch=True, is_conditional=True),
    Op.BLT: OpcodeInfo("blt", (_I,), 2, is_branch=True, is_conditional=True),
    Op.BGE: OpcodeInfo("bge", (_I,), 2, is_branch=True, is_conditional=True),
    Op.BLE: OpcodeInfo("ble", (_I,), 2, is_branch=True, is_conditional=True),
    Op.BGT: OpcodeInfo("bgt", (_I,), 2, is_branch=True, is_conditional=True),
    Op.JMP: OpcodeInfo("jmp", (_I,), 2, is_branch=True),
    Op.JR: OpcodeInfo("jr", (_R,), 2, is_branch=True),
    Op.CALL: OpcodeInfo("call", (_I,), 5, is_branch=True, is_call=True),
    Op.CALLR: OpcodeInfo("callr", (_R,), 5, is_branch=True, is_call=True),
    Op.RET: OpcodeInfo("ret", (), 5, is_branch=True),
    Op.SYS: OpcodeInfo("sys", (), 0, is_trap=True),
    Op.ASYS: OpcodeInfo("asys", (), 0, is_trap=True),
    Op.RDTSC: OpcodeInfo("rdtsc", (_R,), 84),
    Op.RDTSCH: OpcodeInfo("rdtsch", (_R,), 84),
    Op.CPUWORK: OpcodeInfo("cpuwork", (_I,), 0),
}

MNEMONIC_TO_OP = {info.mnemonic: op for op, info in OPCODE_INFO.items()}
