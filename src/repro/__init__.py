"""repro: Authenticated System Calls, reproduced.

A from-scratch reproduction of *"System Call Monitoring Using
Authenticated System Calls"* (Rajagopalan, Hiltunen, Jim, Schlichting;
DSN 2005 / IEEE TDSC 2006) on a fully simulated substrate: the SVM32
ISA and VM, a relocatable binary format, a PLTO-style binary rewriting
toolkit, a Unix-like kernel with an in-memory VFS, and AES-CMAC.

Quickstart::

    from repro import Key, Kernel, assemble, install

    key = Key.generate()
    binary = assemble(my_program_source, metadata={"program": "demo"})
    installed = install(binary, key)          # the trusted installer
    kernel = Kernel(key=key)                  # the same machine key
    result = kernel.run(installed.binary)     # every call is checked
    assert not result.killed

See DESIGN.md for the system inventory and EXPERIMENTS.md for the
paper-vs-measured record of every table.
"""

from repro.asm import AsmBuilder, assemble
from repro.binfmt import SefBinary, link
from repro.crypto import AesCmac, FastMac, Key, KeyRing
from repro.installer import InstalledProgram, InstallerOptions, install
from repro.kernel import CostModel, EnforcementMode, Kernel, RunResult, Vfs
from repro.policy import MetaPolicy, Pattern, PolicyDescriptor, ProgramPolicy

__version__ = "1.0.0"

__all__ = [
    "AesCmac",
    "AsmBuilder",
    "CostModel",
    "EnforcementMode",
    "FastMac",
    "InstalledProgram",
    "InstallerOptions",
    "Kernel",
    "Key",
    "KeyRing",
    "MetaPolicy",
    "Pattern",
    "PolicyDescriptor",
    "ProgramPolicy",
    "RunResult",
    "SefBinary",
    "Vfs",
    "assemble",
    "install",
    "link",
    "__version__",
]
