"""An in-memory Unix-like filesystem.

Supports regular files, directories, and symbolic links; permission
bits; path resolution with ``.``/``..`` handling and bounded symlink
following.  Symlinks are first-class because the paper's §5.4 discusses
the classic ``/tmp/foo -> /etc/passwd`` race against file-name
policies, which :mod:`repro.policy.normalize` defends against by
normalizing names during system call checking.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Optional

from repro.kernel.errors import Errno

S_IFREG = 0o100000
S_IFDIR = 0o040000
S_IFLNK = 0o120000
S_IFSOCK = 0o140000
S_IFCHR = 0o020000
S_IFIFO = 0o010000

MAX_SYMLINK_DEPTH = 8
MAX_NAME = 255


class VfsError(Exception):
    """A filesystem error carrying an errno."""

    def __init__(self, errno: Errno, path: str = ""):
        super().__init__(f"{errno.name}: {path}" if path else errno.name)
        self.errno = errno
        self.path = path


_inode_numbers = itertools.count(2)


@dataclass
class Inode:
    kind: str  # "file" | "dir" | "symlink"
    mode: int
    data: bytearray = field(default_factory=bytearray)
    entries: dict[str, "Inode"] = field(default_factory=dict)
    target: str = ""
    ino: int = field(default_factory=lambda: next(_inode_numbers))
    nlink: int = 1

    @property
    def is_dir(self) -> bool:
        return self.kind == "dir"

    @property
    def is_file(self) -> bool:
        return self.kind == "file"

    @property
    def is_symlink(self) -> bool:
        return self.kind == "symlink"

    @property
    def size(self) -> int:
        if self.is_file:
            return len(self.data)
        if self.is_symlink:
            return len(self.target)
        return len(self.entries)

    @property
    def file_type_bits(self) -> int:
        return {"file": S_IFREG, "dir": S_IFDIR, "symlink": S_IFLNK}[self.kind]


def _split(path: str) -> list[str]:
    return [part for part in path.split("/") if part and part != "."]


class Vfs:
    """The filesystem tree plus path-resolution machinery."""

    def __init__(self) -> None:
        self.root = Inode(kind="dir", mode=0o755)
        for standard in ("/bin", "/tmp", "/etc", "/dev", "/home", "/usr"):
            self.mkdir(standard, 0o755)
        self.chmod("/tmp", 0o1777)

    # -- resolution -----------------------------------------------------

    def resolve(
        self,
        path: str,
        cwd: str = "/",
        follow: bool = True,
        _depth: int = 0,
    ) -> Inode:
        """Resolve ``path`` (relative to ``cwd``) to an inode."""
        if _depth > MAX_SYMLINK_DEPTH:
            raise VfsError(Errno.ELOOP, path)
        node, parent, name = self._walk(path, cwd, _depth)
        if node is None:
            raise VfsError(Errno.ENOENT, path)
        if node.is_symlink and follow:
            base = self._dirname(path, cwd)
            return self.resolve(node.target, base, follow=True, _depth=_depth + 1)
        return node

    def _dirname(self, path: str, cwd: str) -> str:
        absolute = path if path.startswith("/") else self._join(cwd, path)
        head = absolute.rsplit("/", 1)[0]
        return head or "/"

    @staticmethod
    def _join(cwd: str, path: str) -> str:
        return cwd.rstrip("/") + "/" + path

    def _walk(
        self, path: str, cwd: str, depth: int = 0
    ) -> tuple[Optional[Inode], Inode, str]:
        """Return (node_or_None, parent_dir_inode, final_name)."""
        if not path:
            raise VfsError(Errno.ENOENT, path)
        if depth > MAX_SYMLINK_DEPTH:
            raise VfsError(Errno.ELOOP, path)
        start = "/" if path.startswith("/") else cwd
        current = self.root
        stack: list[Inode] = []
        parts = _split(start) + _split(path) if not path.startswith("/") else _split(path)
        # Resolve the leading cwd portion first when path is relative.
        node: Optional[Inode] = current
        for index, part in enumerate(parts):
            if len(part) > MAX_NAME:
                raise VfsError(Errno.ENAMETOOLONG, path)
            assert node is not None
            if part == "..":
                if stack:
                    node = stack.pop()
                continue
            if not node.is_dir:
                raise VfsError(Errno.ENOTDIR, path)
            child = node.entries.get(part)
            is_last = index == len(parts) - 1
            if child is None:
                if is_last:
                    return None, node, part
                raise VfsError(Errno.ENOENT, path)
            if child.is_symlink and not is_last:
                resolved = self.resolve(
                    child.target,
                    self._path_of_stack(stack + [node]),
                    follow=True,
                    _depth=depth + 1,
                )
                stack.append(node)
                node = resolved
                continue
            if is_last:
                return child, node, part
            stack.append(node)
            node = child
        # Path was empty after normalization ("/", ".", "a/..", ...).
        return node, node, ""

    def _path_of_stack(self, stack: list[Inode]) -> str:
        """Best-effort textual path for a directory chain.

        Used only as the base for relative symlink targets; we rebuild
        it by searching the tree (directories are few in tests)."""

        def find(node: Inode, needle: Inode, prefix: str) -> Optional[str]:
            if node is needle:
                return prefix or "/"
            if node.is_dir:
                for name, child in node.entries.items():
                    found = find(child, needle, f"{prefix}/{name}")
                    if found:
                        return found
            return None

        if not stack:
            return "/"
        return find(self.root, stack[-1], "") or "/"

    # -- operations ------------------------------------------------------

    def lookup(self, path: str, cwd: str = "/", follow: bool = True) -> Inode:
        return self.resolve(path, cwd, follow)

    def exists(self, path: str, cwd: str = "/") -> bool:
        try:
            self.resolve(path, cwd)
            return True
        except VfsError:
            return False

    def create_file(
        self,
        path: str,
        mode: int = 0o644,
        cwd: str = "/",
        exclusive: bool = False,
        _depth: int = 0,
    ) -> Inode:
        if _depth > MAX_SYMLINK_DEPTH:
            raise VfsError(Errno.ELOOP, path)
        node, parent, name = self._walk(path, cwd)
        if node is not None:
            if node.is_symlink:
                # open(O_CREAT) through a symlink creates/uses the target.
                base = self._dirname(path, cwd)
                return self.create_file(
                    node.target, mode, base, exclusive, _depth=_depth + 1
                )
            if exclusive:
                raise VfsError(Errno.EEXIST, path)
            if node.is_dir:
                raise VfsError(Errno.EISDIR, path)
            return node
        if not name:
            raise VfsError(Errno.EINVAL, path)
        child = Inode(kind="file", mode=mode & 0o7777)
        parent.entries[name] = child
        return child

    def write_file(self, path: str, data: bytes, cwd: str = "/") -> Inode:
        node = self.create_file(path, cwd=cwd)
        node.data[:] = data
        return node

    def read_file(self, path: str, cwd: str = "/") -> bytes:
        node = self.resolve(path, cwd)
        if not node.is_file:
            raise VfsError(Errno.EISDIR, path)
        return bytes(node.data)

    def mkdir(self, path: str, mode: int = 0o755, cwd: str = "/") -> Inode:
        node, parent, name = self._walk(path, cwd)
        if node is not None:
            raise VfsError(Errno.EEXIST, path)
        if not name:
            raise VfsError(Errno.EINVAL, path)
        child = Inode(kind="dir", mode=mode & 0o7777)
        parent.entries[name] = child
        return child

    def symlink(self, target: str, linkpath: str, cwd: str = "/") -> Inode:
        node, parent, name = self._walk(linkpath, cwd)
        if node is not None:
            raise VfsError(Errno.EEXIST, linkpath)
        if not name:
            raise VfsError(Errno.EINVAL, linkpath)
        child = Inode(kind="symlink", mode=0o777, target=target)
        parent.entries[name] = child
        return child

    def readlink(self, path: str, cwd: str = "/") -> str:
        node = self.resolve(path, cwd, follow=False)
        if not node.is_symlink:
            raise VfsError(Errno.EINVAL, path)
        return node.target

    def unlink(self, path: str, cwd: str = "/") -> None:
        node, parent, name = self._walk(path, cwd)
        if node is None:
            raise VfsError(Errno.ENOENT, path)
        if node.is_dir:
            raise VfsError(Errno.EISDIR, path)
        del parent.entries[name]

    def rmdir(self, path: str, cwd: str = "/") -> None:
        node, parent, name = self._walk(path, cwd)
        if node is None:
            raise VfsError(Errno.ENOENT, path)
        if not node.is_dir:
            raise VfsError(Errno.ENOTDIR, path)
        if node.entries:
            raise VfsError(Errno.ENOTEMPTY, path)
        if node is self.root:
            raise VfsError(Errno.EBUSY, path)
        del parent.entries[name]

    def rename(self, old: str, new: str, cwd: str = "/") -> None:
        node, old_parent, old_name = self._walk(old, cwd)
        if node is None:
            raise VfsError(Errno.ENOENT, old)
        target, new_parent, new_name = self._walk(new, cwd)
        if not new_name:
            raise VfsError(Errno.EINVAL, new)
        if target is not None:
            if target.is_dir and not node.is_dir:
                raise VfsError(Errno.EISDIR, new)
            if target.is_dir and target.entries:
                raise VfsError(Errno.ENOTEMPTY, new)
        del old_parent.entries[old_name]
        new_parent.entries[new_name] = node

    def chmod(self, path: str, mode: int, cwd: str = "/") -> None:
        node = self.resolve(path, cwd)
        node.mode = mode & 0o7777

    def listdir(self, path: str, cwd: str = "/") -> list[str]:
        node = self.resolve(path, cwd)
        if not node.is_dir:
            raise VfsError(Errno.ENOTDIR, path)
        return sorted(node.entries)

    def normalize(self, path: str, cwd: str = "/", _depth: int = 0) -> str:
        """Return the canonical absolute path with all symlinks
        resolved — the §5.4 normalized file name.  The final component
        need not exist."""
        if _depth > MAX_SYMLINK_DEPTH:
            raise VfsError(Errno.ELOOP, path)
        if not path:
            raise VfsError(Errno.ENOENT, path)
        node, parent, name = self._walk(path, cwd)
        if node is not None and node.is_symlink:
            base = self._dirname(path, cwd)
            return self.normalize(node.target, base, _depth=_depth + 1)
        parent_path = self._path_of_inode(parent)
        if not name:
            return parent_path
        if parent_path == "/":
            return f"/{name}"
        return f"{parent_path}/{name}"

    def _path_of_inode(self, needle: Inode) -> str:
        def find(node: Inode, prefix: str) -> Optional[str]:
            if node is needle:
                return prefix or "/"
            if node.is_dir:
                for name, child in node.entries.items():
                    found = find(child, f"{prefix}/{name}")
                    if found:
                        return found
            return None

        found = find(self.root, "")
        if found is None:
            raise VfsError(Errno.ENOENT)
        return found
