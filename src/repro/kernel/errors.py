"""Errno values; system calls return ``-errno`` on failure (Linux ABI)."""

from __future__ import annotations

from enum import IntEnum, unique


@unique
class Errno(IntEnum):
    EPERM = 1
    ENOENT = 2
    ESRCH = 3
    EINTR = 4
    EIO = 5
    EBADF = 9
    ECHILD = 10
    EAGAIN = 11
    ENOMEM = 12
    EACCES = 13
    EFAULT = 14
    EBUSY = 16
    EEXIST = 17
    ENOTDIR = 20
    EISDIR = 21
    EINVAL = 22
    ENFILE = 23
    EMFILE = 24
    ENOSPC = 28
    ESPIPE = 29
    EROFS = 30
    EMLINK = 31
    EPIPE = 32
    ERANGE = 34
    ENOSYS = 38
    ENOTEMPTY = 39
    ELOOP = 40
    ENAMETOOLONG = 36
    ENOTSOCK = 88
    EDESTADDRREQ = 89
    EPROTONOSUPPORT = 93
    EOPNOTSUPP = 95
    EAFNOSUPPORT = 97
    EADDRINUSE = 98
    ENETDOWN = 100
    ECONNRESET = 104
    EISCONN = 106
    ENOTCONN = 107
    ECONNREFUSED = 111

    def as_result(self) -> int:
        """The value a failing syscall places in ``r0`` (two's complement)."""
        return (-int(self)) & 0xFFFFFFFF


def is_error(result: int) -> bool:
    """Linux convention: results in [-4095, -1] (mod 2^32) are errors."""
    return result >= 0xFFFFF001


def errno_of(result: int) -> Errno:
    if not is_error(result):
        raise ValueError(f"result {result:#x} is not an error")
    return Errno(0x1_0000_0000 - result)
