"""The per-process verification fast path.

The encoded policy of a call site is immutable: it is burned into the
read-only ``.authdata`` section at install time and covered by the call
MAC.  Re-running AES-CBC-OMAC over the identical bytes on every trap is
therefore pure waste — the observation behind SFIP's and SysPart's
hash-lookup enforcement, and the reason this cache exists.

:class:`VerifiedSiteCache` remembers, per ``(call_site, descriptor)``,
the exact encoded-call bytes and the call MAC that survived one *full*
CMAC verification.  On a later trap at the same site the kernel still
reconstructs the encoded call from the live registers and memory (that
step is what binds the check to runtime behaviour), but verification
degenerates to two ``bytes`` comparisons: if the reconstruction and the
presented MAC are byte-identical to the verified pair, the CMAC would
necessarily succeed again.  Any divergence — a tampered record, a
changed argument, a different MAC — simply misses the cache and falls
through to the full cryptographic check, so a hit can never accept
anything the slow path would have rejected.

What is deliberately **never** cached:

- the ``lastBlock``/``lbMAC`` state MACs and steps 3–5 of the online
  memory checker — they mix in the kernel's per-process counter (the
  replay nonce), so each trap's value is unique by construction;
- string-argument *content* MACs (step 2) — contents live in attacker-
  reachable memory and must be re-MAC'd against the authenticated
  header on every trap, or a post-warm-up overwrite would go unseen;
- pattern-matched runtime arguments — they are runtime values.

The cache is created per process and discarded on exit/exec; entries
never migrate between processes.  Parsing (not verifying) of AS headers
is additionally memoized through a write-version-gated
:class:`repro.policy.authstrings.CachedASReader`.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cpu.memory import Memory
from repro.policy.authstrings import AuthenticatedString, CachedASReader
from repro.policy.descriptor import PolicyDescriptor


@dataclass(frozen=True)
class SiteEntry:
    """One verified (encoded call, call MAC) pair."""

    encoded_call: bytes
    call_mac: bytes


class VerifiedSiteCache:
    """Per-process cache of fully verified call-MAC checks."""

    #: Site cap; a process has a fixed set of rewritten call sites, so
    #: overflow indicates pathology and is answered with a full flush.
    MAX_SITES = 4096

    def __init__(self) -> None:
        self._sites: dict[tuple[int, int], SiteEntry] = {}
        self._as_reader = CachedASReader()
        #: Local counters (the kernel aggregates them into the audit
        #: log's machine-wide :class:`repro.kernel.audit.FastPathStats`).
        self.hits = 0
        self.misses = 0

    def __len__(self) -> int:
        return len(self._sites)

    # -- call-MAC fast path ---------------------------------------------

    def probe(
        self,
        call_site: int,
        descriptor: PolicyDescriptor,
        encoded_call: bytes,
        call_mac: bytes,
    ) -> bool:
        """True iff this exact (encoded call, MAC) pair was previously
        verified at this site — i.e. the full CMAC check may be skipped."""
        entry = self._sites.get((call_site, int(descriptor)))
        if (
            entry is not None
            and entry.encoded_call == encoded_call
            and entry.call_mac == call_mac
        ):
            self.hits += 1
            return True
        self.misses += 1
        return False

    def store(
        self,
        call_site: int,
        descriptor: PolicyDescriptor,
        encoded_call: bytes,
        call_mac: bytes,
    ) -> None:
        """Record a pair that just survived the full CMAC check."""
        if len(self._sites) >= self.MAX_SITES:
            self._sites.clear()
        self._sites[(call_site, int(descriptor))] = SiteEntry(encoded_call, call_mac)

    # -- memoized AS parsing --------------------------------------------

    def read_as(self, memory: Memory, string_address: int) -> AuthenticatedString:
        """Version-gated memoized AS parse (see CachedASReader)."""
        return self._as_reader.read(memory, string_address)

    # -- lifecycle -------------------------------------------------------

    def invalidate(self) -> int:
        """Drop everything (process exit/exec); returns entries dropped."""
        dropped = len(self._sites) + len(self._as_reader)
        self._sites.clear()
        self._as_reader.clear()
        return dropped
