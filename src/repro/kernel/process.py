"""Process model: pid, cwd, fd table, brk, and the auth counter."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.kernel.errors import Errno
from repro.kernel.vfs import Inode, VfsError

MAX_FDS = 256

O_RDONLY = 0
O_WRONLY = 1
O_RDWR = 2
O_ACCMODE = 3
O_CREAT = 0o100
O_EXCL = 0o200
O_TRUNC = 0o1000
O_APPEND = 0o2000


@dataclass
class FileDescription:
    """An open file: inode + offset + flags (one entry per fd)."""

    inode: Optional[Inode]  # None for special fds (sockets, std streams)
    flags: int
    offset: int = 0
    path: str = ""
    kind: str = "file"  # "file" | "console" | "socket" | "dir" | "pipe"
    #: Kernel pipe object for kind == "pipe"; endpoint refcounts drive
    #: writer-close EOF and reader-close EPIPE.
    pipe: Optional["Pipe"] = None  # noqa: F821 - sched.pipe, no import cycle
    #: Kernel socket object for kind == "socket"; refcounted like pipe
    #: endpoints so the peer's EOF/EPIPE-analog accounting stays exact
    #: across dup/fork (the POSIX open-file-description model).
    sock: Optional["Socket"] = None  # noqa: F821 - net.socket, no import cycle

    @property
    def readable(self) -> bool:
        return self.flags & O_ACCMODE in (O_RDONLY, O_RDWR)

    @property
    def writable(self) -> bool:
        return self.flags & O_ACCMODE in (O_WRONLY, O_RDWR)

    def dup(self) -> "FileDescription":
        """Duplicate for dup/dup2/fcntl(F_DUPFD)/fork, retaining the
        pipe/socket endpoint so EOF/EPIPE accounting stays exact."""
        if self.pipe is not None:
            self.pipe.retain(self.writable)
        if self.sock is not None:
            self.sock.retain()
        return FileDescription(
            inode=self.inode,
            flags=self.flags,
            offset=self.offset,
            path=self.path,
            kind=self.kind,
            pipe=self.pipe,
            sock=self.sock,
        )

    def release(self) -> None:
        """Drop this description's claim on shared kernel objects."""
        if self.pipe is not None:
            self.pipe.release(self.writable)
        if self.sock is not None:
            self.sock.release()


@dataclass
class Process:
    """Kernel-side state for one running program."""

    pid: int
    name: str
    cwd: str = "/"
    fds: dict[int, FileDescription] = field(default_factory=dict)
    brk: int = 0
    initial_brk: int = 0
    #: The per-process counter of the §3.2 online memory checker.  It is
    #: kernel-resident — the one piece of policy state an attacker can
    #: never touch — and acts as the replay nonce for lastBlock/lbMAC.
    auth_counter: int = 0
    #: Whether the image was produced by the trusted installer (carries
    #: the "authenticated" metadata marker).
    authenticated: bool = False
    exit_status: Optional[int] = None
    stdout: bytearray = field(default_factory=bytearray)
    stderr: bytearray = field(default_factory=bytearray)
    stdin: bytes = b""
    stdin_offset: int = 0
    network: list[bytes] = field(default_factory=list)
    #: Signal dispositions recorded by sigaction (number -> handler addr).
    signal_handlers: dict[int, int] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not self.fds:
            self.fds[0] = FileDescription(None, O_RDONLY, kind="console", path="<stdin>")
            self.fds[1] = FileDescription(None, O_WRONLY, kind="console", path="<stdout>")
            self.fds[2] = FileDescription(None, O_WRONLY, kind="console", path="<stderr>")

    def allocate_fd(self, description: FileDescription) -> int:
        for fd in range(MAX_FDS):
            if fd not in self.fds:
                self.fds[fd] = description
                return fd
        raise VfsError(Errno.EMFILE)

    def fd(self, number: int) -> FileDescription:
        try:
            return self.fds[number]
        except KeyError:
            raise VfsError(Errno.EBADF) from None

    def close_fd(self, number: int) -> None:
        if number not in self.fds:
            raise VfsError(Errno.EBADF)
        self.fds.pop(number).release()
