"""The deterministic cycle-cost model.

Two halves:

1. **Baseline syscall costs**, calibrated so that an *unmodified*
   system call measured the way the paper measures it (rdtsc around a
   tight loop) reproduces Table 4's "Original cost" column exactly:

   =============== =======
   getpid          1,141
   gettimeofday    1,395
   read(4096)      7,324
   write(4096)     39,479
   brk             1,155
   =============== =======

2. **Authentication surcharge**, modeled from first principles: a fixed
   verification overhead (argument copy-in, encoded-call construction,
   table walks) plus a per-16-byte-block cost for every AES invocation
   the check performs (call MAC, authenticated-string MACs, and — when
   control-flow policies are enabled — the two memory-checker MACs).
   The constants land the authenticated getpid at ~5,045 cycles
   (paper: 5,045), i.e. the ~3,900-cycle check cost §4.3 reports.
"""

from __future__ import annotations

from dataclasses import dataclass, field

#: Fixed cost of entering and leaving the software trap handler
#: (mode switch, register save/restore, syscall table dispatch).
TRAP_COST = 1000

#: Per-syscall service costs (cycles), excluding the trap overhead and
#: any per-byte transfer costs.  Calibrated against Table 4.
SERVICE_COST = {
    "getpid": 141,
    "gettimeofday": 395,
    "brk": 155,
    "read": 36,
    "write": 1615,
    "time": 395,
}

#: Catch-all service cost for calls without a calibrated entry.
DEFAULT_SERVICE_COST = 400

#: Per-byte data-transfer costs (dyadic rationals, so the products are
#: exact in floating point).  read(4096) = 1000 + 36 + 4096*1.53515625
#: = 7,324; write(4096) = 1000 + 1615 + 4096*9.0 = 39,479.
READ_BYTE_COST = 1.53515625
WRITE_BYTE_COST = 9.0

#: Authentication model.  AUTH_FIXED covers copying the five extra
#: arguments from user space, building the encoded call, and the policy
#: checks that involve no cryptography; MAC_BLOCK_COST is one AES-128
#: block operation inside the CMAC (~214 cycles is in line with a
#: table-based software AES on the paper's hardware generation).
#: Calibrated against Table 4's authenticated column for the three
#: transfer-free calls: getpid 5,045; gettimeofday 5,703; brk 5,083.
AUTH_FIXED = 3690
MAC_BLOCK_COST = 214

#: Fast-path accounting.  When the per-site cache satisfies the call
#: MAC (see :mod:`repro.kernel.authcache`), the check performs no OMAC
#: setup and no AES for that MAC: it copies the record in, rebuilds the
#: encoded call, and compares it (plus the 16-byte MAC) against the
#: verified pair.  AUTH_FIXED_HIT covers that copy/encode/bookkeeping
#: work — much smaller than AUTH_FIXED, which also pays the CMAC
#: subkey/finalisation overhead — and CACHE_HIT_COST is the per-hit
#: compare itself (~48 bytes of sequential loads and xors).  Charging
#: hits distinctly keeps the Table 4/6 numbers honest: cached and
#: uncached runs report genuinely different, separately calibrated
#: costs instead of pretending the lookup is free.
AUTH_FIXED_HIT = 950
CACHE_HIT_COST = 50


def mac_blocks(n_bytes: int) -> int:
    """Number of AES block operations to CMAC ``n_bytes``."""
    return max(1, (n_bytes + 15) // 16)


@dataclass
class CostModel:
    """Pluggable cost model; the defaults are the calibrated constants.

    Keeping it a dataclass makes ablations trivial: benchmarks can
    construct variants (e.g. a slower MAC) without touching kernel
    code.
    """

    trap_cost: int = TRAP_COST
    service_cost: dict = field(default_factory=lambda: dict(SERVICE_COST))
    default_service_cost: int = DEFAULT_SERVICE_COST
    read_byte_cost: float = READ_BYTE_COST
    write_byte_cost: float = WRITE_BYTE_COST
    auth_fixed: int = AUTH_FIXED
    mac_block_cost: int = MAC_BLOCK_COST
    auth_fixed_hit: int = AUTH_FIXED_HIT
    cache_hit_cost: int = CACHE_HIT_COST

    def syscall_cost(self, name: str, transferred: int = 0) -> int:
        """Cycles for one unauthenticated syscall of ``name``."""
        cost = self.trap_cost + self.service_cost.get(name, self.default_service_cost)
        if transferred:
            rate = self.read_byte_cost if name == "read" else self.write_byte_cost
            if name in ("read", "write", "writev", "sendto", "recvfrom", "getdirentries"):
                cost += int(transferred * rate)
        return cost

    def auth_cost(self, mac_bytes_total: int) -> int:
        """Cycles added by authentication when the check MACs a total of
        ``mac_bytes_total`` bytes across all MAC invocations."""
        return self.auth_fixed + self.mac_block_cost * mac_blocks(mac_bytes_total)

    def auth_cost_blocks(self, blocks: int) -> int:
        """Auth cost expressed directly in AES blocks (for multi-MAC
        checks the kernel sums blocks across MACs)."""
        return self.auth_fixed + self.mac_block_cost * blocks

    def auth_cost_fastpath(self, blocks: int, hits: int) -> int:
        """Auth cost when the call MAC was satisfied by the per-site
        cache: ``blocks`` counts only the MACs still computed in full
        (string contents, memory-checker state), ``hits`` the cache
        compares that replaced CMAC invocations."""
        return (
            self.auth_fixed_hit
            + self.mac_block_cost * blocks
            + self.cache_hit_cost * hits
        )
